#!/bin/sh
# Runs clang-tidy over every src/ translation unit in compile_commands.json.
#
#   usage: run_clang_tidy.sh <build-dir> [source-root]
#
# Exits 0 when clang-tidy is unavailable (the invariant linter still runs),
# so `cmake --build build --target lint` works on minimal containers; CI
# images with clang-tidy installed get the full check.
set -eu

BUILD_DIR=${1:?usage: run_clang_tidy.sh <build-dir> [source-root]}
SRC_ROOT=${2:-$(dirname "$0")/..}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found in PATH; skipping (install LLVM to enable)"
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing" >&2
  echo "  (configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 1
fi

SRC_ROOT=$(cd "$SRC_ROOT" && pwd)
FILES=$(sed -n 's/^ *"file": "\(.*\)",\{0,1\}$/\1/p' \
    "$BUILD_DIR/compile_commands.json" | grep "^$SRC_ROOT/src/" | sort -u)

STATUS=0
for f in $FILES; do
  echo "clang-tidy: $f"
  clang-tidy -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
exit $STATUS
