// Repo-specific invariant linter.
//
// clang-tidy catches generic C++ bugs; this tool enforces the conventions
// that keep DenseVLC's *physics* honest and that no off-the-shelf check
// knows about:
//
//   units         public numeric fields (and constants) in headers whose
//                 name describes a physical quantity must carry a unit
//                 suffix (`time_s`, `power_w`, `throughput_bps`, ... as in
//                 core/trace.hpp) so lux never silently mixes with watts.
//   nodiscard     bool- or optional-returning save/load/parse/write APIs in
//                 headers must be [[nodiscard]] — a dropped error return is
//                 a silent data loss.
//   banned        `rand()` (use common/rng.hpp: seeded, reproducible) and
//                 argless `assert(false)`/`assert(0)` (use DVLC_ASSERT with
//                 a message) are forbidden.
//   raw-double    in physics-core headers (optics/, channel/, illum/,
//                 alloc/, phy/frontend.hpp, core/trace.hpp), function
//                 parameters and return values that carry a unit suffix
//                 must use the typed quantity aliases from
//                 common/quantity.hpp (Watts, Amperes, ...), not bare
//                 double. Struct fields and bulk vector storage stay raw
//                 by design; intentional raw-double boundaries carry a
//                 waiver.
//   naked-literal in physics-core sources, `double x_w = 0.45;` style
//                 magic constants with unit-suffixed names must use the
//                 unit literals (`450.0_mA`) or units:: helpers instead of
//                 a naked number, so the unit is visible at the use site.
//   hot-loop-alloc in files whose first line carries the `// DVLC_HOT`
//                 marker (the zero-allocation PHY sample path, see
//                 common/arena.hpp), member calls to the growing vector
//                 APIs (`push_back`, `emplace_back`, `resize`) are
//                 flagged: hot paths must stage through arena_resize /
//                 arena_clear so steady-state reuse is explicit.
//                 Intentional cold-path growth carries a waiver.
//
// The scanner is a small C++ tokenizer, not a per-line regex pass: string
// literals, character literals, and block comments can no longer produce
// false findings or false waivers.
//
// A finding can be waived with `// dvlc-lint: allow(<rule>)` on the same
// line or the line above. Exit status: 0 clean, 1 findings, 2 usage error.
//
// Usage: lint_invariants <dir-or-file> [more...]
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// --- tokenizer -------------------------------------------------------------

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,   // string or char literal (contents opaque)
  kPunct,
  kComment,  // line or block comment, text without delimiters
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  std::size_t line = 0;  // 1-based line where the token starts
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Tokenizes C++ source. Comments are kept (waivers live there); string
/// and char literal contents are swallowed so nothing inside them can
/// match a rule. Numbers follow the pp-number shape, which keeps UDLs
/// like `36.0_mA` one token.
std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      out.push_back({TokenKind::kComment, src.substr(i + 2, j - i - 2), line});
      i = j;
      continue;
    }
    // Block comment (may span lines).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      out.push_back(
          {TokenKind::kComment, src.substr(i + 2, j - i - 2), start_line});
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Raw string literal R"delim(...)delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src.find(closer, j);
      const std::size_t stop = end == std::string::npos ? n : end + closer.size();
      for (std::size_t k = i; k < stop; ++k) {
        if (src[k] == '\n') ++line;
      }
      out.push_back({TokenKind::kString, "", line});
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;  // unterminated; keep line count sane
        ++j;
      }
      out.push_back({TokenKind::kString, "", line});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    // pp-number: digits, idents, dots, and sign after e/E/p/P.
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])) != 0)) {
      std::size_t j = i;
      while (j < n) {
        const char d = src[j];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                    src[j - 1] == 'p' || src[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.push_back({TokenKind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(src[j])) ++j;
      out.push_back({TokenKind::kIdentifier, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation; keep the few multi-char tokens the rules care about.
    if (i + 1 < n) {
      const std::string two = src.substr(i, 2);
      if (two == "::" || two == "[[" || two == "]]" || two == "->") {
        out.push_back({TokenKind::kPunct, two, line});
        i += 2;
        continue;
      }
    }
    out.push_back({TokenKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// --- findings & waivers ----------------------------------------------------

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

std::vector<Finding> g_findings;

/// Waiver lines per rule, collected from comment tokens only — a string
/// literal mentioning dvlc-lint no longer waives anything.
using WaiverMap = std::map<std::string, std::set<std::size_t>>;

WaiverMap collect_waivers(const std::vector<Token>& tokens) {
  WaiverMap waivers;
  const std::string tag = "dvlc-lint: allow(";
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) continue;
    std::size_t pos = 0;
    while ((pos = t.text.find(tag, pos)) != std::string::npos) {
      const std::size_t open = pos + tag.size();
      const std::size_t close = t.text.find(')', open);
      if (close == std::string::npos) break;
      waivers[t.text.substr(open, close - open)].insert(t.line);
      pos = close;
    }
  }
  return waivers;
}

bool waived(const WaiverMap& waivers, const std::string& rule,
            std::size_t line) {
  const auto it = waivers.find(rule);
  if (it == waivers.end()) return false;
  // A waiver covers its own line and the line below it.
  return it->second.count(line) > 0 || (line > 0 && it->second.count(line - 1) > 0);
}

void report(const std::string& file, std::size_t line, const std::string& rule,
            const std::string& message) {
  g_findings.push_back({file, line, rule, message});
}

// --- shared helpers --------------------------------------------------------

// Quantity stems that demand a unit suffix when they name a numeric field.
const char* const kQuantityStems[] = {
    "time",     "delay",      "duration",   "interval", "period",
    "power",    "energy",     "illuminance", "luminous", "throughput",
    "bitrate",  "datarate",   "bandwidth",  "frequency", "freq",
    "distance", "length",     "height",     "width_",    "area",
    "angle",    "swing",      "current",    "voltage",   "noise",
    "latency",  "timeout",    "offset",     "drift",     "resistance",
};

// Accepted unit suffixes (extend as new quantities appear).
const char* const kUnitSuffixes[] = {
    "_s",    "_ms",  "_us",   "_ns",   "_hz",   "_khz", "_mhz", "_ghz",
    "_bps",  "_kbps", "_mbps", "_w",    "_mw",   "_lux", "_lm",  "_m",
    "_m2",   "_mm",  "_mm2",  "_cm",   "_rad",  "_deg", "_db",  "_dbm",
    "_a",    "_ma",  "_a2",   "_v",    "_j",    "_ohm", "_pct", "_ppm",
    "_per_w", "_per_hz", "_per_s", "_per_m",
};

// Suffixes naming dimensionless ratios/angles: these stay plain double even
// at typed physics boundaries (angles and dB have no Quantity alias).
const char* const kDimensionlessSuffixes[] = {
    "_rad", "_deg", "_db", "_dbm", "_pct", "_ppm",
};

bool ends_with(const std::string& name, const std::string& suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool ends_with_unit(std::string name) {
  // Private members carry a trailing underscore (`power_used_w_`).
  if (!name.empty() && name.back() == '_') name.pop_back();
  return std::any_of(std::begin(kUnitSuffixes), std::end(kUnitSuffixes),
                     [&](const char* s) { return ends_with(name, s); });
}

/// True when the name carries a unit suffix naming a *dimensional*
/// quantity — the ones common/quantity.hpp has a typed alias for.
bool has_dimensional_suffix(std::string name) {
  if (!name.empty() && name.back() == '_') name.pop_back();
  if (std::any_of(std::begin(kDimensionlessSuffixes),
                  std::end(kDimensionlessSuffixes),
                  [&](const char* s) { return ends_with(name, s); })) {
    return false;
  }
  return ends_with_unit(name);
}

bool names_quantity(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return std::any_of(std::begin(kQuantityStems), std::end(kQuantityStems),
                     [&](const char* s) {
                       return lower.find(s) != std::string::npos;
                     });
}

bool is_code(const Token& t) { return t.kind != TokenKind::kComment; }

/// Index of the previous non-comment token, or npos.
std::size_t prev_code(const std::vector<Token>& toks, std::size_t i) {
  while (i > 0) {
    --i;
    if (is_code(toks[i])) return i;
  }
  return std::string::npos;
}

/// Index of the next non-comment token, or npos.
std::size_t next_code(const std::vector<Token>& toks, std::size_t i) {
  for (++i; i < toks.size(); ++i) {
    if (is_code(toks[i])) return i;
  }
  return std::string::npos;
}

bool token_is(const std::vector<Token>& toks, std::size_t i,
              const char* text) {
  return i != std::string::npos && toks[i].text == text;
}

/// True when toks[i] begins a declaration: preceded by nothing, a
/// statement/body boundary, an access specifier colon, or a specifier
/// keyword that itself begins one.
bool at_decl_start(const std::vector<Token>& toks, std::size_t i) {
  const std::size_t p = prev_code(toks, i);
  if (p == std::string::npos) return true;
  const Token& t = toks[p];
  if (t.kind == TokenKind::kPunct &&
      (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ":")) {
    return true;
  }
  if (t.kind == TokenKind::kIdentifier &&
      (t.text == "static" || t.text == "inline" || t.text == "constexpr" ||
       t.text == "mutable" || t.text == "virtual" || t.text == "explicit")) {
    return at_decl_start(toks, p);
  }
  return t.kind == TokenKind::kPunct && t.text == "]]";  // after an attribute
}

// --- rule: banned ----------------------------------------------------------

void check_banned(const std::string& file, const std::vector<Token>& toks,
                  const WaiverMap& waivers) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text == "rand") {
      const std::size_t p = prev_code(toks, i);
      const bool qualified =
          p != std::string::npos &&
          (toks[p].text == "::" || toks[p].text == "." || toks[p].text == "->");
      if (!qualified && token_is(toks, next_code(toks, i), "(") &&
          !waived(waivers, "banned", t.line)) {
        report(file, t.line, "banned",
               "rand() is not reproducible; use common/rng.hpp");
      }
    }
    if (t.text == "assert") {
      const std::size_t open = next_code(toks, i);
      if (!token_is(toks, open, "(")) continue;
      const std::size_t arg = next_code(toks, open);
      if (arg == std::string::npos) continue;
      const bool bare = toks[arg].text == "false" || toks[arg].text == "0";
      if (bare && token_is(toks, next_code(toks, arg), ")") &&
          !waived(waivers, "banned", t.line)) {
        report(file, t.line, "banned",
               "argless assert(false); use DVLC_ASSERT(cond, \"message\")");
      }
    }
  }
}

// --- rule: units -----------------------------------------------------------

void check_units(const std::string& file, const std::vector<Token>& toks,
                 const WaiverMap& waivers) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier ||
        (t.text != "double" && t.text != "float")) {
      continue;
    }
    if (!at_decl_start(toks, i)) continue;
    const std::size_t name_idx = next_code(toks, i);
    if (name_idx == std::string::npos ||
        toks[name_idx].kind != TokenKind::kIdentifier) {
      continue;
    }
    const std::size_t after = next_code(toks, name_idx);
    if (after == std::string::npos) continue;
    const std::string& punct = toks[after].text;
    if (punct != "=" && punct != "{" && punct != ";") continue;  // not a field
    const std::string& name = toks[name_idx].text;
    if (names_quantity(name) && !ends_with_unit(name) &&
        !waived(waivers, "units", toks[name_idx].line)) {
      report(file, toks[name_idx].line, "units",
             "numeric field '" + name +
                 "' names a physical quantity but has no unit suffix "
                 "(_s, _w, _bps, _lux, ...)");
    }
  }
}

// --- rule: nodiscard -------------------------------------------------------

bool is_error_api_name(const std::string& name) {
  static const char* const kPrefixes[] = {"save", "load", "write",
                                          "read", "parse", "try"};
  return std::any_of(std::begin(kPrefixes), std::end(kPrefixes),
                     [&](const char* p) {
                       return name.rfind(p, 0) == 0;
                     });
}

void check_nodiscard(const std::string& file, const std::vector<Token>& toks,
                     const WaiverMap& waivers) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    std::size_t name_idx = std::string::npos;
    if (t.text == "bool" && at_decl_start(toks, i)) {
      name_idx = next_code(toks, i);
    } else if (t.text == "std" && at_decl_start(toks, i)) {
      // std :: optional < ... > name (
      std::size_t j = next_code(toks, i);
      if (!token_is(toks, j, "::")) continue;
      j = next_code(toks, j);
      if (j == std::string::npos || toks[j].text != "optional") continue;
      j = next_code(toks, j);
      if (!token_is(toks, j, "<")) continue;
      int depth = 1;
      while (depth > 0) {
        j = next_code(toks, j);
        if (j == std::string::npos) break;
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">") --depth;
      }
      if (j == std::string::npos) continue;
      name_idx = next_code(toks, j);
    } else {
      continue;
    }
    if (name_idx == std::string::npos ||
        toks[name_idx].kind != TokenKind::kIdentifier ||
        !is_error_api_name(toks[name_idx].text) ||
        !token_is(toks, next_code(toks, name_idx), "(")) {
      continue;
    }
    // Look for [[nodiscard]] in the handful of tokens before the type.
    bool marked = false;
    std::size_t back = i;
    for (int k = 0; k < 6 && back > 0; ++k) {
      back = prev_code(toks, back);
      if (back == std::string::npos) break;
      if (toks[back].text == "nodiscard") {
        marked = true;
        break;
      }
      if (toks[back].text == ";" || toks[back].text == "}") break;
    }
    if (!marked && !waived(waivers, "nodiscard", toks[name_idx].line)) {
      report(file, toks[name_idx].line, "nodiscard",
             "error-returning API '" + toks[name_idx].text +
                 "' must be [[nodiscard]]");
    }
  }
}

// --- rule: raw-double ------------------------------------------------------

/// True for files whose public surface must use typed quantities.
bool in_physics_core(const fs::path& path) {
  const std::string p = path.generic_string();
  for (const char* dir : {"/optics/", "/channel/", "/illum/", "/alloc/"}) {
    if (p.find(dir) != std::string::npos) return true;
  }
  return ends_with(p, "phy/frontend.hpp") || ends_with(p, "core/trace.hpp");
}

void check_raw_double(const std::string& file, const std::vector<Token>& toks,
                      const WaiverMap& waivers) {
  int paren_depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "(") ++paren_depth;
      if (t.text == ")") paren_depth = std::max(0, paren_depth - 1);
      continue;
    }
    if (t.kind != TokenKind::kIdentifier || t.text != "double") continue;
    const std::size_t name_idx = next_code(toks, i);
    if (name_idx == std::string::npos ||
        toks[name_idx].kind != TokenKind::kIdentifier) {
      continue;
    }
    const std::string& name = toks[name_idx].text;
    if (!has_dimensional_suffix(name)) continue;
    if (paren_depth > 0) {
      // A unit-suffixed double parameter: must be a Quantity alias.
      if (!waived(waivers, "raw-double", toks[name_idx].line)) {
        report(file, toks[name_idx].line, "raw-double",
               "parameter '" + name +
                   "' passes a physical quantity as bare double; use the "
                   "typed alias from common/quantity.hpp (Watts, Amperes, "
                   "Meters, ...)");
      }
      continue;
    }
    // A unit-suffixed function returning double: `double power_w(...)`.
    if (at_decl_start(toks, i) &&
        token_is(toks, next_code(toks, name_idx), "(") &&
        !waived(waivers, "raw-double", toks[name_idx].line)) {
      report(file, toks[name_idx].line, "raw-double",
             "function '" + name +
                 "' returns a physical quantity as bare double; return the "
                 "typed alias from common/quantity.hpp instead");
    }
  }
}

// --- rule: naked-literal ---------------------------------------------------

bool literal_is_zero(const std::string& text) {
  std::istringstream in{text};
  double v = 0.0;
  in >> v;
  return v == 0.0;
}

void check_naked_literal(const std::string& file,
                         const std::vector<Token>& toks,
                         const WaiverMap& waivers) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier || t.text != "double") continue;
    if (!at_decl_start(toks, i)) continue;
    const std::size_t name_idx = next_code(toks, i);
    if (name_idx == std::string::npos ||
        toks[name_idx].kind != TokenKind::kIdentifier ||
        !has_dimensional_suffix(toks[name_idx].text)) {
      continue;
    }
    const std::size_t eq = next_code(toks, name_idx);
    if (!token_is(toks, eq, "=")) continue;
    const std::size_t lit = next_code(toks, eq);
    if (lit == std::string::npos || toks[lit].kind != TokenKind::kNumber) {
      continue;
    }
    if (!token_is(toks, next_code(toks, lit), ";")) continue;
    const std::string& num = toks[lit].text;
    // Unit literals (`450.0_mA`) carry the unit in the token; zero needs
    // no unit.
    if (num.find('_') != std::string::npos || literal_is_zero(num)) continue;
    if (waived(waivers, "naked-literal", toks[lit].line)) continue;
    report(file, toks[lit].line, "naked-literal",
           "unit-suffixed constant '" + toks[name_idx].text +
               "' is initialized from a naked literal; use a unit literal "
               "(450.0_mA) or a units:: helper so the unit is visible");
  }
}

// --- rule: hot-loop-alloc --------------------------------------------------

/// True when the file opts into the zero-allocation contract: a comment
/// on line 1 that starts with the DVLC_HOT marker. (Prose elsewhere may
/// *mention* the marker — common/arena.hpp does — without opting in.)
bool has_hot_marker(const std::vector<Token>& toks) {
  for (const Token& t : toks) {
    if (t.line > 1) break;
    if (t.kind != TokenKind::kComment) continue;
    const std::size_t at = t.text.find_first_not_of(" \t");
    if (at != std::string::npos && t.text.compare(at, 8, "DVLC_HOT") == 0) {
      return true;
    }
  }
  return false;
}

void check_hot_loop_alloc(const std::string& file,
                          const std::vector<Token>& toks,
                          const WaiverMap& waivers) {
  static const char* const kGrowers[] = {"push_back", "emplace_back",
                                         "resize"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (std::none_of(std::begin(kGrowers), std::end(kGrowers),
                     [&](const char* g) { return t.text == g; })) {
      continue;
    }
    // Only member calls (`buf.resize(...)`): a free function named
    // arena_resize is one identifier token and never matches.
    const std::size_t p = prev_code(toks, i);
    const bool member_call =
        p != std::string::npos &&
        (toks[p].text == "." || toks[p].text == "->") &&
        token_is(toks, next_code(toks, i), "(");
    if (!member_call) continue;
    if (waived(waivers, "hot-loop-alloc", t.line)) continue;
    report(file, t.line, "hot-loop-alloc",
           "'" + t.text +
               "' grows a container in a DVLC_HOT file; stage through "
               "arena_resize/arena_clear (common/arena.hpp) or waive an "
               "intentional cold path");
  }
}

// --- driver ----------------------------------------------------------------

void lint_file(const fs::path& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "lint_invariants: cannot read %s\n",
                 path.string().c_str());
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::vector<Token> tokens = tokenize(buf.str());
  const WaiverMap waivers = collect_waivers(tokens);

  const std::string file = path.string();
  const bool is_header = path.extension() == ".hpp";
  check_banned(file, tokens, waivers);
  if (has_hot_marker(tokens)) check_hot_loop_alloc(file, tokens, waivers);
  if (is_header) {
    check_units(file, tokens, waivers);
    check_nodiscard(file, tokens, waivers);
    if (in_physics_core(path)) check_raw_double(file, tokens, waivers);
  } else if (in_physics_core(path)) {
    check_naked_literal(file, tokens, waivers);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: lint_invariants <dir-or-file> [more...]\n");
    return 2;
  }
  std::size_t files = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path root{argv[i]};
    if (fs::is_regular_file(root)) {
      lint_file(root);
      ++files;
      continue;
    }
    if (!fs::is_directory(root)) {
      std::fprintf(stderr, "lint_invariants: no such path: %s\n", argv[i]);
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext != ".hpp" && ext != ".cpp") continue;
      lint_file(entry.path());
      ++files;
    }
  }

  std::sort(g_findings.begin(), g_findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  // GCC-style `path:line:` prefix: editors and CI annotate these.
  for (const auto& f : g_findings) {
    std::printf("%s:%zu: error: [%s] %s\n", f.file.c_str(), f.line,
                f.rule.c_str(), f.message.c_str());
  }
  std::printf("lint_invariants: %zu file(s), %zu finding(s)\n", files,
              g_findings.size());
  return g_findings.empty() ? 0 : 1;
}
