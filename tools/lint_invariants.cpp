// Repo-specific invariant linter.
//
// clang-tidy catches generic C++ bugs; this tool enforces the conventions
// that keep DenseVLC's *physics* honest and that no off-the-shelf check
// knows about:
//
//   units      public numeric fields (and constants) in headers whose name
//              describes a physical quantity must carry a unit suffix
//              (`time_s`, `power_w`, `throughput_bps`, ... as in
//              core/trace.hpp) so lux never silently mixes with watts.
//   nodiscard  bool- or optional-returning save/load/parse/write APIs in
//              headers must be [[nodiscard]] — a dropped error return is a
//              silent data loss.
//   banned     `rand()` (use common/rng.hpp: seeded, reproducible) and
//              argless `assert(false)`/`assert(0)` (use DVLC_ASSERT with a
//              message) are forbidden.
//
// A finding can be waived with `// dvlc-lint: allow(<rule>)` on the same
// line or the line above. Exit status: 0 clean, 1 findings, 2 usage error.
//
// Usage: lint_invariants <dir-or-file> [more...]
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

std::vector<Finding> g_findings;

void report(const std::string& file, std::size_t line, const std::string& rule,
            const std::string& message) {
  g_findings.push_back({file, line, rule, message});
}

bool has_waiver(const std::vector<std::string>& lines, std::size_t idx,
                const std::string& rule) {
  const std::string needle = "dvlc-lint: allow(" + rule + ")";
  if (lines[idx].find(needle) != std::string::npos) return true;
  return idx > 0 && lines[idx - 1].find(needle) != std::string::npos;
}

// --- rule: banned ----------------------------------------------------------

const std::regex kRandCall{R"((^|[^\w.:])rand\s*\()"};
const std::regex kBareAssertFalse{R"(\bassert\s*\(\s*(false|0)\s*\))"};

void check_banned(const std::string& file,
                  const std::vector<std::string>& lines) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    if (has_waiver(lines, i, "banned")) continue;
    if (std::regex_search(l, kRandCall)) {
      report(file, i + 1, "banned",
             "rand() is not reproducible; use common/rng.hpp");
    }
    if (std::regex_search(l, kBareAssertFalse)) {
      report(file, i + 1, "banned",
             "argless assert(false); use DVLC_ASSERT(cond, \"message\")");
    }
  }
}

// --- rule: units -----------------------------------------------------------

// Quantity stems that demand a unit suffix when they name a numeric field.
const char* const kQuantityStems[] = {
    "time",     "delay",      "duration",   "interval", "period",
    "power",    "energy",     "illuminance", "luminous", "throughput",
    "bitrate",  "datarate",   "bandwidth",  "frequency", "freq",
    "distance", "length",     "height",     "width_",    "area",
    "angle",    "swing",      "current",    "voltage",   "noise",
    "latency",  "timeout",    "offset",     "drift",     "resistance",
};

// Accepted unit suffixes (extend as new quantities appear).
const char* const kUnitSuffixes[] = {
    "_s",    "_ms",  "_us",   "_ns",   "_hz",   "_khz", "_mhz", "_ghz",
    "_bps",  "_kbps", "_mbps", "_w",    "_mw",   "_lux", "_lm",  "_m",
    "_m2",   "_mm",  "_mm2",  "_cm",   "_rad",  "_deg", "_db",  "_dbm",
    "_a",    "_ma",  "_a2",   "_v",    "_j",    "_ohm", "_pct", "_ppm",
    "_per_w", "_per_hz", "_per_s", "_per_m",
};

bool ends_with_unit(std::string name) {
  // Private members carry a trailing underscore (`power_used_w_`).
  if (!name.empty() && name.back() == '_') name.pop_back();
  for (const char* suffix : kUnitSuffixes) {
    const std::size_t n = std::string(suffix).size();
    if (name.size() >= n && name.compare(name.size() - n, n, suffix) == 0) {
      return true;
    }
  }
  return false;
}

bool names_quantity(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  for (const char* stem : kQuantityStems) {
    if (lower.find(stem) != std::string::npos) return true;
  }
  return false;
}

// Matches `double name = ...;`, `float name;`, `static constexpr double kX = ..`
const std::regex kNumericField{
    R"(^\s*(?:static\s+)?(?:inline\s+)?(?:constexpr\s+)?(?:double|float)\s+(\w+)\s*(?:=|\{|;))"};

void check_units(const std::string& file,
                 const std::vector<std::string>& lines) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kNumericField)) continue;
    if (has_waiver(lines, i, "units")) continue;
    const std::string name = m[1].str();
    if (names_quantity(name) && !ends_with_unit(name)) {
      report(file, i + 1, "units",
             "numeric field '" + name +
                 "' names a physical quantity but has no unit suffix "
                 "(_s, _w, _bps, _lux, ...)");
    }
  }
}

// --- rule: nodiscard -------------------------------------------------------

// Error-returning API shapes: bool/optional return + a name that implies an
// operation whose failure must be observed.
const std::regex kErrorApi{
    R"(^\s*(?:static\s+)?(?:bool|std::optional<[\w:<>, ]+>)\s+((?:save|load|write|read|parse|try)_?\w*)\s*\()"};

void check_nodiscard(const std::string& file,
                     const std::vector<std::string>& lines) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kErrorApi)) continue;
    if (has_waiver(lines, i, "nodiscard")) continue;
    const bool marked =
        lines[i].find("[[nodiscard]]") != std::string::npos ||
        (i > 0 && lines[i - 1].find("[[nodiscard]]") != std::string::npos);
    if (!marked) {
      report(file, i + 1, "nodiscard",
             "error-returning API '" + m[1].str() +
                 "' must be [[nodiscard]]");
    }
  }
}

// --- driver ----------------------------------------------------------------

void lint_file(const fs::path& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "lint_invariants: cannot read %s\n",
                 path.string().c_str());
    return;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  const std::string file = path.string();
  const bool is_header = path.extension() == ".hpp";
  check_banned(file, lines);
  if (is_header) {
    check_units(file, lines);
    check_nodiscard(file, lines);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: lint_invariants <dir-or-file> [more...]\n");
    return 2;
  }
  std::size_t files = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path root{argv[i]};
    if (fs::is_regular_file(root)) {
      lint_file(root);
      ++files;
      continue;
    }
    if (!fs::is_directory(root)) {
      std::fprintf(stderr, "lint_invariants: no such path: %s\n", argv[i]);
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext != ".hpp" && ext != ".cpp") continue;
      lint_file(entry.path());
      ++files;
    }
  }

  for (const auto& f : g_findings) {
    std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  std::printf("lint_invariants: %zu file(s), %zu finding(s)\n", files,
              g_findings.size());
  return g_findings.empty() ? 0 : 1;
}
