// Semantic diff of scenario / campaign INI files.
//
// A textual diff of two INIs is mostly noise: comments, key order,
// default spelling ("0.5" vs ".50"), and omitted-because-default keys
// all show up even though the compiled scenario is identical. spec_diff
// compares the *meaning* instead: both files are parsed with the real
// scenario/campaign parser, re-serialized canonically (every key
// present, one spelling per value), and the flattened
// `section.key = value` maps are diffed.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace densevlc::specdiff {

/// A parsed file reduced to its canonical `section.key -> value` map.
struct Canonical {
  bool ok = false;
  bool is_campaign = false;  ///< had a [campaign] or [sweep] section
  std::string error;         ///< parse errors when !ok
  std::map<std::string, std::string> items;
};

/// Parses INI text (scenario or campaign schema, auto-detected) and
/// flattens the canonical serialization. Campaign extras appear as
/// `campaign.instances`, `campaign.quick_instances` and `sweep.<axis>`
/// (legs joined with " | " in declaration order).
Canonical canonicalize(const std::string& text);

/// One semantic difference between two canonical maps.
struct DiffEntry {
  enum class Kind { kOnlyA, kOnlyB, kChanged };
  Kind kind = Kind::kChanged;
  std::string key;
  std::string a;  ///< value in A ("" for kOnlyB)
  std::string b;  ///< value in B ("" for kOnlyA)
};

/// Key-sorted semantic differences (empty when the files mean the same).
std::vector<DiffEntry> diff_items(const std::map<std::string, std::string>& a,
                                  const std::map<std::string, std::string>& b);

/// Human-readable rendering, one line per entry:
///   - key = old            (only in A)
///   + key = new            (only in B)
///   ~ key = old -> new     (changed)
std::string render_diff(const std::vector<DiffEntry>& entries);

}  // namespace densevlc::specdiff
