// spec_diff: semantic diff of two scenario / campaign INI files.
//
// Usage:
//   spec_diff <a.ini> <b.ini>
//
// Both files are parsed with the real scenario/campaign parser and
// re-serialized canonically, so comment, ordering and formatting noise
// never shows up — only differences in the compiled meaning do.
//
// Exit status: 0 semantically identical, 1 different, 2 error (missing
// file, parse failure, schema mismatch).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "spec_diff.hpp"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in{path};
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: spec_diff <a.ini> <b.ini>\n");
    return 2;
  }
  std::string text_a;
  std::string text_b;
  if (!read_file(argv[1], text_a)) {
    std::fprintf(stderr, "spec_diff: cannot read %s\n", argv[1]);
    return 2;
  }
  if (!read_file(argv[2], text_b)) {
    std::fprintf(stderr, "spec_diff: cannot read %s\n", argv[2]);
    return 2;
  }

  using densevlc::specdiff::Canonical;
  const Canonical a = densevlc::specdiff::canonicalize(text_a);
  if (!a.ok) {
    std::fprintf(stderr, "spec_diff: %s does not parse:\n%s\n", argv[1],
                 a.error.c_str());
    return 2;
  }
  const Canonical b = densevlc::specdiff::canonicalize(text_b);
  if (!b.ok) {
    std::fprintf(stderr, "spec_diff: %s does not parse:\n%s\n", argv[2],
                 b.error.c_str());
    return 2;
  }
  if (a.is_campaign != b.is_campaign) {
    std::fprintf(stderr,
                 "spec_diff: %s is a %s but %s is a %s; nothing to compare\n",
                 argv[1], a.is_campaign ? "campaign" : "scenario", argv[2],
                 b.is_campaign ? "campaign" : "scenario");
    return 2;
  }

  const auto entries = densevlc::specdiff::diff_items(a.items, b.items);
  if (entries.empty()) {
    std::printf("spec_diff: identical (%zu canonical key(s))\n",
                a.items.size());
    return 0;
  }
  std::fputs(densevlc::specdiff::render_diff(entries).c_str(), stdout);
  std::printf("spec_diff: %zu difference(s)\n", entries.size());
  return 1;
}
