#include "spec_diff.hpp"

#include <sstream>

#include "scenario/campaign.hpp"
#include "scenario/spec.hpp"

namespace densevlc::specdiff {

namespace {

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// True when the text declares a [campaign] or [sweep] section.
bool looks_like_campaign(const std::string& text) {
  std::istringstream in{text};
  std::string raw;
  while (std::getline(in, raw)) {
    std::string line = raw;
    const auto comment = line.find_first_of(";#");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line == "[campaign]" || line == "[sweep]") return true;
  }
  return false;
}

/// Flattens canonical INI text ("[section]\nkey = value") into
/// `section.key -> value` entries.
void flatten_ini(const std::string& text,
                 std::map<std::string, std::string>& items) {
  std::istringstream in{text};
  std::string raw;
  std::string section;
  while (std::getline(in, raw)) {
    const std::string line = trim(raw);
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') {
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    items[section.empty() ? key : section + "." + key] = value;
  }
}

std::string join(const std::vector<std::string>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += " | ";
    out += values[i];
  }
  return out;
}

}  // namespace

Canonical canonicalize(const std::string& text) {
  Canonical out;
  out.is_campaign = looks_like_campaign(text);
  if (out.is_campaign) {
    const scenario::CampaignParseResult parsed =
        scenario::parse_campaign(text);
    if (!parsed.ok()) {
      out.error = parsed.error_text();
      return out;
    }
    const scenario::CampaignSpec& c = *parsed.campaign;
    flatten_ini(scenario::serialize_spec(c.base), out.items);
    out.items["campaign.instances"] = std::to_string(c.instances_per_point);
    out.items["campaign.quick_instances"] =
        std::to_string(c.quick_instances_per_point);
    for (const scenario::CampaignAxis& axis : c.axes) {
      out.items["sweep." + axis.key] = join(axis.values);
    }
  } else {
    const scenario::SpecParseResult parsed = scenario::parse_spec(text);
    if (!parsed.ok()) {
      out.error = parsed.error_text();
      return out;
    }
    flatten_ini(scenario::serialize_spec(*parsed.spec), out.items);
  }
  out.ok = true;
  return out;
}

std::vector<DiffEntry> diff_items(
    const std::map<std::string, std::string>& a,
    const std::map<std::string, std::string>& b) {
  std::vector<DiffEntry> out;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      out.push_back({DiffEntry::Kind::kOnlyA, ia->first, ia->second, ""});
      ++ia;
    } else if (ia == a.end() || ib->first < ia->first) {
      out.push_back({DiffEntry::Kind::kOnlyB, ib->first, "", ib->second});
      ++ib;
    } else {
      if (ia->second != ib->second) {
        out.push_back(
            {DiffEntry::Kind::kChanged, ia->first, ia->second, ib->second});
      }
      ++ia;
      ++ib;
    }
  }
  return out;
}

std::string render_diff(const std::vector<DiffEntry>& entries) {
  std::ostringstream out;
  for (const DiffEntry& e : entries) {
    switch (e.kind) {
      case DiffEntry::Kind::kOnlyA:
        out << "- " << e.key << " = " << e.a << '\n';
        break;
      case DiffEntry::Kind::kOnlyB:
        out << "+ " << e.key << " = " << e.b << '\n';
        break;
      case DiffEntry::Kind::kChanged:
        out << "~ " << e.key << " = " << e.a << " -> " << e.b << '\n';
        break;
    }
  }
  return out.str();
}

}  // namespace densevlc::specdiff
