// Determinism pass: audits every parallel_for / parallel_reduce call site
// against the reproducibility contract of common/thread_pool.hpp. The
// contract allows exactly three things inside a parallel body:
//
//   - reads of captured state,
//   - writes through an index ([] subscript) into disjoint slots,
//   - body-local declarations (including per-link Rng streams derived via
//     split() / fork() / derive_stream_seed).
//
// Everything else is a cross-chunk hazard:
//
//   par-shared-write      a bare (unsubscripted) assignment, compound
//                         assignment, or ++/-- targeting a name that is
//                         not declared inside the body — i.e. mutation of
//                         by-reference-captured shared state.
//   par-container-growth  push_back / emplace_back / insert / emplace /
//                         append / push_front / resize on a receiver that
//                         is not body-local: growth order depends on chunk
//                         scheduling, which breaks bit-identical replay.
//   par-rng-stream        use of a captured Rng-like object without
//                         deriving a per-index stream (split / fork /
//                         derive_stream_seed): chunk placement would leak
//                         into the random sequence.
#include <algorithm>
#include <set>
#include <string>

#include "analysis.hpp"

namespace densevlc::analyze {
namespace {

bool is_assign_op(const std::string& s) {
  return s == "=" || s == "+=" || s == "-=" || s == "*=" || s == "/=" ||
         s == "%=" || s == "&=" || s == "|=" || s == "^=" || s == "<<=" ||
         s == ">>=";
}

bool rng_like(const std::string& name) {
  return name == "rng" || name == "rng_" || name.rfind("rng_", 0) == 0 ||
         ends_with(name, "_rng") || ends_with(name, "_rng_");
}

const char* const kGrowers[] = {"push_back", "emplace_back", "insert",
                                "emplace",   "append",       "push_front",
                                "resize"};

const char* const kStreamDerivers[] = {"split", "fork", "derive_stream_seed"};

bool is_stream_deriver(const std::string& s) {
  return std::any_of(std::begin(kStreamDerivers), std::end(kStreamDerivers),
                     [&](const char* d) { return s == d; });
}

/// One lambda argument of a parallel call: [captures](params){ body }.
struct LambdaBody {
  std::size_t body_open = 0;   // index of "{"
  std::size_t body_close = 0;  // index of matching "}"
  std::set<std::string> locals;
};

/// Statement boundary inside a body. `)` is included so `if (...) x = 1;`
/// still scans x at a statement start; `(expr) = y` is not valid C++, so
/// the approximation is safe.
bool is_stmt_boundary(const Token& t) {
  if (t.kind == TokenKind::kPunct) {
    return t.text == "{" || t.text == ";" || t.text == "}" || t.text == ")";
  }
  return t.kind == TokenKind::kIdentifier &&
         (t.text == "else" || t.text == "do");
}

/// Collects names declared inside [begin, end): lambda-style parameter
/// lists are handled by the caller; here we catch `Type name =/;/{/(/:`
/// pairs, `Type& name`, and `auto [a, b] =` structured bindings.
void collect_locals(const std::vector<Token>& toks, std::size_t begin,
                    std::size_t end, std::set<std::string>& locals) {
  for (std::size_t i = begin; i < end; ++i) {
    // Template-typed declarations: `std::vector<double> scratch;` — the
    // name follows the closing `>` of the template argument list.
    if (toks[i].kind == TokenKind::kPunct && toks[i].text == ">") {
      const std::size_t name = next_code(toks, i);
      if (name != std::string::npos && name < end &&
          toks[name].kind == TokenKind::kIdentifier) {
        const std::size_t after = next_code(toks, name);
        if (after != std::string::npos && after < end &&
            (toks[after].text == "=" || toks[after].text == "{" ||
             toks[after].text == ";" || toks[after].text == "(")) {
          locals.insert(toks[name].text);
        }
      }
      continue;
    }
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    // auto [a, b] = ...
    if (toks[i].text == "auto") {
      const std::size_t br = next_code(toks, i);
      if (token_is(toks, br, "[")) {
        for (std::size_t j = br + 1; j < end && toks[j].text != "]"; ++j) {
          if (toks[j].kind == TokenKind::kIdentifier) {
            locals.insert(toks[j].text);
          }
        }
        continue;
      }
    }
    // `Type name`, `Type& name`, `Type* name` followed by a declarator
    // terminator. The type may be qualified (a::b) — adjacency of two
    // plain identifiers is what signals a declaration.
    std::size_t j = next_code(toks, i);
    while (j != std::string::npos && j < end &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "&&")) {
      j = next_code(toks, j);
    }
    if (j == std::string::npos || j >= end ||
        toks[j].kind != TokenKind::kIdentifier) {
      continue;
    }
    const std::size_t after = next_code(toks, j);
    if (after == std::string::npos || after >= end) continue;
    const std::string& term = toks[after].text;
    if (term == "=" || term == "{" || term == ";" || term == "(" ||
        term == ":" || term == ",") {
      // Exclude `a . b` style chains: the first identifier must not be
      // preceded by a member/scope operator.
      const std::size_t p = prev_code(toks, i);
      const bool chained = p != std::string::npos &&
                           (toks[p].text == "." || toks[p].text == "->");
      if (!chained) locals.insert(toks[j].text);
    }
  }
}

/// Parses the lambda arguments of a parallel call whose argument list is
/// toks(open..close). Returns every lambda found at the top level.
std::vector<LambdaBody> find_lambdas(const std::vector<Token>& toks,
                                     std::size_t open, std::size_t close) {
  std::vector<LambdaBody> out;
  for (std::size_t i = open + 1; i < close; ++i) {
    if (toks[i].text != "[" || toks[i].kind != TokenKind::kPunct) continue;
    const std::size_t p = prev_code(toks, i);
    const bool intro = p != std::string::npos &&
                       (toks[p].text == "(" || toks[p].text == ",");
    if (!intro) continue;
    // Skip the capture list.
    std::size_t j = i;
    int depth = 0;
    for (; j < close; ++j) {
      if (toks[j].text == "[") ++depth;
      if (toks[j].text == "]" && --depth == 0) break;
    }
    if (j >= close) break;
    LambdaBody lb;
    std::size_t k = next_code(toks, j);
    if (token_is(toks, k, "(")) {
      const std::size_t params_close = match_paren(toks, k);
      if (params_close == std::string::npos) break;
      // Parameter names: last identifier before each `,` or the `)`.
      std::size_t last_ident = std::string::npos;
      for (std::size_t q = k + 1; q <= params_close; ++q) {
        if (toks[q].kind == TokenKind::kIdentifier) last_ident = q;
        if ((toks[q].text == "," || q == params_close) &&
            last_ident != std::string::npos) {
          lb.locals.insert(toks[last_ident].text);
          last_ident = std::string::npos;
        }
      }
      k = next_code(toks, params_close);
    }
    // Skip specifiers (mutable, noexcept, -> T) until the body opens.
    while (k != std::string::npos && k < close && toks[k].text != "{") {
      k = next_code(toks, k);
    }
    if (k == std::string::npos || k >= close) break;
    lb.body_open = k;
    lb.body_close = match_brace(toks, k);
    if (lb.body_close == std::string::npos) break;
    collect_locals(toks, lb.body_open + 1, lb.body_close, lb.locals);
    const std::size_t resume = lb.body_close;
    out.push_back(std::move(lb));
    i = resume;
  }
  return out;
}

void check_body(const SourceFile& f, const std::vector<Token>& toks,
                const LambdaBody& lb, Sink& sink) {
  const auto local = [&](const std::string& name) {
    return lb.locals.count(name) != 0;
  };
  for (std::size_t i = lb.body_open + 1; i < lb.body_close; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) {
      // ++x / --x on a shared name at a statement start.
      if (t.kind == TokenKind::kPunct && (t.text == "++" || t.text == "--")) {
        const std::size_t p = prev_code(toks, i);
        const bool at_start =
            p == std::string::npos || p <= lb.body_open || is_stmt_boundary(toks[p]);
        const std::size_t x = next_code(toks, i);
        if (at_start && x != std::string::npos && x < lb.body_close &&
            toks[x].kind == TokenKind::kIdentifier && !local(toks[x].text) &&
            !token_is(toks, next_code(toks, x), "[")) {
          sink.report(f, toks[x].line, "par-shared-write", toks[x].text,
                      "'" + toks[x].text +
                          "' is incremented inside a parallel body but is "
                          "not body-local; chunk scheduling would race on "
                          "it — write to an i-indexed slot instead");
        }
      }
      continue;
    }

    // Container growth on a non-local receiver.
    if (std::any_of(std::begin(kGrowers), std::end(kGrowers),
                    [&](const char* g) { return t.text == g; })) {
      const std::size_t dot = prev_code(toks, i);
      if (dot != std::string::npos &&
          (toks[dot].text == "." || toks[dot].text == "->") &&
          token_is(toks, next_code(toks, i), "(")) {
        const std::size_t recv = prev_code(toks, dot);
        const bool shared_recv =
            recv == std::string::npos ||
            toks[recv].kind != TokenKind::kIdentifier ||
            !local(toks[recv].text);
        if (shared_recv) {
          const std::string who =
              (recv != std::string::npos &&
               toks[recv].kind == TokenKind::kIdentifier)
                  ? toks[recv].text
                  : t.text;
          sink.report(f, t.line, "par-container-growth", who,
                      "'" + t.text +
                          "' grows a container that is not body-local "
                          "inside a parallel body; element order would "
                          "depend on chunk scheduling — preallocate and "
                          "write per-index slots, or use the ordered "
                          "combine of parallel_reduce");
        }
      }
      continue;
    }

    // Rng use without a derived per-index stream.
    if (rng_like(t.text) && !local(t.text)) {
      const std::size_t dot = next_code(toks, i);
      bool derives = false;
      if (dot != std::string::npos && dot < lb.body_close &&
          (toks[dot].text == "." || toks[dot].text == "->")) {
        const std::size_t m = next_code(toks, dot);
        derives = m != std::string::npos && m < lb.body_close &&
                  is_stream_deriver(toks[m].text);
      }
      if (!derives) {
        // `derive_stream_seed(seed, rng_salt)` style use within the same
        // statement also derives a fresh stream.
        for (std::size_t j = i; j > lb.body_open; --j) {
          if (toks[j].text == ";" || toks[j].text == "{") break;
          if (is_stream_deriver(toks[j].text)) derives = true;
        }
      }
      if (!derives) {
        sink.report(f, t.line, "par-rng-stream", t.text,
                    "'" + t.text +
                        "' is used inside a parallel body without deriving "
                        "a per-index stream; call split(i) / fork() / "
                        "derive_stream_seed so draws are independent of "
                        "chunk placement");
      }
      continue;
    }

    // Bare assignment to a shared name at a statement start.
    const std::size_t p = prev_code(toks, i);
    const bool at_start =
        p == std::string::npos || p <= lb.body_open || is_stmt_boundary(toks[p]);
    if (!at_start) continue;
    // Walk the postfix chain: name (.member | ->member | ::member)*.
    std::size_t end_of_chain = i;
    bool subscripted = false;
    std::size_t j = next_code(toks, i);
    while (j != std::string::npos && j < lb.body_close) {
      if (toks[j].text == "[") {
        subscripted = true;
        std::size_t depth = 0;
        while (j < lb.body_close) {
          if (toks[j].text == "[") ++depth;
          if (toks[j].text == "]" && --depth == 0) break;
          ++j;
        }
        j = next_code(toks, j);
        continue;
      }
      if (toks[j].text == "." || toks[j].text == "->" ||
          toks[j].text == "::") {
        j = next_code(toks, j);  // member name
        if (j == std::string::npos) break;
        end_of_chain = j;
        j = next_code(toks, j);
        continue;
      }
      break;
    }
    (void)end_of_chain;
    if (j == std::string::npos || j >= lb.body_close) continue;
    if (is_assign_op(toks[j].text) && !subscripted && !local(t.text)) {
      sink.report(f, t.line, "par-shared-write", t.text,
                  "'" + t.text +
                      "' is assigned inside a parallel body but is not "
                      "body-local and not index-subscripted; concurrent "
                      "chunks would race — write to a disjoint i-indexed "
                      "slot instead");
    }
    if ((toks[j].text == "++" || toks[j].text == "--") && !subscripted &&
        !local(t.text)) {
      sink.report(f, t.line, "par-shared-write", t.text,
                  "'" + t.text +
                      "' is incremented inside a parallel body but is not "
                      "body-local; chunk scheduling would race on it — "
                      "write to an i-indexed slot instead");
    }
  }
}

class DeterminismPass final : public Pass {
 public:
  const char* name() const override { return "determinism"; }

  std::vector<RuleInfo> rules() const override {
    return {
        {"par-shared-write",
         "parallel bodies must not mutate shared state without an index"},
        {"par-container-growth",
         "parallel bodies must not grow shared containers"},
        {"par-rng-stream",
         "parallel bodies must derive per-index Rng streams"},
    };
  }

  void run_file(const SourceFile& f, const ScopeTree& scope,
                Sink& sink) const override {
    (void)scope;
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier ||
          (toks[i].text != "parallel_for" &&
           toks[i].text != "parallel_reduce")) {
        continue;
      }
      // Skip the definitions/declarations in thread_pool.hpp: there the
      // name is preceded by its return type (an identifier, `>`, `&`, or
      // `*`); at a call site it follows a statement boundary, `return`,
      // `::`, or an argument separator.
      const std::size_t p = prev_code(toks, i);
      if (p != std::string::npos &&
          ((toks[p].kind == TokenKind::kIdentifier &&
            toks[p].text != "return" && toks[p].text != "co_return") ||
           toks[p].text == ">" || toks[p].text == "&" ||
           toks[p].text == "*")) {
        continue;
      }
      const std::size_t open = next_code(toks, i);
      if (!token_is(toks, open, "(")) continue;
      const std::size_t close = match_paren(toks, open);
      if (close == std::string::npos) continue;
      for (const LambdaBody& lb : find_lambdas(toks, open, close)) {
        check_body(f, toks, lb, sink);
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_determinism_pass() {
  return std::make_unique<DeterminismPass>();
}

}  // namespace densevlc::analyze
