// Dead-API pass: cross-TU liveness over the project symbol index.
//
//   dead-public-api  a free function declared in a src/ header is used
//                    nowhere outside its own header/source pair — the
//                    symbol's only occurrences are its declaration (and,
//                    for non-inline functions, the one definition in the
//                    paired .cpp). "Used by its own header" (an inline
//                    helper another inline function calls) clears it, as
//                    does any mention anywhere else in the analyzed tree,
//                    so run the pass over tests/ too or a test-only API
//                    will look dead.
//   api-pair-drift   a `foo_into(out, ...)` overload whose value wrapper
//                    `foo(...)` exists but no longer takes one fewer
//                    parameter — the pair's signatures drifted apart, so
//                    the wrapper is probably not forwarding anymore.
//
// Both rules are name-based and conservative: overloads share liveness,
// all-caps (macro-like) names and operator/main entry points are
// exempt, and any count mismatch the pairing cannot explain stays
// silent rather than guessing.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>

#include "analysis.hpp"

namespace densevlc::analyze {
namespace {

bool macro_like(const std::string& name) {
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return std::isupper(c) != 0 || std::isdigit(c) != 0 || c == '_';
  });
}

bool exempt_name(const std::string& name) {
  return name == "main" || name.rfind("operator", 0) == 0 ||
         macro_like(name) || name.empty() || name[0] == '_';
}

std::string stem_of(const std::string& rel) {
  const std::size_t dot = rel.rfind('.');
  return dot == std::string::npos ? rel : rel.substr(0, dot);
}

class DeadApiPass final : public Pass {
 public:
  const char* name() const override { return "dead-api"; }

  std::vector<RuleInfo> rules() const override {
    return {
        {"dead-public-api",
         "src/ header functions must be used outside their own TU"},
        {"api-pair-drift",
         "*_into overloads and their value wrappers must keep paired "
         "signatures"},
    };
  }

  void run_project(const AnalysisContext& ctx, Sink& sink) const override {
    check_dead(ctx, sink);
    check_pair_drift(ctx, sink);
  }

 private:
  void check_dead(const AnalysisContext& ctx, Sink& sink) const {
    for (const FileSummary& f : ctx.index.files) {
      if (!f.is_header || f.rel.rfind("src/", 0) != 0) continue;
      const std::string stem = stem_of(f.rel);
      std::set<std::string> counted;
      for (const SymbolDecl& d : f.symbols) {
        if (exempt_name(d.name)) continue;
        if (ctx.index.external_uses(d.name, f.rel) != 0) continue;
        if (!counted.insert(d.name).second) continue;
        // Count this name's occurrences inside the header/source pair.
        std::size_t uses_in_pair = 0;
        std::size_t decl_sites = 0;
        bool any_declaration_only = false;
        for (const SymbolDecl& d2 : f.symbols) {
          if (d2.name != d.name) continue;
          ++decl_sites;
          if (!d2.is_definition) any_declaration_only = true;
        }
        for (const FileSummary& g : ctx.index.files) {
          if (stem_of(g.rel) != stem) continue;
          const auto it = g.ident_uses.find(d.name);
          if (it != g.ident_uses.end()) uses_in_pair += it->second;
        }
        // Expected occurrences when truly dead: every decl site, plus
        // one out-of-line definition if any site was declaration-only.
        const std::size_t expected =
            decl_sites + (any_declaration_only ? 1 : 0);
        if (uses_in_pair > expected) continue;  // used inside its own pair
        sink.report(f, d.line, "dead-public-api", d.name,
                    "'" + d.name +
                        "' is declared in a src/ header but never used "
                        "outside its own translation unit; delete it or "
                        "move it into the .cpp");
      }
    }
  }

  void check_pair_drift(const AnalysisContext& ctx, Sink& sink) const {
    // Wrapper param counts, by name, across every header.
    std::map<std::string, std::set<std::size_t>> wrapper_counts;
    for (const FileSummary& f : ctx.index.files) {
      for (const SymbolDecl& d : f.symbols) {
        wrapper_counts[d.name].insert(d.param_count);
      }
    }
    std::set<std::string> reported;
    for (const FileSummary& f : ctx.index.files) {
      for (const SymbolDecl& d : f.into_decls) {
        static const std::string kSuffix = "_into";
        if (d.name.size() <= kSuffix.size()) continue;
        const std::string wrapper =
            d.name.substr(0, d.name.size() - kSuffix.size());
        const auto it = wrapper_counts.find(wrapper);
        if (it == wrapper_counts.end()) continue;  // api-into-wrapper's job
        // The `_into` form carries the output buffer (and possibly a
        // scratch) as extra parameters: a healthy wrapper takes one or
        // two fewer. Drift = no wrapper overload within that window.
        bool paired = false;
        for (std::size_t w : it->second) {
          if (w + 1 == d.param_count || w + 2 == d.param_count ||
              w == d.param_count) {
            paired = true;
          }
        }
        if (paired) continue;
        if (!reported.insert(d.name).second) continue;
        sink.report(f, d.line, "api-pair-drift", d.name,
                    "'" + d.name + "' takes " +
                        std::to_string(d.param_count) +
                        " parameter(s) but no overload of its value "
                        "wrapper '" + wrapper +
                        "' takes a compatible count; the pair's "
                        "signatures have drifted apart");
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_deadapi_pass() {
  return std::make_unique<DeadApiPass>();
}

}  // namespace densevlc::analyze
