// Shared lexer and per-file index for dvlc_analyze.
//
// Every pass works off the same tokenization, so the lexer is the one
// place that has to get C++ lexical structure right:
//
//   - string/char literal *contents* are swallowed (kept only for
//     #include targets), so nothing inside them can match a rule;
//   - raw string literals (R"( ... )", including LR/uR/UR/u8R prefixes
//     and custom delimiters) are one opaque token attributed to their
//     first line;
//   - digit separators (1'000'000) stay inside one pp-number token and
//     never open a phantom char literal;
//   - backslash line continuations are spliced before tokenization (with
//     line numbers preserved), so a continued `//` comment really does
//     swallow its next line and a spliced identifier is one token;
//   - comments are kept as tokens — waivers live in them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace densevlc::analyze {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,   // string or char literal; text = contents (delimiters stripped)
  kPunct,
  kComment,  // line or block comment, text without delimiters
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  std::size_t line = 0;  // 1-based line where the token starts
};

/// Tokenizes C++ source per the contract above.
std::vector<Token> tokenize(const std::string& src);

// --- waivers ---------------------------------------------------------------

/// Lines waived per rule. A waiver covers its own line and the line
/// directly below it.
using WaiverMap = std::map<std::string, std::set<std::size_t>>;

/// A malformed waiver comment (missing the `: reason` tail).
struct WaiverProblem {
  std::size_t line = 0;
  std::string detail;
};

/// Collects waivers from comment tokens only. The canonical syntax is
///   // DVLC_LINT_WAIVE(<rule>): <reason>
/// and the reason is mandatory; the legacy `// dvlc-lint: allow(<rule>)`
/// form is still honoured. Malformed canonical waivers are appended to
/// `problems`.
WaiverMap collect_waivers(const std::vector<Token>& tokens,
                          std::vector<WaiverProblem>& problems);

// --- per-file index --------------------------------------------------------

/// A quoted #include directive.
struct Include {
  std::string target;    // path between the quotes, verbatim
  std::size_t line = 0;
};

/// One scanned file plus everything the passes need to know about it.
struct SourceFile {
  std::filesystem::path abs_path;
  std::string rel;       // path relative to the analysis root (generic form)
  std::string module;    // "common", "phy", ..., "bench"; "" when unmapped
  bool is_header = false;
  std::vector<Token> tokens;
  std::vector<Include> includes;  // quoted includes only
  WaiverMap waivers;
  std::vector<WaiverProblem> waiver_problems;
};

/// Loads and indexes one file. Returns false when the file is unreadable.
/// When `contents_out` is non-null the raw file bytes are copied there
/// (the incremental cache hashes them).
[[nodiscard]] bool load_source_file(const std::filesystem::path& path,
                                    const std::filesystem::path& root,
                                    SourceFile& out,
                                    std::string* contents_out = nullptr);

/// Indexes already-loaded source text (tokenizes, collects waivers and
/// includes). Shared by load_source_file and the cache-miss path.
void index_source(const std::string& text, const std::filesystem::path& path,
                  const std::filesystem::path& root, SourceFile& out);

/// Maps a root-relative path to its layering module: src/<m>/... -> m,
/// bench/... -> "bench", tools/... -> "tools", tests/... -> "tests",
/// anything else -> "".
std::string module_of(const std::string& rel);

// --- small token helpers shared by the passes ------------------------------

inline bool is_code(const Token& t) { return t.kind != TokenKind::kComment; }

/// Index of the previous non-comment token, or npos.
std::size_t prev_code(const std::vector<Token>& toks, std::size_t i);

/// Index of the next non-comment token, or npos.
std::size_t next_code(const std::vector<Token>& toks, std::size_t i);

bool token_is(const std::vector<Token>& toks, std::size_t i, const char* text);

bool ends_with(const std::string& name, const std::string& suffix);

/// True when toks[i] begins a declaration: preceded by nothing, a
/// statement/body boundary, an access specifier colon, or a specifier
/// keyword that itself begins one.
bool at_decl_start(const std::vector<Token>& toks, std::size_t i);

/// Given toks[open] == "(", returns the index of the matching ")" (or
/// npos). Handles nesting; `>>` counts as two in angle contexts only, so
/// this is plain paren matching.
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open);

/// Given toks[open] == "{", returns the index of the matching "}".
std::size_t match_brace(const std::vector<Token>& toks, std::size_t open);

}  // namespace densevlc::analyze
