// Conventions pass: the original repo-invariant rules, unchanged IDs.
//
//   units          public numeric fields in headers whose name describes a
//                  physical quantity must carry a unit suffix.
//   nodiscard      bool/optional-returning save/load/parse/... APIs in
//                  headers must be [[nodiscard]].
//   banned         rand() and argless assert(false)/assert(0).
//   raw-double     physics-core parameters/returns with a dimensional unit
//                  suffix must use the typed aliases (common/quantity.hpp).
//   naked-literal  physics-core `double x_w = 0.45;` must use unit literals
//                  or units:: helpers.
//   hot-loop-alloc growing-vector member calls in `// DVLC_HOT` files.
//   unchecked-io   discarded stream write/flush/close results and
//                  statement-position std::rename/std::remove in
//                  src/ + bench/ (durable artifacts must not fail
//                  silently).
//   simd-raw-intrinsic
//                  raw vector intrinsics (AVX/SSE `_mm*`, `__m256i`-style
//                  types, NEON `vld1q_*`/`vqtbl1q_*`/element-typed `v*q_`
//                  calls) anywhere but common/simd.hpp — every other TU
//                  goes through the portable wrapper so the scalar
//                  fallback stays bit-identical and testable.
#include <algorithm>
#include <cctype>
#include <sstream>

#include "analysis.hpp"

namespace densevlc::analyze {
namespace {

// Quantity stems that demand a unit suffix when they name a numeric field.
const char* const kQuantityStems[] = {
    "time",     "delay",      "duration",    "interval",  "period",
    "power",    "energy",     "illuminance", "luminous",  "throughput",
    "bitrate",  "datarate",   "bandwidth",   "frequency", "freq",
    "distance", "length",     "height",      "width_",    "area",
    "angle",    "swing",      "current",     "voltage",   "noise",
    "latency",  "timeout",    "offset",      "drift",     "resistance",
};

// Accepted unit suffixes (extend as new quantities appear).
const char* const kUnitSuffixes[] = {
    "_s",    "_ms",   "_us",   "_ns",   "_hz",   "_khz", "_mhz", "_ghz",
    "_bps",  "_kbps", "_mbps", "_w",    "_mw",   "_lux", "_lm",  "_m",
    "_m2",   "_mm",   "_mm2",  "_cm",   "_rad",  "_deg", "_db",  "_dbm",
    "_a",    "_ma",   "_a2",   "_v",    "_j",    "_ohm", "_pct", "_ppm",
    "_per_w", "_per_hz", "_per_s", "_per_m",
};

// Suffixes naming dimensionless ratios/angles: these stay plain double even
// at typed physics boundaries (angles and dB have no Quantity alias).
const char* const kDimensionlessSuffixes[] = {
    "_rad", "_deg", "_db", "_dbm", "_pct", "_ppm",
};

bool ends_with_unit(std::string name) {
  // Private members carry a trailing underscore (`power_used_w_`).
  if (!name.empty() && name.back() == '_') name.pop_back();
  return std::any_of(std::begin(kUnitSuffixes), std::end(kUnitSuffixes),
                     [&](const char* s) { return ends_with(name, s); });
}

/// True when the name carries a unit suffix naming a *dimensional*
/// quantity — the ones common/quantity.hpp has a typed alias for.
bool has_dimensional_suffix(std::string name) {
  if (!name.empty() && name.back() == '_') name.pop_back();
  if (std::any_of(std::begin(kDimensionlessSuffixes),
                  std::end(kDimensionlessSuffixes),
                  [&](const char* s) { return ends_with(name, s); })) {
    return false;
  }
  return ends_with_unit(name);
}

bool names_quantity(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return std::any_of(std::begin(kQuantityStems), std::end(kQuantityStems),
                     [&](const char* s) {
                       return lower.find(s) != std::string::npos;
                     });
}

/// True for files whose public surface must use typed quantities.
bool in_physics_core(const std::string& rel) {
  for (const char* dir : {"optics/", "channel/", "illum/", "alloc/"}) {
    if (rel.find(std::string("/") + dir) != std::string::npos ||
        rel.rfind(dir, 0) == 0) {
      return true;
    }
  }
  return ends_with(rel, "phy/frontend.hpp") || ends_with(rel, "core/trace.hpp");
}

void check_banned(const SourceFile& f, Sink& sink) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text == "rand") {
      const std::size_t p = prev_code(toks, i);
      const bool qualified =
          p != std::string::npos &&
          (toks[p].text == "::" || toks[p].text == "." || toks[p].text == "->");
      if (!qualified && token_is(toks, next_code(toks, i), "(")) {
        sink.report(f, t.line, "banned", "rand",
                    "rand() is not reproducible; use common/rng.hpp");
      }
    }
    if (t.text == "assert") {
      const std::size_t open = next_code(toks, i);
      if (!token_is(toks, open, "(")) continue;
      const std::size_t arg = next_code(toks, open);
      if (arg == std::string::npos) continue;
      const bool bare = toks[arg].text == "false" || toks[arg].text == "0";
      if (bare && token_is(toks, next_code(toks, arg), ")")) {
        sink.report(f, t.line, "banned", "assert",
                    "argless assert(false); use DVLC_ASSERT(cond, \"message\")");
      }
    }
  }
}

void check_units(const SourceFile& f, Sink& sink) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier ||
        (t.text != "double" && t.text != "float")) {
      continue;
    }
    if (!at_decl_start(toks, i)) continue;
    const std::size_t name_idx = next_code(toks, i);
    if (name_idx == std::string::npos ||
        toks[name_idx].kind != TokenKind::kIdentifier) {
      continue;
    }
    const std::size_t after = next_code(toks, name_idx);
    if (after == std::string::npos) continue;
    const std::string& punct = toks[after].text;
    if (punct != "=" && punct != "{" && punct != ";") continue;  // not a field
    const std::string& name = toks[name_idx].text;
    if (names_quantity(name) && !ends_with_unit(name)) {
      sink.report(f, toks[name_idx].line, "units", name,
                  "numeric field '" + name +
                      "' names a physical quantity but has no unit suffix "
                      "(_s, _w, _bps, _lux, ...)");
    }
  }
}

bool is_error_api_name(const std::string& name) {
  static const char* const kPrefixes[] = {"save", "load", "write",
                                          "read", "parse", "try"};
  return std::any_of(std::begin(kPrefixes), std::end(kPrefixes),
                     [&](const char* p) { return name.rfind(p, 0) == 0; });
}

void check_nodiscard(const SourceFile& f, Sink& sink) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    std::size_t name_idx = std::string::npos;
    if (t.text == "bool" && at_decl_start(toks, i)) {
      name_idx = next_code(toks, i);
    } else if (t.text == "std" && at_decl_start(toks, i)) {
      // std :: optional < ... > name (
      std::size_t j = next_code(toks, i);
      if (!token_is(toks, j, "::")) continue;
      j = next_code(toks, j);
      if (j == std::string::npos || toks[j].text != "optional") continue;
      j = next_code(toks, j);
      if (!token_is(toks, j, "<")) continue;
      int depth = 1;
      while (depth > 0) {
        j = next_code(toks, j);
        if (j == std::string::npos) break;
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">") --depth;
      }
      if (j == std::string::npos) continue;
      name_idx = next_code(toks, j);
    } else {
      continue;
    }
    if (name_idx == std::string::npos ||
        toks[name_idx].kind != TokenKind::kIdentifier ||
        !is_error_api_name(toks[name_idx].text) ||
        !token_is(toks, next_code(toks, name_idx), "(")) {
      continue;
    }
    // Look for [[nodiscard]] in the handful of tokens before the type.
    bool marked = false;
    std::size_t back = i;
    for (int k = 0; k < 6 && back > 0; ++k) {
      back = prev_code(toks, back);
      if (back == std::string::npos) break;
      if (toks[back].text == "nodiscard") {
        marked = true;
        break;
      }
      if (toks[back].text == ";" || toks[back].text == "}") break;
    }
    if (!marked) {
      sink.report(f, toks[name_idx].line, "nodiscard", toks[name_idx].text,
                  "error-returning API '" + toks[name_idx].text +
                      "' must be [[nodiscard]]");
    }
  }
}

void check_raw_double(const SourceFile& f, Sink& sink) {
  const auto& toks = f.tokens;
  int paren_depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "(") ++paren_depth;
      if (t.text == ")") paren_depth = std::max(0, paren_depth - 1);
      continue;
    }
    if (t.kind != TokenKind::kIdentifier || t.text != "double") continue;
    const std::size_t name_idx = next_code(toks, i);
    if (name_idx == std::string::npos ||
        toks[name_idx].kind != TokenKind::kIdentifier) {
      continue;
    }
    const std::string& name = toks[name_idx].text;
    if (!has_dimensional_suffix(name)) continue;
    if (paren_depth > 0) {
      // A unit-suffixed double parameter: must be a Quantity alias.
      sink.report(f, toks[name_idx].line, "raw-double", name,
                  "parameter '" + name +
                      "' passes a physical quantity as bare double; use the "
                      "typed alias from common/quantity.hpp (Watts, Amperes, "
                      "Meters, ...)");
      continue;
    }
    // A unit-suffixed function returning double: `double power_w(...)`.
    if (at_decl_start(toks, i) &&
        token_is(toks, next_code(toks, name_idx), "(")) {
      sink.report(f, toks[name_idx].line, "raw-double", name,
                  "function '" + name +
                      "' returns a physical quantity as bare double; return "
                      "the typed alias from common/quantity.hpp instead");
    }
  }
}

bool literal_is_zero(const std::string& text) {
  std::istringstream in{text};
  double v = 0.0;
  in >> v;
  return v == 0.0;
}

void check_naked_literal(const SourceFile& f, Sink& sink) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier || t.text != "double") continue;
    if (!at_decl_start(toks, i)) continue;
    const std::size_t name_idx = next_code(toks, i);
    if (name_idx == std::string::npos ||
        toks[name_idx].kind != TokenKind::kIdentifier ||
        !has_dimensional_suffix(toks[name_idx].text)) {
      continue;
    }
    const std::size_t eq = next_code(toks, name_idx);
    if (!token_is(toks, eq, "=")) continue;
    const std::size_t lit = next_code(toks, eq);
    if (lit == std::string::npos || toks[lit].kind != TokenKind::kNumber) {
      continue;
    }
    if (!token_is(toks, next_code(toks, lit), ";")) continue;
    const std::string& num = toks[lit].text;
    // Unit literals (`450.0_mA`) carry the unit in the token; zero needs
    // no unit.
    if (num.find('_') != std::string::npos || literal_is_zero(num)) continue;
    sink.report(f, toks[lit].line, "naked-literal", toks[name_idx].text,
                "unit-suffixed constant '" + toks[name_idx].text +
                    "' is initialized from a naked literal; use a unit "
                    "literal (450.0_mA) or a units:: helper so the unit is "
                    "visible");
  }
}

/// True when the file opts into the zero-allocation contract: a comment
/// on line 1 that starts with the DVLC_HOT marker. (Prose elsewhere may
/// *mention* the marker — common/arena.hpp does — without opting in.)
bool has_hot_marker(const std::vector<Token>& toks) {
  for (const Token& t : toks) {
    if (t.line > 1) break;
    if (t.kind != TokenKind::kComment) continue;
    const std::size_t at = t.text.find_first_not_of(" \t");
    if (at != std::string::npos && t.text.compare(at, 8, "DVLC_HOT") == 0) {
      return true;
    }
  }
  return false;
}

void check_hot_loop_alloc(const SourceFile& f, Sink& sink) {
  static const char* const kGrowers[] = {"push_back", "emplace_back",
                                         "resize"};
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (std::none_of(std::begin(kGrowers), std::end(kGrowers),
                     [&](const char* g) { return t.text == g; })) {
      continue;
    }
    // Only member calls (`buf.resize(...)`): a free function named
    // arena_resize is one identifier token and never matches.
    const std::size_t p = prev_code(toks, i);
    const bool member_call =
        p != std::string::npos &&
        (toks[p].text == "." || toks[p].text == "->") &&
        token_is(toks, next_code(toks, i), "(");
    if (!member_call) continue;
    sink.report(f, t.line, "hot-loop-alloc", t.text,
                "'" + t.text +
                    "' grows a container in a DVLC_HOT file; stage through "
                    "arena_resize/arena_clear (common/arena.hpp) or waive an "
                    "intentional cold path");
  }
}

/// Durable-artifact code lives here; discarded I/O results in these
/// trees mean a crash-safety bug (a journal append or checkpoint rename
/// that failed without anyone noticing).
bool in_io_scope(const std::string& rel) {
  for (const char* dir : {"src/", "bench/"}) {
    if (rel.rfind(dir, 0) == 0 ||
        rel.find(std::string("/") + dir) != std::string::npos) {
      return true;
    }
  }
  return false;
}

void check_unchecked_io(const SourceFile& f, Sink& sink) {
  static const char* const kIoMembers[] = {"write", "flush", "close"};
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;

    // `std::rename(...)` / `std::remove(...)` as a bare statement: both
    // report failure only through the return value, so a discarded call
    // is an invisible lost checkpoint. `(void)std::remove(...)` is the
    // explicit opt-out (the preceding `)` breaks statement position).
    if (t.text == "rename" || t.text == "remove") {
      const std::size_t colons = prev_code(toks, i);
      if (!token_is(toks, colons, "::")) continue;
      const std::size_t ns = prev_code(toks, colons);
      if (ns == std::string::npos || toks[ns].text != "std") continue;
      if (!token_is(toks, next_code(toks, i), "(")) continue;
      const std::size_t before = prev_code(toks, ns);
      if (before != std::string::npos && toks[before].text != ";" &&
          toks[before].text != "{" && toks[before].text != "}") {
        continue;
      }
      sink.report(f, t.line, "unchecked-io", "std::" + t.text,
                  "'std::" + t.text +
                      "' result is discarded; check it (or cast to void "
                      "for a best-effort cleanup path)");
      continue;
    }

    // `obj.write(...);` / `obj->flush();` / `obj.close();` as a bare
    // statement. Streams report errors through their state, so the call
    // is fine when the object is consulted again later in the file
    // (`out.write(...); return static_cast<bool>(out);`) — flagged only
    // when nothing ever looks at the object again.
    if (std::none_of(std::begin(kIoMembers), std::end(kIoMembers),
                     [&](const char* m) { return t.text == m; })) {
      continue;
    }
    const std::size_t access = prev_code(toks, i);
    if (access == std::string::npos ||
        (toks[access].text != "." && toks[access].text != "->")) {
      continue;
    }
    if (!token_is(toks, next_code(toks, i), "(")) continue;
    const std::size_t obj = prev_code(toks, access);
    if (obj == std::string::npos ||
        toks[obj].kind != TokenKind::kIdentifier) {
      continue;
    }
    const std::size_t before = prev_code(toks, obj);
    if (before != std::string::npos && toks[before].text != ";" &&
        toks[before].text != "{" && toks[before].text != "}") {
      continue;
    }
    bool object_used_later = false;
    for (std::size_t j = i + 1; j < toks.size() && !object_used_later; ++j) {
      object_used_later = toks[j].kind == TokenKind::kIdentifier &&
                          toks[j].text == toks[obj].text;
    }
    if (object_used_later) continue;
    sink.report(f, t.line, "unchecked-io", t.text,
                "result of '" + toks[obj].text + "." + t.text +
                    "' is discarded and the stream is never checked "
                    "afterwards; test the return value or the stream state");
  }
}

/// The one file allowed to spell raw intrinsics: the portable wrapper
/// (its force-scalar switch lives in the paired .cpp, which carries no
/// intrinsics but is exempt for symmetry).
bool is_simd_wrapper(const std::string& rel) {
  return ends_with(rel, "common/simd.hpp") || ends_with(rel, "common/simd.cpp");
}

/// NEON intrinsics end in an element-type suffix (`vld1q_u8`,
/// `vaddvq_u16`, `vdupq_n_u8`); matching it keeps ordinary identifiers
/// that merely start with 'v' out of the rule.
bool has_neon_element_suffix(const std::string& name) {
  static const char* const kElem[] = {"_u8",  "_s8",  "_u16", "_s16",
                                      "_u32", "_s32", "_u64", "_s64",
                                      "_f32", "_f64", "_p8",  "_p16"};
  return std::any_of(std::begin(kElem), std::end(kElem),
                     [&](const char* s) { return ends_with(name, s); });
}

bool is_raw_intrinsic(const std::string& name) {
  // x86: _mm_/_mm256_/_mm512_ calls and the __m128/__m256/__m512 types.
  // The intrinsic prefix always carries a second underscore after the
  // width (`_mm_`, `_mm256_`); unit suffixes like `_mm` / `_mm2`
  // (millimeters) do not and must not match.
  if (name.rfind("_mm", 0) == 0 && name.find('_', 3) != std::string::npos) {
    return true;
  }
  if (name.rfind("__m", 0) == 0 && name.size() > 3 &&
      std::isdigit(static_cast<unsigned char>(name[3])) != 0) {
    return true;
  }
  // NEON: 128-bit ops (`v...q_<elem>`) and the <arm_neon.h> vector types
  // (`uint8x16_t`, `float64x2_t`).
  if (name.size() > 1 && name[0] == 'v' &&
      name.find("q_") != std::string::npos &&
      has_neon_element_suffix(name)) {
    return true;
  }
  if (ends_with(name, "x16_t") || ends_with(name, "x8_t") ||
      ends_with(name, "x4_t") || ends_with(name, "x2_t")) {
    for (const char* p : {"uint", "int", "float", "poly"}) {
      if (name.rfind(p, 0) == 0) return true;
    }
  }
  return false;
}

void check_simd_raw(const SourceFile& f, Sink& sink) {
  for (const Token& t : f.tokens) {
    if (t.kind != TokenKind::kIdentifier) continue;
    if (!is_raw_intrinsic(t.text)) continue;
    sink.report(f, t.line, "simd-raw-intrinsic", t.text,
                "raw vector intrinsic '" + t.text +
                    "' outside common/simd.hpp; add the operation to the "
                    "portable wrapper (src/common/simd.hpp) so every kernel "
                    "keeps its bit-identical scalar fallback");
  }
}

class ConventionsPass final : public Pass {
 public:
  const char* name() const override { return "conventions"; }

  std::vector<RuleInfo> rules() const override {
    return {
        {"units", "quantity-named numeric fields need a unit suffix"},
        {"nodiscard", "error-returning APIs must be [[nodiscard]]"},
        {"banned", "rand() and argless assert(false) are forbidden"},
        {"raw-double",
         "physics-core boundaries use typed quantities, not bare double"},
        {"naked-literal",
         "physics-core constants use unit literals, not naked numbers"},
        {"hot-loop-alloc", "DVLC_HOT files must not grow containers"},
        {"unchecked-io",
         "stream write/flush/close and std::rename/std::remove results "
         "must be checked in src/ and bench/"},
        {"simd-raw-intrinsic",
         "raw vector intrinsics are confined to common/simd.hpp"},
        {"waiver-syntax", "DVLC_LINT_WAIVE needs a rule and a ': reason'"},
    };
  }

  void run_file(const SourceFile& f, const ScopeTree& scope,
                Sink& sink) const override {
    (void)scope;
    check_banned(f, sink);
    if (!is_simd_wrapper(f.rel)) check_simd_raw(f, sink);
    if (in_io_scope(f.rel)) check_unchecked_io(f, sink);
    if (has_hot_marker(f.tokens)) check_hot_loop_alloc(f, sink);
    if (f.is_header) {
      check_units(f, sink);
      check_nodiscard(f, sink);
      if (in_physics_core(f.rel)) check_raw_double(f, sink);
    } else if (in_physics_core(f.rel)) {
      check_naked_literal(f, sink);
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_conventions_pass() {
  return std::make_unique<ConventionsPass>();
}

}  // namespace densevlc::analyze
