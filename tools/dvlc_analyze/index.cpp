#include "index.hpp"

#include <algorithm>

namespace densevlc::analyze {

namespace {

bool is_keywordish(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "static_assert" || s == "throw" ||
         s == "new" || s == "delete" || s == "case" || s == "co_return" ||
         s == "noexcept" || s == "defined" || s == "assert" ||
         s == "const" || s == "constexpr" || s == "operator";
}

/// True when toks[i] (an identifier followed by "(") looks like a
/// function *declaration head*: preceded by a type-ish token (identifier,
/// `>`, `&`, `*`) rather than by an expression/member context.
bool is_decl_head(const std::vector<Token>& toks, std::size_t i) {
  const std::size_t p = prev_code(toks, i);
  if (p == std::string::npos) return false;
  const Token& t = toks[p];
  if (t.kind == TokenKind::kIdentifier) {
    return !is_keywordish(t.text) && t.text != "return";
  }
  return t.text == ">" || t.text == "&" || t.text == "*" || t.text == "]]";
}

/// Counts top-level parameters of toks(open..close).
std::size_t count_params(const std::vector<Token>& toks, std::size_t open,
                         std::size_t close) {
  if (next_code(toks, open) == close) return 0;
  std::size_t count = 1;
  int angle = 0, paren = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "<") ++angle;
    if (toks[i].text == ">") angle = std::max(0, angle - 1);
    if (toks[i].text == "(" || toks[i].text == "[" || toks[i].text == "{") {
      ++paren;
    }
    if (toks[i].text == ")" || toks[i].text == "]" || toks[i].text == "}") {
      --paren;
    }
    if (toks[i].text == "," && angle == 0 && paren == 0) ++count;
  }
  return count;
}

}  // namespace

FileSummary summarize(const SourceFile& f, const ScopeTree& scope) {
  FileSummary s;
  s.rel = f.rel;
  s.module = f.module;
  s.is_header = f.is_header;
  s.includes = f.includes;
  s.waivers = f.waivers;

  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    ++s.ident_uses[t.text];

    const std::size_t open = next_code(toks, i);
    if (!token_is(toks, open, "(")) continue;
    s.called_names.insert(t.text);

    // `*_into` declaration sites (headers only): any site that is not a
    // member call or an argument. This deliberately includes class
    // methods — the api-into-wrapper contract covers them too.
    if (f.is_header && ends_with(t.text, "_into")) {
      const std::size_t p = prev_code(toks, i);
      const bool member_or_arg =
          p != std::string::npos &&
          (toks[p].text == "." || toks[p].text == "->" ||
           toks[p].text == "," || toks[p].text == "(" || toks[p].text == "!");
      if (!member_or_arg) {
        SymbolDecl d;
        d.name = t.text;
        d.line = t.line;
        const std::size_t close = match_paren(toks, open);
        d.param_count =
            close == std::string::npos ? 0 : count_params(toks, open, close);
        s.into_decls.push_back(std::move(d));
      }
    }

    if (!f.is_header || is_keywordish(t.text)) continue;

    // Header function declarations: free functions only. A name inside a
    // class scope is a method; a name inside a function scope is a call.
    if (scope.inside(i, ScopeKind::kClass) ||
        scope.inside(i, ScopeKind::kFunction) ||
        scope.inside(i, ScopeKind::kLambda) ||
        scope.inside(i, ScopeKind::kParallelBody) ||
        scope.inside(i, ScopeKind::kCombineBody)) {
      continue;
    }
    if (!is_decl_head(toks, i)) continue;
    const std::size_t close = match_paren(toks, open);
    if (close == std::string::npos) continue;
    // Declaration or definition: `;` / `{` after optional specifiers and
    // a possible trailing return type.
    std::size_t k = next_code(toks, close);
    while (k != std::string::npos &&
           (token_is(toks, k, "const") || token_is(toks, k, "noexcept"))) {
      k = next_code(toks, k);
    }
    bool is_def = false;
    if (token_is(toks, k, "{")) {
      is_def = true;
    } else if (!token_is(toks, k, ";")) {
      continue;  // expression, macro, or something stranger
    }
    SymbolDecl d;
    d.name = t.text;
    d.line = t.line;
    d.param_count = count_params(toks, open, close);
    d.is_definition = is_def;
    s.symbols.push_back(std::move(d));
  }
  return s;
}

std::size_t ProjectIndex::total_uses(const std::string& name) const {
  std::size_t total = 0;
  for (const FileSummary& f : files) {
    const auto it = f.ident_uses.find(name);
    if (it != f.ident_uses.end()) total += it->second;
  }
  return total;
}

namespace {

/// Path without extension ("src/channel/model" for src/channel/model.hpp).
std::string stem_of(const std::string& rel) {
  const std::size_t dot = rel.rfind('.');
  return dot == std::string::npos ? rel : rel.substr(0, dot);
}

}  // namespace

std::size_t ProjectIndex::external_uses(const std::string& name,
                                        const std::string& decl_rel) const {
  const std::string stem = stem_of(decl_rel);
  std::size_t total = 0;
  for (const FileSummary& f : files) {
    if (stem_of(f.rel) == stem) continue;  // own header/source pair
    const auto it = f.ident_uses.find(name);
    if (it != f.ident_uses.end()) total += it->second;
  }
  return total;
}

bool ProjectIndex::is_called(const std::string& name) const {
  return std::any_of(files.begin(), files.end(), [&](const FileSummary& f) {
    return f.called_names.count(name) != 0;
  });
}

std::string ProjectIndex::include_spelling(const std::string& rel) {
  if (rel.rfind("src/", 0) == 0) return rel.substr(4);
  return rel;
}

std::map<std::string, std::vector<std::string>> ProjectIndex::build_edges()
    const {
  std::set<std::string> spellings;
  for (const FileSummary& f : files) {
    spellings.insert(include_spelling(f.rel));
  }
  std::map<std::string, std::vector<std::string>> edges;
  for (const FileSummary& f : files) {
    const std::string from = include_spelling(f.rel);
    for (const Include& inc : f.includes) {
      std::string to = inc.target;
      if (spellings.count(to) == 0) {
        // Same-directory include ("analysis.hpp" from tools/...).
        const std::size_t slash = from.rfind('/');
        if (slash != std::string::npos) {
          const std::string sibling = from.substr(0, slash + 1) + to;
          if (spellings.count(sibling) != 0) to = sibling;
        }
      }
      if (spellings.count(to) != 0) edges[from].push_back(to);
    }
  }
  return edges;
}

}  // namespace densevlc::analyze
