// Committed-baseline support: pre-existing findings a PR inherits but did
// not introduce. The format is line-number-free so the baseline survives
// unrelated edits:
//
//   <rule> <file> <symbol> <count>
//
// one entry per line, `#` comments and blank lines ignored. A finding is
// suppressed while fewer than `count` findings with the same
// (rule, file, symbol) key have been seen; the (count+1)-th is new and
// fails the run. Entries that match nothing are reported as stale on
// stderr (a nudge to shrink the file) but do not fail.
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "analysis.hpp"

namespace densevlc::analyze {

using BaselineKey = std::tuple<std::string, std::string, std::string>;

struct Baseline {
  std::map<BaselineKey, std::size_t> allowed;
};

/// Parses a baseline file. Missing file -> empty baseline, ok=true;
/// unreadable/garbled lines -> ok=false with a message in `error`.
struct BaselineLoad {
  Baseline baseline;
  bool ok = true;
  std::string error;
};
BaselineLoad load_baseline(const std::filesystem::path& path);

/// Splits findings into (new, suppressed) per the baseline and collects
/// stale entries (keys with a larger count than was actually seen).
struct BaselineApplication {
  std::vector<Finding> fresh;
  std::size_t suppressed = 0;
  std::vector<std::string> stale;  // human-readable descriptions
};
BaselineApplication apply_baseline(const Baseline& baseline,
                                   const std::vector<Finding>& findings);

/// Serializes findings as a baseline file body (sorted, deduplicated into
/// counts, with a header comment).
std::string render_baseline(const std::vector<Finding>& findings);

}  // namespace densevlc::analyze
