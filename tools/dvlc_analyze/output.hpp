// Output renderers: GCC-style human text, SARIF 2.1.0 (for CI annotation
// and artifact upload), and a small plain-JSON form for scripting — plus
// the --sarif-diff machinery that lets CI fail only on *new* findings.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis.hpp"

namespace densevlc::analyze {

/// `path:line: error: [rule] message` — editors and CI both parse this.
std::string render_human(const std::vector<Finding>& findings);

/// SARIF 2.1.0 with one run, one rule descriptor per distinct rule id.
/// Each result carries partialFingerprints.dvlcSymbol/v1 — a
/// line-number-free fingerprint — so diffs survive unrelated drift.
std::string render_sarif(const std::vector<Finding>& findings,
                         const std::vector<RuleInfo>& rules);

/// `{"findings": [{...}]}`.
std::string render_json(const std::vector<Finding>& findings);

/// The line-drift-stable fingerprint emitted as dvlcSymbol/v1.
std::string finding_fingerprint(const Finding& f);

/// Collects the dvlcSymbol/v1 fingerprints (with multiplicity) from a
/// SARIF document previously written by render_sarif. Tolerant text
/// scan — a hand-edited document only needs the fingerprint lines.
std::map<std::string, std::size_t> load_sarif_fingerprints(
    const std::string& sarif_text);

/// Findings that exceed the old document's count for their fingerprint:
/// the k-th duplicate is "new" once the old run saw fewer than k.
std::vector<Finding> sarif_diff(
    const std::map<std::string, std::size_t>& old_fingerprints,
    const std::vector<Finding>& findings);

}  // namespace densevlc::analyze
