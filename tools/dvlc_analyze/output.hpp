// Output renderers: GCC-style human text, SARIF 2.1.0 (for CI annotation
// and artifact upload), and a small plain-JSON form for scripting.
#pragma once

#include <string>
#include <vector>

#include "analysis.hpp"

namespace densevlc::analyze {

/// `path:line: error: [rule] message` — editors and CI both parse this.
std::string render_human(const std::vector<Finding>& findings);

/// SARIF 2.1.0 with one run, one rule descriptor per distinct rule id.
std::string render_sarif(const std::vector<Finding>& findings,
                         const std::vector<RuleInfo>& rules);

/// `{"findings": [{...}]}`.
std::string render_json(const std::vector<Finding>& findings);

}  // namespace densevlc::analyze
