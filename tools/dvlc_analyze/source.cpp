#include "source.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace densevlc::analyze {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// A literal-encoding prefix that may precede " or ' (or a raw string).
bool is_encoding_prefix(const std::string& s) {
  return s == "L" || s == "u" || s == "U" || s == "u8" || s == "R" ||
         s == "LR" || s == "uR" || s == "UR" || s == "u8R";
}

/// Source with backslash-newline splices removed, keeping a parallel
/// 1-based line number per remaining character.
struct Spliced {
  std::string text;
  std::vector<std::size_t> line;
};

Spliced splice_lines(const std::string& src) {
  Spliced out;
  out.text.reserve(src.size());
  out.line.reserve(src.size());
  std::size_t line = 1;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    // Backslash immediately before the line break: physical lines join.
    if (c == '\\') {
      std::size_t j = i + 1;
      if (j < src.size() && src[j] == '\r') ++j;
      if (j < src.size() && src[j] == '\n') {
        ++line;
        i = j;
        continue;
      }
    }
    out.text.push_back(c);
    out.line.push_back(line);
    if (c == '\n') ++line;
  }
  return out;
}

// Multi-character operators the rules care to see as one token. Longest
// match first. `::`, `[[`, `]]`, `->` are load-bearing for several rules;
// the compound assignment and comparison operators keep `x += 1` and
// `a == b` distinguishable from plain `=`.
const char* const kThreeCharOps[] = {"<<=", ">>=", "...", "->*"};
const char* const kTwoCharOps[] = {"::", "[[", "]]", "->", "+=", "-=", "*=",
                                   "/=", "%=", "&=", "|=", "^=", "==", "!=",
                                   "<=", ">=", "&&", "||", "++", "--"};

}  // namespace

std::vector<Token> tokenize(const std::string& src) {
  const Spliced sp = splice_lines(src);
  const std::string& s = sp.text;
  const std::size_t n = s.size();
  auto line_at = [&](std::size_t i) {
    return i < n ? sp.line[i] : (sp.line.empty() ? 1 : sp.line.back());
  };

  std::vector<Token> out;
  std::size_t i = 0;
  while (i < n) {
    const char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment (a spliced trailing backslash already joined lines).
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < n && s[j] != '\n') ++j;
      out.push_back({TokenKind::kComment, s.substr(i + 2, j - i - 2),
                     line_at(i)});
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      std::size_t j = i + 2;
      while (j + 1 < n && !(s[j] == '*' && s[j + 1] == '/')) ++j;
      out.push_back({TokenKind::kComment, s.substr(i + 2, j - i - 2),
                     line_at(i)});
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Identifier — possibly an encoding prefix of a string/char literal.
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(s[j])) ++j;
      const std::string ident = s.substr(i, j - i);
      if (j < n && (s[j] == '"' || s[j] == '\'') && is_encoding_prefix(ident)) {
        if (ident.back() == 'R' && s[j] == '"') {
          // Raw string literal: R"delim( ... )delim".
          const std::size_t start_line = line_at(i);
          std::size_t k = j + 1;
          std::string delim;
          while (k < n && s[k] != '(' && s[k] != '"' && delim.size() <= 16) {
            delim.push_back(s[k++]);
          }
          const std::string closer = ")" + delim + "\"";
          const std::size_t end = s.find(closer, k);
          const std::size_t stop =
              end == std::string::npos ? n : end + closer.size();
          out.push_back({TokenKind::kString, "", start_line});
          i = stop;
          continue;
        }
        // Prefixed ordinary literal: fall through to the quote scanner
        // below with the prefix consumed (no separate identifier token).
        i = j;
        continue;
      }
      out.push_back({TokenKind::kIdentifier, ident, line_at(i)});
      i = j;
      continue;
    }
    // Unprefixed raw strings never reach here (R is an identifier char);
    // ordinary string / char literal:
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t start_line = line_at(i);
      std::size_t j = i + 1;
      std::string contents;
      while (j < n && s[j] != quote && s[j] != '\n') {
        if (s[j] == '\\' && j + 1 < n) {
          contents.push_back(s[j + 1]);
          j += 2;
          continue;
        }
        contents.push_back(s[j]);
        ++j;
      }
      out.push_back({TokenKind::kString, contents, start_line});
      i = (j < n && s[j] == quote) ? j + 1 : j;
      continue;
    }
    // pp-number: digits, idents, dots, digit separators, sign after
    // e/E/p/P. A separator only counts when a digit or letter follows,
    // so `1'` at the end of a macro arg cannot eat a real char literal.
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])) != 0)) {
      std::size_t j = i;
      while (j < n) {
        const char d = s[j];
        if (is_ident_char(d) || d == '.') {
          ++j;
        } else if (d == '\'' && j + 1 < n && is_ident_char(s[j + 1]) &&
                   j > i && is_ident_char(s[j - 1])) {
          ++j;  // digit separator
        } else if ((d == '+' || d == '-') && j > i &&
                   (s[j - 1] == 'e' || s[j - 1] == 'E' || s[j - 1] == 'p' ||
                    s[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.push_back({TokenKind::kNumber, s.substr(i, j - i), line_at(i)});
      i = j;
      continue;
    }
    // Punctuation, longest operator first.
    bool matched = false;
    if (i + 2 < n) {
      const std::string three = s.substr(i, 3);
      for (const char* op : kThreeCharOps) {
        if (three == op) {
          out.push_back({TokenKind::kPunct, three, line_at(i)});
          i += 3;
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    if (i + 1 < n) {
      const std::string two = s.substr(i, 2);
      for (const char* op : kTwoCharOps) {
        if (two == op) {
          out.push_back({TokenKind::kPunct, two, line_at(i)});
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    out.push_back({TokenKind::kPunct, std::string(1, c), line_at(i)});
    ++i;
  }
  return out;
}

WaiverMap collect_waivers(const std::vector<Token>& tokens,
                          std::vector<WaiverProblem>& problems) {
  WaiverMap waivers;
  const std::string canonical = "DVLC_LINT_WAIVE(";
  const std::string legacy = "dvlc-lint: allow(";
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) continue;
    for (const std::string& tag : {canonical, legacy}) {
      std::size_t pos = 0;
      while ((pos = t.text.find(tag, pos)) != std::string::npos) {
        const std::size_t open = pos + tag.size();
        const std::size_t close = t.text.find(')', open);
        if (close == std::string::npos) break;
        const std::string rule = t.text.substr(open, close - open);
        if (tag == canonical) {
          // The reason after "): " is mandatory: a waiver without a
          // reason is unauditable.
          std::size_t after = close + 1;
          const bool has_colon = after < t.text.size() && t.text[after] == ':';
          std::size_t text_at = after + 1;
          while (text_at < t.text.size() &&
                 std::isspace(static_cast<unsigned char>(t.text[text_at])) != 0) {
            ++text_at;
          }
          if (!has_colon || text_at >= t.text.size()) {
            problems.push_back(
                {t.line, "DVLC_LINT_WAIVE(" + rule +
                             ") is missing its `: reason` tail"});
            pos = close;
            continue;
          }
        }
        waivers[rule].insert(t.line);
        pos = close;
      }
    }
  }
  return waivers;
}

std::string module_of(const std::string& rel) {
  auto first_segment = [](const std::string& p) -> std::string {
    const std::size_t slash = p.find('/');
    return slash == std::string::npos ? std::string{} : p.substr(0, slash);
  };
  const std::string top = first_segment(rel);
  if (top == "src") {
    const std::string rest = rel.substr(4);
    const std::string mod = first_segment(rest);
    return mod;
  }
  if (top == "bench" || top == "tools" || top == "tests") return top;
  return {};
}

bool load_source_file(const std::filesystem::path& path,
                      const std::filesystem::path& root, SourceFile& out,
                      std::string* contents_out) {
  std::ifstream in{path};
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  index_source(text, path, root, out);
  if (contents_out != nullptr) *contents_out = text;
  return true;
}

void index_source(const std::string& text, const std::filesystem::path& path,
                  const std::filesystem::path& root, SourceFile& out) {
  out.abs_path = path;
  std::error_code ec;
  const auto rel = std::filesystem::proximate(path, root, ec);
  out.rel = ec ? path.generic_string() : rel.generic_string();
  if (out.rel.rfind("../", 0) == 0) out.rel = path.generic_string();
  out.module = module_of(out.rel);
  const auto ext = path.extension();
  out.is_header = ext == ".hpp" || ext == ".h" || ext == ".hh";
  out.tokens = tokenize(text);
  out.waivers = collect_waivers(out.tokens, out.waiver_problems);

  // Quoted #include directives: `#` `include` <string token>.
  const auto& toks = out.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind == TokenKind::kPunct && toks[i].text == "#" &&
        toks[i + 1].kind == TokenKind::kIdentifier &&
        toks[i + 1].text == "include" &&
        toks[i + 2].kind == TokenKind::kString) {
      out.includes.push_back({toks[i + 2].text, toks[i + 2].line});
    }
  }
}

std::size_t prev_code(const std::vector<Token>& toks, std::size_t i) {
  while (i > 0) {
    --i;
    if (is_code(toks[i])) return i;
  }
  return std::string::npos;
}

std::size_t next_code(const std::vector<Token>& toks, std::size_t i) {
  for (++i; i < toks.size(); ++i) {
    if (is_code(toks[i])) return i;
  }
  return std::string::npos;
}

bool token_is(const std::vector<Token>& toks, std::size_t i,
              const char* text) {
  return i != std::string::npos && i < toks.size() && toks[i].text == text;
}

bool ends_with(const std::string& name, const std::string& suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool at_decl_start(const std::vector<Token>& toks, std::size_t i) {
  const std::size_t p = prev_code(toks, i);
  if (p == std::string::npos) return true;
  const Token& t = toks[p];
  if (t.kind == TokenKind::kPunct &&
      (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ":")) {
    return true;
  }
  if (t.kind == TokenKind::kIdentifier &&
      (t.text == "static" || t.text == "inline" || t.text == "constexpr" ||
       t.text == "mutable" || t.text == "virtual" || t.text == "explicit")) {
    return at_decl_start(toks, p);
  }
  return t.kind == TokenKind::kPunct && t.text == "]]";  // after an attribute
}

std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

}  // namespace densevlc::analyze
