// Incremental-analysis cache for dvlc_analyze.
//
// Per-file work (tokenizing, scope-tree construction, every file-scoped
// pass) is cached under a content-addressed key; project-level passes
// re-run every time but consume only the cached FileSummary records, so
// a warm run over an unchanged tree re-analyzes zero files.
//
// Key = FNV-1a(file bytes) ⊕ FNV-1a(config), where the config string
// folds in everything that can change a file's findings besides its own
// content: the analyzer pass-version (bumped whenever any pass's
// behavior changes), the enabled pass set, and the file's root-relative
// path (rules are path-sensitive: physics-core checks, module maps).
// Each entry is one small text file named <hash>.dvlca in the cache
// directory; stale entries are left behind and garbage-collected by age
// (anything not touched by the current run is fair game to delete).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "analysis.hpp"
#include "index.hpp"

namespace densevlc::analyze {

/// Bump when ANY pass's behavior changes: the version participates in
/// every cache key, so old entries become unreachable (not wrong).
inline constexpr const char* kAnalyzerPassVersion = "dvlc-analyze-v3";

/// 64-bit FNV-1a.
std::uint64_t fnv1a(const std::string& data);

/// Everything cached per file: the summary the project passes need plus
/// the file-scoped findings and waiver statistics.
struct CacheEntry {
  FileSummary summary;
  std::vector<Finding> findings;  // file-scoped passes only
  std::size_t waived = 0;
};

/// Round-trip text serialization (exposed for the self-tests).
std::string serialize_entry(const CacheEntry& entry);
[[nodiscard]] bool parse_entry(const std::string& text, CacheEntry& out);

class AnalysisCache {
 public:
  /// `config` must fold in every non-content input that affects per-file
  /// results (pass version, enabled passes). An empty `dir` disables the
  /// cache (every probe misses, stores are dropped).
  AnalysisCache(std::filesystem::path dir, std::string config);

  /// Looks up the entry for a file with the given root-relative path and
  /// raw contents. Returns nullopt on miss or parse failure.
  std::optional<CacheEntry> probe(const std::string& rel,
                                  const std::string& contents);

  /// Stores the entry under the same key probe() would use.
  void store(const std::string& rel, const std::string& contents,
             const CacheEntry& entry);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  bool enabled() const { return !dir_.empty(); }

 private:
  std::filesystem::path entry_path(const std::string& rel,
                                   const std::string& contents) const;

  std::filesystem::path dir_;
  std::string config_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace densevlc::analyze
