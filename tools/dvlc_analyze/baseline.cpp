#include "baseline.hpp"

#include <fstream>
#include <sstream>

namespace densevlc::analyze {

BaselineLoad load_baseline(const std::filesystem::path& path) {
  BaselineLoad out;
  std::ifstream in{path};
  if (!in) return out;  // no baseline file: empty baseline
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t at = line.find_first_not_of(" \t");
    if (at == std::string::npos || line[at] == '#') continue;
    std::istringstream fields{line};
    std::string rule, file, symbol;
    std::size_t count = 0;
    if (!(fields >> rule >> file >> symbol >> count) || count == 0) {
      out.ok = false;
      out.error = path.string() + ":" + std::to_string(lineno) +
                  ": expected '<rule> <file> <symbol> <count>'";
      return out;
    }
    out.baseline.allowed[{rule, file, symbol}] += count;
  }
  return out;
}

BaselineApplication apply_baseline(const Baseline& baseline,
                                   const std::vector<Finding>& findings) {
  BaselineApplication out;
  std::map<BaselineKey, std::size_t> used;
  for (const Finding& f : findings) {
    const BaselineKey key{f.rule, f.file, f.symbol};
    const auto it = baseline.allowed.find(key);
    if (it != baseline.allowed.end() && used[key] < it->second) {
      ++used[key];
      ++out.suppressed;
    } else {
      out.fresh.push_back(f);
    }
  }
  for (const auto& [key, allowed] : baseline.allowed) {
    const auto it = used.find(key);
    const std::size_t seen = it == used.end() ? 0 : it->second;
    if (seen < allowed) {
      out.stale.push_back(std::get<0>(key) + " " + std::get<1>(key) + " " +
                          std::get<2>(key) + " (" + std::to_string(allowed) +
                          " baselined, " + std::to_string(seen) + " seen)");
    }
  }
  return out;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::map<BaselineKey, std::size_t> counts;
  for (const Finding& f : findings) ++counts[{f.rule, f.file, f.symbol}];
  std::ostringstream out;
  out << "# dvlc_analyze baseline: pre-existing findings, suppressed by\n"
         "# (rule, file, symbol, count). Regenerate with\n"
         "#   dvlc_analyze --write-baseline <this file> <paths...>\n"
         "# New findings beyond these counts fail the run. Shrink, never\n"
         "# grow, this file.\n";
  for (const auto& [key, count] : counts) {
    out << std::get<0>(key) << ' ' << std::get<1>(key) << ' '
        << std::get<2>(key) << ' ' << count << '\n';
  }
  return out.str();
}

}  // namespace densevlc::analyze
