#include "parse.hpp"

#include <algorithm>
#include <map>

namespace densevlc::analyze {

namespace {

// Recognized unit suffixes, longest-match-first (so `_mm2` wins over
// `_m2` wins over `_m`). Kept in sync with the conventions pass and
// docs/static_analysis.md.
const char* const kUnitSuffixes[] = {
    "_per_hz", "_per_w", "_per_s", "_per_m", "_kbps", "_mbps", "_mm2",
    "_khz",    "_mhz",   "_ghz",   "_bps",   "_lux",  "_dbm",  "_rad",
    "_deg",    "_ohm",   "_ppm",   "_pct",   "_ms",   "_us",   "_ns",
    "_hz",     "_mw",    "_lm",    "_m2",    "_mm",   "_cm",   "_ma",
    "_a2",     "_db",    "_s",     "_w",     "_m",    "_a",    "_v",
    "_j",
};

bool is_statement_keyword(const std::string& s) {
  return s == "return" || s == "if" || s == "while" || s == "switch" ||
         s == "case" || s == "break" || s == "continue" || s == "goto" ||
         s == "delete" || s == "new" || s == "throw" || s == "using" ||
         s == "typedef" || s == "template" || s == "typename" ||
         s == "public" || s == "private" || s == "protected" ||
         s == "friend" || s == "operator" || s == "sizeof" ||
         s == "static_assert" || s == "else" || s == "do" || s == "try" ||
         s == "catch" || s == "namespace" || s == "class" || s == "struct" ||
         s == "enum" || s == "union" || s == "co_return" || s == "co_await";
}

bool is_decl_specifier(const std::string& s) {
  return s == "const" || s == "constexpr" || s == "static" ||
         s == "mutable" || s == "inline" || s == "thread_local" ||
         s == "volatile" || s == "register" || s == "extern";
}

bool is_control_intro(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch";
}

/// Backward brace/paren matcher: toks[close] is ")" (or "]"), returns the
/// index of the matching opener, or npos.
std::size_t match_backward(const std::vector<Token>& toks, std::size_t close,
                           const char* open_c, const char* close_c) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == close_c) ++depth;
    if (toks[i].text == open_c) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

/// Parses one parameter list toks(open..close), appending a ScopeVar per
/// named parameter (type = everything before the name).
void collect_params(const std::vector<Token>& toks, std::size_t open,
                    std::size_t close, std::vector<ScopeVar>& out) {
  std::size_t start = open + 1;
  int angle = 0, paren = 0;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "<") ++angle;
      if (t.text == ">") angle = std::max(0, angle - 1);
      if (t.text == "(" || t.text == "[") ++paren;
      if (t.text == ")" || t.text == "]") --paren;
    }
    const bool at_end = i == close && paren < 0;
    if (!at_end && !(t.text == "," && angle == 0 && paren == 0)) continue;
    // One parameter in [start, i). Truncate a default argument.
    std::size_t stop = i;
    for (std::size_t j = start; j < stop; ++j) {
      if (toks[j].kind == TokenKind::kPunct && toks[j].text == "=") {
        stop = j;
        break;
      }
    }
    std::size_t name_idx = std::string::npos;
    for (std::size_t j = start; j < stop; ++j) {
      if (toks[j].kind == TokenKind::kIdentifier) name_idx = j;
    }
    // An unnamed parameter's last identifier is part of the type; treat a
    // one-token "name" with nothing before it as unnamed.
    if (name_idx != std::string::npos && name_idx > start) {
      ScopeVar v;
      v.name = toks[name_idx].text;
      for (std::size_t j = start; j < name_idx; ++j) {
        if (toks[j].kind == TokenKind::kComment) continue;
        if (!v.type.empty() && toks[j].kind == TokenKind::kIdentifier &&
            std::isalnum(static_cast<unsigned char>(v.type.back())) != 0) {
          v.type += ' ';
        }
        v.type += toks[j].text;
      }
      v.suffix = unit_suffix_of(v.name);
      v.line = toks[name_idx].line;
      v.decl_tok = name_idx;
      v.is_param = true;
      out.push_back(std::move(v));
    }
    start = i + 1;
  }
}

/// What a "{" opens. Also yields the scope name and (for functions and
/// lambdas) the parameter-list range.
struct BraceInfo {
  ScopeKind kind = ScopeKind::kBlock;
  std::string name;
  std::size_t params_open = std::string::npos;
  std::size_t params_close = std::string::npos;
};

BraceInfo classify_brace(const std::vector<Token>& toks, std::size_t open) {
  BraceInfo info;
  std::size_t p = prev_code(toks, open);
  if (p == std::string::npos) return info;

  // namespace X {  /  namespace a::b {  /  namespace {
  if (toks[p].kind == TokenKind::kIdentifier && toks[p].text == "namespace") {
    info.kind = ScopeKind::kNamespace;
    return info;
  }
  if (toks[p].kind == TokenKind::kIdentifier) {
    // Walk back over the qualified name: ident (:: ident)* .
    std::string name = toks[p].text;
    std::size_t q = prev_code(toks, p);
    while (q != std::string::npos && toks[q].text == "::") {
      const std::size_t r = prev_code(toks, q);
      if (r == std::string::npos || toks[r].kind != TokenKind::kIdentifier) {
        break;
      }
      name = toks[r].text + "::" + name;
      q = prev_code(toks, r);
    }
    if (q != std::string::npos && toks[q].text == "namespace") {
      info.kind = ScopeKind::kNamespace;
      info.name = name;
      return info;
    }
  }

  // class / struct / enum / union ... { — scan back to the keyword,
  // stopping at any token that ends the candidate head.
  {
    std::size_t b = open;
    for (int steps = 0; steps < 24; ++steps) {
      b = prev_code(toks, b);
      if (b == std::string::npos) break;
      const std::string& s = toks[b].text;
      if (s == ";" || s == "{" || s == "}" || s == ")" || s == "=" ||
          s == "," || s == "(" || s == "return") {
        break;
      }
      if (s == "class" || s == "struct" || s == "enum" || s == "union") {
        info.kind = ScopeKind::kClass;
        const std::size_t n = next_code(toks, b);
        if (n != std::string::npos &&
            toks[n].kind == TokenKind::kIdentifier && toks[n].text != "class") {
          info.name = toks[n].text;
        } else if (n != std::string::npos && toks[n].text == "class") {
          // enum class Name
          const std::size_t n2 = next_code(toks, n);
          if (n2 != std::string::npos &&
              toks[n2].kind == TokenKind::kIdentifier) {
            info.name = toks[n2].text;
          }
        }
        return info;
      }
    }
  }

  // Skip trailing cv-/ref-/virt-specifiers before the body.
  while (p != std::string::npos &&
         (toks[p].text == "const" || toks[p].text == "noexcept" ||
          toks[p].text == "override" || toks[p].text == "final" ||
          toks[p].text == "mutable")) {
    p = prev_code(toks, p);
  }
  if (p == std::string::npos) return info;

  // Constructor member-init list: `) : a_{x}, b_(y) {` — walk the items
  // backward until the `:` that follows the parameter list.
  std::size_t probe = p;
  for (int items = 0; items < 32; ++items) {
    if (probe == std::string::npos) break;
    if (toks[probe].text != "}" && toks[probe].text != ")") break;
    const bool braces = toks[probe].text == "}";
    const std::size_t opener =
        match_backward(toks, probe, braces ? "{" : "(", braces ? "}" : ")");
    if (opener == std::string::npos) break;
    const std::size_t ident = prev_code(toks, opener);
    if (ident == std::string::npos ||
        toks[ident].kind != TokenKind::kIdentifier) {
      break;
    }
    const std::size_t sep = prev_code(toks, ident);
    if (sep == std::string::npos) break;
    if (toks[sep].text == ",") {
      probe = prev_code(toks, sep);
      // the next item closer
      if (probe == std::string::npos) break;
      continue;
    }
    if (toks[sep].text == ":") {
      const std::size_t fn_close = prev_code(toks, sep);
      if (fn_close != std::string::npos && toks[fn_close].text == ")") {
        p = fn_close;  // fall through to the function-paren case below
      }
      break;
    }
    break;
  }

  if (toks[p].text == ")") {
    const std::size_t open_paren = match_backward(toks, p, "(", ")");
    if (open_paren == std::string::npos) return info;
    const std::size_t before = prev_code(toks, open_paren);
    if (before == std::string::npos) return info;
    if (toks[before].text == "]") {
      info.kind = ScopeKind::kLambda;
      info.params_open = open_paren;
      info.params_close = p;
      return info;
    }
    if (toks[before].kind == TokenKind::kIdentifier &&
        !is_control_intro(toks[before].text)) {
      info.kind = ScopeKind::kFunction;
      info.name = toks[before].text;
      info.params_open = open_paren;
      info.params_close = p;
      return info;
    }
    return info;  // control statement or expression: plain block
  }
  if (toks[p].text == "]") {
    // Capture-only lambda `[&]{ ... }`.
    info.kind = ScopeKind::kLambda;
    return info;
  }
  return info;
}

/// Token indices of lambda body "{"s that are arguments of parallel_for /
/// parallel_reduce call sites, mapped to their scope kind. The second and
/// later lambdas of a parallel_reduce are combine bodies.
std::map<std::size_t, ScopeKind> find_parallel_bodies(
    const std::vector<Token>& toks) {
  std::map<std::size_t, ScopeKind> kinds;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        (toks[i].text != "parallel_for" && toks[i].text != "parallel_reduce")) {
      continue;
    }
    const bool is_reduce = toks[i].text == "parallel_reduce";
    // Call sites only — skip the thread_pool.hpp definitions (preceded by
    // a return type) exactly like the determinism pass does.
    const std::size_t p = prev_code(toks, i);
    if (p != std::string::npos &&
        ((toks[p].kind == TokenKind::kIdentifier && toks[p].text != "return" &&
          toks[p].text != "co_return") ||
         toks[p].text == ">" || toks[p].text == "&" || toks[p].text == "*")) {
      continue;
    }
    const std::size_t open = next_code(toks, i);
    if (!token_is(toks, open, "(")) continue;
    const std::size_t close = match_paren(toks, open);
    if (close == std::string::npos) continue;
    std::size_t lambda_ordinal = 0;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (toks[j].kind != TokenKind::kPunct || toks[j].text != "[") continue;
      const std::size_t before = prev_code(toks, j);
      const bool intro = before != std::string::npos &&
                         (toks[before].text == "(" || toks[before].text == ",");
      if (!intro) continue;
      // Skip the capture list, optional params, specifiers; find the body.
      std::size_t k = j;
      int depth = 0;
      for (; k < close; ++k) {
        if (toks[k].text == "[") ++depth;
        if (toks[k].text == "]" && --depth == 0) break;
      }
      if (k >= close) break;
      k = next_code(toks, k);
      if (token_is(toks, k, "(")) {
        const std::size_t pc = match_paren(toks, k);
        if (pc == std::string::npos) break;
        k = next_code(toks, pc);
      }
      while (k != std::string::npos && k < close && toks[k].text != "{") {
        k = next_code(toks, k);
      }
      if (k == std::string::npos || k >= close) break;
      ++lambda_ordinal;
      kinds[k] = (is_reduce && lambda_ordinal >= 2) ? ScopeKind::kCombineBody
                                                    : ScopeKind::kParallelBody;
      const std::size_t body_close = match_brace(toks, k);
      if (body_close == std::string::npos) break;
      j = body_close;
    }
  }
  return kinds;
}

/// Collects the variables declared directly in `node` (child scope
/// ranges excluded).
void collect_scope_vars(const std::vector<Token>& toks, const ScopeTree& tree,
                        ScopeNode& node) {
  const bool function_like = node.kind == ScopeKind::kFunction ||
                             node.kind == ScopeKind::kLambda ||
                             node.kind == ScopeKind::kParallelBody ||
                             node.kind == ScopeKind::kCombineBody ||
                             node.kind == ScopeKind::kBlock;
  // Child ranges to skip, in order.
  std::vector<std::pair<std::size_t, std::size_t>> holes;
  for (std::size_t c : node.children) {
    holes.emplace_back(tree.nodes[c].open_tok, tree.nodes[c].close_tok);
  }
  std::size_t hole = 0;
  const std::size_t begin = node.open_tok == 0 && node.kind == ScopeKind::kFile
                                ? 0
                                : node.open_tok + 1;
  for (std::size_t i = begin; i < node.close_tok; ++i) {
    while (hole < holes.size() && i > holes[hole].second) ++hole;
    if (hole < holes.size() && i >= holes[hole].first) {
      i = holes[hole].second;
      continue;
    }
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (is_statement_keyword(t.text)) {
      // Skip to the end of the statement.
      while (i < node.close_tok && toks[i].text != ";" &&
             toks[i].text != "{") {
        ++i;
      }
      if (i < node.close_tok && toks[i].text == "{") --i;  // reprocess hole
      continue;
    }
    // Declarations start after a statement boundary or at a for-init /
    // range-for / condition opener.
    const std::size_t prev = prev_code(toks, i);
    const bool at_start =
        prev == std::string::npos || prev < begin ||
        toks[prev].text == ";" || toks[prev].text == "{" ||
        toks[prev].text == "}" || toks[prev].text == "(" ||
        toks[prev].text == ":";
    if (!at_start) continue;

    std::size_t j = i;
    // Leading specifiers.
    while (j < node.close_tok && toks[j].kind == TokenKind::kIdentifier &&
           is_decl_specifier(toks[j].text)) {
      j = next_code(toks, j);
      if (j == std::string::npos) break;
    }
    if (j == std::string::npos || j >= node.close_tok ||
        toks[j].kind != TokenKind::kIdentifier ||
        is_statement_keyword(toks[j].text)) {
      continue;
    }

    // auto [a, b] = ... structured binding.
    if (toks[j].text == "auto" && token_is(toks, next_code(toks, j), "[")) {
      std::size_t b = next_code(toks, j);
      for (std::size_t q = b + 1; q < node.close_tok && toks[q].text != "]";
           ++q) {
        if (toks[q].kind == TokenKind::kIdentifier) {
          ScopeVar v;
          v.name = toks[q].text;
          v.type = "auto";
          v.suffix = unit_suffix_of(v.name);
          v.line = toks[q].line;
          v.decl_tok = q;
          node.vars.push_back(std::move(v));
        }
      }
      continue;
    }

    // Type chain: ident (:: ident)* with balanced <...> after any part,
    // then &/*/&& qualifiers, then the declared name.
    std::string type = toks[j].text;
    std::size_t k = next_code(toks, j);
    bool broken = false;
    while (k != std::string::npos && k < node.close_tok) {
      if (toks[k].text == "::") {
        const std::size_t m = next_code(toks, k);
        if (m == std::string::npos || m >= node.close_tok ||
            toks[m].kind != TokenKind::kIdentifier) {
          broken = true;
          break;
        }
        type += "::" + toks[m].text;
        k = next_code(toks, m);
        continue;
      }
      if (toks[k].text == "<") {
        int depth = 0;
        std::size_t m = k;
        std::string args;
        for (; m < node.close_tok; ++m) {
          if (toks[m].kind == TokenKind::kComment) continue;
          if (toks[m].text == "<") ++depth;
          if (toks[m].text == ">") {
            --depth;
            if (depth == 0) break;
          }
          if (toks[m].text == ";" || toks[m].text == "{") {
            depth = -1;  // not a template argument list after all
            break;
          }
          if (!args.empty() && toks[m].kind == TokenKind::kIdentifier &&
              std::isalnum(static_cast<unsigned char>(args.back())) != 0) {
            args += ' ';
          }
          if (m > k) args += toks[m].text;
        }
        if (depth != 0) {
          broken = true;
          break;
        }
        type += "<" + args + ">";
        k = next_code(toks, m);
        continue;
      }
      break;
    }
    if (broken || k == std::string::npos || k >= node.close_tok) continue;
    while (k < node.close_tok &&
           (toks[k].text == "&" || toks[k].text == "*" ||
            toks[k].text == "&&")) {
      type += toks[k].text;
      k = next_code(toks, k);
      if (k == std::string::npos) break;
    }
    if (k == std::string::npos || k >= node.close_tok ||
        toks[k].kind != TokenKind::kIdentifier ||
        is_statement_keyword(toks[k].text) ||
        is_decl_specifier(toks[k].text)) {
      continue;
    }
    const std::size_t name_idx = k;
    const std::size_t after = next_code(toks, k);
    if (after == std::string::npos || after >= node.close_tok + 1) continue;
    const std::string& term = toks[after].text;
    const bool decl_term = term == "=" || term == "{" || term == ";" ||
                           term == ":" || term == "," ||
                           (term == "(" && function_like);
    // `Type name(args)` outside function bodies is a function
    // declaration, not a variable.
    if (!decl_term) continue;
    ScopeVar v;
    v.name = toks[name_idx].text;
    v.type = type;
    v.suffix = unit_suffix_of(v.name);
    v.line = toks[name_idx].line;
    v.decl_tok = name_idx;
    node.vars.push_back(std::move(v));
    i = name_idx;
  }
}

}  // namespace

std::string unit_suffix_of(const std::string& name) {
  std::string n = name;
  if (!n.empty() && n.back() == '_') n.pop_back();
  for (const char* s : kUnitSuffixes) {
    const std::string suffix{s};
    if (n.size() > suffix.size() && ends_with(n, suffix)) return suffix;
  }
  return "";
}

std::size_t ScopeTree::innermost(std::size_t tok) const {
  if (nodes.empty()) return 0;
  std::size_t at = 0;
  bool descended = true;
  while (descended) {
    descended = false;
    for (std::size_t c : nodes[at].children) {
      if (nodes[c].open_tok < tok && tok < nodes[c].close_tok) {
        at = c;
        descended = true;
        break;
      }
    }
  }
  return at;
}

const ScopeVar* ScopeTree::lookup(const std::string& name,
                                  std::size_t tok) const {
  if (nodes.empty()) return nullptr;
  std::size_t at = innermost(tok);
  while (true) {
    const ScopeNode& n = nodes[at];
    for (const ScopeVar& v : n.vars) {
      if (v.name == name && v.decl_tok <= tok) return &v;
    }
    if (at == 0) return nullptr;
    at = n.parent;
  }
}

bool ScopeTree::inside(std::size_t tok, ScopeKind k) const {
  return enclosing(tok, k) != std::string::npos;
}

std::size_t ScopeTree::enclosing(std::size_t tok, ScopeKind k) const {
  if (nodes.empty()) return std::string::npos;
  std::size_t at = innermost(tok);
  while (true) {
    if (nodes[at].kind == k) return at;
    if (at == 0) return std::string::npos;
    at = nodes[at].parent;
  }
}

ScopeTree build_scope_tree(const std::vector<Token>& toks) {
  ScopeTree tree;
  ScopeNode root;
  root.kind = ScopeKind::kFile;
  root.open_tok = 0;
  root.close_tok = toks.size();
  root.line = 1;
  root.parent = 0;
  tree.nodes.push_back(std::move(root));

  const std::map<std::size_t, ScopeKind> parallel = find_parallel_bodies(toks);

  std::vector<std::size_t> stack{0};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "{") {
      ScopeNode node;
      const auto par = parallel.find(i);
      BraceInfo info;
      if (par != parallel.end()) {
        info.kind = par->second;
        // Parameter list of the lambda: scan back over specifiers.
        std::size_t p = prev_code(toks, i);
        while (p != std::string::npos &&
               (toks[p].text == "mutable" || toks[p].text == "noexcept")) {
          p = prev_code(toks, p);
        }
        if (p != std::string::npos && toks[p].text == ")") {
          info.params_close = p;
          info.params_open = match_backward(toks, p, "(", ")");
        }
      } else {
        info = classify_brace(toks, i);
      }
      node.kind = info.kind;
      node.name = info.name;
      node.open_tok = i;
      node.close_tok = toks.size();  // patched on close
      node.line = t.line;
      node.parent = stack.back();
      if (info.params_open != std::string::npos &&
          info.params_close != std::string::npos) {
        collect_params(toks, info.params_open, info.params_close, node.vars);
      }
      const std::size_t idx = tree.nodes.size();
      tree.nodes[stack.back()].children.push_back(idx);
      tree.nodes.push_back(std::move(node));
      stack.push_back(idx);
    } else if (t.text == "}") {
      if (stack.size() > 1) {
        tree.nodes[stack.back()].close_tok = i;
        stack.pop_back();
      }
    }
  }

  // Bottom-up variable collection (children already have final ranges).
  for (std::size_t i = tree.nodes.size(); i-- > 0;) {
    collect_scope_vars(toks, tree, tree.nodes[i]);
  }
  return tree;
}

}  // namespace densevlc::analyze
