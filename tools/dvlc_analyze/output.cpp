#include "output.hpp"

#include <cstdio>
#include <map>
#include <sstream>

namespace densevlc::analyze {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string render_human(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ':' << f.line << ": error: [" << f.rule << "] "
        << f.message << '\n';
  }
  return out.str();
}

std::string render_sarif(const std::vector<Finding>& findings,
                         const std::vector<RuleInfo>& rules) {
  // Rule descriptors, indexed for result->rule references.
  std::map<std::string, std::size_t> rule_index;
  std::ostringstream out;
  out << "{\n"
         "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"dvlc_analyze\",\n"
         "          \"informationUri\": "
         "\"docs/static_analysis.md\",\n"
         "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    rule_index[rules[i].id] = i;
    out << "            {\"id\": \"" << json_escape(rules[i].id)
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(rules[i].summary) << "\"}}"
        << (i + 1 < rules.size() ? ",\n" : "\n");
  }
  out << "          ]\n"
         "        }\n"
         "      },\n"
         "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "        {\n"
           "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n";
    const auto idx = rule_index.find(f.rule);
    if (idx != rule_index.end()) {
      out << "          \"ruleIndex\": " << idx->second << ",\n";
    }
    out << "          \"level\": \"error\",\n"
           "          \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"},\n"
           "          \"partialFingerprints\": {\"dvlcSymbol/v1\": \""
        << json_escape(finding_fingerprint(f)) << "\"},\n"
           "          \"locations\": [\n"
           "            {\n"
           "              \"physicalLocation\": {\n"
           "                \"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"},\n"
           "                \"region\": {\"startLine\": "
        << (f.line == 0 ? 1 : f.line) << "}\n"
           "              }\n"
           "            }\n"
           "          ]\n"
           "        }" << (i + 1 < findings.size() ? ",\n" : "\n");
  }
  out << "      ]\n"
         "    }\n"
         "  ]\n"
         "}\n";
  return out.str();
}

std::string finding_fingerprint(const Finding& f) {
  // No line number: the diff must survive unrelated edits above the
  // finding. (rule, file, symbol) matches the baseline key.
  return f.rule + "|" + f.file + "|" + f.symbol;
}

std::map<std::string, std::size_t> load_sarif_fingerprints(
    const std::string& sarif_text) {
  std::map<std::string, std::size_t> out;
  static const std::string kKey = "\"dvlcSymbol/v1\": \"";
  std::size_t at = 0;
  while ((at = sarif_text.find(kKey, at)) != std::string::npos) {
    at += kKey.size();
    std::string fp;
    while (at < sarif_text.size() && sarif_text[at] != '"') {
      if (sarif_text[at] == '\\' && at + 1 < sarif_text.size()) {
        ++at;
        switch (sarif_text[at]) {
          case 'n': fp += '\n'; break;
          case 't': fp += '\t'; break;
          case 'r': fp += '\r'; break;
          default: fp += sarif_text[at];
        }
      } else {
        fp += sarif_text[at];
      }
      ++at;
    }
    ++out[fp];
  }
  return out;
}

std::vector<Finding> sarif_diff(
    const std::map<std::string, std::size_t>& old_fingerprints,
    const std::vector<Finding>& findings) {
  std::map<std::string, std::size_t> seen;
  std::vector<Finding> fresh;
  for (const Finding& f : findings) {
    const std::string fp = finding_fingerprint(f);
    const std::size_t nth = ++seen[fp];
    const auto it = old_fingerprints.find(fp);
    const std::size_t allowed = it == old_fingerprints.end() ? 0 : it->second;
    if (nth > allowed) fresh.push_back(f);
  }
  return fresh;
}

std::string render_json(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "  {\"rule\": \"" << json_escape(f.rule) << "\", \"file\": \""
        << json_escape(f.file) << "\", \"line\": " << f.line
        << ", \"symbol\": \"" << json_escape(f.symbol)
        << "\", \"message\": \"" << json_escape(f.message) << "\"}"
        << (i + 1 < findings.size() ? ",\n" : "\n");
  }
  out << "]}\n";
  return out.str();
}

}  // namespace densevlc::analyze
