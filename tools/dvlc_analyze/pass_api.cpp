// API-discipline pass: the zero-allocation call surface (PR 5) follows
// three conventions, checked here project-wide:
//
//   api-into-wrapper       every `foo_into(...)` overload (caller-owned
//                          output buffer) has a matching value-returning
//                          wrapper `foo(...)`, so casual call sites never
//                          have to manage buffers by hand.
//   api-scratch-ref        scratch structs (types named *Scratch) are
//                          taken by non-const reference — by-value copies
//                          or const references defeat buffer reuse.
//   api-assert-precondition physics entry points (functions in the
//                          physics core taking typed quantities) validate
//                          their inputs with DVLC_ASSERT / DVLC_EXPECT;
//                          a silent NaN is the hardest bug this repo
//                          produces.
#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "analysis.hpp"

namespace densevlc::analyze {
namespace {

/// Typed quantity aliases from common/quantity.hpp.
const char* const kQuantityAliases[] = {
    "Meters",       "SquareMeters",   "Seconds",
    "Hertz",        "MetersPerSecond", "Amperes",
    "SquareAmperes", "Watts",          "Joules",
    "Volts",        "Ohms",           "Lumens",
    "Lux",          "LumensPerWatt",  "AmperesPerWatt",
    "Bits",         "BitsPerSecond",  "AmpsSquaredPerHertz",
    "Quantity",
};

bool is_quantity_alias(const std::string& s) {
  return std::any_of(std::begin(kQuantityAliases), std::end(kQuantityAliases),
                     [&](const char* a) { return s == a; });
}

bool is_scratch_type(const std::string& s) {
  return s == "Scratch" || (ends_with(s, "Scratch") && s.size() > 7);
}

bool in_physics_core(const std::string& rel) {
  for (const char* dir : {"optics/", "channel/", "illum/", "alloc/"}) {
    if (rel.find(std::string("/") + dir) != std::string::npos ||
        rel.rfind(dir, 0) == 0) {
      return true;
    }
  }
  return rel.find("phy/frontend.") != std::string::npos ||
         rel.find("core/trace.") != std::string::npos;
}

bool is_control_keyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "static_assert" || s == "throw" ||
         s == "new" || s == "delete" || s == "case" || s == "co_return" ||
         s == "noexcept" || s == "defined" || s == "assert";
}

/// `foo_into` -> `foo`; empty when the name is only the suffix.
std::string wrapper_name(const std::string& into_name) {
  static const std::string kSuffix = "_into";
  if (into_name.size() <= kSuffix.size()) return "";
  return into_name.substr(0, into_name.size() - kSuffix.size());
}

class ApiPass final : public Pass {
 public:
  const char* name() const override { return "api"; }

  std::vector<RuleInfo> rules() const override {
    return {
        {"api-into-wrapper",
         "every *_into overload needs a value-returning wrapper"},
        {"api-scratch-ref",
         "*Scratch parameters are taken by non-const reference"},
        {"api-assert-precondition",
         "physics entry points taking quantities assert preconditions"},
    };
  }

  void run_file(const SourceFile& f, const ScopeTree& scope,
                Sink& sink) const override {
    (void)scope;
    check_scratch_params(f, sink);
    if (in_physics_core(f.rel)) check_preconditions(f, sink);
  }

  void run_project(const AnalysisContext& ctx, Sink& sink) const override {
    check_into_wrappers(ctx, sink);
  }

 private:
  /// Declaration sites of `*_into` overloads come pre-filtered from the
  /// file summaries (headers only, member/argument positions excluded).
  /// The wrapper only has to exist *somewhere* in the project — pairs
  /// usually live in the same header, but the check is global.
  void check_into_wrappers(const AnalysisContext& ctx, Sink& sink) const {
    std::set<std::string> seen;
    for (const FileSummary& f : ctx.index.files) {
      for (const SymbolDecl& d : f.into_decls) {
        if (!seen.insert(d.name).second) continue;  // first decl per name
        const std::string wrapper = wrapper_name(d.name);
        if (wrapper.empty()) continue;
        if (ctx.index.is_called(wrapper)) continue;
        sink.report(f, d.line, "api-into-wrapper", d.name,
                    "'" + d.name + "' has no value-returning wrapper '" +
                        wrapper +
                        "'; provide the convenience overload so call sites "
                        "outside the hot path never manage buffers by hand");
      }
    }
  }

  void check_scratch_params(const SourceFile& f, Sink& sink) const {
    const auto& toks = f.tokens;
    int paren_depth = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(") ++paren_depth;
        if (t.text == ")") paren_depth = std::max(0, paren_depth - 1);
        continue;
      }
      if (t.kind != TokenKind::kIdentifier || !is_scratch_type(t.text) ||
          paren_depth == 0) {
        continue;
      }
      const std::size_t after = next_code(toks, i);
      if (after == std::string::npos) continue;
      // Was this parameter declared const? Scan back to the start of the
      // parameter (a `,` or the opening paren).
      bool is_const = false;
      for (std::size_t b = i; b > 0;) {
        b = prev_code(toks, b);
        if (b == std::string::npos) break;
        const std::string& s = toks[b].text;
        if (s == "," || s == "(" || s == ";" || s == "{" || s == "}") break;
        if (s == "const") is_const = true;
      }
      if (toks[after].text == "&" && is_const) {
        sink.report(f, t.line, "api-scratch-ref", t.text,
                    "'" + t.text +
                        "' is taken by const reference; scratch structs "
                        "are mutable working memory and must be non-const");
        continue;
      }
      if (toks[after].kind == TokenKind::kIdentifier) {
        sink.report(f, t.line, "api-scratch-ref", t.text,
                    "'" + t.text +
                        "' is passed by value; copying scratch defeats "
                        "buffer reuse — take it by non-const reference");
      }
    }
  }

  void check_preconditions(const SourceFile& f, Sink& sink) const {
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier ||
          is_control_keyword(toks[i].text)) {
        continue;
      }
      const std::size_t open = next_code(toks, i);
      if (!token_is(toks, open, "(")) continue;
      const std::size_t close = match_paren(toks, open);
      if (close == std::string::npos) continue;
      // Definition? Allow trailing cv/ref qualifiers, then require `{`.
      std::size_t k = next_code(toks, close);
      while (k != std::string::npos &&
             (token_is(toks, k, "const") || token_is(toks, k, "noexcept") ||
              token_is(toks, k, "override") || token_is(toks, k, "final"))) {
        k = next_code(toks, k);
      }
      if (!token_is(toks, k, "{")) continue;
      // Quantity-typed parameter present?
      bool has_quantity_param = false;
      for (std::size_t q = open + 1; q < close; ++q) {
        if (toks[q].kind == TokenKind::kIdentifier &&
            is_quantity_alias(toks[q].text)) {
          has_quantity_param = true;
          break;
        }
      }
      if (!has_quantity_param) continue;
      const std::size_t body_close = match_brace(toks, k);
      if (body_close == std::string::npos) continue;
      std::size_t code_tokens = 0;
      bool asserted = false;
      for (std::size_t b = k + 1; b < body_close; ++b) {
        if (!is_code(toks[b])) continue;
        ++code_tokens;
        if (toks[b].text == "DVLC_ASSERT" || toks[b].text == "DVLC_EXPECT") {
          asserted = true;
        }
      }
      // Trivial forwarding bodies (one return statement) are exempt: the
      // callee asserts.
      if (code_tokens < 16 || asserted) continue;
      sink.report(f, toks[i].line, "api-assert-precondition", toks[i].text,
                  "physics entry point '" + toks[i].text +
                      "' takes typed quantities but asserts no "
                      "preconditions; add DVLC_ASSERT on its domain "
                      "(positivity, finiteness, range) or waive with a "
                      "reason");
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_api_pass() { return std::make_unique<ApiPass>(); }

}  // namespace densevlc::analyze
