#include "analysis.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <tuple>

#include "cache.hpp"

namespace densevlc::analyze {

namespace fs = std::filesystem;

void Sink::report_impl(const WaiverMap& waivers, const std::string& rel,
                       std::size_t line, const std::string& rule,
                       const std::string& symbol, const std::string& message) {
  auto it = waivers.find(rule);
  if (it != waivers.end() &&
      (it->second.count(line) != 0 ||
       (line > 0 && it->second.count(line - 1) != 0))) {
    ++waived_;
    return;
  }
  findings_.push_back(Finding{rule, rel, line, symbol, message});
}

void Sink::report(const SourceFile& file, std::size_t line,
                  const std::string& rule, const std::string& symbol,
                  const std::string& message) {
  report_impl(file.waivers, file.rel, line, rule, symbol, message);
}

void Sink::report(const FileSummary& file, std::size_t line,
                  const std::string& rule, const std::string& symbol,
                  const std::string& message) {
  report_impl(file.waivers, file.rel, line, rule, symbol, message);
}

void Sink::report_unwaivable(const SourceFile& file, std::size_t line,
                             const std::string& rule,
                             const std::string& symbol,
                             const std::string& message) {
  findings_.push_back(Finding{rule, file.rel, line, symbol, message});
}

std::vector<Finding> Sink::take_findings() { return std::move(findings_); }

std::vector<std::unique_ptr<Pass>> make_all_passes() {
  std::vector<std::unique_ptr<Pass>> passes;
  passes.push_back(make_conventions_pass());
  passes.push_back(make_determinism_pass());
  passes.push_back(make_layering_pass());
  passes.push_back(make_api_pass());
  passes.push_back(make_nondet_pass());
  passes.push_back(make_unitdim_pass());
  passes.push_back(make_deadapi_pass());
  return passes;
}

void default_layering(AnalysisContext& ctx) {
  // The declared module DAG:
  //   common -> {dsp, geom} -> optics -> {channel, phy, sync}
  //          -> {alloc, fault, illum, mac, net} -> core -> scenario -> bench
  // tools and tests sit on top and may include anything.
  ctx.module_rank = {
      {"common", 0}, {"dsp", 1},   {"geom", 1},  {"optics", 2},
      {"channel", 3}, {"phy", 3},  {"sync", 3},  {"alloc", 4},
      {"fault", 4},  {"illum", 4}, {"mac", 4},   {"net", 4},
      {"core", 5},   {"scenario", 6}, {"bench", 7}, {"tools", 7},
      {"tests", 8},
  };
  // sync consumes the PHY frontend (pilot correlation) by design.
  ctx.extra_edges = {{"sync", "phy"}};
}

namespace {

bool is_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc" ||
         ext == ".cxx" || ext == ".hxx";
}

bool skip_directory(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "build" || name == ".git" || name.rfind("build-", 0) == 0 ||
         name == "fixtures";
}

void collect_files(const fs::path& p, std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    for (fs::directory_iterator it(p, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (fs::is_directory(it->path())) {
        if (!skip_directory(it->path())) collect_files(it->path(), out);
      } else if (is_source_extension(it->path())) {
        out.push_back(it->path());
      }
    }
  } else if (fs::is_regular_file(p, ec) && is_source_extension(p)) {
    out.push_back(p);
  }
}

std::string relative_to(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const auto rel = fs::proximate(path, root, ec);
  std::string s = ec ? path.generic_string() : rel.generic_string();
  if (s.rfind("../", 0) == 0) s = path.generic_string();
  return s;
}

}  // namespace

AnalysisResult analyze_paths(const std::vector<fs::path>& paths,
                             const fs::path& root,
                             const AnalyzeOptions& options) {
  AnalysisContext ctx;
  ctx.root = root;
  default_layering(ctx);

  const auto all_passes = make_all_passes();
  std::vector<const Pass*> enabled;
  std::string config = kAnalyzerPassVersion;
  for (const auto& pass : all_passes) {
    if (!options.pass_filter.empty() &&
        std::find(options.pass_filter.begin(), options.pass_filter.end(),
                  pass->name()) == options.pass_filter.end()) {
      continue;
    }
    enabled.push_back(pass.get());
    config += '|';
    config += pass->name();
  }
  AnalysisCache cache{options.cache_dir, config};

  std::vector<fs::path> files;
  for (const auto& p : paths) collect_files(p, files);
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  AnalysisResult result;
  Sink sink;
  for (const auto& path : files) {
    std::ifstream in{path};
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string contents = buf.str();
    const std::string rel = relative_to(path, root);

    if (auto hit = cache.probe(rel, contents)) {
      ++result.files_scanned;
      ++result.files_from_cache;
      result.waived += hit->waived;
      for (Finding& f : hit->findings) {
        result.findings.push_back(std::move(f));
      }
      ctx.index.files.push_back(std::move(hit->summary));
      continue;
    }

    SourceFile sf;
    index_source(contents, path, root, sf);
    const ScopeTree scope = build_scope_tree(sf.tokens);
    Sink file_sink;
    // Waiver-syntax problems are findings regardless of which passes run:
    // a malformed waiver silently waives nothing, which must be loud.
    for (const auto& wp : sf.waiver_problems) {
      file_sink.report_unwaivable(sf, wp.line, "waiver-syntax", "waiver",
                                  wp.detail);
    }
    for (const Pass* pass : enabled) pass->run_file(sf, scope, file_sink);

    CacheEntry entry;
    entry.summary = summarize(sf, scope);
    entry.waived = file_sink.waived_count();
    entry.findings = file_sink.take_findings();
    cache.store(rel, contents, entry);

    ++result.files_scanned;
    result.waived += entry.waived;
    for (const Finding& f : entry.findings) result.findings.push_back(f);
    ctx.index.files.push_back(std::move(entry.summary));
  }

  for (const Pass* pass : enabled) pass->run_project(ctx, sink);
  result.waived += sink.waived_count();
  for (Finding& f : sink.take_findings()) {
    result.findings.push_back(std::move(f));
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.symbol, a.message) <
                     std::tie(b.file, b.line, b.rule, b.symbol, b.message);
            });
  result.findings.erase(
      std::unique(result.findings.begin(), result.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return std::tie(a.file, a.line, a.rule, a.symbol,
                                    a.message) ==
                           std::tie(b.file, b.line, b.rule, b.symbol,
                                    b.message);
                  }),
      result.findings.end());
  return result;
}

AnalysisResult analyze_paths(const std::vector<fs::path>& paths,
                             const fs::path& root,
                             const std::vector<std::string>& pass_filter) {
  AnalyzeOptions options;
  options.pass_filter = pass_filter;
  return analyze_paths(paths, root, options);
}

}  // namespace densevlc::analyze
