#include "analysis.hpp"

#include <algorithm>
#include <tuple>

namespace densevlc::analyze {

namespace fs = std::filesystem;

void Sink::report(const SourceFile& file, std::size_t line,
                  const std::string& rule, const std::string& symbol,
                  const std::string& message) {
  auto it = file.waivers.find(rule);
  if (it != file.waivers.end() &&
      (it->second.count(line) != 0 ||
       (line > 0 && it->second.count(line - 1) != 0))) {
    ++waived_;
    return;
  }
  findings_.push_back(Finding{rule, file.rel, line, symbol, message});
}

void Sink::report_unwaivable(const SourceFile& file, std::size_t line,
                             const std::string& rule,
                             const std::string& symbol,
                             const std::string& message) {
  findings_.push_back(Finding{rule, file.rel, line, symbol, message});
}

std::vector<Finding> Sink::take_findings() { return std::move(findings_); }

std::vector<std::unique_ptr<Pass>> make_all_passes() {
  std::vector<std::unique_ptr<Pass>> passes;
  passes.push_back(make_conventions_pass());
  passes.push_back(make_determinism_pass());
  passes.push_back(make_layering_pass());
  passes.push_back(make_api_pass());
  return passes;
}

void default_layering(AnalysisContext& ctx) {
  // The declared module DAG:
  //   common -> {dsp, geom} -> optics -> {channel, phy, sync}
  //          -> {alloc, fault, illum, mac, net} -> core -> scenario -> bench
  // tools and tests sit on top and may include anything.
  ctx.module_rank = {
      {"common", 0}, {"dsp", 1},   {"geom", 1},  {"optics", 2},
      {"channel", 3}, {"phy", 3},  {"sync", 3},  {"alloc", 4},
      {"fault", 4},  {"illum", 4}, {"mac", 4},   {"net", 4},
      {"core", 5},   {"scenario", 6}, {"bench", 7}, {"tools", 7},
      {"tests", 8},
  };
  // sync consumes the PHY frontend (pilot correlation) by design.
  ctx.extra_edges = {{"sync", "phy"}};
}

namespace {

bool is_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc" ||
         ext == ".cxx" || ext == ".hxx";
}

bool skip_directory(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "build" || name == ".git" || name.rfind("build-", 0) == 0 ||
         name == "fixtures";
}

void collect_files(const fs::path& p, std::vector<fs::path>& out) {
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    for (fs::directory_iterator it(p, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (fs::is_directory(it->path())) {
        if (!skip_directory(it->path())) collect_files(it->path(), out);
      } else if (is_source_extension(it->path())) {
        out.push_back(it->path());
      }
    }
  } else if (fs::is_regular_file(p, ec) && is_source_extension(p)) {
    out.push_back(p);
  }
}

}  // namespace

AnalysisResult analyze_paths(const std::vector<fs::path>& paths,
                             const fs::path& root,
                             const std::vector<std::string>& pass_filter) {
  AnalysisContext ctx;
  ctx.root = root;
  default_layering(ctx);

  std::vector<fs::path> files;
  for (const auto& p : paths) collect_files(p, files);
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const auto& f : files) {
    SourceFile sf;
    if (load_source_file(f, root, sf)) ctx.files.push_back(std::move(sf));
  }

  Sink sink;
  // Waiver-syntax problems are findings regardless of which passes run:
  // a malformed waiver silently waives nothing, which must be loud.
  for (const auto& sf : ctx.files) {
    for (const auto& wp : sf.waiver_problems) {
      sink.report_unwaivable(sf, wp.line, "waiver-syntax", "waiver",
                             wp.detail);
    }
  }

  for (const auto& pass : make_all_passes()) {
    if (!pass_filter.empty() &&
        std::find(pass_filter.begin(), pass_filter.end(), pass->name()) ==
            pass_filter.end()) {
      continue;
    }
    pass->run(ctx, sink);
  }

  AnalysisResult result;
  result.files_scanned = ctx.files.size();
  result.waived = sink.waived_count();
  result.findings = sink.take_findings();
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.symbol, a.message) <
                     std::tie(b.file, b.line, b.rule, b.symbol, b.message);
            });
  result.findings.erase(
      std::unique(result.findings.begin(), result.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return std::tie(a.file, a.line, a.rule, a.symbol,
                                    a.message) ==
                           std::tie(b.file, b.line, b.rule, b.symbol,
                                    b.message);
                  }),
      result.findings.end());
  return result;
}

}  // namespace densevlc::analyze
