// Nondeterminism-flow pass: sources of run-to-run variation that the
// flat determinism pass (pass_determinism.cpp) cannot see, caught with
// the scope tree so declarations never masquerade as calls.
//
//   nondet-unordered-iter  range-for over a std::unordered_map/set whose
//                          loop body lets the element order escape (an
//                          aggregate `+=`, stream `<<`, container growth,
//                          or a fingerprint/hash call). Pure per-key
//                          indexed stores are order-independent and
//                          deliberately not flagged.
//   nondet-wallclock       time()/clock()/random_device/system_clock and
//                          friends in simulation code. A *variable* named
//                          `time` (the scope tree knows) is fine; the
//                          libc call is not. Timing clocks are allowed in
//                          bench/tests/tools/examples harnesses; entropy
//                          sources are allowed only in common/rng.
//   nondet-pointer-key     std::map/std::set keyed by a pointer: the
//                          traversal order is the allocator's address
//                          order, which no seed pins down.
//   nondet-combine-order   compound float accumulation (`+=`, `-=`, `*=`)
//                          inside a parallel body into a captured slot
//                          whose subscript does not involve any body-local
//                          index — multiple chunks hit the same slot in
//                          scheduling order, so the float sum is not
//                          reproducible even though the write is
//                          "subscripted" and passes par-shared-write.
#include <algorithm>
#include <string>

#include "analysis.hpp"

namespace densevlc::analyze {
namespace {

bool is_timing_clock(const std::string& s) {
  return s == "clock" || s == "system_clock" || s == "steady_clock" ||
         s == "high_resolution_clock";
}

bool is_entropy_source(const std::string& s) {
  return s == "time" || s == "srand" || s == "random_device";
}

/// Modules whose job is timing the simulator rather than running it.
bool is_harness_module(const std::string& module) {
  return module == "bench" || module == "tests" || module == "tools";
}

/// Token texts through which an element's value (or the iteration order
/// itself) escapes the loop body into an aggregate or output.
bool is_escape_token(const std::string& s) {
  return s == "<<" || s == "+=" || s == "-=" || s == "*=" ||
         s == "push_back" || s == "emplace_back" || s == "insert" ||
         s == "emplace" || s == "append" || s == "fingerprint" ||
         s == "hash" || s == "mix" || s == "accumulate" || s == "printf" ||
         s == "fprintf" || s == "write";
}

void check_unordered_iter(const SourceFile& f, const ScopeTree& scope,
                          Sink& sink) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier || toks[i].text != "for") {
      continue;
    }
    const std::size_t open = next_code(toks, i);
    if (!token_is(toks, open, "(")) continue;
    const std::size_t close = match_paren(toks, open);
    if (close == std::string::npos) continue;
    // Range-for: a top-level `:` inside the parens.
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t j = open + 1; j < close; ++j) {
      const std::string& s = toks[j].text;
      if (toks[j].kind != TokenKind::kPunct) continue;
      if (s == "(" || s == "[" || s == "{" || s == "<") ++depth;
      if (s == ")" || s == "]" || s == "}" || s == ">") --depth;
      if (s == ":" && depth == 0) {
        colon = j;
        break;
      }
    }
    if (colon == std::string::npos) continue;

    // Is the sequence expression unordered? Either it spells the type
    // inline, or its base identifier's declared type does.
    bool unordered = false;
    std::string seq_name;
    for (std::size_t j = next_code(toks, colon); j != std::string::npos &&
                                                 j < close;
         j = next_code(toks, j)) {
      if (toks[j].kind != TokenKind::kIdentifier) continue;
      if (toks[j].text.rfind("unordered_", 0) == 0) {
        unordered = true;
        seq_name = toks[j].text;
        break;
      }
      const ScopeVar* var = scope.lookup(toks[j].text, j);
      if (var != nullptr && var->type.find("unordered_") != std::string::npos) {
        unordered = true;
        seq_name = toks[j].text;
        break;
      }
    }
    if (!unordered) continue;

    // Loop body: `{...}` or a single statement up to `;`.
    std::size_t body_begin = next_code(toks, close);
    if (body_begin == std::string::npos) continue;
    std::size_t body_end;
    if (token_is(toks, body_begin, "{")) {
      body_end = match_brace(toks, body_begin);
      if (body_end == std::string::npos) continue;
    } else {
      body_end = body_begin;
      while (body_end < toks.size() && toks[body_end].text != ";") ++body_end;
    }
    bool escapes = false;
    for (std::size_t j = body_begin; j < body_end && !escapes; ++j) {
      if (is_code(toks[j]) && is_escape_token(toks[j].text)) escapes = true;
    }
    if (!escapes) continue;
    sink.report(f, toks[i].line, "nondet-unordered-iter", seq_name,
                "iterating '" + seq_name +
                    "' (std::unordered_*) with the element order escaping "
                    "into an aggregate/output; unordered iteration order is "
                    "implementation-defined — iterate a sorted view or use "
                    "std::map");
  }
}

void check_wallclock(const SourceFile& f, const ScopeTree& scope, Sink& sink) {
  if (f.rel.find("common/rng") != std::string::npos) return;
  const bool harness = is_harness_module(f.module);
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    const bool clock_like = is_timing_clock(t.text);
    const bool entropy = is_entropy_source(t.text);
    if (!clock_like && !entropy) continue;
    if (clock_like && harness) continue;  // timing a bench is the point

    // Must look like a use: `name (` or `name ::` (clock::now()).
    const std::size_t after = next_code(toks, i);
    const bool used = token_is(toks, after, "(") || token_is(toks, after, "::");
    if (!used) continue;
    // Member access is some object's own API, not the libc/chrono call.
    const std::size_t p = prev_code(toks, i);
    if (p != std::string::npos &&
        (toks[p].text == "." || toks[p].text == "->")) {
      continue;
    }
    // A declaration (`std::vector<double> time(n);`) binds a variable —
    // the scope tree resolves the name to it; so does any later use.
    if (scope.lookup(t.text, i) != nullptr) continue;
    // Declaration heads (`double time(...)`) are preceded by a type.
    if (p != std::string::npos &&
        (toks[p].kind == TokenKind::kIdentifier || toks[p].text == ">" ||
         toks[p].text == "&" || toks[p].text == "*")) {
      continue;
    }
    sink.report(f, t.line, "nondet-wallclock", t.text,
                "'" + t.text +
                    "' injects wall-clock/entropy state into simulation "
                    "code; results must replay bit-identically — derive "
                    "everything from the scenario seed (common/rng.hpp)");
  }
}

void check_pointer_key(const SourceFile& f, Sink& sink) {
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text != "map" && t.text != "set" && t.text != "multimap" &&
        t.text != "multiset" && t.text != "unordered_map" &&
        t.text != "unordered_set") {
      continue;
    }
    const std::size_t open = next_code(toks, i);
    if (!token_is(toks, open, "<")) continue;
    // Walk the first template argument (to a top-level `,` or the
    // matching `>`); remember its last code token.
    int depth = 1;
    std::size_t last = std::string::npos;
    std::size_t j = open;
    while (depth > 0) {
      j = next_code(toks, j);
      if (j == std::string::npos) break;
      const std::string& s = toks[j].text;
      if (s == "<") ++depth;
      if (s == ">") --depth;
      if (s == ">>") depth -= 2;
      if (depth <= 0) break;
      if (s == "," && depth == 1) break;
      last = j;
    }
    if (last == std::string::npos) continue;
    if (toks[last].text != "*") continue;
    sink.report(f, t.line, "nondet-pointer-key", t.text,
                "'std::" + t.text +
                    "' keyed by a pointer orders elements by allocation "
                    "address, which no seed reproduces; key by a stable id "
                    "(index, name) instead");
  }
}

void check_combine_order(const SourceFile& f, const ScopeTree& scope,
                         Sink& sink) {
  const auto& toks = f.tokens;
  for (std::size_t n = 0; n < scope.nodes.size(); ++n) {
    const ScopeNode& node = scope.nodes[n];
    if (node.kind != ScopeKind::kParallelBody &&
        node.kind != ScopeKind::kCombineBody) {
      continue;
    }
    // Body-local = a lambda parameter, a direct local, or a local of any
    // nested plain block (not of a nested lambda).
    const auto body_local = [&](const std::string& name, std::size_t at) {
      if (std::any_of(node.vars.begin(), node.vars.end(),
                      [&](const ScopeVar& v) { return v.name == name; })) {
        return true;
      }
      const ScopeVar* v = scope.lookup(name, at);
      return v != nullptr && v->decl_tok > node.open_tok &&
             v->decl_tok < node.close_tok;
    };
    // A token belongs to this body when walking out of its innermost
    // scope reaches `n` before crossing another function/lambda boundary.
    const auto in_this_body = [&](std::size_t tok) {
      std::size_t s_idx = scope.innermost(tok);
      while (true) {
        if (s_idx == n) return true;
        const ScopeNode& sn = scope.nodes[s_idx];
        if (sn.kind == ScopeKind::kFunction || sn.kind == ScopeKind::kLambda ||
            sn.kind == ScopeKind::kParallelBody ||
            sn.kind == ScopeKind::kCombineBody || sn.parent == s_idx) {
          return false;
        }
        s_idx = sn.parent;
      }
    };
    for (std::size_t i = node.open_tok + 1;
         i < node.close_tok && i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      const std::size_t br = next_code(toks, i);
      if (!token_is(toks, br, "[")) continue;
      // Only scan writes in this body, not in a nested lambda.
      if (!in_this_body(i)) continue;
      if (body_local(toks[i].text, i)) continue;  // body-local: fine
      // Subscript range; note whether any body-local name indexes it.
      int depth = 0;
      std::size_t j = br;
      bool local_index = false;
      while (j < node.close_tok) {
        if (toks[j].text == "[") ++depth;
        if (toks[j].text == "]" && --depth == 0) break;
        if (toks[j].kind == TokenKind::kIdentifier &&
            body_local(toks[j].text, j)) {
          local_index = true;
        }
        ++j;
      }
      if (j >= node.close_tok) break;
      const std::size_t op = next_code(toks, j);
      if (op == std::string::npos || op >= node.close_tok) continue;
      const std::string& s = toks[op].text;
      if (s != "+=" && s != "-=" && s != "*=") continue;
      if (local_index) continue;  // disjoint per-index slot: the contract
      sink.report(f, toks[i].line, "nondet-combine-order", toks[i].text,
                  "'" + toks[i].text +
                      "' accumulates into a captured slot whose subscript "
                      "involves no body-local index; chunks reach that slot "
                      "in scheduling order, so the floating-point sum is "
                      "not reproducible — accumulate per-index and fold in "
                      "the ordered combine");
    }
  }
}

class NondetPass final : public Pass {
 public:
  const char* name() const override { return "nondet-flow"; }

  std::vector<RuleInfo> rules() const override {
    return {
        {"nondet-unordered-iter",
         "unordered-container iteration must not feed aggregates/output"},
        {"nondet-wallclock",
         "simulation code must not read wall clocks or entropy sources"},
        {"nondet-pointer-key",
         "ordered containers must not be keyed by pointers"},
        {"nondet-combine-order",
         "parallel float accumulation needs a body-local index or the "
         "ordered combine"},
    };
  }

  void run_file(const SourceFile& f, const ScopeTree& scope,
                Sink& sink) const override {
    check_unordered_iter(f, scope, sink);
    check_wallclock(f, scope, sink);
    check_pointer_key(f, sink);
    check_combine_order(f, scope, sink);
  }
};

}  // namespace

std::unique_ptr<Pass> make_nondet_pass() {
  return std::make_unique<NondetPass>();
}

}  // namespace densevlc::analyze
