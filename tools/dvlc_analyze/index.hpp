// Cross-translation-unit project index for dvlc_analyze.
//
// Project-level passes (layering, api-into-wrapper, dead-api) must not
// need the token stream of every file on every run — that would defeat
// incremental analysis. Instead each file is boiled down once into a
// FileSummary: its include edges, waiver map, declared header symbols,
// `_into` declaration sites, and an identifier use count. Summaries are
// small, serializable (cache.hpp) and sufficient for every cross-TU
// rule; the ProjectIndex is just the collected summaries plus the
// include-graph queries built over them.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "parse.hpp"
#include "source.hpp"

namespace densevlc::analyze {

/// A function name declared in a header (free functions only — methods
/// are deliberately out of scope for the dead-api rule).
struct SymbolDecl {
  std::string name;
  std::size_t line = 0;
  std::size_t param_count = 0;
  bool is_definition = false;  // `{` body follows (inline in the header)
};

/// Everything the cross-TU passes need to know about one file.
struct FileSummary {
  std::string rel;     // root-relative path (generic form)
  std::string module;  // layering module ("common", ..., "tests")
  bool is_header = false;
  std::vector<Include> includes;
  WaiverMap waivers;
  /// Free-function declarations in this header (empty for .cpp files).
  std::vector<SymbolDecl> symbols;
  /// Header declaration sites of `*_into` functions (api-into-wrapper).
  std::vector<SymbolDecl> into_decls;
  /// Every identifier that appears immediately before a "(": call sites
  /// plus declaration sites — the "somewhere in the project" set the
  /// api-into-wrapper rule queries.
  std::set<std::string> called_names;
  /// Occurrence count of every identifier token in the file.
  std::map<std::string, std::size_t> ident_uses;
};

/// Builds the summary for one indexed file (uses its scope tree to tell
/// class methods from free functions).
FileSummary summarize(const SourceFile& f, const ScopeTree& scope);

/// The collected summaries plus include-graph queries.
struct ProjectIndex {
  std::vector<FileSummary> files;

  /// Total occurrences of `name` across every indexed file.
  std::size_t total_uses(const std::string& name) const;

  /// Occurrences of `name` outside the header/source pair that declares
  /// it (same directory + same stem are "its own TU").
  std::size_t external_uses(const std::string& name,
                            const std::string& decl_rel) const;

  /// True when any indexed file calls (or declares) `name` — i.e. the
  /// identifier appears immediately before a "(" somewhere.
  bool is_called(const std::string& name) const;

  /// Resolved file-level include edges, keyed by include spelling
  /// ("channel/model.hpp" for src/channel/model.hpp). Built by
  /// build_edges(); used by the layering cycle check.
  std::map<std::string, std::vector<std::string>> build_edges() const;

  /// The include spelling of a root-relative path.
  static std::string include_spelling(const std::string& rel);
};

}  // namespace densevlc::analyze
