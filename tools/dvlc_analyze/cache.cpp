#include "cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/journal.hpp"

namespace densevlc::analyze {

namespace {

constexpr const char* kMagic = "dvlca 1";

std::string escape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      default: out += s[i];
    }
  }
  return out;
}

std::vector<std::string> split_tabs(const std::string& s) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while (true) {
    const std::size_t tab = s.find('\t', at);
    out.push_back(s.substr(at, tab == std::string::npos ? tab : tab - at));
    if (tab == std::string::npos) break;
    at = tab + 1;
  }
  return out;
}

}  // namespace

std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string serialize_entry(const CacheEntry& entry) {
  std::ostringstream out;
  const FileSummary& s = entry.summary;
  out << kMagic << '\n';
  out << "rel " << s.rel << '\n';
  out << "module " << s.module << '\n';
  out << "header " << (s.is_header ? 1 : 0) << '\n';
  out << "waived " << entry.waived << '\n';
  for (const Include& inc : s.includes) {
    out << "inc " << inc.line << ' ' << inc.target << '\n';
  }
  for (const auto& [rule, lines] : s.waivers) {
    out << "waiver " << rule;
    for (std::size_t l : lines) out << ' ' << l;
    out << '\n';
  }
  for (const SymbolDecl& d : s.symbols) {
    out << "sym " << d.line << ' ' << d.param_count << ' '
        << (d.is_definition ? 1 : 0) << ' ' << d.name << '\n';
  }
  for (const SymbolDecl& d : s.into_decls) {
    out << "into " << d.line << ' ' << d.param_count << ' '
        << (d.is_definition ? 1 : 0) << ' ' << d.name << '\n';
  }
  for (const std::string& name : s.called_names) {
    out << "called " << name << '\n';
  }
  for (const auto& [name, count] : s.ident_uses) {
    out << "use " << count << ' ' << name << '\n';
  }
  for (const Finding& f : entry.findings) {
    out << "finding " << escape_field(f.rule) << '\t' << escape_field(f.file)
        << '\t' << f.line << '\t' << escape_field(f.symbol) << '\t'
        << escape_field(f.message) << '\n';
  }
  return out.str();
}

bool parse_entry(const std::string& text, CacheEntry& out) {
  std::istringstream in{text};
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return false;
  out = CacheEntry{};
  FileSummary& s = out.summary;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos) return false;
    const std::string key = line.substr(0, sp);
    const std::string rest = line.substr(sp + 1);
    std::istringstream fields{rest};
    if (key == "rel") {
      s.rel = rest;
    } else if (key == "module") {
      s.module = rest;
    } else if (key == "header") {
      s.is_header = rest == "1";
    } else if (key == "waived") {
      out.waived = std::strtoull(rest.c_str(), nullptr, 10);
    } else if (key == "inc") {
      Include inc;
      fields >> inc.line;
      fields.get();  // separating space
      std::getline(fields, inc.target);
      s.includes.push_back(std::move(inc));
    } else if (key == "waiver") {
      std::string rule;
      fields >> rule;
      std::size_t l = 0;
      while (fields >> l) s.waivers[rule].insert(l);
    } else if (key == "sym" || key == "into") {
      SymbolDecl d;
      int def = 0;
      fields >> d.line >> d.param_count >> def >> d.name;
      if (d.name.empty()) return false;
      d.is_definition = def != 0;
      (key == "sym" ? s.symbols : s.into_decls).push_back(std::move(d));
    } else if (key == "called") {
      s.called_names.insert(rest);
    } else if (key == "use") {
      std::size_t count = 0;
      std::string name;
      fields >> count >> name;
      if (name.empty()) return false;
      s.ident_uses[name] = count;
    } else if (key == "finding") {
      const std::vector<std::string> cols = split_tabs(rest);
      if (cols.size() != 5) return false;
      Finding f;
      f.rule = unescape_field(cols[0]);
      f.file = unescape_field(cols[1]);
      f.line = std::strtoull(cols[2].c_str(), nullptr, 10);
      f.symbol = unescape_field(cols[3]);
      f.message = unescape_field(cols[4]);
      out.findings.push_back(std::move(f));
    } else {
      return false;  // unknown record: treat the entry as corrupt
    }
  }
  return true;
}

AnalysisCache::AnalysisCache(std::filesystem::path dir, std::string config)
    : dir_{std::move(dir)}, config_{std::move(config)} {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
  }
}

std::filesystem::path AnalysisCache::entry_path(
    const std::string& rel, const std::string& contents) const {
  const std::uint64_t key =
      fnv1a(contents) ^ fnv1a(config_) ^ (fnv1a(rel) * 0x9e3779b97f4a7c15ULL);
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.dvlca",
                static_cast<unsigned long long>(key));
  return dir_ / name;
}

std::optional<CacheEntry> AnalysisCache::probe(const std::string& rel,
                                               const std::string& contents) {
  if (dir_.empty()) return std::nullopt;
  std::ifstream in{entry_path(rel, contents)};
  if (!in) {
    ++misses_;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  CacheEntry entry;
  if (!parse_entry(buf.str(), entry) || entry.summary.rel != rel) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return entry;
}

void AnalysisCache::store(const std::string& rel, const std::string& contents,
                          const CacheEntry& entry) {
  if (dir_.empty()) return;
  // Atomic replace: a concurrent or killed analyzer must never leave a
  // half-written entry that a later probe would half-parse.
  (void)journal::write_file_atomic(entry_path(rel, contents).string(),
                                   serialize_entry(entry));
}

}  // namespace densevlc::analyze
