// Layering pass: enforces the declared module DAG over the quoted
// #include graph.
//
//   layer-back-edge   a file includes a module of equal or higher rank
//                     (same-module includes and declared extra edges such
//                     as sync -> phy are allowed). Back-edges are how
//                     "sim depends on core depends on sim" creep starts.
//   layer-cycle       the file-level include graph contains a cycle; the
//                     full cycle path is reported once, at its
//                     lexicographically smallest member.
//
// Only quoted includes are considered — system includes (<vector>) carry
// no layering information. Include targets are resolved the way the build
// does: relative to src/ for module headers, and relative to the
// including file's directory as a fallback. The whole pass is
// project-scoped and runs off FileSummary records only, so it costs
// nothing extra on a warm incremental run.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis.hpp"

namespace densevlc::analyze {
namespace {

/// Module of an include target as written (`channel/model.hpp` ->
/// "channel"). Targets without a directory ("analysis.hpp") resolve to
/// the includer's own module.
std::string target_module(const std::string& target,
                          const std::string& includer_module) {
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos) return includer_module;
  return target.substr(0, slash);
}

class LayeringPass final : public Pass {
 public:
  const char* name() const override { return "layering"; }

  std::vector<RuleInfo> rules() const override {
    return {
        {"layer-back-edge",
         "includes must point strictly down the declared module DAG"},
        {"layer-cycle", "the file-level include graph must be acyclic"},
    };
  }

  void run_project(const AnalysisContext& ctx, Sink& sink) const override {
    check_back_edges(ctx, sink);
    check_cycles(ctx, sink);
  }

 private:
  void check_back_edges(const AnalysisContext& ctx, Sink& sink) const {
    for (const FileSummary& f : ctx.index.files) {
      if (f.module.empty()) continue;
      const auto own = ctx.module_rank.find(f.module);
      if (own == ctx.module_rank.end()) continue;
      for (const Include& inc : f.includes) {
        const std::string to = target_module(inc.target, f.module);
        if (to == f.module) continue;
        const auto to_rank = ctx.module_rank.find(to);
        if (to_rank == ctx.module_rank.end()) continue;  // external header
        if (to_rank->second < own->second) continue;     // strictly down: ok
        const bool declared =
            std::find(ctx.extra_edges.begin(), ctx.extra_edges.end(),
                      std::make_pair(f.module, to)) != ctx.extra_edges.end();
        if (declared) continue;
        sink.report(f, inc.line, "layer-back-edge", f.module + "->" + to,
                    "module '" + f.module + "' (rank " +
                        std::to_string(own->second) + ") includes '" +
                        inc.target + "' from module '" + to + "' (rank " +
                        std::to_string(to_rank->second) +
                        "); the declared DAG only allows includes of "
                        "strictly lower-ranked modules");
      }
    }
  }

  void check_cycles(const AnalysisContext& ctx, Sink& sink) const {
    // Graph keyed by the include-path spelling of each file: a file
    // src/channel/model.hpp is the node "channel/model.hpp".
    std::map<std::string, const FileSummary*> by_spelling;
    for (const FileSummary& f : ctx.index.files) {
      by_spelling[ProjectIndex::include_spelling(f.rel)] = &f;
    }
    const auto edges = ctx.index.build_edges();

    // Iterative DFS with colors; report each cycle once.
    std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
    std::vector<std::string> stack;
    std::set<std::string> reported;
    for (const auto& [start, _] : edges) {
      if (color[start] != 0) continue;
      dfs(start, edges, color, stack, by_spelling, reported, sink);
    }
  }

  void dfs(const std::string& node,
           const std::map<std::string, std::vector<std::string>>& edges,
           std::map<std::string, int>& color, std::vector<std::string>& stack,
           const std::map<std::string, const FileSummary*>& by_spelling,
           std::set<std::string>& reported, Sink& sink) const {
    color[node] = 1;
    stack.push_back(node);
    const auto it = edges.find(node);
    if (it != edges.end()) {
      for (const std::string& next : it->second) {
        if (color[next] == 1) {
          // Found a cycle: stack from `next` to the top, closed by `node`.
          const auto from = std::find(stack.begin(), stack.end(), next);
          std::vector<std::string> cycle(from, stack.end());
          const std::string anchor =
              *std::min_element(cycle.begin(), cycle.end());
          if (reported.insert(anchor).second) {
            std::string path;
            for (const std::string& hop : cycle) path += hop + " -> ";
            path += next;
            const FileSummary* f = by_spelling.at(anchor);
            sink.report(*f, 1, "layer-cycle", anchor,
                        "include cycle: " + path);
          }
        } else if (color[next] == 0) {
          dfs(next, edges, color, stack, by_spelling, reported, sink);
        }
      }
    }
    stack.pop_back();
    color[node] = 2;
  }
};

}  // namespace

std::unique_ptr<Pass> make_layering_pass() {
  return std::make_unique<LayeringPass>();
}

}  // namespace densevlc::analyze
