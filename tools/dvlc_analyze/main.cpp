// dvlc_analyze: multi-pass static analyzer for the DenseVLC repo.
//
// Usage:
//   dvlc_analyze [options] <dir-or-file> [more...]
//
// Options:
//   --root <dir>            paths in reports are relative to this (default:
//                           current directory)
//   --passes <a,b,...>      run only these passes (conventions,
//                           determinism, layering, api, nondet-flow,
//                           unit-dim, dead-api); default: all
//   --baseline <file>       suppress findings recorded in the baseline;
//                           NOTE: only conventions/api findings belong
//                           there — determinism and layering baselines
//                           must stay empty (see docs/static_analysis.md)
//   --write-baseline <file> write the current findings as the new
//                           baseline and exit 0
//   --sarif <file>          also write SARIF 2.1.0 to <file>
//   --json <file>           also write plain JSON to <file>
//   --cache <dir>           incremental-analysis cache directory: files
//                           whose content hash is cached are not
//                           re-tokenized or re-analyzed
//   --sarif-diff <file>     compare against a previous SARIF document
//                           (by dvlcSymbol fingerprint): exit 1 only on
//                           findings that are NEW relative to it
//   --list-rules            print every pass and rule id, then exit
//
// Exit status: 0 clean (modulo baseline/diff), 1 findings, 2 usage error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis.hpp"
#include "baseline.hpp"
#include "common/journal.hpp"
#include "output.hpp"

namespace {

namespace fs = std::filesystem;
using namespace densevlc::analyze;

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while (at <= s.size()) {
    const std::size_t comma = s.find(',', at);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > at) out.push_back(s.substr(at, end - at));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return out;
}

bool write_file(const fs::path& path, const std::string& body) {
  // SARIF / JSON / baseline artifacts are consumed by CI diffs; a crash
  // mid-write must never leave a truncated document under the real name.
  return densevlc::journal::write_file_atomic(path.string(), body);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: dvlc_analyze [--root <dir>] [--passes a,b] [--baseline <f>]\n"
      "                    [--write-baseline <f>] [--sarif <f>] [--json <f>]\n"
      "                    [--cache <dir>] [--sarif-diff <old.sarif>]\n"
      "                    [--list-rules] <dir-or-file> [more...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path baseline_path;
  fs::path write_baseline_path;
  fs::path sarif_path;
  fs::path json_path;
  fs::path cache_dir;
  fs::path sarif_diff_path;
  std::vector<std::string> pass_filter;
  std::vector<fs::path> paths;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](fs::path& into) {
      if (i + 1 >= argc) return false;
      into = argv[++i];
      return true;
    };
    if (arg == "--root") {
      if (!value(root)) return usage();
    } else if (arg == "--baseline") {
      if (!value(baseline_path)) return usage();
    } else if (arg == "--write-baseline") {
      if (!value(write_baseline_path)) return usage();
    } else if (arg == "--sarif") {
      if (!value(sarif_path)) return usage();
    } else if (arg == "--json") {
      if (!value(json_path)) return usage();
    } else if (arg == "--cache") {
      if (!value(cache_dir)) return usage();
    } else if (arg == "--sarif-diff") {
      if (!value(sarif_diff_path)) return usage();
    } else if (arg == "--passes") {
      if (i + 1 >= argc) return usage();
      pass_filter = split_commas(argv[++i]);
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "dvlc_analyze: unknown option %s\n", arg.c_str());
      return usage();
    } else {
      paths.emplace_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& pass : make_all_passes()) {
      std::printf("pass %s\n", pass->name());
      for (const RuleInfo& r : pass->rules()) {
        std::printf("  %-24s %s\n", r.id.c_str(), r.summary.c_str());
      }
    }
    return 0;
  }
  if (paths.empty()) return usage();
  for (const fs::path& p : paths) {
    if (!fs::exists(p)) {
      std::fprintf(stderr, "dvlc_analyze: no such path: %s\n",
                   p.string().c_str());
      return 2;
    }
  }

  AnalyzeOptions options;
  options.pass_filter = pass_filter;
  options.cache_dir = cache_dir;
  const AnalysisResult result = analyze_paths(paths, root, options);

  if (!write_baseline_path.empty()) {
    if (!write_file(write_baseline_path, render_baseline(result.findings))) {
      std::fprintf(stderr, "dvlc_analyze: cannot write %s\n",
                   write_baseline_path.string().c_str());
      return 2;
    }
    std::printf("dvlc_analyze: wrote %zu finding(s) to %s\n",
                result.findings.size(),
                write_baseline_path.string().c_str());
    return 0;
  }

  Baseline baseline;
  if (!baseline_path.empty()) {
    BaselineLoad load = load_baseline(baseline_path);
    if (!load.ok) {
      std::fprintf(stderr, "dvlc_analyze: %s\n", load.error.c_str());
      return 2;
    }
    baseline = std::move(load.baseline);
  }
  const BaselineApplication applied =
      apply_baseline(baseline, result.findings);
  for (const std::string& stale : applied.stale) {
    std::fprintf(stderr, "dvlc_analyze: stale baseline entry: %s\n",
                 stale.c_str());
  }

  std::vector<RuleInfo> all_rules;
  for (const auto& pass : make_all_passes()) {
    for (RuleInfo& r : pass->rules()) all_rules.push_back(std::move(r));
  }
  if (!sarif_path.empty() &&
      !write_file(sarif_path, render_sarif(applied.fresh, all_rules))) {
    std::fprintf(stderr, "dvlc_analyze: cannot write %s\n",
                 sarif_path.string().c_str());
    return 2;
  }
  if (!json_path.empty() &&
      !write_file(json_path, render_json(applied.fresh))) {
    std::fprintf(stderr, "dvlc_analyze: cannot write %s\n",
                 json_path.string().c_str());
    return 2;
  }

  if (!sarif_diff_path.empty()) {
    std::ifstream old_in{sarif_diff_path};
    if (!old_in) {
      std::fprintf(stderr, "dvlc_analyze: cannot read %s\n",
                   sarif_diff_path.string().c_str());
      return 2;
    }
    std::ostringstream old_buf;
    old_buf << old_in.rdbuf();
    const auto old_fps = load_sarif_fingerprints(old_buf.str());
    const std::vector<Finding> fresh = sarif_diff(old_fps, applied.fresh);
    std::fputs(render_human(fresh).c_str(), stdout);
    std::printf(
        "dvlc_analyze: %zu file(s) (%zu from cache), %zu finding(s), "
        "%zu new vs %s, %zu waived, %zu baselined\n",
        result.files_scanned, result.files_from_cache, applied.fresh.size(),
        fresh.size(), sarif_diff_path.string().c_str(), result.waived,
        applied.suppressed);
    return fresh.empty() ? 0 : 1;
  }

  std::fputs(render_human(applied.fresh).c_str(), stdout);
  std::printf(
      "dvlc_analyze: %zu file(s) (%zu from cache), %zu finding(s), "
      "%zu waived, %zu baselined\n",
      result.files_scanned, result.files_from_cache, applied.fresh.size(),
      result.waived, applied.suppressed);
  return applied.fresh.empty() ? 0 : 1;
}
