// Pass framework for dvlc_analyze.
//
// Since PR 8 a pass has two halves. The *file* half sees one file at a
// time — its token stream plus the structural scope tree (parse.hpp) —
// and its findings are cacheable under the file's content hash. The
// *project* half runs every time but only consumes FileSummary records
// (index.hpp), so a warm incremental run never re-tokenizes an
// unchanged file. Findings funnel through a Sink that applies inline
// waivers; baselining happens after all passes ran (baseline.hpp).
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "index.hpp"
#include "parse.hpp"
#include "source.hpp"

namespace densevlc::analyze {

/// One diagnostic. `symbol` is the stable anchor used for baseline
/// matching (an identifier, module name, or rule-specific tag) so
/// baselines survive unrelated line drift.
struct Finding {
  std::string rule;
  std::string file;  // root-relative path
  std::size_t line = 0;
  std::string symbol;
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// Everything the project-level pass halves can look at.
struct AnalysisContext {
  std::filesystem::path root;
  ProjectIndex index;

  /// Layering rank per module; lower = more fundamental. A file may only
  /// include modules of strictly lower rank (or its own module), unless
  /// the edge is in `extra_edges`.
  std::map<std::string, int> module_rank;

  /// Declared same-tier exceptions, as (from, to) module pairs.
  std::vector<std::pair<std::string, std::string>> extra_edges;
};

/// Collects findings, dropping waived ones at report time.
class Sink {
 public:
  /// Waived findings are counted but not stored.
  void report(const SourceFile& file, std::size_t line,
              const std::string& rule, const std::string& symbol,
              const std::string& message);

  /// Summary-based overload for project passes (same waiver semantics —
  /// summaries carry the waiver map).
  void report(const FileSummary& file, std::size_t line,
              const std::string& rule, const std::string& symbol,
              const std::string& message);

  /// Reports that bypass waiver lookup (used for waiver-syntax errors —
  /// a broken waiver must not be able to waive itself).
  void report_unwaivable(const SourceFile& file, std::size_t line,
                         const std::string& rule, const std::string& symbol,
                         const std::string& message);

  std::size_t waived_count() const { return waived_; }
  std::vector<Finding> take_findings();

 private:
  void report_impl(const WaiverMap& waivers, const std::string& rel,
                   std::size_t line, const std::string& rule,
                   const std::string& symbol, const std::string& message);

  std::vector<Finding> findings_;
  std::size_t waived_ = 0;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  virtual std::vector<RuleInfo> rules() const = 0;

  /// File half: findings depend only on this file's content (cacheable).
  virtual void run_file(const SourceFile& file, const ScopeTree& scope,
                        Sink& sink) const {
    (void)file;
    (void)scope;
    (void)sink;
  }

  /// Project half: cross-TU findings over the collected summaries.
  virtual void run_project(const AnalysisContext& ctx, Sink& sink) const {
    (void)ctx;
    (void)sink;
  }
};

/// The pass registry, in canonical execution order.
std::vector<std::unique_ptr<Pass>> make_all_passes();

// Pass factories (one per translation unit).
std::unique_ptr<Pass> make_conventions_pass();
std::unique_ptr<Pass> make_determinism_pass();
std::unique_ptr<Pass> make_layering_pass();
std::unique_ptr<Pass> make_api_pass();
std::unique_ptr<Pass> make_nondet_pass();
std::unique_ptr<Pass> make_unitdim_pass();
std::unique_ptr<Pass> make_deadapi_pass();

/// The declared module DAG of this repository (see docs/static_analysis.md).
void default_layering(AnalysisContext& ctx);

struct AnalyzeOptions {
  /// Run only these passes (by pass name); empty = all.
  std::vector<std::string> pass_filter;
  /// Incremental-analysis cache directory; empty = caching disabled.
  std::filesystem::path cache_dir;
};

/// End-to-end: index `paths` under `root`, run the selected passes,
/// return sorted deduplicated findings. Used by main() and the
/// self-test suite.
struct AnalysisResult {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t files_from_cache = 0;  // served from the incremental cache
  std::size_t waived = 0;
};
AnalysisResult analyze_paths(const std::vector<std::filesystem::path>& paths,
                             const std::filesystem::path& root,
                             const AnalyzeOptions& options);

/// Back-compat convenience overload (no cache).
AnalysisResult analyze_paths(const std::vector<std::filesystem::path>& paths,
                             const std::filesystem::path& root,
                             const std::vector<std::string>& pass_filter = {});

}  // namespace densevlc::analyze
