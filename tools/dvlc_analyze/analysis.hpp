// Pass framework for dvlc_analyze.
//
// A Pass sees the whole project at once (every indexed SourceFile plus
// the include graph), so multi-file rules — layering, cross-overload
// pairing — are first-class. Findings funnel through a Sink that applies
// inline waivers; baselining happens after all passes ran (baseline.hpp).
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "source.hpp"

namespace densevlc::analyze {

/// One diagnostic. `symbol` is the stable anchor used for baseline
/// matching (an identifier, module name, or rule-specific tag) so
/// baselines survive unrelated line drift.
struct Finding {
  std::string rule;
  std::string file;  // root-relative path
  std::size_t line = 0;
  std::string symbol;
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// Everything the passes can look at.
struct AnalysisContext {
  std::filesystem::path root;
  std::vector<SourceFile> files;

  /// Layering rank per module; lower = more fundamental. A file may only
  /// include modules of strictly lower rank (or its own module), unless
  /// the edge is in `extra_edges`.
  std::map<std::string, int> module_rank;

  /// Declared same-tier exceptions, as (from, to) module pairs.
  std::vector<std::pair<std::string, std::string>> extra_edges;
};

/// Collects findings, dropping waived ones at report time.
class Sink {
 public:
  /// Waived findings are counted but not stored.
  void report(const SourceFile& file, std::size_t line,
              const std::string& rule, const std::string& symbol,
              const std::string& message);

  /// Reports that bypass waiver lookup (used for waiver-syntax errors —
  /// a broken waiver must not be able to waive itself).
  void report_unwaivable(const SourceFile& file, std::size_t line,
                         const std::string& rule, const std::string& symbol,
                         const std::string& message);

  std::size_t waived_count() const { return waived_; }
  std::vector<Finding> take_findings();

 private:
  std::vector<Finding> findings_;
  std::size_t waived_ = 0;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  virtual std::vector<RuleInfo> rules() const = 0;
  virtual void run(const AnalysisContext& ctx, Sink& sink) const = 0;
};

/// The pass registry, in canonical execution order.
std::vector<std::unique_ptr<Pass>> make_all_passes();

// Pass factories (one per translation unit).
std::unique_ptr<Pass> make_conventions_pass();
std::unique_ptr<Pass> make_determinism_pass();
std::unique_ptr<Pass> make_layering_pass();
std::unique_ptr<Pass> make_api_pass();

/// The declared module DAG of this repository (see docs/static_analysis.md).
void default_layering(AnalysisContext& ctx);

/// End-to-end: index `paths` under `root`, run the selected passes
/// (empty = all), return sorted deduplicated findings. `pass_filter`
/// entries are pass names. Used by main() and the self-test suite.
struct AnalysisResult {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t waived = 0;
};
AnalysisResult analyze_paths(const std::vector<std::filesystem::path>& paths,
                             const std::filesystem::path& root,
                             const std::vector<std::string>& pass_filter = {});

}  // namespace densevlc::analyze
