// Structural parser for dvlc_analyze: a lightweight scope tree over the
// shared token stream (source.hpp).
//
// The flat token passes of PR 6 could not tell a *declaration* of `time`
// (`std::vector<double> time(n);`) from a *call* to ::time(), or a
// body-local accumulator from a captured one. The scope tree closes that
// gap without becoming a C++ parser: it recognizes the handful of
// structures the passes reason about —
//
//   - namespace / class / struct / enum scopes (with names),
//   - function definitions (name + parameter list),
//   - lambda bodies, specially tagged when they are arguments of a
//     parallel_for / parallel_reduce call (the reduce's second lambda is
//     the *combine* body — the ordered-fold contract applies there),
//   - plain control/compound blocks,
//
// and records every variable declared in each scope together with the
// spelled type (template arguments included) and the unit suffix parsed
// from the name (`_m`, `_w`, `_ms`, ...). Declarations it cannot parse
// are simply absent — every consumer treats "unknown" as "no claim".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "source.hpp"

namespace densevlc::analyze {

enum class ScopeKind {
  kFile,
  kNamespace,
  kClass,  // class / struct / union / enum
  kFunction,
  kLambda,
  kParallelBody,  // lambda argument of parallel_for / parallel_reduce
  kCombineBody,   // second lambda argument of parallel_reduce
  kBlock,
};

/// One declared variable (local, parameter, or class field).
struct ScopeVar {
  std::string name;
  std::string type;    // spelled type, e.g. "std::unordered_map<int,double>"
  std::string suffix;  // recognized unit suffix ("_m", "_w", ...) or ""
  std::size_t line = 0;
  std::size_t decl_tok = 0;  // token index of the name
  bool is_param = false;
};

/// One scope. Children are indices into ScopeTree::nodes (the vector is
/// append-only during the build, so indices are stable).
struct ScopeNode {
  ScopeKind kind = ScopeKind::kBlock;
  std::string name;          // namespace/class/function name, "" otherwise
  std::size_t open_tok = 0;  // token index of "{" (0 for the file root)
  std::size_t close_tok = 0; // token index of matching "}" (or token count)
  std::size_t line = 0;
  std::size_t parent = 0;    // index into nodes; root points at itself
  std::vector<std::size_t> children;
  std::vector<ScopeVar> vars;
};

class ScopeTree {
 public:
  std::vector<ScopeNode> nodes;  // nodes[0] is the file root

  /// Index of the innermost scope whose token range contains `tok`.
  std::size_t innermost(std::size_t tok) const;

  /// Innermost declaration of `name` visible at token `tok` (parameters
  /// and class fields included), or nullptr when no scope declares it.
  const ScopeVar* lookup(const std::string& name, std::size_t tok) const;

  /// True when `tok` lies inside a scope of kind `k` (at any depth).
  bool inside(std::size_t tok, ScopeKind k) const;

  /// Walks outward from `tok`; returns the nearest enclosing scope of
  /// kind `k`, or npos.
  std::size_t enclosing(std::size_t tok, ScopeKind k) const;
};

/// Builds the scope tree for one token stream.
ScopeTree build_scope_tree(const std::vector<Token>& toks);

/// The recognized unit suffix of an identifier ("" when none). A
/// trailing underscore (private members) is ignored: `power_used_w_`
/// has suffix "_w".
std::string unit_suffix_of(const std::string& name);

}  // namespace densevlc::analyze
