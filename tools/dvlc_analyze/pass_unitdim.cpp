// Unit-dimension pass: dimensional analysis over the unit-suffix naming
// convention, covering the raw-double code `Quantity<Dim>` has not
// reached yet.
//
// Every suffixed identifier (`_m`, `_w`, `_hz`, ...) carries a dimension
// vector over six axes (m, kg, s, A, lm, bit) and a scale relative to
// the SI base (`_mm` = 1e-3 m). Expressions are analyzed as
// *multiplicative terms* — products/quotients of factors between
// additive or comparison operators — so `a_m * b_m + c_m2` is clean and
// `d_m + e_w` is not. Anything the algebra cannot prove (unsuffixed
// identifiers, function calls on unsuffixed names) makes the whole term
// "unknown", and unknown terms make no claim; numeric literals are
// dimensionless wildcards so `x_m * 2.0 + y_m` and `t_s > 0` stay
// clean.
//
//   unit-dim-mix      additive mix of incompatible terms (`_m + _w`),
//                     including equal dimension at a different scale for
//                     single-identifier operands (`_m + _mm`)
//   unit-dim-compare  comparison across incompatible terms
//   unit-dim-assign   assignment of an incompatible term to a suffixed
//                     lvalue (`x_m = a_m * b_m`)
#include <array>
#include <cstdlib>
#include <string>

#include "analysis.hpp"

namespace densevlc::analyze {
namespace {

/// Dimension exponents over (m, kg, s, A, lm, bit).
using Dim = std::array<int, 6>;

struct UnitInfo {
  const char* suffix;
  Dim dim;
  double scale;  // factor to the SI-coherent unit of `dim`
};

constexpr Dim kDimless = {0, 0, 0, 0, 0, 0};

// Dimensionless *annotation* suffixes (_rad, _deg, _db, _dbm, _pct,
// _ppm) are deliberately absent: dB math and angle math break linear
// dimension algebra, so those identifiers count as "no claim".
const UnitInfo kUnits[] = {
    {"_m", {1, 0, 0, 0, 0, 0}, 1.0},
    {"_mm", {1, 0, 0, 0, 0, 0}, 1e-3},
    {"_cm", {1, 0, 0, 0, 0, 0}, 1e-2},
    {"_m2", {2, 0, 0, 0, 0, 0}, 1.0},
    {"_mm2", {2, 0, 0, 0, 0, 0}, 1e-6},
    {"_s", {0, 0, 1, 0, 0, 0}, 1.0},
    {"_ms", {0, 0, 1, 0, 0, 0}, 1e-3},
    {"_us", {0, 0, 1, 0, 0, 0}, 1e-6},
    {"_ns", {0, 0, 1, 0, 0, 0}, 1e-9},
    {"_hz", {0, 0, -1, 0, 0, 0}, 1.0},
    {"_khz", {0, 0, -1, 0, 0, 0}, 1e3},
    {"_mhz", {0, 0, -1, 0, 0, 0}, 1e6},
    {"_ghz", {0, 0, -1, 0, 0, 0}, 1e9},
    {"_w", {2, 1, -3, 0, 0, 0}, 1.0},
    {"_mw", {2, 1, -3, 0, 0, 0}, 1e-3},
    {"_j", {2, 1, -2, 0, 0, 0}, 1.0},
    {"_a", {0, 0, 0, 1, 0, 0}, 1.0},
    {"_ma", {0, 0, 0, 1, 0, 0}, 1e-3},
    {"_a2", {0, 0, 0, 2, 0, 0}, 1.0},
    {"_v", {2, 1, -3, -1, 0, 0}, 1.0},
    {"_ohm", {2, 1, -3, -2, 0, 0}, 1.0},
    {"_lm", {0, 0, 0, 0, 1, 0}, 1.0},
    {"_lux", {-2, 0, 0, 0, 1, 0}, 1.0},
    {"_bps", {0, 0, -1, 0, 0, 1}, 1.0},
    {"_kbps", {0, 0, -1, 0, 0, 1}, 1e3},
    {"_mbps", {0, 0, -1, 0, 0, 1}, 1e6},
    {"_per_m", {-1, 0, 0, 0, 0, 0}, 1.0},
    {"_per_s", {0, 0, -1, 0, 0, 0}, 1.0},
    {"_per_hz", {0, 0, 1, 0, 0, 0}, 1.0},
    {"_per_w", {-2, -1, 3, 0, 0, 0}, 1.0},
};

const UnitInfo* unit_of_suffix(const std::string& suffix) {
  for (const UnitInfo& u : kUnits) {
    if (suffix == u.suffix) return &u;
  }
  return nullptr;
}

/// The dimensional claim of one multiplicative term.
struct Term {
  bool known = false;     // all factors had suffixes (numbers allowed)
  bool pure = false;      // exactly one suffixed identifier, no numbers
  Dim dim = kDimless;
  double scale = 1.0;     // meaningful only when `pure`
  std::string spelling;   // suffix spelling for messages, e.g. "_m*_m"
};

std::string dim_to_string(const Dim& d) {
  static const char* const kAxis[] = {"m", "kg", "s", "A", "lm", "bit"};
  std::string out;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d[i] == 0) continue;
    if (!out.empty()) out += "·";
    out += kAxis[i];
    if (d[i] != 1) out += "^" + std::to_string(d[i]);
  }
  return out.empty() ? "1" : out;
}

bool term_boundary(const Token& t) {
  if (t.kind == TokenKind::kIdentifier) {
    return t.text == "return" || t.text == "if" || t.text == "while" ||
           t.text == "for" || t.text == "else" || t.text == "case";
  }
  if (t.kind != TokenKind::kPunct) return false;
  const std::string& s = t.text;
  return s == "(" || s == ")" || s == "," || s == ";" || s == "{" ||
         s == "}" || s == "?" || s == ":" || s == "&&" || s == "||" ||
         s == "!" || s == "[" || s == "]" || s == "+" || s == "-" ||
         s == "<" || s == ">" || s == "<=" || s == ">=" || s == "==" ||
         s == "!=" || s == "=" || s == "+=" || s == "-=" || s == "*=" ||
         s == "/=" || s == "return";
}

/// Extracts the multiplicative term extending right from `begin`
/// (inclusive) until a term boundary. Sets `end` to one past the last
/// consumed token index.
Term read_term_right(const std::vector<Token>& toks, std::size_t begin,
                     std::size_t* end) {
  Term term;
  term.known = true;
  int suffixed_factors = 0;
  int number_factors = 0;
  bool dividing = false;
  std::size_t i = begin;
  for (; i < toks.size();) {
    const Token& t = toks[i];
    if (!is_code(t)) {
      ++i;
      continue;
    }
    if (term_boundary(t)) break;
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "*") {
        dividing = false;
        ++i;
        continue;
      }
      if (t.text == "/") {
        dividing = true;
        ++i;
        continue;
      }
      // `.`/`->`/`::` are handled when the identifier chain is read.
      if (t.text == "." || t.text == "->" || t.text == "::") {
        ++i;
        continue;
      }
      term.known = false;  // anything else: no claim
      ++i;
      continue;
    }
    if (t.kind == TokenKind::kNumber) {
      ++number_factors;
      ++i;
      continue;
    }
    if (t.kind == TokenKind::kString) {
      term.known = false;
      ++i;
      continue;
    }
    // Identifier chain: a.b->c_m — the suffix of the *last* link counts.
    std::size_t last_ident = i;
    std::size_t j = i;
    while (true) {
      const std::size_t nxt = next_code(toks, j);
      if (nxt == std::string::npos) break;
      if (toks[nxt].text == "." || toks[nxt].text == "->" ||
          toks[nxt].text == "::") {
        const std::size_t member = next_code(toks, nxt);
        if (member == std::string::npos ||
            toks[member].kind != TokenKind::kIdentifier) {
          break;
        }
        last_ident = member;
        j = member;
        continue;
      }
      break;
    }
    const std::string suffix = unit_suffix_of(toks[last_ident].text);
    std::size_t after = next_code(toks, last_ident);
    // Subscripts are transparent: samples_s[i] has the element's unit.
    while (after != std::string::npos && toks[after].text == "[") {
      std::size_t depth = 0;
      std::size_t k = after;
      while (k < toks.size()) {
        if (toks[k].text == "[") ++depth;
        if (toks[k].text == "]" && --depth == 0) break;
        ++k;
      }
      if (k >= toks.size()) break;
      after = next_code(toks, k);
      j = k;
    }
    const bool call = after != std::string::npos && toks[after].text == "(";
    if (call) {
      // `power_w(...)` keeps its suffix claim; an unsuffixed call makes
      // no claim. Either way, skip the argument list.
      const std::size_t close = match_paren(toks, after);
      if (close == std::string::npos) {
        term.known = false;
        break;
      }
      j = close;
    }
    const UnitInfo* unit =
        suffix.empty() ? nullptr : unit_of_suffix(suffix);
    if (unit == nullptr) {
      term.known = false;
    } else {
      ++suffixed_factors;
      for (std::size_t d = 0; d < term.dim.size(); ++d) {
        term.dim[d] += dividing ? -unit->dim[d] : unit->dim[d];
      }
      term.scale = dividing ? term.scale / unit->scale
                            : term.scale * unit->scale;
      if (!term.spelling.empty()) term.spelling += dividing ? "/" : "*";
      term.spelling += suffix;
    }
    i = j + 1;
  }
  *end = i;
  if (suffixed_factors == 0) term.known = false;
  term.pure = suffixed_factors == 1 && number_factors == 0;
  return term;
}

/// Extracts the multiplicative term extending left from `end`
/// (exclusive) back to a term boundary, then reads it left-to-right.
Term read_term_left(const std::vector<Token>& toks, std::size_t end) {
  std::size_t begin = end;
  int bracket = 0;
  while (begin > 0) {
    const Token& t = toks[begin - 1];
    if (!is_code(t)) {
      --begin;
      continue;
    }
    if (t.text == "]") ++bracket;
    if (t.text == "[" && bracket > 0) {
      --bracket;
      --begin;
      continue;
    }
    if (bracket > 0) {
      --begin;
      continue;
    }
    if (term_boundary(t)) break;
    --begin;
  }
  std::size_t ignored = 0;
  Term term = read_term_right(toks, begin, &ignored);
  // Only meaningful when the left term ends exactly at `end`.
  if (ignored < end) {
    // Some boundary stopped the re-read early (shouldn't happen, but a
    // mismatch means the claim is unreliable).
    term.known = false;
  }
  return term;
}

bool is_binary_context(const std::vector<Token>& toks, std::size_t i) {
  const std::size_t p = prev_code(toks, i);
  if (p == std::string::npos) return false;
  const Token& t = toks[p];
  return t.kind == TokenKind::kIdentifier || t.kind == TokenKind::kNumber ||
         t.text == ")" || t.text == "]";
}

class UnitDimPass final : public Pass {
 public:
  const char* name() const override { return "unit-dim"; }

  std::vector<RuleInfo> rules() const override {
    return {
        {"unit-dim-mix", "additive terms must agree in dimension and scale"},
        {"unit-dim-compare", "compared terms must agree in dimension"},
        {"unit-dim-assign",
         "assigned terms must match the lvalue's unit suffix"},
    };
  }

  void run_file(const SourceFile& f, const ScopeTree& scope,
                Sink& sink) const override {
    (void)scope;
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kPunct) continue;
      const std::string& s = t.text;

      if ((s == "+" || s == "-") && is_binary_context(toks, i)) {
        check_pair(f, toks, i, "unit-dim-mix", sink);
        continue;
      }
      if (s == "<" || s == ">" || s == "<=" || s == ">=" || s == "==" ||
          s == "!=") {
        if (!is_binary_context(toks, i)) continue;
        check_pair(f, toks, i, "unit-dim-compare", sink);
        continue;
      }
      if (s == "=" || s == "+=" || s == "-=") {
        check_assign(f, toks, i, sink);
      }
    }
  }

 private:
  static void check_pair(const SourceFile& f, const std::vector<Token>& toks,
                         std::size_t op, const char* rule, Sink& sink) {
    const Term lhs = read_term_left(toks, op);
    if (!lhs.known) return;
    std::size_t end = 0;
    const std::size_t rhs_begin = next_code(toks, op);
    if (rhs_begin == std::string::npos) return;
    const Term rhs = read_term_right(toks, rhs_begin, &end);
    if (!rhs.known) return;
    if (lhs.dim != rhs.dim) {
      sink.report(f, toks[op].line, rule, lhs.spelling + toks[op].text +
                      rhs.spelling,
                  "operands of '" + toks[op].text + "' have units " +
                      lhs.spelling + " (" + dim_to_string(lhs.dim) +
                      ") and " + rhs.spelling + " (" +
                      dim_to_string(rhs.dim) +
                      "); mixed-dimension arithmetic is a unit bug");
      return;
    }
    // Same dimension, different scale: only claimed for pure operands
    // (`x_m + y_mm`), where no conversion factor can be hiding.
    if (std::string(rule) == std::string("unit-dim-mix") && lhs.pure &&
        rhs.pure && lhs.scale != rhs.scale) {
      sink.report(f, toks[op].line, rule,
                  lhs.spelling + toks[op].text + rhs.spelling,
                  "operands of '" + toks[op].text + "' have suffixes " +
                      lhs.spelling + " and " + rhs.spelling +
                      " — same dimension at different scales; convert "
                      "explicitly before mixing");
    }
  }

  static void check_assign(const SourceFile& f, const std::vector<Token>& toks,
                           std::size_t op, Sink& sink) {
    // The lvalue's suffix: the identifier chain directly before the `=`
    // (subscripts transparent).
    std::size_t p = prev_code(toks, op);
    if (p == std::string::npos) return;
    if (toks[p].text == "]") {
      int depth = 0;
      while (p != std::string::npos) {
        if (toks[p].text == "]") ++depth;
        if (toks[p].text == "[" && --depth == 0) break;
        p = prev_code(toks, p);
      }
      if (p == std::string::npos) return;
      p = prev_code(toks, p);
      if (p == std::string::npos) return;
    }
    if (toks[p].kind != TokenKind::kIdentifier) return;
    const std::string suffix = unit_suffix_of(toks[p].text);
    const UnitInfo* lhs = suffix.empty() ? nullptr : unit_of_suffix(suffix);
    if (lhs == nullptr) return;

    std::size_t end = 0;
    const std::size_t rhs_begin = next_code(toks, op);
    if (rhs_begin == std::string::npos) return;
    const Term rhs = read_term_right(toks, rhs_begin, &end);
    if (!rhs.known) return;
    // Only the first additive term is inspected; later terms are covered
    // by unit-dim-mix against this one.
    if (lhs->dim != rhs.dim) {
      sink.report(f, toks[op].line, "unit-dim-assign",
                  toks[p].text + toks[op].text + rhs.spelling,
                  "'" + toks[p].text + "' (" + suffix + ", " +
                      dim_to_string(lhs->dim) + ") is assigned a term of " +
                      rhs.spelling + " (" + dim_to_string(rhs.dim) +
                      "); the value cannot be a " + suffix + " quantity");
      return;
    }
    if (rhs.pure && lhs->scale != rhs.scale) {
      sink.report(f, toks[op].line, "unit-dim-assign",
                  toks[p].text + toks[op].text + rhs.spelling,
                  "'" + toks[p].text + "' (" + suffix +
                      ") is assigned a pure " + rhs.spelling +
                      " value — same dimension at a different scale; "
                      "convert explicitly");
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_unitdim_pass() {
  return std::make_unique<UnitDimPass>();
}

}  // namespace densevlc::analyze
