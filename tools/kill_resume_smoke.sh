#!/bin/sh
# Kill-and-resume smoke for the durable campaign runner.
#
# Runs the quick campaign three ways and demands byte-identical JSON:
#   1. an uninterrupted durable run (the reference);
#   2. a run SIGKILLed by deterministic crash injection after 3 journaled
#      instances, then resumed at a different thread count;
#   3. a supervised 2-shard run whose workers each crash once on their
#      first attempt and are requeued with backoff.
# Any divergence prints MISMATCH (the ctest failure regex) and exits 1.
#
# usage: kill_resume_smoke.sh <campaign-binary> <campaign.ini> <scratch-dir>
set -u

bin="$1"
spec="$2"
scratch="$3"

rm -rf "$scratch"
mkdir -p "$scratch"
fail=0

echo "== reference: uninterrupted durable run =="
if ! "$bin" --quick --threads 2 --dir "$scratch/ref" "$spec" \
    "$scratch/ref.json"; then
  echo "MISMATCH: reference durable run failed"
  exit 1
fi

echo "== crash run: SIGKILL after 3 journaled instances =="
if "$bin" --quick --threads 1 --dir "$scratch/crash" \
    --crash-after-instances 3 "$spec" "$scratch/crash.json"; then
  echo "MISMATCH: crash-injected run exited zero (no crash happened)"
  fail=1
fi

echo "== resume the crashed campaign (different thread count) =="
if ! "$bin" --quick --threads 2 --resume "$scratch/crash" "$spec" \
    "$scratch/crash.json"; then
  echo "MISMATCH: resume of the crashed campaign failed"
  fail=1
fi
if ! cmp "$scratch/ref.json" "$scratch/crash.json"; then
  echo "MISMATCH: resumed JSON differs from the uninterrupted reference"
  fail=1
fi

echo "== supervised shards: 2 workers, each crashes on first attempt =="
if ! "$bin" --quick --threads 1 --dir "$scratch/sup" --supervise 2 \
    --crash-after-instances 2 "$spec" "$scratch/sup.json"; then
  echo "MISMATCH: supervised run failed"
  fail=1
fi
if ! cmp "$scratch/ref.json" "$scratch/sup.json"; then
  echo "MISMATCH: supervised JSON differs from the uninterrupted reference"
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "kill-resume smoke OK"
fi
exit "$fail"
