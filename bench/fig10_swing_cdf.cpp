// Reproduces paper Fig. 10: empirical CDFs of the optimal swing levels
// assigned toward RX2 for four representative TXs (TX3, TX5, TX10, TX15),
// across random instances and the budget sweep. Expected shapes: TX10
// has a steep CDF edge at full swing (it owns the best channel to RX2);
// TX5 similar but offset (assigned later); TX3 rises smoothly (often
// intermediate); TX15 stays at zero (would interfere too much).
#include <iostream>
#include <vector>

#include "alloc/optimal.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "scenario/scenarios.hpp"

int main() {
  using namespace densevlc;

  const auto tb = core::make_simulation_testbed();
  const auto instances = scenario::random_instances(5, 0.25, tb.room, 0xF16'10);

  // Swing of interest: what each TX gives to RX2 (paper index 2 ->
  // 0-based 1).
  const std::vector<std::size_t> txs{2, 4, 9, 14};  // TX3, TX5, TX10, TX15

  alloc::OptimalSolverConfig cfg;
  cfg.max_iterations = 250;

  std::vector<std::vector<double>> samples(txs.size());
  for (const auto& rx_xy : instances) {
    const auto h = tb.channel_for(rx_xy);
    for (double budget = 0.1; budget <= 2.51; budget += 0.2) {
      const auto res = alloc::solve_optimal(h, Watts{budget}, tb.budget, cfg);
      for (std::size_t t = 0; t < txs.size(); ++t) {
        samples[t].push_back(res.allocation.swing(txs[t], 1));
      }
    }
  }

  std::cout << "Fig. 10 - Empirical CDF of optimal swing toward RX2 "
               "(5 instances x budget sweep)\n\n";
  TablePrinter table{{"Isw [A]", "TX3", "TX5", "TX10", "TX15"}};
  for (double isw = 0.0; isw <= 0.901; isw += 0.1) {
    std::vector<double> row{isw};
    for (std::size_t t = 0; t < txs.size(); ++t) {
      std::size_t below = 0;
      for (double s : samples[t]) below += s <= isw + 1e-12 ? 1 : 0;
      row.push_back(static_cast<double>(below) /
                    static_cast<double>(samples[t].size()));
    }
    table.add_numeric_row(row, 3);
  }
  table.print(std::cout);
  table.print_csv(std::cout, "fig10");

  auto frac_full = [&](std::size_t t) {
    std::size_t full = 0;
    for (double s : samples[t]) full += s > 0.85 ? 1 : 0;
    return static_cast<double>(full) / static_cast<double>(samples[t].size());
  };
  auto frac_zero = [&](std::size_t t) {
    std::size_t zero = 0;
    for (double s : samples[t]) zero += s < 0.05 ? 1 : 0;
    return static_cast<double>(zero) / static_cast<double>(samples[t].size());
  };

  std::cout << "\nPaper: TX10 mostly at full swing; TX5 later; TX3 often "
               "intermediate; TX15 unused.\n"
            << "Measured: full-swing fraction TX10 = " << fmt(frac_full(2), 2)
            << ", TX5 = " << fmt(frac_full(1), 2)
            << "; TX15 zero fraction = " << fmt(frac_zero(3), 2) << '\n';
  return 0;
}
