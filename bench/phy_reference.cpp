// Frozen pre-LUT scalar PHY implementations. See phy_reference.hpp —
// this code is intentionally identical to the production sources before
// the LUT/zero-allocation rework and must not be modernised.
#include "phy_reference.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"
#include "phy/gf256.hpp"

namespace densevlc::bench::ref {

namespace gf = densevlc::phy::gf256;
using densevlc::phy::Chip;
using densevlc::phy::kMaxPayload;
using densevlc::phy::kRsBlockData;
using densevlc::phy::kRsBlockParity;
using densevlc::phy::kSfd;
using densevlc::phy::LenientDecode;
using densevlc::phy::MacFrame;
using densevlc::phy::ParsedFrame;
using densevlc::phy::RsDecodeResult;

std::vector<Chip> manchester_encode(std::span<const std::uint8_t> bits) {
  std::vector<Chip> chips;
  chips.reserve(bits.size() * 2);
  for (std::uint8_t bit : bits) {
    if (bit) {
      chips.push_back(Chip::kHigh);  // 1: Ih -> Il
      chips.push_back(Chip::kLow);
    } else {
      chips.push_back(Chip::kLow);   // 0: Il -> Ih
      chips.push_back(Chip::kHigh);
    }
  }
  return chips;
}

LenientDecode manchester_decode_lenient(std::span<const Chip> chips) {
  LenientDecode out;
  out.bits.reserve(chips.size() / 2);
  for (std::size_t i = 0; i + 1 < chips.size(); i += 2) {
    if (chips[i] == Chip::kLow && chips[i + 1] == Chip::kHigh) {
      out.bits.push_back(0);
    } else if (chips[i] == Chip::kHigh && chips[i + 1] == Chip::kLow) {
      out.bits.push_back(1);
    } else {
      out.bits.push_back(0);
      ++out.violations;
    }
  }
  if (chips.size() % 2 != 0) ++out.violations;
  return out;
}

std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes) {
    for (int i = 7; i >= 0; --i) {
      bits.push_back(static_cast<std::uint8_t>((b >> i) & 1));
    }
  }
  return bits;
}

std::optional<std::vector<std::uint8_t>> bits_to_bytes(
    std::span<const std::uint8_t> bits) {
  if (bits.size() % 8 != 0) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  bytes.reserve(bits.size() / 8);
  for (std::size_t i = 0; i < bits.size(); i += 8) {
    std::uint8_t b = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      b = static_cast<std::uint8_t>((b << 1) | (bits[i + j] & 1));
    }
    bytes.push_back(b);
  }
  return bytes;
}

namespace {

std::vector<std::size_t> permutation(std::size_t size, std::size_t depth) {
  const std::size_t cols = (size + depth - 1) / depth;
  std::vector<std::size_t> perm;
  perm.reserve(size);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < depth; ++r) {
      const std::size_t idx = r * cols + c;
      if (idx < size) perm.push_back(idx);
    }
  }
  return perm;
}

}  // namespace

std::vector<std::uint8_t> interleave(std::span<const std::uint8_t> data,
                                     std::size_t depth) {
  if (depth <= 1 || data.size() <= depth) {
    return {data.begin(), data.end()};
  }
  const auto perm = permutation(data.size(), depth);
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = data[perm[i]];
  }
  return out;
}

std::vector<std::uint8_t> deinterleave(std::span<const std::uint8_t> data,
                                       std::size_t depth) {
  if (depth <= 1 || data.size() <= depth) {
    return {data.begin(), data.end()};
  }
  const auto perm = permutation(data.size(), depth);
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[perm[i]] = data[i];
  }
  return out;
}

ReedSolomon::ReedSolomon(std::size_t parity_symbols)
    : n_parity_{parity_symbols} {
  if (parity_symbols < 2 || parity_symbols > 254 || parity_symbols % 2 != 0) {
    throw std::invalid_argument{
        "ReedSolomon: parity_symbols must be even and in [2, 254]"};
  }
  generator_ = {1};
  for (std::size_t i = 0; i < n_parity_; ++i) {
    const std::uint8_t root = gf::pow_alpha(static_cast<int>(i));
    const std::uint8_t factor[2] = {1, root};
    generator_ = gf::poly_mul(generator_, factor);
  }
  DVLC_ASSERT(generator_.size() == n_parity_ + 1 && generator_.front() == 1,
              "RS generator polynomial must be monic of degree 2t");
}

std::vector<std::uint8_t> ReedSolomon::encode(
    std::span<const std::uint8_t> message) const {
  if (message.size() + n_parity_ > 255) {
    throw std::invalid_argument{"ReedSolomon: message too long for GF(256)"};
  }
  std::vector<std::uint8_t> remainder(n_parity_, 0);
  for (std::uint8_t byte : message) {
    const std::uint8_t feedback = gf::add(byte, remainder.front());
    std::rotate(remainder.begin(), remainder.begin() + 1, remainder.end());
    remainder.back() = 0;
    if (feedback != 0) {
      for (std::size_t i = 0; i < n_parity_; ++i) {
        remainder[i] = gf::add(remainder[i],
                               gf::mul(feedback, generator_[i + 1]));
      }
    }
  }
  std::vector<std::uint8_t> codeword(message.begin(), message.end());
  codeword.insert(codeword.end(), remainder.begin(), remainder.end());
  return codeword;
}

std::optional<RsDecodeResult> ReedSolomon::decode(
    std::span<const std::uint8_t> codeword) const {
  if (codeword.size() <= n_parity_ || codeword.size() > 255)
    return std::nullopt;
  const std::size_t n = codeword.size();
  const std::size_t k = n - n_parity_;

  std::vector<std::uint8_t> syndromes(n_parity_);
  bool all_zero = true;
  for (std::size_t i = 0; i < n_parity_; ++i) {
    syndromes[i] = gf::poly_eval(codeword, gf::pow_alpha(static_cast<int>(i)));
    all_zero = all_zero && syndromes[i] == 0;
  }
  if (all_zero) {
    return RsDecodeResult{
        {codeword.begin(), codeword.begin() + static_cast<std::ptrdiff_t>(k)},
        0};
  }

  std::vector<std::uint8_t> sigma{1};
  std::vector<std::uint8_t> prev_sigma{1};
  std::size_t errors = 0;
  std::size_t m = 1;
  std::uint8_t prev_discrepancy = 1;
  for (std::size_t step = 0; step < n_parity_; ++step) {
    std::uint8_t d = syndromes[step];
    for (std::size_t i = 1; i < sigma.size() && i <= step; ++i) {
      d = gf::add(d, gf::mul(sigma[i], syndromes[step - i]));
    }
    if (d == 0) {
      ++m;
      continue;
    }
    if (2 * errors <= step) {
      const std::vector<std::uint8_t> old_sigma = sigma;
      const std::uint8_t coeff = gf::div(d, prev_discrepancy);
      std::vector<std::uint8_t> adjust(prev_sigma.size() + m, 0);
      for (std::size_t i = 0; i < prev_sigma.size(); ++i) {
        adjust[i + m] = gf::mul(prev_sigma[i], coeff);
      }
      if (adjust.size() > sigma.size()) sigma.resize(adjust.size(), 0);
      for (std::size_t i = 0; i < adjust.size(); ++i) {
        sigma[i] = gf::add(sigma[i], adjust[i]);
      }
      errors = step + 1 - errors;
      prev_sigma = old_sigma;
      prev_discrepancy = d;
      m = 1;
    } else {
      const std::uint8_t coeff = gf::div(d, prev_discrepancy);
      std::vector<std::uint8_t> adjust(prev_sigma.size() + m, 0);
      for (std::size_t i = 0; i < prev_sigma.size(); ++i) {
        adjust[i + m] = gf::mul(prev_sigma[i], coeff);
      }
      if (adjust.size() > sigma.size()) sigma.resize(adjust.size(), 0);
      for (std::size_t i = 0; i < adjust.size(); ++i) {
        sigma[i] = gf::add(sigma[i], adjust[i]);
      }
      ++m;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const std::size_t num_errors = sigma.size() - 1;
  if (num_errors == 0 || num_errors > correction_capacity())
    return std::nullopt;

  std::vector<std::size_t> error_positions;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const int exponent = static_cast<int>(n - 1 - pos);
    const std::uint8_t x_inv = gf::pow_alpha(-exponent);
    std::uint8_t acc = 0;
    for (std::size_t i = sigma.size(); i-- > 0;) {
      acc = gf::add(gf::mul(acc, x_inv), sigma[i]);
    }
    if (acc == 0) error_positions.push_back(pos);
  }
  if (error_positions.size() != num_errors) return std::nullopt;

  std::vector<std::uint8_t> omega(n_parity_, 0);
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    for (std::size_t j = 0; j + i < n_parity_ && j < syndromes.size(); ++j) {
      omega[i + j] = gf::add(omega[i + j], gf::mul(sigma[i], syndromes[j]));
    }
  }
  std::vector<std::uint8_t> sigma_deriv;
  for (std::size_t i = 1; i < sigma.size(); i += 2) {
    sigma_deriv.push_back(sigma[i]);
  }

  std::vector<std::uint8_t> corrected(codeword.begin(), codeword.end());
  for (std::size_t pos : error_positions) {
    const int exponent = static_cast<int>(n - 1 - pos);
    const std::uint8_t x_inv = gf::pow_alpha(-exponent);
    std::uint8_t num = 0;
    for (std::size_t i = omega.size(); i-- > 0;) {
      num = gf::add(gf::mul(num, x_inv), omega[i]);
    }
    const std::uint8_t x_inv2 = gf::mul(x_inv, x_inv);
    std::uint8_t den = 0;
    for (std::size_t i = sigma_deriv.size(); i-- > 0;) {
      den = gf::add(gf::mul(den, x_inv2), sigma_deriv[i]);
    }
    if (den == 0) return std::nullopt;
    const std::uint8_t magnitude =
        gf::mul(gf::div(num, den), gf::pow_alpha(exponent));
    corrected[pos] = gf::add(corrected[pos], magnitude);
  }

  for (std::size_t i = 0; i < n_parity_; ++i) {
    if (gf::poly_eval(corrected, gf::pow_alpha(static_cast<int>(i))) != 0) {
      return std::nullopt;
    }
  }

  return RsDecodeResult{
      {corrected.begin(), corrected.begin() + static_cast<std::ptrdiff_t>(k)},
      error_positions.size()};
}

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

const ReedSolomon& rs_codec() {
  static const ReedSolomon rs{kRsBlockParity};
  return rs;
}

constexpr std::size_t kHeaderBytes = 9;

}  // namespace

std::vector<std::uint8_t> serialize_frame(const MacFrame& frame) {
  if (frame.payload.size() > kMaxPayload) {
    throw std::invalid_argument{
        "serialize_frame: payload exceeds kMaxPayload"};
  }
  std::vector<std::uint8_t> out;
  out.reserve(phy::serialized_frame_bytes(frame.payload.size()));
  out.push_back(kSfd);
  put_u16(out, static_cast<std::uint16_t>(frame.payload.size()));
  put_u16(out, frame.dst);
  put_u16(out, frame.src);
  put_u16(out, frame.protocol);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  const auto& rs = rs_codec();
  for (std::size_t off = 0; off < frame.payload.size(); off += kRsBlockData) {
    const std::size_t len =
        std::min(kRsBlockData, frame.payload.size() - off);
    const auto cw = rs.encode(
        std::span<const std::uint8_t>{frame.payload}.subspan(off, len));
    out.insert(out.end(),
               cw.end() - static_cast<std::ptrdiff_t>(kRsBlockParity),
               cw.end());
  }
  return out;
}

std::optional<ParsedFrame> parse_frame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 9) return std::nullopt;
  if (bytes[0] != kSfd) return std::nullopt;
  const std::uint16_t length = get_u16(bytes, 1);
  if (length > kMaxPayload) return std::nullopt;
  const std::size_t blocks = (length + kRsBlockData - 1) / kRsBlockData;
  const std::size_t expected = 9 + length + blocks * kRsBlockParity;
  if (bytes.size() < expected) return std::nullopt;

  ParsedFrame out;
  out.frame.dst = get_u16(bytes, 3);
  out.frame.src = get_u16(bytes, 5);
  out.frame.protocol = get_u16(bytes, 7);

  const auto& rs = rs_codec();
  out.frame.payload.reserve(length);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t off = b * kRsBlockData;
    const std::size_t len = std::min(kRsBlockData,
                                     static_cast<std::size_t>(length) - off);
    std::vector<std::uint8_t> codeword;
    codeword.reserve(len + kRsBlockParity);
    const auto data_at = static_cast<std::ptrdiff_t>(9 + off);
    codeword.insert(codeword.end(), bytes.begin() + data_at,
                    bytes.begin() + data_at +
                        static_cast<std::ptrdiff_t>(len));
    const std::size_t parity_at = 9 + length + b * kRsBlockParity;
    codeword.insert(
        codeword.end(), bytes.begin() + static_cast<std::ptrdiff_t>(parity_at),
        bytes.begin() + static_cast<std::ptrdiff_t>(parity_at +
                                                    kRsBlockParity));
    const auto decoded = rs.decode(codeword);
    if (!decoded) return std::nullopt;
    out.corrected_bytes += decoded->corrected_errors;
    out.frame.payload.insert(out.frame.payload.end(), decoded->data.begin(),
                             decoded->data.end());
  }
  return out;
}

std::vector<Chip> codec_encode_chips(const MacFrame& frame,
                                     std::size_t depth) {
  // Qualified: ADL on MacFrame would also find phy::serialize_frame.
  auto wire = ref::serialize_frame(frame);
  if (depth > 1 && wire.size() > kHeaderBytes) {
    const std::span<const std::uint8_t> body{wire.data() + kHeaderBytes,
                                             wire.size() - kHeaderBytes};
    const auto mixed = interleave(body, depth);
    std::copy(mixed.begin(), mixed.end(),
              wire.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes));
  }
  return manchester_encode(bytes_to_bits(wire));
}

std::optional<ParsedFrame> codec_decode_chips(std::span<const Chip> chips,
                                              std::size_t depth) {
  // Qualified: ADL on Chip would also find phy::manchester_decode_lenient.
  const auto decoded = ref::manchester_decode_lenient(chips);
  const auto bytes = bits_to_bytes(decoded.bits);
  if (!bytes) return std::nullopt;
  if (depth <= 1 || bytes->size() <= kHeaderBytes) {
    return parse_frame(*bytes);
  }
  std::vector<std::uint8_t> wire = *bytes;
  const std::span<const std::uint8_t> body{wire.data() + kHeaderBytes,
                                           wire.size() - kHeaderBytes};
  const auto restored = deinterleave(body, depth);
  std::copy(restored.begin(), restored.end(),
            wire.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes));
  return parse_frame(wire);
}

}  // namespace densevlc::bench::ref
