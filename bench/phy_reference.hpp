// Frozen pre-LUT scalar PHY implementations, for differential testing
// and as the baseline the micro_phy speedups are measured against.
//
// These are verbatim copies of the bit-at-a-time Manchester coder, the
// per-coefficient GF(256) Reed-Solomon codec, the permutation-vector
// interleaver, and the allocating frame serializer as they stood before
// the LUT/zero-allocation rework. They must NOT be "improved": their
// whole value is staying exactly what the production code used to
// compute, so old-vs-new comparisons are bit-for-bit meaningful.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "phy/frame.hpp"
#include "phy/manchester.hpp"

namespace densevlc::bench::ref {

// --- Manchester (bit-level loops) ---------------------------------------

std::vector<phy::Chip> manchester_encode(std::span<const std::uint8_t> bits);
phy::LenientDecode manchester_decode_lenient(std::span<const phy::Chip> chips);
std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes);
std::optional<std::vector<std::uint8_t>> bits_to_bytes(
    std::span<const std::uint8_t> bits);

// --- Interleaver (explicit permutation vector) --------------------------

std::vector<std::uint8_t> interleave(std::span<const std::uint8_t> data,
                                     std::size_t depth);
std::vector<std::uint8_t> deinterleave(std::span<const std::uint8_t> data,
                                       std::size_t depth);

// --- Reed-Solomon (per-coefficient gf::mul) -----------------------------

class ReedSolomon {
 public:
  explicit ReedSolomon(std::size_t parity_symbols);

  std::vector<std::uint8_t> encode(
      std::span<const std::uint8_t> message) const;
  std::optional<phy::RsDecodeResult> decode(
      std::span<const std::uint8_t> codeword) const;

  std::size_t parity_symbols() const { return n_parity_; }
  std::size_t correction_capacity() const { return n_parity_ / 2; }

 private:
  std::size_t n_parity_;
  std::vector<std::uint8_t> generator_;
};

// --- Frame (allocating serializer / parser on the reference RS) ---------

std::vector<std::uint8_t> serialize_frame(const phy::MacFrame& frame);
[[nodiscard]] std::optional<phy::ParsedFrame> parse_frame(
    std::span<const std::uint8_t> bytes);

// --- Whole-codec pipeline (FrameCodec semantics + chip coding) ----------

/// serialize + interleave(depth) + bytes_to_bits + manchester_encode:
/// the full scalar bytes-to-chips TX path (no preamble).
std::vector<phy::Chip> codec_encode_chips(const phy::MacFrame& frame,
                                          std::size_t depth);

/// manchester_decode_lenient + bits_to_bytes + deinterleave(depth) +
/// parse_frame: the full scalar chips-to-frame RX path.
std::optional<phy::ParsedFrame> codec_decode_chips(
    std::span<const phy::Chip> chips, std::size_t depth);

}  // namespace densevlc::bench::ref
