// Extension: TX and RX density study (paper Sec. 9, "TX and RX
// density ... we will evaluate the impact in future work").
//
// Sweeps the ceiling grid density (4x4 / 6x6 / 8x8 over the same room at
// matching pitch) and the number of receivers (2/4/6/8), reporting system
// throughput, per-user fairness (Jain index) and power use under the
// kappa = 1.3 heuristic at a fixed budget.
#include <cmath>
#include <iostream>
#include <vector>

#include "alloc/assignment.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace densevlc;

double jain_index(const std::vector<double>& x) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(x.size()) * sum_sq);
}

}  // namespace

int main() {
  std::cout << "Extension - TX grid density and RX count "
               "(kappa = 1.3, budget 1.2 W, 20 random drops each)\n\n";

  TablePrinter table{{"grid", "pitch [m]", "RXs", "system tput [Mbit/s]",
                      "Jain fairness", "TXs used"}};

  const double budget_w = 1.2;
  Rng rng{0xDE45};

  struct GridCase {
    std::size_t per_axis;
    double pitch;
  };
  double tput_4x4_4rx = 0.0;
  double tput_8x8_4rx = 0.0;

  for (const GridCase grid : {GridCase{4, 0.75}, {6, 0.5}, {8, 0.375}}) {
    for (std::size_t num_rx : {2u, 4u, 6u, 8u}) {
      sim::Testbed tb = sim::make_simulation_testbed();
      tb.grid = geom::GridSpec{grid.per_axis, grid.per_axis, grid.pitch,
                               2.8};

      double tput_acc = 0.0;
      double fair_acc = 0.0;
      double txs_acc = 0.0;
      const int drops = 20;
      for (int d = 0; d < drops; ++d) {
        std::vector<geom::Vec3> rx_xy;
        for (std::size_t k = 0; k < num_rx; ++k) {
          rx_xy.push_back(
              {rng.uniform(0.4, 2.6), rng.uniform(0.4, 2.6), 0.0});
        }
        const auto h = tb.channel_for(rx_xy);
        alloc::AssignmentOptions opts;
        const auto res =
            alloc::heuristic_allocate(h, 1.3, Watts{budget_w}, tb.budget, opts);
        const auto tput =
            channel::throughput_bps(h, res.allocation, tb.budget);
        double total = 0.0;
        for (double t : tput) total += t;
        tput_acc += total / 1e6;
        fair_acc += jain_index(tput);
        txs_acc += static_cast<double>(res.txs_assigned);
      }
      const double mean_tput = tput_acc / drops;
      if (grid.per_axis == 4 && num_rx == 4) tput_4x4_4rx = mean_tput;
      if (grid.per_axis == 8 && num_rx == 4) tput_8x8_4rx = mean_tput;
      table.add_row({std::to_string(grid.per_axis) + "x" +
                         std::to_string(grid.per_axis),
                     fmt(grid.pitch, 3), std::to_string(num_rx),
                     fmt(mean_tput, 2), fmt(fair_acc / drops, 3),
                     fmt(txs_acc / drops, 1)});
    }
  }
  table.print(std::cout);
  table.print_csv(std::cout, "ext_density");

  std::cout << "\nPaper conjecture: \"the lower the TX density, the less "
               "degrees of freedom ... lower system throughput and user "
               "fairness\".\nMeasured: 8x8 grid vs 4x4 grid at 4 RXs: "
            << fmt(tput_8x8_4rx, 2) << " vs " << fmt(tput_4x4_4rx, 2)
            << " Mbit/s ("
            << (tput_8x8_4rx > tput_4x4_4rx ? "confirmed" : "MISMATCH")
            << ")\n";
  return 0;
}
