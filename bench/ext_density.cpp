// Extension: TX and RX density study (paper Sec. 9, "TX and RX
// density ... we will evaluate the impact in future work").
//
// Thin wrapper over the committed campaign file scenarios/ext_density.ini:
// the grid-density x receiver-count sweep, the uniform drops and the
// seeding discipline all live in the spec; this binary expands it, runs
// it through the scenario compiler and re-checks the paper's conjecture
// on the aggregates. tests/scenario/test_spec_equivalence.cpp pins the
// spec path bit-identical to the hand-wired construction.
//
// Usage: bench_ext_density [campaign.ini]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/table.hpp"
#include "scenario/campaign.hpp"

#ifndef DVLC_SCENARIO_DIR
#define DVLC_SCENARIO_DIR "scenarios"
#endif

namespace {

using namespace densevlc;

/// The sweep leg text of `point` for axis `key` ("" when absent).
std::string axis_value(const scenario::PointAggregate& point,
                       const std::string& key) {
  for (const auto& [axis, value] : point.axis_values) {
    if (axis == key) return value;
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string spec_path =
      argc > 1 ? argv[1] : DVLC_SCENARIO_DIR "/ext_density.ini";
  const auto parsed = scenario::load_campaign_file(spec_path);
  if (!parsed.ok()) {
    std::cerr << "invalid campaign " << spec_path << ":\n"
              << parsed.error_text();
    return 2;
  }
  const scenario::CampaignSpec& campaign = *parsed.campaign;

  std::vector<scenario::CampaignInstance> instances;
  const auto errors = scenario::expand_campaign(
      campaign, campaign.instances_per_point, instances);
  if (!errors.empty()) {
    for (const auto& e : errors) std::cerr << e.to_string() << '\n';
    return 2;
  }
  const auto run = scenario::run_campaign(campaign, instances);

  std::cout << "Extension - TX grid density and RX count "
               "(kappa = 1.3, budget 1.2 W, "
            << campaign.instances_per_point << " random drops each)\n\n";

  TablePrinter table{{"grid", "pitch [m]", "RXs", "system tput [Mbit/s]",
                      "Jain fairness", "TXs used"}};
  double tput_4x4_4rx = 0.0;
  double tput_8x8_4rx = 0.0;
  for (std::size_t p = 0; p < run.points.size(); ++p) {
    const auto& point = run.points[p];
    const scenario::ScenarioSpec& spec =
        instances[p * campaign.instances_per_point].spec;
    if (spec.grid_rows == 4 && axis_value(point, "rx.count") == "4") {
      tput_4x4_4rx = point.system_mbps.mean;
    }
    if (spec.grid_rows == 8 && axis_value(point, "rx.count") == "4") {
      tput_8x8_4rx = point.system_mbps.mean;
    }
    table.add_row({std::to_string(spec.grid_rows) + "x" +
                       std::to_string(spec.grid_cols),
                   fmt(spec.grid_pitch_m, 3), std::to_string(spec.rx_count),
                   fmt(point.system_mbps.mean, 2), fmt(point.mean_jain, 3),
                   fmt(point.mean_txs, 1)});
  }
  table.print(std::cout);
  table.print_csv(std::cout, "ext_density");

  std::cout << "\nPaper conjecture: \"the lower the TX density, the less "
               "degrees of freedom ... lower system throughput and user "
               "fairness\".\nMeasured: 8x8 grid vs 4x4 grid at 4 RXs: "
            << fmt(tput_8x8_4rx, 2) << " vs " << fmt(tput_4x4_4rx, 2)
            << " Mbit/s ("
            << (tput_8x8_4rx > tput_4x4_4rx ? "confirmed" : "MISMATCH")
            << ")\n";
  return 0;
}
