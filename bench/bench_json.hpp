// Machine-readable bench output.
//
// The figure benches print human tables; the perf-trajectory benches
// (micro_runtime and friends) additionally emit JSON so CI can archive
// results and later sessions can diff them. This is a deliberately tiny
// *writer* — insertion-ordered objects, arrays, scalars, shortest
// round-trip doubles — not a parser; nothing in the repo consumes JSON.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace densevlc::bench {

/// An insertion-ordered JSON value (object, array, or scalar).
class Json {
 public:
  /// Scalars. The default-constructed value is null.
  Json() = default;
  Json(double v);               // NOLINT(google-explicit-constructor)
  Json(std::int64_t v);         // NOLINT(google-explicit-constructor)
  Json(std::size_t v);          // NOLINT(google-explicit-constructor)
  Json(int v);                  // NOLINT(google-explicit-constructor)
  Json(bool v);                 // NOLINT(google-explicit-constructor)
  Json(std::string v);          // NOLINT(google-explicit-constructor)
  Json(const char* v);          // NOLINT(google-explicit-constructor)

  static Json object();
  static Json array();

  /// Object insertion (keeps insertion order; later sets of the same key
  /// overwrite in place). Calling set() on a null value turns it into an
  /// object; calling it on a scalar or array is a contract violation.
  Json& set(const std::string& key, Json value);

  /// Array append. Calling push() on a null value turns it into an array.
  Json& push(Json value);

  /// Serializes with 2-space indentation and a trailing newline.
  std::string dump() const;

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  void render(std::string& out, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Writes `value.dump()` to `path`. Returns false on I/O failure.
[[nodiscard]] bool write_json_file(const std::string& path, const Json& value);

}  // namespace densevlc::bench
