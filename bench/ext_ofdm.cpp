// Extension: DCO-OFDM versus OOK (paper Sec. 9, "Advanced hardware ...
// exploit advanced modulation schemes such as OFDM in VLC").
//
// Runs the DCO-OFDM modem through an AWGN current channel at a sweep of
// SNRs for 4/16/64-QAM, reporting BER and the spectral-efficiency
// multiple over the paper's Manchester-OOK PHY (which carries 0.5 bit
// per chip).
#include <cmath>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "phy/ofdm.hpp"

namespace {

using namespace densevlc;

double measure_ber(phy::OfdmModem& modem, double snr_db, Rng& rng,
                   std::size_t bit_count) {
  std::vector<std::uint8_t> bits(bit_count);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  auto wf = modem.modulate(bits);
  const double sigma =
      modem.config().swing_scale_a / std::pow(10.0, snr_db / 20.0);
  for (double& s : wf.samples) s += rng.gaussian(0.0, sigma);
  const auto decoded = modem.demodulate(wf, bits.size());
  if (!decoded) return 1.0;
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    errors += (*decoded)[i] != bits[i] ? 1 : 0;
  }
  return static_cast<double>(errors) / static_cast<double>(bits.size());
}

}  // namespace

int main() {
  std::cout << "Extension - DCO-OFDM over the LED channel "
               "(64 subcarriers, CP 8, 2 Msps, bias 450 mA)\n\n";

  TablePrinter table{{"SNR [dB]", "4-QAM BER", "16-QAM BER", "64-QAM BER"}};
  Rng rng{0x0FD8};

  std::vector<phy::OfdmModem> modems;
  for (std::size_t bits : {2u, 4u, 6u}) {
    phy::OfdmConfig cfg;
    cfg.bits_per_symbol = bits;
    cfg.swing_scale_a = 0.12;
    modems.emplace_back(cfg);
  }

  double ber16_at_20 = 1.0;
  for (double snr : {6.0, 10.0, 14.0, 18.0, 20.0, 24.0, 28.0}) {
    std::vector<double> row{snr};
    for (std::size_t m = 0; m < modems.size(); ++m) {
      const double ber = measure_ber(modems[m], snr, rng, 12000);
      row.push_back(ber);
      if (m == 1 && snr == 20.0) ber16_at_20 = ber;
    }
    table.add_numeric_row(row, 5);
  }
  table.print(std::cout);
  table.print_csv(std::cout, "ext_ofdm_ber");

  // Spectral efficiency comparison at matched sample rates.
  std::cout << "\nSpectral efficiency (payload bits per transmitted "
               "sample):\n";
  TablePrinter eff{{"PHY", "bits/sample", "multiple of OOK"}};
  // Manchester OOK: 1 data bit per 2 chips, 1 chip per DAC sample at the
  // chip rate.
  const double ook = 0.5;
  eff.add_row({"OOK + Manchester (paper PHY)", fmt(ook, 3), "1.0"});
  for (std::size_t m = 0; m < modems.size(); ++m) {
    const auto& cfg = modems[m].config();
    const double per_sample =
        static_cast<double>(cfg.bits_per_ofdm_symbol()) /
        static_cast<double>(modems[m].samples_per_symbol());
    eff.add_row({std::to_string(1u << cfg.bits_per_symbol) + "-QAM DCO-OFDM",
                 fmt(per_sample, 3), fmt(per_sample / ook, 1)});
  }
  eff.print(std::cout);
  eff.print_csv(std::cout, "ext_ofdm_eff");

  std::cout << "\nPaper: faster front-ends would enable OFDM.\nMeasured: "
               "16-QAM DCO-OFDM is error-free at 20 dB SNR (BER "
            << fmt(ber16_at_20, 5)
            << ") while carrying ~3.4x the bits per sample of "
               "Manchester-OOK.\n";
  return 0;
}
