// Reproduces paper Fig. 9: optimal swing levels of the first 18 TXs
// versus the communication power budget, for the fixed Fig. 7 instance.
// The paper's observations: TX8 is assigned to RX1 first and TX10 to RX2;
// TXs saturate to full swing one at a time (sequential assignment); the
// zero-to-full transition is fast (few gray cells).
#include <iostream>
#include <vector>

#include "alloc/optimal.hpp"
#include "common/table.hpp"
#include "scenario/scenarios.hpp"

int main() {
  using namespace densevlc;

  const auto tb = core::make_simulation_testbed();
  const auto h = tb.channel_for(scenario::fig7_rx_positions());

  std::cout << "Fig. 9 - Optimal swing levels vs power budget "
               "(Fig. 7 instance, TX1..TX18 shown)\n"
            << "cell = total swing of the TX in amperes "
               "(0 = illumination only, 0.9 = full swing)\n\n";

  alloc::OptimalSolverConfig cfg;
  cfg.max_iterations = 300;

  std::vector<double> budgets;
  for (double b = 0.1; b <= 2.01; b += 0.1) budgets.push_back(b);

  std::vector<std::string> headers{"TX"};
  for (double b : budgets) headers.push_back(fmt(b, 1));
  TablePrinter table{headers};

  std::vector<std::vector<double>> swings(36,
                                          std::vector<double>(budgets.size()));
  std::vector<channel::Allocation> allocations;
  for (std::size_t bi = 0; bi < budgets.size(); ++bi) {
    const auto res =
        alloc::solve_optimal(h, Watts{budgets[bi]}, tb.budget, cfg);
    for (std::size_t j = 0; j < 36; ++j) {
      swings[j][bi] = res.allocation.tx_total_swing(j).value();
    }
    allocations.push_back(res.allocation);
  }

  for (std::size_t j = 0; j < 18; ++j) {
    std::vector<std::string> row{"TX" + std::to_string(j + 1)};
    for (std::size_t bi = 0; bi < budgets.size(); ++bi) {
      row.push_back(fmt(swings[j][bi], 2));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  table.print_csv(std::cout, "fig09");

  // Shape checks against the paper's narrative.
  std::size_t first_tx_rx1 = 0;
  std::size_t first_tx_rx2 = 0;
  for (std::size_t bi = 0; bi < budgets.size() && !(first_tx_rx1 && first_tx_rx2);
       ++bi) {
    for (std::size_t j = 0; j < 36; ++j) {
      if (allocations[bi].swing(j, 0) > 0.4 && first_tx_rx1 == 0) {
        first_tx_rx1 = j + 1;
      }
      if (allocations[bi].swing(j, 1) > 0.4 && first_tx_rx2 == 0) {
        first_tx_rx2 = j + 1;
      }
    }
  }
  std::cout << "\nPaper: TX8 is assigned first to RX1, TX10 first to RX2.\n"
            << "Measured: TX" << first_tx_rx1 << " first for RX1, TX"
            << first_tx_rx2 << " first for RX2\n";

  // Fraction of intermediate ("gray") cells: paper says negligible.
  std::size_t active = 0;
  std::size_t gray = 0;
  for (std::size_t j = 0; j < 36; ++j) {
    for (std::size_t bi = 0; bi < budgets.size(); ++bi) {
      if (swings[j][bi] > 0.02) {
        ++active;
        if (swings[j][bi] < 0.75 * 0.9) ++gray;
      }
    }
  }
  std::cout << "Paper: zero-to-full transitions are fast (gray cells "
               "negligible).\nMeasured: "
            << gray << " of " << active << " active cells are intermediate ("
            << fmt(active ? 100.0 * static_cast<double>(gray) /
                                static_cast<double>(active)
                          : 0.0,
                   1)
            << "%)\n";
  return 0;
}
