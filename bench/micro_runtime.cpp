// Parallel-engine microbenchmark: the perf trajectory's first datapoint.
//
// Sweeps the global thread count over {1, 2, 4, 8, hardware} and times
// the hot parallel workloads on the paper's 36-TX/4-RX evaluation setup:
//
//   channel_greedy   from_geometry + greedy allocation per random
//                    instance (the headline: candidate evaluations/sec)
//   channel_matrix   gain-matrix construction alone
//   illuminance_map  61x61 lux raster of the simulation testbed
//   optimal          multi-start projected-gradient solver on Fig. 7
//
// Every workload's outputs are fingerprinted and compared across thread
// counts; any drift prints MISMATCH (which the ctest smoke wrapper
// treats as failure) — the deterministic-reduction contract, enforced.
// Results go to stdout as tables and to BENCH_parallel.json (path
// overridable via argv) for CI artifacts.
//
// Usage: micro_runtime [--quick] [output.json]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "alloc/greedy.hpp"
#include "alloc/optimal.hpp"
#include "bench_json.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "common/thread_pool.hpp"
#include "illum/illuminance_map.hpp"
#include "scenario/scenarios.hpp"

namespace {

using namespace densevlc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One timed execution of a workload at the current thread count.
struct RunOutcome {
  double wall_time_s = 0.0;
  double work_items = 0.0;           ///< workload-specific unit count
  std::vector<double> fingerprint;   ///< exact outputs for bit-compare
};

struct Workload {
  std::string name;
  std::string items_unit;
  std::function<RunOutcome()> run;
};

void append_allocation(std::vector<double>& fp,
                       const channel::Allocation& alloc) {
  fp.insert(fp.end(), alloc.data().begin(), alloc.data().end());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }

  const auto tb = core::make_simulation_testbed();
  const auto instances =
      scenario::random_instances(quick ? 3 : 16, 0.25, tb.room, 0xF16'8);
  const auto fig7 = scenario::fig7_rx_positions();

  std::vector<Workload> workloads;

  workloads.push_back({"channel_greedy", "utility_evals", [&] {
    RunOutcome o;
    const auto t0 = Clock::now();
    for (const auto& rx_xy : instances) {
      const auto h = tb.channel_for(rx_xy);
      const auto res = alloc::greedy_allocate(h, Watts{1.2}, tb.budget);
      o.work_items += static_cast<double>(res.evaluations);
      append_allocation(o.fingerprint, res.allocation);
      o.fingerprint.push_back(res.utility);
    }
    o.wall_time_s = seconds_since(t0);
    return o;
  }});

  workloads.push_back({"channel_matrix", "matrices", [&] {
    RunOutcome o;
    const std::size_t reps = quick ? 20 : 200;
    const auto t0 = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      for (const auto& rx_xy : instances) {
        const auto h = tb.channel_for(rx_xy);
        o.work_items += 1.0;
        if (r == 0) {
          for (std::size_t j = 0; j < h.num_tx(); ++j) {
            for (std::size_t k = 0; k < h.num_rx(); ++k) {
              o.fingerprint.push_back(h.gain(j, k));
            }
          }
        }
      }
    }
    o.wall_time_s = seconds_since(t0);
    return o;
  }});

  workloads.push_back({"illuminance_map", "rasters", [&] {
    RunOutcome o;
    const std::size_t reps = quick ? 1 : 4;
    const std::size_t per_axis = 61;
    const auto t0 = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) {
      const illum::IlluminanceMap map{tb.room,     tb.tx_poses(),
                                      tb.emitter,  tb.led,
                                      Meters{0.8}, per_axis,
                                      kWhiteLedEfficacy};
      o.work_items += 1.0;
      if (r == 0) {
        for (std::size_t iy = 0; iy < per_axis; ++iy) {
          for (std::size_t ix = 0; ix < per_axis; ++ix) {
            o.fingerprint.push_back(map.at(ix, iy).value());
          }
        }
      }
    }
    o.wall_time_s = seconds_since(t0);
    return o;
  }});

  workloads.push_back({"optimal", "gradient_iters", [&] {
    RunOutcome o;
    const auto h = tb.channel_for(fig7);
    alloc::OptimalSolverConfig cfg;
    cfg.max_iterations = quick ? 40 : 120;
    const auto t0 = Clock::now();
    const auto res = alloc::solve_optimal(h, Watts{1.2}, tb.budget, cfg);
    o.wall_time_s = seconds_since(t0);
    o.work_items = static_cast<double>(res.iterations);
    append_allocation(o.fingerprint, res.allocation);
    o.fingerprint.push_back(res.utility);
    return o;
  }});

  // Thread-count sweep: 1, 2, 4, 8 plus whatever the hardware offers.
  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  if (std::find(thread_counts.begin(), thread_counts.end(),
                hardware_threads()) == thread_counts.end()) {
    thread_counts.push_back(hardware_threads());
  }

  std::cout << "micro_runtime - parallel engine benchmark (36 TX x 4 RX"
            << (quick ? ", quick mode" : "") << ")\n"
            << "hardware threads: " << hardware_threads() << "\n\n";

  bench::Json doc = bench::Json::object();
  doc.set("bench", "micro_runtime");
  doc.set("quick", quick);
  doc.set("hardware_threads", hardware_threads());
  doc.set("num_tx", std::size_t{36});
  doc.set("num_rx", std::size_t{4});
  bench::Json workload_array = bench::Json::array();

  bool all_identical = true;
  for (const auto& w : workloads) {
    TablePrinter table{{"threads", "wall [s]", "speedup", w.items_unit + "/s"}};
    bench::Json results = bench::Json::array();
    double base_time_s = 0.0;
    std::vector<double> base_fingerprint;
    bool identical = true;
    for (std::size_t threads : thread_counts) {
      set_global_threads(threads);
      const RunOutcome o = w.run();
      if (threads == thread_counts.front()) {
        base_time_s = o.wall_time_s;
        base_fingerprint = o.fingerprint;
      } else if (o.fingerprint != base_fingerprint) {
        identical = false;
      }
      const double speedup =
          o.wall_time_s > 0.0 ? base_time_s / o.wall_time_s : 0.0;
      const double rate =
          o.wall_time_s > 0.0 ? o.work_items / o.wall_time_s : 0.0;
      table.add_numeric_row(
          {static_cast<double>(threads), o.wall_time_s, speedup, rate}, 3);
      bench::Json entry = bench::Json::object();
      entry.set("threads", threads);
      entry.set("wall_time_s", o.wall_time_s);
      entry.set("speedup_vs_1thread", speedup);
      entry.set(w.items_unit + "_per_s", rate);
      results.push(std::move(entry));
    }
    std::cout << w.name << ":\n";
    table.print(std::cout);
    std::cout << "  outputs across thread counts: "
              << (identical ? "bit-identical" : "MISMATCH") << "\n\n";
    all_identical = all_identical && identical;

    bench::Json wj = bench::Json::object();
    wj.set("name", w.name);
    wj.set("bit_identical", identical);
    wj.set("results", std::move(results));
    workload_array.push(std::move(wj));
  }
  set_global_threads(0);  // restore the default

  doc.set("bit_identical", all_identical);
  doc.set("workloads", std::move(workload_array));
  if (!bench::write_json_file(out_path, doc)) {
    std::cerr << "failed to write " << out_path << '\n';
    return 1;
  }
  std::cout << (all_identical
                    ? "determinism: all workloads bit-identical"
                    : "determinism MISMATCH: see per-workload tables")
            << "\nwrote " << out_path << '\n';
  return all_identical ? 0 : 1;
}
