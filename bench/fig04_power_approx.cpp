// Reproduces paper Fig. 4: relative error of the second-order Taylor
// approximation of the LED's power consumption versus the swing level,
// for the CREE XT-E at Ib = 450 mA. The paper quotes 0.45% at 900 mA.
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "optics/led_model.hpp"

int main() {
  using namespace densevlc;

  const optics::LedModel led{optics::LedElectrical{},
                             optics::LedOperatingPoint{0.45, 0.9}};

  std::cout << "Fig. 4 - Taylor approximation error on LED power vs swing\n";
  std::cout << "LED: CREE XT-E fit, Ib = 450 mA, r = "
            << fmt(led.dynamic_resistance().value(), 4) << " ohm\n\n";

  TablePrinter table{{"Isw [mA]", "P_C exact [mW]", "P_C approx [mW]",
                      "relative error [%]"}};
  for (double isw_ma = 0.0; isw_ma <= 1000.0; isw_ma += 50.0) {
    const double isw = units::mA(isw_ma);
    table.add_numeric_row({isw_ma, units::to_mW(led.comm_power_exact(Amperes{isw})),
                           units::to_mW(led.comm_power_approx(Amperes{isw})),
                           100.0 * led.comm_power_relative_error(Amperes{isw})},
                          3);
  }
  table.print(std::cout);
  table.print_csv(std::cout, "fig04");

  const double err_900 = 100.0 * led.comm_power_relative_error(Amperes{0.9});
  std::cout << "\nPaper: error at Isw = 900 mA is 0.45%.  Measured: "
            << fmt(err_900, 3) << "%  ("
            << (err_900 < 1.5 ? "shape reproduced" : "MISMATCH") << ")\n";
  return 0;
}
