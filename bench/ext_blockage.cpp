// Extension: blockage study (paper Sec. 9, "Blockage").
//
// The paper conjectures that in cell-free massive MIMO VLC, blockage
// "could bring benefit to the system since it can reduce the
// interference from other TXs". This bench quantifies both directions:
//   - a person standing on a *serving* path hurts the blocked RX;
//   - a person standing on a dominant *interference* path can raise the
//     victim RX's throughput (the controller re-allocates around the
//     shadow).
#include <iostream>
#include <vector>

#include "alloc/assignment.hpp"
#include "channel/blockage.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace densevlc;

struct Outcome {
  double system_mbps = 0.0;
  std::vector<double> per_rx_mbps;
};

Outcome evaluate(const sim::Testbed& tb, const channel::ChannelMatrix& h) {
  alloc::AssignmentOptions opts;
  const auto res = alloc::heuristic_allocate(h, 1.3, Watts{1.2}, tb.budget, opts);
  const auto tput = channel::throughput_bps(h, res.allocation, tb.budget);
  Outcome out;
  for (double t : tput) {
    out.per_rx_mbps.push_back(t / 1e6);
    out.system_mbps += t / 1e6;
  }
  return out;
}

}  // namespace

int main() {
  const auto tb = sim::make_experimental_testbed();
  const auto rx_xy = sim::fig7_rx_positions();
  const auto clear = tb.channel_for(rx_xy);
  const auto tx_poses = tb.tx_poses();
  const auto rx_poses = tb.rx_poses(rx_xy);

  std::cout << "Extension - blockage in cell-free VLC "
               "(kappa = 1.3, budget 1.2 W)\n\n";

  const Outcome base = evaluate(tb, clear);

  // Case A: person next to RX1, shadowing its serving TXs.
  const std::vector<channel::CylinderBlocker> on_service{
      {rx_xy[0].x + 0.15, rx_xy[0].y, 0.25, 1.7}};
  const Outcome service = evaluate(
      tb, channel::apply_blockage(clear, tx_poses, rx_poses, on_service));

  // Case B: sweep a person across the room; find the position that
  // maximizes system throughput (expected: between beamspots, where the
  // body shadows interference paths).
  Outcome best_interference = base;
  double best_x = 0.0;
  double best_y = 0.0;
  for (double x = 0.4; x <= 2.6; x += 0.2) {
    for (double y = 0.4; y <= 2.6; y += 0.2) {
      const std::vector<channel::CylinderBlocker> person{{x, y, 0.25, 1.7}};
      const Outcome o = evaluate(
          tb, channel::apply_blockage(clear, tx_poses, rx_poses, person));
      if (o.system_mbps > best_interference.system_mbps) {
        best_interference = o;
        best_x = x;
        best_y = y;
      }
    }
  }

  TablePrinter table{{"scenario", "system [Mbit/s]", "RX1", "RX2", "RX3",
                      "RX4"}};
  auto add = [&](const std::string& name, const Outcome& o) {
    table.add_row({name, fmt(o.system_mbps, 2), fmt(o.per_rx_mbps[0], 2),
                   fmt(o.per_rx_mbps[1], 2), fmt(o.per_rx_mbps[2], 2),
                   fmt(o.per_rx_mbps[3], 2)});
  };
  add("no blockage", base);
  add("person on RX1's beamspot", service);
  add("person at best spot (" + fmt(best_x, 1) + ", " + fmt(best_y, 1) +
          ")",
      best_interference);
  table.print(std::cout);
  table.print_csv(std::cout, "ext_blockage");

  std::cout << "\nPaper conjecture: blockage can *help* by absorbing "
               "interference.\nMeasured: best-case blocked system "
               "throughput is "
            << fmt(best_interference.system_mbps, 2) << " vs "
            << fmt(base.system_mbps, 2) << " Mbit/s clear ("
            << (best_interference.system_mbps > base.system_mbps
                    ? "confirmed - a well-placed body raises throughput"
                    : "not observed in this layout")
            << ");\nblocking a serving path costs RX1 "
            << fmt(100.0 * (1.0 - service.per_rx_mbps[0] /
                                      std::max(base.per_rx_mbps[0], 1e-9)),
                   0)
            << "% of its throughput.\n";
  return 0;
}
