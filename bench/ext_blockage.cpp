// Extension: blockage study (paper Sec. 9, "Blockage").
//
// The paper conjectures that in cell-free massive MIMO VLC, blockage
// "could bring benefit to the system since it can reduce the
// interference from other TXs". Thin wrapper over
// scenarios/ext_blockage.ini: the base spec places a person on RX1's
// serving path, the sweep walks the person across the room. Quantified
// here:
//   - a person standing on a *serving* path hurts the blocked RX;
//   - a person standing on a dominant *interference* path can raise the
//     victim RX's throughput (the controller re-allocates around the
//     shadow).
//
// Usage: bench_ext_blockage [campaign.ini]
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/table.hpp"
#include "scenario/campaign.hpp"

#ifndef DVLC_SCENARIO_DIR
#define DVLC_SCENARIO_DIR "scenarios"
#endif

int main(int argc, char** argv) {
  using namespace densevlc;

  const std::string spec_path =
      argc > 1 ? argv[1] : DVLC_SCENARIO_DIR "/ext_blockage.ini";
  const auto parsed = scenario::load_campaign_file(spec_path);
  if (!parsed.ok()) {
    std::cerr << "invalid campaign " << spec_path << ":\n"
              << parsed.error_text();
    return 2;
  }
  const scenario::CampaignSpec& campaign = *parsed.campaign;

  std::cout << "Extension - blockage in cell-free VLC "
               "(kappa = 1.3, budget 1.2 W)\n\n";

  // Clear room: the committed spec minus its blocker.
  scenario::ScenarioSpec clear_spec = campaign.base;
  clear_spec.blockers.clear();
  const auto base = scenario::run_instance(scenario::compile(clear_spec),
                                           clear_spec.seed);

  // The committed base spec itself: person on RX1's serving path.
  const auto service = scenario::run_instance(
      scenario::compile(campaign.base), campaign.base.seed);

  // The sweep: walk the person across the room, find the best spot.
  std::vector<scenario::CampaignInstance> instances;
  const auto errors = scenario::expand_campaign(
      campaign, campaign.instances_per_point, instances);
  if (!errors.empty()) {
    for (const auto& e : errors) std::cerr << e.to_string() << '\n';
    return 2;
  }
  const auto run = scenario::run_campaign(campaign, instances);
  std::size_t best = 0;
  for (std::size_t p = 0; p < run.instances.size(); ++p) {
    if (run.instances[p].system_mbps > run.instances[best].system_mbps) {
      best = p;
    }
  }
  const scenario::InstanceResult& best_interference =
      run.instances[best].system_mbps > base.system_mbps
          ? run.instances[best]
          : base;
  const auto& best_blocker = instances[best].spec.blockers.front();

  TablePrinter table{{"scenario", "system [Mbit/s]", "RX1", "RX2", "RX3",
                      "RX4"}};
  auto add = [&](const std::string& name,
                 const scenario::InstanceResult& o) {
    table.add_row({name, fmt(o.system_mbps, 2), fmt(o.per_rx_mbps[0], 2),
                   fmt(o.per_rx_mbps[1], 2), fmt(o.per_rx_mbps[2], 2),
                   fmt(o.per_rx_mbps[3], 2)});
  };
  add("no blockage", base);
  add("person on RX1's beamspot", service);
  add("person at best spot (" + fmt(best_blocker.x, 1) + ", " +
          fmt(best_blocker.y, 1) + ")",
      best_interference);
  table.print(std::cout);
  table.print_csv(std::cout, "ext_blockage");

  std::cout << "\nPaper conjecture: blockage can *help* by absorbing "
               "interference.\nMeasured: best-case blocked system "
               "throughput is "
            << fmt(best_interference.system_mbps, 2) << " vs "
            << fmt(base.system_mbps, 2) << " Mbit/s clear ("
            << (best_interference.system_mbps > base.system_mbps
                    ? "confirmed - a well-placed body raises throughput"
                    : "not observed in this layout")
            << ");\nblocking a serving path costs RX1 "
            << fmt(100.0 * (1.0 - service.per_rx_mbps[0] /
                                      std::max(base.per_rx_mbps[0], 1e-9)),
                   0)
            << "% of its throughput.\n";
  return 0;
}
