// Reproduces paper Fig. 12: synchronization delay between two TXs versus
// symbol rate, with no synchronization and with NTP/PTP. The paper
// observes NTP/PTP improving the delay by at least 2x and derives a
// maximum usable symbol rate of 14.28 Ksymbols/s under a 10% symbol
// overlap criterion.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sync/timesync.hpp"

int main() {
  using namespace densevlc;

  const sync::TimeSyncConfig cfg;
  Rng rng{0xF16'12};

  std::cout << "Fig. 12 - Sync delay vs symbol rate (10 frames of 1000 "
               "symbols per point)\n\n";
  TablePrinter table{{"symbol rate [Ksym/s]", "sync off [us]",
                      "NTP/PTP [us]", "ratio"}};
  double ptp_at_ref = 0.0;
  for (double rate_k : {1.0, 5.0, 10.0, 14.28, 20.0, 30.0, 40.0, 50.0,
                        60.0}) {
    const double none = sync::measure_sync_delay(
        sync::SyncMethod::kNone, cfg, rate_k * 1e3, 1000, 10, rng);
    const double ptp = sync::measure_sync_delay(
        sync::SyncMethod::kNtpPtp, cfg, rate_k * 1e3, 1000, 10, rng);
    if (rate_k == 14.28) ptp_at_ref = ptp;
    table.add_numeric_row(
        {rate_k, units::to_us(none), units::to_us(ptp), none / ptp}, 3);
  }
  table.print(std::cout);
  table.print_csv(std::cout, "fig12");

  const double max_rate =
      sync::max_symbol_rate_for_overlap(ptp_at_ref, 0.10);
  std::cout << "\nPaper: NTP/PTP improves delay by at least 2x; max symbol "
               "rate at 10% overlap = 14.28 Ksym/s.\n"
            << "Measured: max symbol rate = " << fmt(max_rate / 1e3, 2)
            << " Ksym/s (from the NTP/PTP delay of "
            << fmt(units::to_us(ptp_at_ref), 2) << " us)\n";
  return 0;
}
