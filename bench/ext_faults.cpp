// Extension: chaos soak — throughput degradation vs. LED fault rate.
//
// The paper's controller assumes the hardware keeps working; this bench
// injects the failures its own Sec. 8 experiments hint at and measures
// how the degradation layer responds. For each LED fail fraction a
// fresh system runs a multi-epoch analytic soak under a chaos schedule
// (seeded burnouts mid-run, then a one-epoch report-loss burst plus
// sync-pilot loss): per epoch we record the sum throughput right before
// the decision (the held allocation evaluated against the faulted
// channel — the dip) and right after it (the re-formed beamspots — the
// recovery).
//
// Soak verdicts, enforced by the ctest chaos wrapper:
//   - with 10% of LEDs failed, the first decision after the failure
//     must retain >= 60% of the pre-fault sum throughput
//     (RETENTION-BELOW-TARGET otherwise);
//   - identical seeds + schedules must produce bit-identical epoch
//     traces at every thread count (MISMATCH otherwise).
//
// Usage: ext_faults [--quick] [output.json]
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/system.hpp"
#include "scenario/scenarios.hpp"

namespace {

using namespace densevlc;

struct SoakResult {
  std::vector<double> pre_decision_mbps;   ///< per epoch, held allocation
  std::vector<double> post_decision_mbps;  ///< per epoch, fresh decision
  std::vector<double> fingerprint;         ///< exact per-RX bits
  std::uint64_t watchdog_holds = 0;
  std::size_t dead_txs = 0;
};

SoakResult run_soak(double fail_fraction, std::size_t epochs,
                    double t_fail_s) {
  core::SystemConfig cfg;
  cfg.testbed = core::make_experimental_testbed();
  cfg.power_budget_w = 1.2;
  cfg.faults = scenario::chaos_schedule(36, fail_fraction, t_fail_s,
                                   cfg.mac.epoch_period_s, 0xFA17);
  auto system =
      core::DenseVlcSystem::with_static_rxs(cfg, scenario::fig7_rx_positions());

  SoakResult out;
  out.dead_txs = cfg.faults.dead_tx_count(t_fail_s + 1.0);
  for (std::size_t e = 0; e < epochs; ++e) {
    const double t = static_cast<double>(e) * cfg.mac.epoch_period_s;
    // The held allocation against the channel as it is *now*: this is
    // what users experience between the fault and the next decision.
    const auto held =
        system.controller().expected_throughput(system.faulted_channel(t));
    double held_sum = 0.0;
    for (double x : held) held_sum += x;
    out.pre_decision_mbps.push_back(held_sum / 1e6);

    const auto epoch = system.run_epoch_analytic(t);
    double post_sum = 0.0;
    for (double x : epoch.throughput_bps) {
      post_sum += x;
      out.fingerprint.push_back(x);
    }
    out.post_decision_mbps.push_back(post_sum / 1e6);
  }
  out.watchdog_holds = system.controller().watchdog_holds();
  return out;
}

double mean_of(const std::vector<double>& v, std::size_t lo, std::size_t hi) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = lo; i < hi && i < v.size(); ++i) {
    sum += v[i];
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_faults.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }

  const std::size_t epochs = quick ? 10 : 30;
  const std::size_t fail_epoch = quick ? 4 : 10;
  // Failure strikes mid-epoch: the dip is visible before the controller
  // gets its next decision.
  const double t_fail_s = (static_cast<double>(fail_epoch) - 0.5) * 1.0;
  const std::vector<double> fractions =
      quick ? std::vector<double>{0.0, 0.1}
            : std::vector<double>{0.0, 0.1, 0.2, 0.3};

  std::vector<std::size_t> thread_counts{1, 2};
  if (std::find(thread_counts.begin(), thread_counts.end(),
                hardware_threads()) == thread_counts.end()) {
    thread_counts.push_back(hardware_threads());
  }

  std::cout << "Extension - chaos soak: throughput vs LED fault rate "
               "(36 TX, Fig. 7 RXs, 1.2 W"
            << (quick ? ", quick mode" : "") << ")\n\n";

  bench::Json doc = bench::Json::object();
  doc.set("bench", "ext_faults");
  doc.set("quick", quick);
  doc.set("epochs", epochs);
  doc.set("fail_epoch", fail_epoch);
  bench::Json sweep = bench::Json::array();

  TablePrinter table{{"fail fraction", "dead TXs", "pre-fault [Mbit/s]",
                      "dip [Mbit/s]", "first re-decide", "retained",
                      "watchdog holds"}};
  bool all_identical = true;
  bool retention_ok = true;
  for (double fraction : fractions) {
    SoakResult base;
    bool identical = true;
    for (std::size_t threads : thread_counts) {
      set_global_threads(threads);
      SoakResult r = run_soak(fraction, epochs, t_fail_s);
      if (threads == thread_counts.front()) {
        base = std::move(r);
      } else if (r.fingerprint != base.fingerprint) {
        identical = false;
      }
    }
    all_identical = all_identical && identical;

    const double pre_fault =
        mean_of(base.post_decision_mbps, 0, fail_epoch);
    // The dip: held allocation vs. faulted channel, just before the
    // first decision that can react.
    const double dip = base.pre_decision_mbps[fail_epoch];
    const double first_redecide = base.post_decision_mbps[fail_epoch];
    const double steady =
        mean_of(base.post_decision_mbps, fail_epoch + 4, epochs);
    const double retained =
        pre_fault > 0.0 ? steady / pre_fault : 1.0;
    const double redecide_retained =
        pre_fault > 0.0 ? first_redecide / pre_fault : 1.0;
    if (fraction > 0.0 && fraction <= 0.1 &&
        (redecide_retained < 0.6 || retained < 0.6)) {
      retention_ok = false;
    }

    table.add_row({fmt(fraction, 2), fmt(static_cast<double>(base.dead_txs), 0),
                   fmt(pre_fault, 2), fmt(dip, 2), fmt(first_redecide, 2),
                   fmt(retained, 3),
                   fmt(static_cast<double>(base.watchdog_holds), 0)});

    bench::Json entry = bench::Json::object();
    entry.set("fail_fraction", fraction);
    entry.set("dead_txs", base.dead_txs);
    entry.set("pre_fault_mbps", pre_fault);
    entry.set("dip_mbps", dip);
    entry.set("first_redecide_mbps", first_redecide);
    entry.set("steady_mbps", steady);
    entry.set("retained", retained);
    entry.set("watchdog_holds", base.watchdog_holds);
    entry.set("bit_identical", identical);
    bench::Json epochs_json = bench::Json::array();
    for (std::size_t e = 0; e < epochs; ++e) {
      bench::Json row = bench::Json::object();
      row.set("epoch", e);
      row.set("held_mbps", base.pre_decision_mbps[e]);
      row.set("decided_mbps", base.post_decision_mbps[e]);
      epochs_json.push(std::move(row));
    }
    entry.set("per_epoch", std::move(epochs_json));
    sweep.push(std::move(entry));
  }
  set_global_threads(0);  // restore the default

  table.print(std::cout);
  table.print_csv(std::cout, "ext_faults");

  std::cout << "\ndeterminism: "
            << (all_identical ? "epoch traces bit-identical at all thread "
                                "counts"
                              : "MISMATCH across thread counts")
            << "\nresilience: "
            << (retention_ok
                    ? "10% LED failure retains >= 60% of pre-fault sum "
                      "throughput within one epoch"
                    : "RETENTION-BELOW-TARGET at 10% LED failure")
            << '\n';

  doc.set("bit_identical", all_identical);
  doc.set("retention_ok", retention_ok);
  doc.set("sweep", std::move(sweep));
  if (!bench::write_json_file(out_path, doc)) {
    std::cerr << "failed to write " << out_path << '\n';
    return 1;
  }
  std::cout << "wrote " << out_path << '\n';
  return all_identical && retention_ok ? 0 : 1;
}
