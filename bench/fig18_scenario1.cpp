// Reproduces paper Fig. 18: Scenario 1 — interference-free, no dominating
// TX (RXs at the four 2 m-spaced corners of Table 6). Expected shape:
// assigning a TX to one RX costs the others nothing; all kappa values
// perform similarly, with kappa = 1.0 slightly behind.
#include "scenario_bench.hpp"
#include "scenario/scenarios.hpp"

int main() {
  return densevlc::bench::run_scenario_bench(
      "fig18", "Scenario 1: interference-free, no dominating TX",
      densevlc::scenario::scenario1_rx_positions());
}
