// Reproduces paper Fig. 11: (left) system throughput of the ranking
// heuristic versus the optimal solution over the power budget, for the
// Fig. 7 instance and kappa in {1.0, 1.2, 1.3, 1.5}; (right) histograms
// of the average throughput loss over the 100 random instances. The paper
// reports average losses of 40.3% (kappa 1.0), 2.4% (1.2), 1.8% (1.3) and
// 2.6% (1.5); kappa = 1.3 is the best pick.
#include <iostream>
#include <vector>

#include "alloc/assignment.hpp"
#include "alloc/optimal.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "scenario/scenarios.hpp"

namespace {

using namespace densevlc;

double sum_tput(const channel::ChannelMatrix& h,
                const channel::Allocation& a,
                const channel::LinkBudget& budget) {
  double s = 0.0;
  for (double t : channel::throughput_bps(h, a, budget)) s += t;
  return s;
}

}  // namespace

int main() {
  const auto tb = core::make_simulation_testbed();
  const std::vector<double> kappas{1.0, 1.2, 1.3, 1.5};

  alloc::OptimalSolverConfig cfg;
  cfg.max_iterations = 250;
  alloc::AssignmentOptions opts;
  opts.allow_partial_tail = true;

  // Left panel: Fig. 7 instance, budget sweep.
  {
    const auto h = tb.channel_for(scenario::fig7_rx_positions());
    std::cout << "Fig. 11 (left) - system throughput [Mbit/s] vs budget, "
                 "Fig. 7 instance\n\n";
    TablePrinter table{{"P_C,tot [W]", "optimal", "k=1.0", "k=1.2", "k=1.3",
                        "k=1.5"}};
    for (double budget = 0.2; budget <= 3.01; budget += 0.2) {
      std::vector<double> row{budget};
      const auto opt = alloc::solve_optimal(h, Watts{budget}, tb.budget, cfg);
      row.push_back(sum_tput(h, opt.allocation, tb.budget) / 1e6);
      for (double kappa : kappas) {
        const auto res =
            alloc::heuristic_allocate(h, kappa, Watts{budget}, tb.budget, opts);
        row.push_back(sum_tput(h, res.allocation, tb.budget) / 1e6);
      }
      table.add_numeric_row(row, 3);
    }
    table.print(std::cout);
    table.print_csv(std::cout, "fig11_left");
  }

  // Right panel: loss distribution over the 100 random instances,
  // averaged over the budget sweep per instance.
  const auto instances = scenario::random_instances(100, 0.25, tb.room, 0xF16'8);
  std::vector<std::vector<double>> losses(kappas.size());
  for (const auto& rx_xy : instances) {
    const auto h = tb.channel_for(rx_xy);
    std::vector<double> loss_acc(kappas.size(), 0.0);
    std::size_t points = 0;
    for (double budget = 0.3; budget <= 2.51; budget += 0.4) {
      const auto opt = alloc::solve_optimal(h, Watts{budget}, tb.budget, cfg);
      const double opt_tput = sum_tput(h, opt.allocation, tb.budget);
      if (opt_tput <= 0.0) continue;
      ++points;
      for (std::size_t ki = 0; ki < kappas.size(); ++ki) {
        const auto res = alloc::heuristic_allocate(h, kappas[ki], Watts{budget},
                                                   tb.budget, opts);
        loss_acc[ki] +=
            100.0 * (1.0 - sum_tput(h, res.allocation, tb.budget) / opt_tput);
      }
    }
    if (points == 0) continue;
    for (std::size_t ki = 0; ki < kappas.size(); ++ki) {
      losses[ki].push_back(loss_acc[ki] / static_cast<double>(points));
    }
  }

  std::cout << "\nFig. 11 (right) - throughput loss vs optimal, "
               "100 instances\n\n";
  TablePrinter summary{{"kappa", "paper mean loss [%]", "measured mean [%]",
                        "median [%]", "p90 [%]"}};
  const std::vector<std::string> paper_losses{"40.3", "2.4", "1.8", "2.6"};
  for (std::size_t ki = 0; ki < kappas.size(); ++ki) {
    summary.add_row({fmt(kappas[ki], 1), paper_losses[ki],
                     fmt(stats::mean(losses[ki]), 2),
                     fmt(stats::median(losses[ki]), 2),
                     fmt(stats::quantile(losses[ki], 0.9), 2)});
  }
  summary.print(std::cout);
  summary.print_csv(std::cout, "fig11_right");

  // Histogram for the best kappa, mirroring the paper's right-most panel.
  const auto hist = stats::histogram(losses[2], -10.0, 20.0, 15);
  std::cout << "\nLoss histogram for kappa = 1.3 (bin center : probability):\n";
  for (std::size_t b = 0; b < hist.counts.size(); ++b) {
    if (hist.counts[b] == 0) continue;
    std::cout << "  " << fmt(hist.bin_center(b), 1) << "% : "
              << fmt(100.0 * hist.probability(b), 1) << "%\n";
  }
  return 0;
}
