// Ablation: SJR ranking vs greedy marginal-utility allocation.
//
// The paper picks the SJR heuristic for speed. The obvious richer
// baseline — greedily granting whichever TX currently adds the most
// utility, re-evaluating the SINR coupling each step — costs hundreds of
// times more arithmetic. This bench quantifies what that buys on the
// evaluation instances, closing the loop on the design choice.
#include <chrono>
#include <iostream>
#include <vector>

#include "alloc/assignment.hpp"
#include "alloc/greedy.hpp"
#include "alloc/optimal.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "scenario/scenarios.hpp"

int main() {
  using namespace densevlc;

  const auto tb = core::make_simulation_testbed();
  const auto instances = scenario::random_instances(20, 0.25, tb.room, 0xAB6D);
  alloc::OptimalSolverConfig ocfg;
  ocfg.max_iterations = 250;
  alloc::AssignmentOptions opts;

  std::cout << "Ablation - SJR ranking vs greedy marginal utility "
               "(20 instances)\n\n";

  auto sum_tput = [&](const channel::ChannelMatrix& h,
                      const channel::Allocation& a) {
    double s = 0.0;
    for (double t : channel::throughput_bps(h, a, tb.budget)) s += t;
    return s;
  };

  TablePrinter table{{"budget [W]", "SJR loss vs opt [%]",
                      "greedy loss vs opt [%]", "SJR time [us]",
                      "greedy time [us]"}};
  for (double budget : {0.3, 0.6, 1.2}) {
    std::vector<double> sjr_loss;
    std::vector<double> greedy_loss;
    std::vector<double> sjr_us;
    std::vector<double> greedy_us;
    for (const auto& rx_xy : instances) {
      const auto h = tb.channel_for(rx_xy);
      const auto opt = alloc::solve_optimal(h, Watts{budget}, tb.budget, ocfg);
      const double opt_tput = sum_tput(h, opt.allocation);
      if (opt_tput <= 0.0) continue;

      const auto t0 = std::chrono::steady_clock::now();
      const auto sjr =
          alloc::heuristic_allocate(h, 1.3, Watts{budget}, tb.budget, opts);
      const auto t1 = std::chrono::steady_clock::now();
      const auto greedy = alloc::greedy_allocate(h, Watts{budget}, tb.budget);
      const auto t2 = std::chrono::steady_clock::now();

      sjr_loss.push_back(
          100.0 * (1.0 - sum_tput(h, sjr.allocation) / opt_tput));
      greedy_loss.push_back(
          100.0 * (1.0 - sum_tput(h, greedy.allocation) / opt_tput));
      sjr_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
      greedy_us.push_back(
          std::chrono::duration<double, std::micro>(t2 - t1).count());
    }
    table.add_numeric_row({budget, stats::mean(sjr_loss),
                           stats::mean(greedy_loss), stats::mean(sjr_us),
                           stats::mean(greedy_us)},
                          2);
  }
  table.print(std::cout);
  table.print_csv(std::cout, "ablation_greedy");

  std::cout << "\nConclusion guide: if greedy's extra quality is a couple "
               "of percent while costing 100x+ the time, the paper's SJR "
               "choice stands for mobile re-allocation.\n";
  return 0;
}
