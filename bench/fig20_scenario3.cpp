// Reproduces paper Fig. 20: Scenario 3 — with interference and dominating
// TXs (each RX exactly under a TX, 1 m spacing, Table 6). Expected shape:
// RX throughputs comparable; the system curve sags at very high budgets
// as late assignments add more interference than signal.
#include "scenario_bench.hpp"
#include "scenario/scenarios.hpp"

int main() {
  return densevlc::bench::run_scenario_bench(
      "fig20", "Scenario 3: interference, dominating TXs",
      densevlc::scenario::scenario3_rx_positions());
}
