// Ablation: block interleaving vs burst errors.
//
// The paper's frame format specifies Reed-Solomon per 200-byte block but
// no interleaving; bursts (shadowing transients, colliding frame edges)
// then concentrate errors in one block. This bench measures frame
// survival versus burst length with and without a depth-matched
// interleaver, on the serialized wire representation.
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "phy/frame.hpp"
#include "phy/interleaver.hpp"
#include "phy/reed_solomon.hpp"

namespace {

using namespace densevlc;

/// Survival rate of `trials` frames against one burst of `burst_len`
/// corrupted bytes at a random payload offset, optionally interleaved.
double survival(std::size_t burst_len, bool use_interleaver,
                std::size_t depth, Rng& rng, std::size_t trials) {
  phy::MacFrame frame;
  frame.payload.resize(800);  // 4 RS blocks
  for (std::size_t i = 0; i < frame.payload.size(); ++i) {
    frame.payload[i] = static_cast<std::uint8_t>(i * 13 + 5);
  }
  const auto clean = phy::serialize_frame(frame);

  std::size_t survived = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    // Protect payload + parity (bytes 9..end); the 9-byte header rides
    // in the clear either way.
    std::vector<std::uint8_t> body(clean.begin() + 9, clean.end());
    auto wire = use_interleaver ? phy::interleave(body, depth) : body;

    const auto start = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(wire.size() - burst_len)));
    for (std::size_t i = 0; i < burst_len; ++i) {
      wire[start + i] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }

    const auto restored =
        use_interleaver ? phy::deinterleave(wire, depth) : wire;
    std::vector<std::uint8_t> bytes(clean.begin(), clean.begin() + 9);
    bytes.insert(bytes.end(), restored.begin(), restored.end());
    const auto parsed = phy::parse_frame(bytes);
    survived += parsed && parsed->frame == frame ? 1 : 0;
  }
  return static_cast<double>(survived) / static_cast<double>(trials);
}

}  // namespace

int main() {
  std::cout << "Ablation - burst-error survival with and without block "
               "interleaving\n"
               "(800 B payload = 4 RS blocks; depth 4 interleaver; 200 "
               "trials per point)\n\n";

  Rng rng{0xAB1E};
  TablePrinter table{{"burst [bytes]", "no interleaver", "interleaved",
                      "analytic bound"}};
  const std::size_t depth = 4;
  const std::size_t tolerance = phy::burst_tolerance(depth, 8);
  for (std::size_t burst : {4u, 8u, 12u, 16u, 24u, 32u, 40u, 64u}) {
    const double without = survival(burst, false, depth, rng, 200);
    const double with = survival(burst, true, depth, rng, 200);
    table.add_row({std::to_string(burst), fmt(100.0 * without, 0) + "%",
                   fmt(100.0 * with, 0) + "%",
                   burst <= tolerance ? "protected" : "beyond"});
  }
  table.print(std::cout);
  table.print_csv(std::cout, "ablation_interleaver");

  std::cout << "\nRS alone corrects 8 bytes per block: bursts beyond ~8 "
               "bytes start killing frames.\nWith a depth-4 interleaver "
               "the analytic protection extends to "
            << tolerance
            << " bytes, and the measured survival follows.\n";
  return 0;
}
