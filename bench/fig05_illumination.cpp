// Reproduces paper Fig. 5: spatial illuminance distribution of the 6x6
// grid at the 0.8 m work plane, plus the ISO 8995-1 check over the
// centered 2.2 m x 2.2 m area of interest. The paper reports an average
// of 564 lux and a uniformity of 74% in simulation (530 lux / 81%
// measured on the testbed, Sec. 8).
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "illum/illuminance_map.hpp"
#include "core/testbed.hpp"

int main() {
  using namespace densevlc;

  const auto tb = core::make_simulation_testbed();
  const illum::IlluminanceMap map{
      tb.room, tb.tx_poses(), tb.emitter, tb.led, Meters{0.8}, 61,
      kWhiteLedEfficacy};

  std::cout << "Fig. 5 - Illuminance distribution (0.8 m work plane)\n\n";

  // Coarse ASCII rendering of the field (9 x 9 sample points).
  TablePrinter grid{{"y \\ x [m]", "0.0", "0.375", "0.75", "1.125", "1.5",
                     "1.875", "2.25", "2.625", "3.0"}};
  for (int iy = 8; iy >= 0; --iy) {
    std::vector<std::string> row;
    row.push_back(fmt(iy * 0.375, 3));
    for (int ix = 0; ix <= 8; ++ix) {
      row.push_back(
          fmt(map.evaluate(Meters{ix * 0.375}, Meters{iy * 0.375}).value(),
              0));
    }
    grid.add_row(row);
  }
  grid.print(std::cout);

  const auto stats = map.area_of_interest_stats(Meters{2.2});
  TablePrinter summary{{"metric", "paper", "measured"}};
  summary.add_row({"average illuminance [lux]", "564",
                   fmt(stats.average_lux, 0)});
  summary.add_row({"uniformity (min/avg)", "0.74", fmt(stats.uniformity, 2)});
  summary.add_row({"ISO >= 500 lux", "pass",
                   stats.average_lux >= 500.0 ? "pass" : "FAIL"});
  summary.add_row({"ISO uniformity >= 0.70", "pass",
                   stats.uniformity >= 0.70 ? "pass" : "FAIL"});
  std::cout << '\n';
  summary.print(std::cout);
  summary.print_csv(std::cout, "fig05");
  return 0;
}
