// Reproduces paper Fig. 8: system and per-RX throughput versus the
// communication power budget P_C,tot under the *optimal* allocation, with
// 95% confidence intervals over the 100 random receiver instances of
// Fig. 6. The paper's headline observations: throughput grows with the
// budget, the per-RX throughputs are balanced (proportional fairness),
// RX3/RX4 outperform RX1/RX2 at high budgets, and power efficiency drops
// beyond a knee near 1.2 W.
#include <iostream>
#include <vector>

#include "alloc/optimal.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "scenario/scenarios.hpp"

int main() {
  using namespace densevlc;

  const auto tb = core::make_simulation_testbed();
  const auto instances = scenario::random_instances(100, 0.25, tb.room, 0xF16'8);

  std::cout << "Fig. 8 - Optimal throughput vs communication power "
               "(100 random instances, 95% CI)\n\n";

  TablePrinter table{{"P_C,tot [W]", "system [Mbit/s]", "ci95", "RX1", "RX2",
                      "RX3", "RX4"}};

  alloc::OptimalSolverConfig cfg;
  cfg.max_iterations = 250;

  double knee_prev_slope = -1.0;
  double prev_sys = 0.0;
  double prev_budget = 0.0;
  double knee_at = 0.0;

  for (double budget = 0.0; budget <= 3.01; budget += 0.25) {
    std::vector<double> sys;
    std::vector<std::vector<double>> per_rx(4);
    for (const auto& rx_xy : instances) {
      const auto h = tb.channel_for(rx_xy);
      const auto res = alloc::solve_optimal(h, Watts{budget}, tb.budget, cfg);
      const auto tput = channel::throughput_bps(h, res.allocation, tb.budget);
      double total = 0.0;
      for (std::size_t k = 0; k < 4; ++k) {
        per_rx[k].push_back(tput[k] / 1e6);
        total += tput[k];
      }
      sys.push_back(total / 1e6);
    }
    const double mean_sys = stats::mean(sys);
    table.add_numeric_row({budget, mean_sys, stats::ci95_halfwidth(sys),
                           stats::mean(per_rx[0]), stats::mean(per_rx[1]),
                           stats::mean(per_rx[2]), stats::mean(per_rx[3])},
                          3);
    // Knee detection: where the marginal Mbit/s per watt halves.
    if (budget > 0.0) {
      const double slope = (mean_sys - prev_sys) / (budget - prev_budget);
      if (knee_prev_slope > 0.0 && knee_at == 0.0 &&
          slope < knee_prev_slope / 2.0) {
        knee_at = budget;
      }
      knee_prev_slope = slope;
    }
    prev_sys = mean_sys;
    prev_budget = budget;
  }
  table.print(std::cout);
  table.print_csv(std::cout, "fig08");

  std::cout << "\nPaper: power efficiency drops noticeably beyond ~1.2 W.\n"
            << "Measured: marginal throughput halves near "
            << (knee_at > 0.0 ? fmt(knee_at, 2) + " W" : "(no knee found)")
            << '\n';
  return 0;
}
