// Reproduces paper Fig. 21: DenseVLC (kappa = 1.3) versus the SISO
// (nearest-TX) and D-MISO (9 surrounding TXs each) baselines in
// Scenario 2. Paper headlines: SISO's operating point lies on DenseVLC's
// curve (same power efficiency); DenseVLC reaches D-MISO's throughput at
// a fraction of its power (2.3x better efficiency on the testbed) and
// beats SISO's throughput by 45% at that operating point.
#include <iostream>

#include "alloc/assignment.hpp"
#include "alloc/baselines.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/prober.hpp"
#include "scenario/scenarios.hpp"

int main() {
  using namespace densevlc;

  const auto tb = core::make_experimental_testbed();
  const auto truth = tb.channel_for(scenario::fig7_rx_positions());
  core::ChannelProber prober{tb.led, phy::OokParams{},
                             phy::FrontEndConfig{}, 0.9};
  Rng rng{0xF16'21};
  const auto h = prober.probe_matrix(truth, rng);

  auto sum_tput = [&](const channel::Allocation& a) {
    double s = 0.0;
    for (double t : channel::throughput_bps(h, a, tb.budget)) s += t;
    return s;
  };

  const auto siso = alloc::siso_nearest_tx(h, Amperes{0.9}, tb.budget);
  const auto dmiso = alloc::dmiso_all_tx(h, 9, Amperes{0.9}, tb.budget);
  const double siso_tput = sum_tput(siso.allocation);
  const double dmiso_tput = sum_tput(dmiso.allocation);
  const double norm = std::max(siso_tput, dmiso_tput);

  std::cout << "Fig. 21 - DenseVLC vs SISO and D-MISO (Scenario 2, "
               "kappa = 1.3, measured channel)\n\n";

  TablePrinter curve{{"P_C,tot [W]", "DenseVLC normalized tput"}};
  alloc::AssignmentOptions opts;
  double dense_match_power = 0.0;   // where DenseVLC reaches D-MISO tput
  double dense_tput_at_match = 0.0;
  for (double budget = 0.05; budget <= 2.01; budget += 0.05) {
    const auto dense =
        alloc::heuristic_allocate(h, 1.3, Watts{budget}, tb.budget, opts);
    const double tput = sum_tput(dense.allocation);
    if (dense_match_power == 0.0 && tput >= 0.94 * dmiso_tput) {
      dense_match_power = dense.power_used_w;
      dense_tput_at_match = tput;
    }
    if (std::fmod(budget + 1e-9, 0.15) < 0.05) {
      curve.add_numeric_row({budget, tput / norm}, 3);
    }
  }
  curve.print(std::cout);
  curve.print_csv(std::cout, "fig21");

  TablePrinter points{{"policy", "power [W]", "normalized tput"}};
  points.add_row({"SISO (nearest TX)", fmt(siso.power_used_w, 3),
                  fmt(siso_tput / norm, 3)});
  points.add_row({"D-MISO (9 TXs each)", fmt(dmiso.power_used_w, 3),
                  fmt(dmiso_tput / norm, 3)});
  points.add_row({"DenseVLC @ D-MISO tput",
                  fmt(dense_match_power, 3),
                  fmt(dense_tput_at_match / norm, 3)});
  std::cout << '\n';
  points.print(std::cout);
  points.print_csv(std::cout, "fig21_points");

  if (dense_match_power > 0.0) {
    const double efficiency_gain = dmiso.power_used_w / dense_match_power;
    const double tput_gain_vs_siso =
        100.0 * (dense_tput_at_match - siso_tput) / siso_tput;
    std::cout << "\nPaper: 2.3x power efficiency vs D-MISO; +45% "
                 "throughput vs SISO at that operating point.\n"
              << "Measured: " << fmt(efficiency_gain, 2)
              << "x power efficiency; +" << fmt(tput_gain_vs_siso, 1)
              << "% throughput vs SISO\n";
  } else {
    std::cout << "\nMISMATCH: DenseVLC never reached D-MISO's throughput\n";
  }
  return 0;
}
