// PHY fast-path microbenchmark: the zero-allocation sample path's
// perf-trajectory datapoint.
//
// Times the LUT/arena rework against the frozen scalar baselines in
// phy_reference.{hpp,cpp} and checks two contracts on every run:
//
//   frame_codec      headline: serialize + interleave + Manchester chips
//                    and back, old scalar path vs LUT fast path
//                    (frames/s; the >= 3x acceptance figure)
//   frame_codec_batch  the same pipeline through the batch-of-frames API
//                    (phy/frame_batch.hpp) with native SIMD dispatch,
//                    against the per-frame path pinned onto the LUT
//                    kernels (simd::set_force_scalar) — the >= 2x
//                    past-the-plateau figure. `--threads N` shards the
//                    lanes into N independent batch pipelines; a
//                    batch-size sweep reports scaling in full mode.
//   rs_codec         RS(216, 200) encode + 4-error decode (bytes/s)
//   manchester       byte round trip, bit loops vs 256-entry LUTs
//   frontend_filter  TIA + AC + Butterworth + ADC chain (samples/s)
//   frame_wave       full modulate -> front-end -> demodulate chain on
//                    the fast path only, asserting zero steady-state
//                    heap allocations via the alloc_hook counter
//
// Fast-path outputs are bit-compared against the scalar baselines; any
// drift prints MISMATCH and a steady-state allocation prints
// HOT-PATH-ALLOC (both treated as failure by the ctest smoke wrapper).
// Results go to stdout as tables and to BENCH_phy.json (path
// overridable via argv) for CI artifacts.
//
// Usage: micro_phy [--quick] [--threads N] [output.json]
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "alloc_hook.hpp"
#include "bench_json.hpp"
#include "common/arena.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "dsp/waveform.hpp"
#include "phy/frame.hpp"
#include "phy/frame_batch.hpp"
#include "phy/frame_codec.hpp"
#include "phy/frontend.hpp"
#include "phy/manchester.hpp"
#include "phy/ook.hpp"
#include "phy/reed_solomon.hpp"
#include "phy_reference.hpp"

namespace {

using namespace densevlc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One measured path (scalar baseline or fast path) of a workload.
struct PathOutcome {
  double wall_time_s = 0.0;
  double work_items = 0.0;
};

/// Everything the report needs about one workload.
struct WorkloadResult {
  std::string name;
  std::string items_unit;
  std::optional<PathOutcome> scalar;  ///< absent for fast-only workloads
  PathOutcome fast;
  bool identical = true;
  std::uint64_t steady_allocs = 0;
  std::string scalar_label = "scalar";  ///< baseline row name in the table
};

/// Test corpus: deterministic random frames shared by the workloads.
std::vector<phy::MacFrame> make_frames(std::size_t count,
                                       std::size_t payload_bytes) {
  Rng rng{0xD3A5EU};
  std::vector<phy::MacFrame> frames(count);
  for (std::size_t i = 0; i < count; ++i) {
    frames[i].dst = static_cast<std::uint16_t>(0x0100 + i);
    frames[i].src = 0x00FE;
    frames[i].payload.resize(payload_bytes);
    for (auto& b : frames[i].payload) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
  }
  return frames;
}

std::vector<std::uint8_t> make_bytes(std::size_t count, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::uint8_t> bytes(count);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::size_t threads = 1;
  std::string out_path = "BENCH_phy.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      threads = n > 0 ? static_cast<std::size_t>(n) : 1;
    } else {
      out_path = argv[i];
    }
  }

  constexpr std::size_t kPayloadBytes = 600;
  const std::size_t depth = phy::FrameCodec::matched_depth(kPayloadBytes);
  const auto frames = make_frames(quick ? 4 : 8, kPayloadBytes);

  std::cout << "micro_phy - PHY fast-path benchmark (payload "
            << kPayloadBytes << " B, interleave depth " << depth
            << (quick ? ", quick mode" : "") << ")\n\n";

  std::vector<WorkloadResult> results;
  bool all_identical = true;
  bool zero_alloc_ok = true;

  // --- frame_codec: the headline scalar-vs-LUT comparison ----------------
  {
    WorkloadResult r{"frame_codec", "frames", {}, {}, true, 0};
    const std::size_t reps = quick ? 3 : 60;
    const phy::FrameCodec codec{depth};
    phy::FrameCodec::Scratch cscr;
    std::vector<std::uint8_t> wire;
    std::vector<phy::Chip> chips;
    std::vector<std::uint8_t> bytes;
    phy::ParsedFrame parsed;

    // Correctness pass: fast chips and decode must match the frozen
    // scalar pipeline bit for bit on every frame.
    for (const auto& f : frames) {
      const auto ref_chips = bench::ref::codec_encode_chips(f, depth);
      const auto ref_parsed = bench::ref::codec_decode_chips(ref_chips, depth);

      codec.encode_into(f, wire, cscr);
      arena_resize(chips, wire.size() * 16);
      phy::manchester_encode_bytes(wire, chips);
      arena_resize(bytes, chips.size() / 16);
      phy::manchester_decode_bytes_lenient(chips, bytes);
      const bool ok = codec.decode_into(bytes, parsed, cscr);

      if (chips != ref_chips || !ref_parsed || !ok ||
          parsed.frame != ref_parsed->frame ||
          parsed.frame.payload != f.payload) {
        r.identical = false;
      }
    }

    {  // scalar timing
      r.scalar.emplace();
      const auto t0 = Clock::now();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        for (const auto& f : frames) {
          const auto c = bench::ref::codec_encode_chips(f, depth);
          const auto p = bench::ref::codec_decode_chips(c, depth);
          if (!p) r.identical = false;
          r.scalar->work_items += 1.0;
        }
      }
      r.scalar->wall_time_s = seconds_since(t0);
    }

    {  // fast timing, with the zero-allocation assertion after warm-up
      for (const auto& f : frames) {  // warm-up rep (buffers grow here)
        codec.encode_into(f, wire, cscr);
        arena_resize(chips, wire.size() * 16);
        phy::manchester_encode_bytes(wire, chips);
        arena_resize(bytes, chips.size() / 16);
        phy::manchester_decode_bytes_lenient(chips, bytes);
        if (!codec.decode_into(bytes, parsed, cscr)) r.identical = false;
      }
      const std::uint64_t allocs0 = bench::alloc_count();
      const auto t0 = Clock::now();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        for (const auto& f : frames) {
          codec.encode_into(f, wire, cscr);
          arena_resize(chips, wire.size() * 16);
          phy::manchester_encode_bytes(wire, chips);
          arena_resize(bytes, chips.size() / 16);
          phy::manchester_decode_bytes_lenient(chips, bytes);
          if (!codec.decode_into(bytes, parsed, cscr)) r.identical = false;
          r.fast.work_items += 1.0;
        }
      }
      r.fast.wall_time_s = seconds_since(t0);
      r.steady_allocs = bench::alloc_count() - allocs0;
    }
    results.push_back(std::move(r));
  }

  // --- frame_codec_batch: batch API + SIMD vs the per-frame LUT plateau --
  bench::Json batch_sweep = bench::Json::array();
  {
    WorkloadResult r{"frame_codec_batch", "frames", {}, {}, true, 0};
    r.scalar_label = "lut";
    const std::size_t reps = quick ? 4 : 40;
    const std::size_t batch_size = quick ? 8 : 32;
    const auto bframes = make_frames(batch_size, kPayloadBytes);
    const phy::FrameCodec codec{depth};

    // One independent batch pipeline per shard; `--threads N` runs the
    // shards on a pool. Shard boundaries depend only on the lane count,
    // and every shard owns its scratch, so the outputs are bit-identical
    // at any thread count.
    struct Shard {
      std::vector<const phy::MacFrame*> ptrs;
      phy::FrameBatch batch;
      AlignedVector<phy::Chip> chips;
      AlignedVector<std::uint8_t> back;
      std::vector<std::span<const std::uint8_t>> views;
      std::vector<phy::ParsedFrame> out;
      std::vector<std::uint8_t> ok;
      bool match = true;
    };
    const auto run_shard = [&codec](Shard& s) {
      phy::encode_frames_batch(codec, s.ptrs, s.batch);
      std::size_t total_bytes = 0;
      for (std::size_t i = 0; i < s.ptrs.size(); ++i) {
        total_bytes += s.batch.lanes[i].len;
      }
      arena_resize(s.chips, total_bytes * 16);
      arena_resize(s.back, total_bytes);
      arena_resize(s.views, s.ptrs.size());
      std::size_t off = 0;
      for (std::size_t i = 0; i < s.ptrs.size(); ++i) {
        const auto wire = s.batch.lane_wire(i);
        const std::span<phy::Chip> lane_chips{s.chips.data() + off * 16,
                                              wire.size() * 16};
        phy::manchester_encode_bytes(wire, lane_chips);
        const std::span<std::uint8_t> lane_bytes{s.back.data() + off,
                                                 wire.size()};
        phy::manchester_decode_bytes_lenient(lane_chips, lane_bytes);
        s.views[i] = lane_bytes;
        off += wire.size();
      }
      arena_resize(s.out, s.ptrs.size());
      arena_resize(s.ok, s.ptrs.size());
      if (phy::decode_frames_batch(codec, s.views, s.out, s.ok, s.batch) !=
          s.ptrs.size()) {
        s.match = false;
      }
      for (std::size_t i = 0; i < s.ptrs.size(); ++i) {
        if (s.out[i].frame.payload != s.ptrs[i]->payload) s.match = false;
      }
    };

    std::vector<Shard> shards(threads);
    for (std::size_t s = 0; s < threads; ++s) {
      const std::size_t lo = s * batch_size / threads;
      const std::size_t hi = (s + 1) * batch_size / threads;
      for (std::size_t i = lo; i < hi; ++i) {
        shards[s].ptrs.push_back(&bframes[i]);
      }
    }

    // Correctness pass: batch wire bytes and decodes must equal the
    // per-frame fast path lane for lane.
    {
      phy::FrameCodec::Scratch cscr;
      std::vector<std::uint8_t> wire;
      for (auto& s : shards) {
        // Compare wire bytes right after the encode: the decode half of
        // run_shard reuses the FrameBatch staging and overwrites lanes.
        phy::encode_frames_batch(codec, s.ptrs, s.batch);
        for (std::size_t i = 0; i < s.ptrs.size(); ++i) {
          codec.encode_into(*s.ptrs[i], wire, cscr);
          const auto got = s.batch.lane_wire(i);
          if (got.size() != wire.size() ||
              !std::equal(got.begin(), got.end(), wire.begin())) {
            r.identical = false;
          }
        }
        run_shard(s);  // full pipeline, round-trip checked via s.match
        r.identical = r.identical && s.match;
      }
    }

    {  // LUT baseline: the per-frame path pinned onto the scalar kernels
      simd::set_force_scalar(true);
      r.scalar.emplace();
      phy::FrameCodec::Scratch cscr;
      std::vector<std::uint8_t> wire;
      std::vector<phy::Chip> chips;
      std::vector<std::uint8_t> bytes;
      phy::ParsedFrame parsed;
      const auto t0 = Clock::now();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        for (const auto& f : bframes) {
          codec.encode_into(f, wire, cscr);
          arena_resize(chips, wire.size() * 16);
          phy::manchester_encode_bytes(wire, chips);
          arena_resize(bytes, chips.size() / 16);
          phy::manchester_decode_bytes_lenient(chips, bytes);
          if (!codec.decode_into(bytes, parsed, cscr)) r.identical = false;
          r.scalar->work_items += 1.0;
        }
      }
      r.scalar->wall_time_s = seconds_since(t0);
      simd::set_force_scalar(false);
    }

    {  // batch timing (shards already warm from the correctness pass)
      std::optional<ThreadPool> pool;
      if (threads > 1) pool.emplace(threads);
      const std::uint64_t allocs0 = bench::alloc_count();
      const auto t0 = Clock::now();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        if (pool) {
          pool->run_chunks(shards.size(),
                           [&](std::size_t c) { run_shard(shards[c]); });
        } else {
          for (auto& s : shards) run_shard(s);
        }
        r.fast.work_items += static_cast<double>(batch_size);
      }
      r.fast.wall_time_s = seconds_since(t0);
      r.steady_allocs = bench::alloc_count() - allocs0;
      for (const auto& s : shards) r.identical = r.identical && s.match;
    }

    // Batch-size sweep (full mode, single shard): how the batch kernels
    // fill up as lanes are added.
    if (!quick) {
      std::cout << "frame_codec_batch sweep (1 thread):";
      for (const std::size_t n : {std::size_t{4}, std::size_t{8},
                                  std::size_t{16}, std::size_t{32}}) {
        const auto sweep_frames = make_frames(n, kPayloadBytes);
        Shard s;
        for (const auto& f : sweep_frames) s.ptrs.push_back(&f);
        run_shard(s);  // warm-up
        const std::size_t sweep_reps = 20;
        const auto t0 = Clock::now();
        for (std::size_t rep = 0; rep < sweep_reps; ++rep) run_shard(s);
        const double dt = seconds_since(t0);
        const double rate =
            dt > 0.0 ? static_cast<double>(n * sweep_reps) / dt : 0.0;
        std::cout << "  " << n << ": " << fmt_si(rate) << "/s";
        bench::Json row = bench::Json::object();
        row.set("batch_size", n);
        row.set("frames_per_s", rate);
        batch_sweep.push(std::move(row));
      }
      std::cout << "\n\n";
    }
    results.push_back(std::move(r));
  }

  // --- rs_codec: encode + 4-error decode throughput ----------------------
  {
    WorkloadResult r{"rs_codec", "message_bytes", {}, {}, true, 0};
    const std::size_t reps = quick ? 8 : 200;
    constexpr std::size_t kMsgBytes = 200;
    const std::size_t n_msgs = quick ? 4 : 16;
    const bench::ref::ReedSolomon ref_rs{phy::kRsBlockParity};
    const phy::ReedSolomon rs{phy::kRsBlockParity};
    std::vector<std::vector<std::uint8_t>> msgs;
    for (std::size_t i = 0; i < n_msgs; ++i) {
      msgs.push_back(make_bytes(kMsgBytes, 0x55000 + i));
    }
    // Deterministic 4-byte error burst per codeword.
    const auto corrupt = [](std::vector<std::uint8_t>& cw, std::size_t i) {
      for (std::size_t e = 0; e < 4; ++e) {
        const std::size_t pos = (i * 37 + e * 53 + 11) % cw.size();
        cw[pos] = static_cast<std::uint8_t>(cw[pos] ^ (0x5A + e));
      }
    };

    std::vector<std::uint8_t> cw;
    std::vector<std::uint8_t> bad;
    phy::RsDecodeResult dec;
    phy::RsScratch rscr;

    // Correctness pass.
    for (std::size_t i = 0; i < n_msgs; ++i) {
      auto ref_cw = ref_rs.encode(msgs[i]);
      rs.encode_into(msgs[i], cw);
      if (cw != ref_cw) r.identical = false;
      corrupt(ref_cw, i);
      bad = cw;
      corrupt(bad, i);
      const auto ref_dec = ref_rs.decode(ref_cw);
      const bool ok = rs.decode_into(bad, dec, rscr);
      if (!ref_dec || !ok || dec.data != ref_dec->data ||
          dec.corrected_errors != ref_dec->corrected_errors ||
          dec.data != msgs[i]) {
        r.identical = false;
      }
    }

    {  // scalar timing
      r.scalar.emplace();
      const auto t0 = Clock::now();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        for (std::size_t i = 0; i < n_msgs; ++i) {
          auto c = ref_rs.encode(msgs[i]);
          corrupt(c, i);
          if (!ref_rs.decode(c)) r.identical = false;
          r.scalar->work_items += kMsgBytes;
        }
      }
      r.scalar->wall_time_s = seconds_since(t0);
    }

    {  // fast timing (already warm from the correctness pass)
      const std::uint64_t allocs0 = bench::alloc_count();
      const auto t0 = Clock::now();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        for (std::size_t i = 0; i < n_msgs; ++i) {
          rs.encode_into(msgs[i], cw);
          bad = cw;
          corrupt(bad, i);
          if (!rs.decode_into(bad, dec, rscr)) r.identical = false;
          r.fast.work_items += kMsgBytes;
        }
      }
      r.fast.wall_time_s = seconds_since(t0);
      r.steady_allocs = bench::alloc_count() - allocs0;
    }
    results.push_back(std::move(r));
  }

  // --- manchester: byte round trip, bit loops vs LUTs --------------------
  {
    WorkloadResult r{"manchester", "bytes", {}, {}, true, 0};
    const std::size_t reps = quick ? 8 : 400;
    const auto data = make_bytes(quick ? 256 : 1125, 0xABCDEF);

    std::vector<phy::Chip> chips;
    std::vector<std::uint8_t> back;

    // Correctness pass.
    {
      const auto ref_bits = bench::ref::bytes_to_bits(data);
      const auto ref_chips = bench::ref::manchester_encode(ref_bits);
      const auto ref_dec = bench::ref::manchester_decode_lenient(ref_chips);
      const auto ref_back = bench::ref::bits_to_bytes(ref_dec.bits);

      arena_resize(chips, 16 * data.size());
      phy::manchester_encode_bytes(data, chips);
      arena_resize(back, data.size());
      const std::size_t violations =
          phy::manchester_decode_bytes_lenient(chips, back);
      if (chips != ref_chips || !ref_back || back != *ref_back ||
          back != data || violations != ref_dec.violations) {
        r.identical = false;
      }
    }

    {  // scalar timing
      r.scalar.emplace();
      const auto t0 = Clock::now();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto bits = bench::ref::bytes_to_bits(data);
        const auto c = bench::ref::manchester_encode(bits);
        const auto dec = bench::ref::manchester_decode_lenient(c);
        if (!bench::ref::bits_to_bytes(dec.bits)) r.identical = false;
        r.scalar->work_items += static_cast<double>(data.size());
      }
      r.scalar->wall_time_s = seconds_since(t0);
    }

    {  // fast timing (warm from the correctness pass)
      const std::uint64_t allocs0 = bench::alloc_count();
      const auto t0 = Clock::now();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        arena_resize(chips, 16 * data.size());
        phy::manchester_encode_bytes(data, chips);
        arena_resize(back, data.size());
        phy::manchester_decode_bytes_lenient(chips, back);
        r.fast.work_items += static_cast<double>(data.size());
      }
      r.fast.wall_time_s = seconds_since(t0);
      r.steady_allocs = bench::alloc_count() - allocs0;
    }
    results.push_back(std::move(r));
  }

  // --- frontend_filter: analog chain throughput --------------------------
  {
    WorkloadResult r{"frontend_filter", "samples", {}, {}, true, 0};
    const std::size_t reps = quick ? 2 : 40;
    const std::size_t n = quick ? 5000 : 50000;

    dsp::Waveform optical;
    optical.sample_rate_hz = 1e6;
    optical.samples.resize(n);
    Rng pattern_rng{0xF00D};
    for (std::size_t i = 0; i < n; ++i) {
      // OOK-like optical power: 0 or ~2.5 uW, new chip every 10 samples.
      if (i % 10 == 0) {
        optical.samples[i] = pattern_rng.bernoulli(0.5) ? 2.5e-6 : 0.0;
      } else {
        optical.samples[i] = optical.samples[i - 1];
      }
    }

    const phy::FrontEndConfig cfg{};  // default noisy front end
    // process() and process_into() from identically seeded front ends
    // must agree bit for bit (same noise stream, same filter states).
    {
      phy::ReceiverFrontEnd fe_a{cfg, Rng{42}};
      phy::ReceiverFrontEnd fe_b{cfg, Rng{42}};
      const auto out_a = fe_a.process(optical);
      dsp::Waveform out_b;
      fe_b.process_into(optical, out_b);
      if (out_a.samples != out_b.samples) r.identical = false;
    }

    {  // scalar timing (allocating process())
      r.scalar.emplace();
      phy::ReceiverFrontEnd fe{cfg, Rng{42}};
      const auto t0 = Clock::now();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto out = fe.process(optical);
        r.scalar->work_items += static_cast<double>(out.samples.size());
      }
      r.scalar->wall_time_s = seconds_since(t0);
    }

    {  // fast timing
      phy::ReceiverFrontEnd fe{cfg, Rng{42}};
      dsp::Waveform out;
      fe.process_into(optical, out);  // warm-up
      const std::uint64_t allocs0 = bench::alloc_count();
      const auto t0 = Clock::now();
      for (std::size_t rep = 0; rep < reps; ++rep) {
        fe.process_into(optical, out);
        r.fast.work_items += static_cast<double>(out.samples.size());
      }
      r.fast.wall_time_s = seconds_since(t0);
      r.steady_allocs = bench::alloc_count() - allocs0;
    }
    results.push_back(std::move(r));
  }

  // --- frame_wave: full TX -> front end -> RX chain, fast path only ------
  {
    WorkloadResult r{"frame_wave", "frames", {}, {}, true, 0};
    const std::size_t reps = quick ? 3 : 20;

    const phy::OokParams params{};
    const phy::OokModulator mod{params};
    phy::FrontEndConfig fcfg{};
    fcfg.noise_psd_a2_per_hz = 0.0;  // quiet: decode must always succeed
    phy::ReceiverFrontEnd fe{fcfg, Rng{7}};
    const phy::OokDemodulator demod{params.chip_rate_hz,
                                    fcfg.adc.sample_rate_hz};
    // LED current [A] -> received optical power [W]: chosen so the
    // 0.9 A swing lands around 1 V peak-to-peak after the 400 kV/W
    // receive gain (R 0.4 A/W x TIA 50 kOhm x AC gain 20).
    constexpr double kOpticalWPerAmp = 2.78e-6;
    // Long guards let the AC-coupling transient die out before the
    // preamble on the very first frame (corner 1 kHz ~ 160 samples).
    constexpr std::size_t kGuardChips = 64;

    phy::OokModulator::TxScratch txs;
    phy::OokDemodulator::RxScratch rxs;
    phy::OokDemodulator::RxResult rx;
    dsp::Waveform wf;
    dsp::Waveform optical;
    dsp::Waveform rx_wf;

    const auto run_one = [&](const phy::MacFrame& f) {
      mod.modulate_frame_into(f, false, 0, kGuardChips, wf, txs);
      optical.sample_rate_hz = wf.sample_rate_hz;
      arena_resize(optical.samples, wf.samples.size());
      for (std::size_t i = 0; i < wf.samples.size(); ++i) {
        optical.samples[i] = kOpticalWPerAmp * wf.samples[i];
      }
      fe.process_into(optical, rx_wf);
      if (!demod.receive_frame_into(rx_wf.samples, rx, rxs)) return false;
      return rx.parsed.frame.payload == f.payload;
    };

    for (std::size_t i = 0; i < 2; ++i) {  // warm-up (and filter settling)
      if (!run_one(frames[i % frames.size()])) r.identical = false;
    }
    const std::uint64_t allocs0 = bench::alloc_count();
    const auto t0 = Clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      if (!run_one(frames[rep % frames.size()])) r.identical = false;
      r.fast.work_items += 1.0;
    }
    r.fast.wall_time_s = seconds_since(t0);
    r.steady_allocs = bench::alloc_count() - allocs0;
    results.push_back(std::move(r));
  }

  // --- Report -------------------------------------------------------------
  bench::Json doc = bench::Json::object();
  doc.set("bench", "micro_phy");
  doc.set("quick", quick);
  doc.set("payload_bytes", kPayloadBytes);
  doc.set("interleave_depth", depth);
  doc.set("threads", threads);
  doc.set("simd_backend", std::string{simd::active_backend_name()});
  bench::Json workload_array = bench::Json::array();

  double headline_speedup = 0.0;
  double batch_speedup = 0.0;
  for (const auto& r : results) {
    TablePrinter table{{"path", "wall [s]", r.items_unit + "/s"}};
    const auto rate = [](const PathOutcome& p) {
      return p.wall_time_s > 0.0 ? p.work_items / p.wall_time_s : 0.0;
    };
    bench::Json wj = bench::Json::object();
    wj.set("name", r.name);
    wj.set("unit", r.items_unit);
    if (r.scalar) {
      table.add_row({r.scalar_label, fmt(r.scalar->wall_time_s, 4),
                     fmt_si(rate(*r.scalar))});
      bench::Json sj = bench::Json::object();
      sj.set("wall_time_s", r.scalar->wall_time_s);
      sj.set(r.items_unit + "_per_s", rate(*r.scalar));
      wj.set("scalar", std::move(sj));
    }
    table.add_row({"fast", fmt(r.fast.wall_time_s, 4), fmt_si(rate(r.fast))});
    bench::Json fj = bench::Json::object();
    fj.set("wall_time_s", r.fast.wall_time_s);
    fj.set(r.items_unit + "_per_s", rate(r.fast));
    wj.set("fast", std::move(fj));

    std::cout << r.name << ":\n";
    table.print(std::cout);
    if (r.scalar) {
      const double speedup =
          rate(r.fast) > 0.0 && rate(*r.scalar) > 0.0
              ? rate(r.fast) / rate(*r.scalar)
              : 0.0;
      std::cout << "  speedup fast vs " << r.scalar_label << ": "
                << fmt(speedup, 2) << "x\n";
      wj.set("speedup_fast_vs_scalar", speedup);
      wj.set("baseline", r.scalar_label);
      if (r.name == "frame_codec") headline_speedup = speedup;
      if (r.name == "frame_codec_batch") batch_speedup = speedup;
    }
    std::cout << "  outputs vs scalar baseline: "
              << (r.identical ? "bit-identical" : "MISMATCH") << "\n"
              << "  steady-state heap allocations: " << r.steady_allocs
              << (r.steady_allocs == 0 ? "" : "  HOT-PATH-ALLOC") << "\n\n";
    wj.set("bit_identical", r.identical);
    wj.set("steady_state_allocs", r.steady_allocs);
    workload_array.push(std::move(wj));

    all_identical = all_identical && r.identical;
    zero_alloc_ok = zero_alloc_ok && (r.steady_allocs == 0);
  }

  doc.set("workloads", std::move(workload_array));
  doc.set("frame_codec_speedup", headline_speedup);
  doc.set("frame_codec_batch_speedup", batch_speedup);
  doc.set("batch_sweep", std::move(batch_sweep));
  doc.set("bit_identical", all_identical);
  doc.set("zero_alloc", zero_alloc_ok);
  if (!bench::write_json_file(out_path, doc)) {
    std::cerr << "failed to write " << out_path << '\n';
    return 1;
  }

  std::cout << (all_identical ? "correctness: all fast paths bit-identical"
                              : "correctness MISMATCH: see tables")
            << '\n'
            << (zero_alloc_ok
                    ? "allocations: zero in steady state"
                    : "HOT-PATH-ALLOC: steady-state allocation detected")
            << '\n'
            << "frame_codec speedup: " << fmt(headline_speedup, 2)
            << "x (target >= 3x)\n"
            << "frame_codec_batch speedup vs LUT: " << fmt(batch_speedup, 2)
            << "x (target >= 2x, " << threads << " thread"
            << (threads == 1 ? "" : "s") << ")\nwrote " << out_path << '\n';
  return (all_identical && zero_alloc_ok) ? 0 : 1;
}
