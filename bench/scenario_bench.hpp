// Shared driver for the experimental-scenario benches (paper Figs. 18-20).
//
// Methodology mirrors Sec. 8.2: channel gains are *measured* by driving
// the waveform-level prober (not taken from geometry), the ranking
// heuristic is run for each kappa, TXs are granted full swing one by one
// down the ranked list (budget growing step by step), and the SINR /
// throughput are evaluated with Eq. (12) on the measured gains.
#pragma once

#include <string>
#include <vector>

#include "geom/vec3.hpp"

namespace densevlc::bench {

/// Runs the full Fig. 18/19/20 pipeline and prints the two panels
/// (per-RX normalized throughput for kappa = 1.3; normalized system
/// throughput for the kappa sweep) plus scenario-specific observations.
/// `figure` is e.g. "fig18"; `description` names the interference regime.
int run_scenario_bench(const std::string& figure,
                       const std::string& description,
                       const std::vector<geom::Vec3>& rx_positions);

}  // namespace densevlc::bench
