// Global allocation counter for zero-allocation assertions.
//
// Linking alloc_hook.cpp into a binary replaces the global operator
// new/delete family with counting wrappers. micro_phy and the fast-path
// tests read the counter around their steady-state loops: a non-zero
// delta on a DVLC_HOT path is a regression (printed as HOT-PATH-ALLOC by
// the bench, asserted directly by the tests).
#pragma once

#include <cstdint>

namespace densevlc::bench {

/// Number of global operator new / new[] calls since process start.
std::uint64_t alloc_count();

}  // namespace densevlc::bench
