// Extension: cell-free vs small-cell under mobility (paper Sec. 1: the
// cell-free design "facilitates mobility and improves the dynamic
// performance, compared to the conventional small cell-based design").
//
// A receiver walks a straight line across the room, crossing the
// boundaries of a 2x2 small-cell partition. At each step both designs
// re-allocate under the same power budget; the small-cell design shows
// deep throughput dips at the cell edges while the cell-free design
// glides through.
#include <algorithm>
#include <iostream>
#include <vector>

#include "alloc/assignment.hpp"
#include "alloc/small_cell.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/testbed.hpp"

int main() {
  using namespace densevlc;

  const auto tb = core::make_experimental_testbed();
  const alloc::CellPartition cells{tb.room, 2, 2};
  const double budget = 0.5;

  std::cout << "Extension - cell-free vs small-cell under mobility "
               "(one RX crossing the room; budget "
            << fmt(budget, 2) << " W)\n\n";

  TablePrinter table{{"x [m]", "cell", "cell-free [Mbit/s]",
                      "small-cell [Mbit/s]"}};
  std::vector<double> free_curve;
  std::vector<double> cell_curve;
  for (double x = 0.3; x <= 2.71; x += 0.1) {
    const std::vector<geom::Vec3> rx{{x, 1.45, 0.0}};
    const auto h = tb.channel_for(rx);

    alloc::AssignmentOptions opts;
    const auto dense =
        alloc::heuristic_allocate(h, 1.3, Watts{budget}, tb.budget, opts);
    const auto cellular = alloc::small_cell_allocate(
        h, cells, tb.tx_poses(), rx, Watts{budget}, Amperes{0.9}, tb.budget);

    const double t_free =
        channel::throughput_bps(h, dense.allocation, tb.budget)[0] / 1e6;
    const double t_cell =
        channel::throughput_bps(h, cellular.allocation, tb.budget)[0] / 1e6;
    free_curve.push_back(t_free);
    cell_curve.push_back(t_cell);
    table.add_row({fmt(x, 2),
                   std::to_string(cells.cell_of(x, 1.45)),
                   fmt(t_free, 2), fmt(t_cell, 2)});
  }
  table.print(std::cout);
  table.print_csv(std::cout, "ext_smallcell");

  const double free_min = stats::min(free_curve);
  const double free_mean = stats::mean(free_curve);
  const double cell_min = stats::min(cell_curve);
  const double cell_mean = stats::mean(cell_curve);

  std::cout << "\nPaper: cell-free facilitates mobility vs small cells.\n"
            << "Measured: worst-case throughput along the walk — "
               "cell-free "
            << fmt(free_min, 2) << " Mbit/s ("
            << fmt(100.0 * free_min / free_mean, 0)
            << "% of its mean) vs small-cell " << fmt(cell_min, 2)
            << " Mbit/s (" << fmt(100.0 * cell_min / std::max(cell_mean, 1e-9), 0)
            << "% of its mean) — "
            << (free_min > cell_min ? "confirmed: no boundary collapse "
                                      "in the cell-free design"
                                    : "MISMATCH")
            << '\n';
  return 0;
}
