// Extension: dimming vs communication capacity (paper Sec. 3.4: "Setting
// the bias Ib at the center of the linear region allows us to use a
// larger Isw,max. The opposite holds for a smaller or larger value of
// Ib").
//
// Thin wrapper over scenarios/ext_dimming.ini: the illumination-target
// sweep lives in the spec; the scenario compiler runs the luminaire
// planner per point (bias, swing ceiling, link budget) before the
// communication layer is evaluated. This binary re-derives the plan only
// to print the paper-style table columns the InstanceResult does not
// carry (achieved lux, illumination power).
//
// Usage: bench_ext_dimming [campaign.ini]
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/table.hpp"
#include "core/testbed.hpp"
#include "illum/dimming.hpp"
#include "scenario/campaign.hpp"

#ifndef DVLC_SCENARIO_DIR
#define DVLC_SCENARIO_DIR "scenarios"
#endif

int main(int argc, char** argv) {
  using namespace densevlc;

  const std::string spec_path =
      argc > 1 ? argv[1] : DVLC_SCENARIO_DIR "/ext_dimming.ini";
  const auto parsed = scenario::load_campaign_file(spec_path);
  if (!parsed.ok()) {
    std::cerr << "invalid campaign " << spec_path << ":\n"
              << parsed.error_text();
    return 2;
  }
  const scenario::CampaignSpec& campaign = *parsed.campaign;

  std::vector<scenario::CampaignInstance> instances;
  const auto errors = scenario::expand_campaign(
      campaign, campaign.instances_per_point, instances);
  if (!errors.empty()) {
    for (const auto& e : errors) std::cerr << e.to_string() << '\n';
    return 2;
  }
  const auto run = scenario::run_campaign(campaign, instances);

  std::cout << "Extension - dimming level vs communication "
               "(fixed " << fmt(campaign.base.power_budget_w, 1)
            << " W communication budget, Fig. 7 RXs)\n\n";

  TablePrinter table{{"target [lux]", "Ib [mA]", "Isw,max [mA]",
                      "ISO >= 500 lux", "system tput [Mbit/s]",
                      "P_ill per TX [W]"}};
  double tput_at_500 = 0.0;
  double tput_at_200 = 0.0;
  for (std::size_t p = 0; p < run.points.size(); ++p) {
    const scenario::ScenarioSpec& spec = instances[p].spec;
    const auto compiled = scenario::compile(spec);
    const auto& tb = compiled.system.testbed;
    // Re-run the planner for the display-only columns.
    illum::LuminaireDesign design;
    design.target_lux = spec.target_lux;
    design.leds_per_tx = spec.leds_per_tx;
    const auto plan =
        plan_luminaires(tb.room, tb.tx_poses(), tb.emitter,
                        tb.led.electrical(), design);
    const double tput_mbps = run.points[p].system_mbps.mean;
    if (spec.target_lux == 500.0) tput_at_500 = tput_mbps;
    if (spec.target_lux == 200.0) tput_at_200 = tput_mbps;
    table.add_row({fmt(spec.target_lux, 0), fmt(plan.bias_a * 1e3, 0),
                   fmt(plan.max_swing_a * 1e3, 0),
                   plan.achieved_lux >= 500.0 ? "yes" : "no",
                   fmt(tput_mbps, 2), fmt(plan.illumination_power_w, 2)});
  }
  table.print(std::cout);
  table.print_csv(std::cout, "ext_dimming");

  std::cout << "\nPaper: a smaller bias shrinks the valid modulation "
               "region.\nMeasured: dimming from 500 to 200 lux costs "
            << fmt(100.0 * (1.0 - tput_at_200 /
                                      std::max(tput_at_500, 1e-9)),
                   0)
            << "% of system throughput at the same communication power "
               "budget.\n";
  return 0;
}
