// Extension: dimming vs communication capacity (paper Sec. 3.4: "Setting
// the bias Ib at the center of the linear region allows us to use a
// larger Isw,max. The opposite holds for a smaller or larger value of
// Ib").
//
// Sweeps the illumination target; for each level the luminaire planner
// sizes the per-LED bias, the swing ceiling follows (min(0.9 A, 2 Ib)),
// and the communication layer is re-evaluated under a fixed power budget
// with that ceiling — quantifying the illumination/communication
// coupling DenseVLC lives with.
#include <iostream>

#include "alloc/assignment.hpp"
#include "common/table.hpp"
#include "illum/dimming.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace densevlc;

  const auto tb = sim::make_simulation_testbed();
  const auto rx_xy = sim::fig7_rx_positions();
  const double comm_budget_w = 0.6;

  std::cout << "Extension - dimming level vs communication "
               "(fixed 0.6 W communication budget, Fig. 7 RXs)\n\n";

  TablePrinter table{{"target [lux]", "Ib [mA]", "Isw,max [mA]",
                      "ISO >= 500 lux", "system tput [Mbit/s]",
                      "P_ill per TX [W]"}};
  double tput_at_500 = 0.0;
  double tput_at_200 = 0.0;
  for (double lux : {150.0, 200.0, 300.0, 400.0, 500.0, 600.0}) {
    illum::LuminaireDesign design;
    design.target_lux = lux;
    const auto plan = plan_luminaires(tb.room, tb.tx_poses(), tb.emitter,
                                      tb.led.electrical(), design);

    // Rebuild the electrical operating point at the dimmed bias.
    const optics::LedModel led{tb.led.electrical(),
                               {plan.bias_a, plan.max_swing_a}};
    const auto budget =
        channel::LinkBudget::from_led(led, AmperesPerWatt{0.4}, AmpsSquaredPerHertz{7.02e-23}, Hertz{1e6});
    const auto h = tb.channel_for(rx_xy);

    alloc::AssignmentOptions opts;
    opts.max_swing_a = plan.max_swing_a;
    const auto res =
        alloc::heuristic_allocate(h, 1.3, Watts{comm_budget_w}, budget, opts);
    double tput = 0.0;
    for (double t : channel::throughput_bps(h, res.allocation, budget)) {
      tput += t;
    }
    if (lux == 500.0) tput_at_500 = tput;
    if (lux == 200.0) tput_at_200 = tput;

    table.add_row({fmt(lux, 0), fmt(plan.bias_a * 1e3, 0),
                   fmt(plan.max_swing_a * 1e3, 0),
                   plan.achieved_lux >= 500.0 ? "yes" : "no",
                   fmt(tput / 1e6, 2),
                   fmt(plan.illumination_power_w, 2)});
  }
  table.print(std::cout);
  table.print_csv(std::cout, "ext_dimming");

  std::cout << "\nPaper: a smaller bias shrinks the valid modulation "
               "region.\nMeasured: dimming from 500 to 200 lux costs "
            << fmt(100.0 * (1.0 - tput_at_200 /
                                      std::max(tput_at_500, 1e-9)),
                   0)
            << "% of system throughput at the same communication power "
               "budget.\n";
  return 0;
}
