// Reproduces paper Table 5: iperf-style goodput and packet error rate for
// one RX placed at the center of TX2/TX3/TX8/TX9, under three scenarios:
//   1. 2 TXs (TX2+TX8, same BBB — inherently aligned): ~33.9 Kbit/s,
//      PER 0.19%;
//   2. 4 TXs without synchronization (TX3+TX9 hang off another BBB whose
//      multicast delivery skews by tens of microseconds): 0 Kbit/s,
//      PER 100%;
//   3. 4 TXs with the NLOS VLC synchronization: ~33.8 Kbit/s, PER 0.55%.
// Every frame is rendered, superimposed, filtered, digitized and decoded.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/beamspot.hpp"
#include "core/testbed.hpp"
#include "sync/nlos_sync.hpp"
#include "sync/timesync.hpp"

namespace {

using namespace densevlc;

struct ScenarioResult {
  double goodput_kbps = 0.0;
  double per_percent = 0.0;
};

ScenarioResult run_scenario(const core::Testbed& tb,
                            const std::vector<std::size_t>& txs,
                            bool second_bbb_synced, bool second_bbb_used,
                            const std::vector<double>& nlos_errors,
                            std::size_t frames, Rng& rng) {
  core::JointTransmission jt{tb.led, phy::OokParams{},
                             phy::FrontEndConfig{}};
  const auto h = tb.channel_for({{1.0, 0.5, 0.0}});
  const sync::TimeSyncConfig ts;

  phy::MacFrame frame;
  frame.dst = 0;
  frame.src = 0xC0;
  frame.payload.resize(100);
  for (std::size_t i = 0; i < frame.payload.size(); ++i) {
    frame.payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const double airtime = jt.frame_airtime_s(frame);
  const double mac_gap_s = 3e-3;  // guard + multicast + ACK turnaround

  std::size_t delivered = 0;
  for (std::size_t f = 0; f < frames; ++f) {
    // BBB A (TX2, TX8) anchors the timeline; BBB B (TX3, TX9) is offset
    // per the scenario.
    double bbb_b_offset = 0.0;
    if (second_bbb_used && !second_bbb_synced) {
      double u;
      do {
        u = rng.uniform();
      } while (u <= 0.0);
      bbb_b_offset = -ts.delivery_jitter_mean_s * std::log(u) +
                     rng.uniform(0.0, ts.stack_start_spread_s) +
                     rng.gaussian(0.0, ts.event_jitter_sigma_s);
    } else if (second_bbb_used && second_bbb_synced) {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(nlos_errors.size()) - 1));
      bbb_b_offset = nlos_errors[idx];
    }

    std::vector<core::ServingTx> servers;
    for (std::size_t tx : txs) {
      const bool on_bbb_a = tx == 1 || tx == 7;  // TX2, TX8
      servers.push_back(
          {tx, h.gain(tx, 0), 0.9, on_bbb_a ? 0.0 : bbb_b_offset});
    }
    delivered += jt.transmit(servers, frame, rng).delivered ? 1 : 0;
  }

  ScenarioResult out;
  const double elapsed =
      static_cast<double>(frames) * (airtime + mac_gap_s);
  out.goodput_kbps = static_cast<double>(delivered) *
                     static_cast<double>(frame.payload.size()) * 8.0 /
                     elapsed / 1e3;
  out.per_percent = 100.0 * (1.0 - static_cast<double>(delivered) /
                                       static_cast<double>(frames));
  return out;
}

}  // namespace

int main() {
  const auto tb = core::make_experimental_testbed();
  Rng rng{0x7AB'5};

  // Characterize the NLOS sync error for TX2 leading TX3 once.
  sync::NlosSyncConfig nc;
  nc.leader_pose = geom::ceiling_pose(0.75, 0.25, 2.0);
  nc.follower_pose = geom::ceiling_pose(1.25, 0.25, 2.0);
  sync::NlosSynchronizer nlos{nc};
  std::vector<double> nlos_errors;
  for (int t = 0; t < 40; ++t) {
    const auto d = nlos.simulate_once(rng);
    if (d.detected && d.id_matches) nlos_errors.push_back(d.start_error_s);
  }
  if (nlos_errors.empty()) nlos_errors.push_back(1e-6);

  const std::size_t frames = 80;
  std::cout << "Table 5 - iperf over the waveform data path (" << frames
            << " frames per scenario, 100 B payload, 100 Kchip/s)\n\n";

  const auto two_tx = run_scenario(tb, {1, 7}, false, false, nlos_errors,
                                   frames, rng);
  const auto four_nosync = run_scenario(tb, {1, 2, 7, 8}, false, true,
                                        nlos_errors, frames, rng);
  const auto four_sync = run_scenario(tb, {1, 2, 7, 8}, true, true,
                                      nlos_errors, frames, rng);

  TablePrinter table{{"scenario", "paper tput [Kbit/s]", "paper PER [%]",
                      "measured tput [Kbit/s]", "measured PER [%]"}};
  table.add_row({"2 TXs (same BBB)", "33.9", "0.19",
                 fmt(two_tx.goodput_kbps, 1), fmt(two_tx.per_percent, 2)});
  table.add_row({"4 TXs (no sync)", "0", "100",
                 fmt(four_nosync.goodput_kbps, 1),
                 fmt(four_nosync.per_percent, 2)});
  table.add_row({"4 TXs (NLOS VLC sync)", "33.8", "0.55",
                 fmt(four_sync.goodput_kbps, 1),
                 fmt(four_sync.per_percent, 2)});
  table.print(std::cout);
  table.print_csv(std::cout, "table5");

  const bool shape = four_nosync.per_percent > 90.0 &&
                     two_tx.per_percent < 5.0 &&
                     four_sync.per_percent < 5.0 &&
                     four_sync.goodput_kbps > 0.9 * two_tx.goodput_kbps;
  std::cout << "\nShape " << (shape ? "reproduced" : "MISMATCH")
            << ": sync restores the 4-TX beamspot to 2-TX goodput while "
               "no-sync loses every frame.\n";
  return 0;
}
