// Extension: pilot period vs alignment error, with and without drift
// tracking.
//
// One NLOS pilot aligns phase; oscillator drift (tens of ppm on BBB-class
// crystals) then degrades alignment until the next pilot. This bench
// sweeps the re-synchronization interval and shows (a) the alignment
// error a phase-only follower accumulates, (b) the error with the
// least-squares drift tracker, and (c) the resulting maximum pilot
// period that keeps alignment under 10% of a 10 us chip — i.e. how much
// pilot overhead the tracker saves.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sync/drift_tracker.hpp"

int main() {
  using namespace densevlc;

  const double pilot_noise_s = 0.5e-6;  // NLOS detection accuracy
  const double chip_s = 10e-6;
  const double error_budget_s = 0.1 * chip_s;  // 10% symbol overlap

  std::cout << "Extension - re-sync interval vs alignment error "
               "(30 ppm-class oscillators, 0.5 us pilot accuracy, 200 "
               "trials per point)\n\n";

  Rng rng{0xD21F7};
  TablePrinter table{{"pilot period [s]", "phase-only err [us]",
                      "tracked err [us]", "within 1 us budget?"}};
  double phase_only_max_period = 0.0;
  double tracked_max_period = 0.0;
  for (double period : {0.01, 0.03, 0.1, 0.3, 1.0, 3.0}) {
    std::vector<double> phase_err;
    std::vector<double> tracked_err;
    for (int t = 0; t < 200; ++t) {
      const double drift = rng.gaussian(0.0, 30.0);  // ppm
      const double offset = rng.uniform(0.0, 1e-3);
      sync::DriftTracker tracker{8};
      // Warm up with 6 pilots at the given period.
      for (int p = 0; p < 6; ++p) {
        const double nominal = p * period;
        const double local = offset + nominal * (1.0 + drift * 1e-6) +
                             rng.gaussian(0.0, pilot_noise_s);
        tracker.observe(nominal, local);
      }
      // Evaluate alignment right before the next pilot would arrive.
      const double eval = 6 * period;
      // Phase-only: extrapolate from the last pilot at nominal rate.
      const double last_nominal = 5 * period;
      const double last_local = offset +
                                last_nominal * (1.0 + drift * 1e-6) +
                                rng.gaussian(0.0, pilot_noise_s);
      const double phase_pred = last_local + (eval - last_nominal);
      const double truth = offset + eval * (1.0 + drift * 1e-6);
      phase_err.push_back(std::fabs(phase_pred - truth));
      tracked_err.push_back(
          std::fabs(tracker.prediction_error(eval, drift, offset)));
    }
    const double p_med = stats::median(phase_err);
    const double t_med = stats::median(tracked_err);
    if (p_med <= error_budget_s) phase_only_max_period = period;
    if (t_med <= error_budget_s) tracked_max_period = period;
    table.add_row({fmt(period, 2), fmt(units::to_us(p_med), 3),
                   fmt(units::to_us(t_med), 3),
                   t_med <= error_budget_s ? "tracked: yes" : "tracked: no"});
  }
  table.print(std::cout);
  table.print_csv(std::cout, "ext_drift");

  std::cout << "\nWith drift tracking the pilot period satisfying the "
               "1 us alignment budget stretches from "
            << fmt(phase_only_max_period, 2) << " s to "
            << fmt(tracked_max_period, 2)
            << " s — proportionally less airtime spent on pilots.\n";
  return 0;
}
