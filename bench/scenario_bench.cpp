#include "scenario_bench.hpp"

#include <algorithm>
#include <iostream>

#include "alloc/assignment.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/prober.hpp"
#include "core/testbed.hpp"

namespace densevlc::bench {

int run_scenario_bench(const std::string& figure,
                       const std::string& description,
                       const std::vector<geom::Vec3>& rx_positions) {
  const auto tb = core::make_experimental_testbed();
  const std::vector<double> kappas{1.0, 1.2, 1.3, 1.5};

  // Experimental channel measurement at waveform level.
  const auto truth = tb.channel_for(rx_positions);
  core::ChannelProber prober{tb.led, phy::OokParams{},
                             phy::FrontEndConfig{}, 0.9};
  Rng rng{0xF16'18};
  const auto measured = prober.probe_matrix(truth, rng);

  const double per_tx = alloc::full_swing_tx_power(Amperes{0.9}, tb.budget).value();
  const std::size_t n = measured.num_tx();
  const std::size_t m = measured.num_rx();

  std::cout << figure << " - " << description << "\n"
            << "(channel gains measured through the RX front-end; TXs "
               "granted full swing one by one)\n\n";

  // Build, per kappa, throughput trajectories over the assignment steps.
  struct Trajectory {
    std::vector<double> budget;
    std::vector<double> system;
    std::vector<std::vector<double>> per_rx;  // [rx][step]
  };
  std::vector<Trajectory> trajectories(kappas.size());
  double norm = 0.0;

  for (std::size_t ki = 0; ki < kappas.size(); ++ki) {
    const auto ranking = alloc::rank_transmitters(measured, kappas[ki]);
    Trajectory& traj = trajectories[ki];
    traj.per_rx.assign(m, {});
    alloc::AssignmentOptions opts;
    for (std::size_t steps = 1; steps <= n; ++steps) {
      const double budget = per_tx * static_cast<double>(steps) + 1e-12;
      const auto res = alloc::assign_by_ranking(ranking, n, m, Watts{budget},
                                                tb.budget, opts);
      if (res.txs_assigned < steps) break;  // ranked list exhausted
      const auto tput =
          channel::throughput_bps(measured, res.allocation, tb.budget);
      double total = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        traj.per_rx[k].push_back(tput[k]);
        total += tput[k];
      }
      traj.budget.push_back(budget);
      traj.system.push_back(total);
      norm = std::max(norm, total);
    }
  }
  if (norm <= 0.0) norm = 1.0;

  // Panel 1: per-RX normalized throughput for kappa = 1.3.
  {
    const Trajectory& traj = trajectories[2];
    TablePrinter table{{"P_C,tot [W]", "RX1", "RX2", "RX3", "RX4"}};
    for (std::size_t s = 0; s < traj.budget.size(); s += 2) {
      std::vector<double> row{traj.budget[s]};
      for (std::size_t k = 0; k < m; ++k) {
        row.push_back(traj.per_rx[k][s] / norm * static_cast<double>(m));
      }
      table.add_numeric_row(row, 3);
    }
    std::cout << "Per-RX normalized throughput (kappa = 1.3):\n";
    table.print(std::cout);
    table.print_csv(std::cout, figure + "_perrx");
  }

  // Panel 2: normalized system throughput for the kappa sweep.
  {
    TablePrinter table{{"P_C,tot [W]", "k=1.0", "k=1.2", "k=1.3", "k=1.5"}};
    const std::size_t steps = trajectories[0].budget.size();
    for (std::size_t s = 0; s < steps; s += 2) {
      std::vector<double> row{trajectories[0].budget[s]};
      for (const auto& traj : trajectories) {
        row.push_back(s < traj.system.size() ? traj.system[s] / norm : 0.0);
      }
      table.add_numeric_row(row, 3);
    }
    std::cout << "\nNormalized system throughput (kappa sweep):\n";
    table.print(std::cout);
    table.print_csv(std::cout, figure + "_kappa");
  }

  // Observations the paper calls out per scenario.
  auto final_system = [&](std::size_t ki) {
    return trajectories[ki].system.empty() ? 0.0
                                           : trajectories[ki].system.back();
  };
  auto early_system = [&](std::size_t ki, std::size_t step) {
    const auto& s = trajectories[ki].system;
    return step < s.size() ? s[step] : 0.0;
  };

  std::cout << "\nObservations:\n";
  std::cout << "  system throughput at full assignment: k=1.0 "
            << fmt(final_system(0) / norm, 3) << ", k=1.3 "
            << fmt(final_system(2) / norm, 3) << " (normalized)\n";
  std::cout << "  early budget (8 TXs): k=1.0 "
            << fmt(early_system(0, 7) / norm, 3) << " vs k=1.3 "
            << fmt(early_system(2, 7) / norm, 3)
            << " — the paper notes k=1.0 starts slower when interference "
               "is present\n";
  return 0;
}

}  // namespace densevlc::bench
