// Reproduces paper Fig. 19: Scenario 2 — with interference, no dominating
// TX (the Fig. 7 receiver placement of Table 6). Expected shape: RX1 ends
// below the other RXs (it sits nearest the interference hot zone);
// kappa = 1.0 starts slow at low budgets; kappa = 1.3 performs well.
#include "scenario_bench.hpp"
#include "scenario/scenarios.hpp"

int main() {
  return densevlc::bench::run_scenario_bench(
      "fig19", "Scenario 2: interference, no dominating TX",
      densevlc::scenario::fig7_rx_positions());
}
