// Monte-Carlo campaign runner.
//
// Loads a campaign file (scenario schema + [campaign]/[sweep] sections),
// expands the sweep grid into seeded instances, shards them across the
// deterministic thread pool and streams per-point aggregates (mean, 95%
// CI, p50/p99/p999 tails) into BENCH_campaign.json.
//
// Determinism gates, enforced by the ctest campaign wrappers:
//   - the whole campaign re-runs at every thread count in the sweep list
//     and the per-instance fingerprints must agree bit for bit
//     (MISMATCH otherwise);
//   - the instance list re-runs in reverse submission order and each
//     instance must reproduce its fingerprint exactly — results are a
//     pure function of (campaign file, instance index), never of shard
//     order (MISMATCH otherwise).
//
// Durable mode (PR 9): with --dir the campaign streams every finished
// instance into an append-only journal inside a campaign directory, so a
// SIGKILLed run loses at most the unsynced tail; --resume recovers the
// journals, reruns only the missing instances, and finalizes to the same
// campaign hash and byte-identical JSON as an uninterrupted run. --shard
// i/n restricts one worker process to its slice of the instance space
// (disjoint journal per shard); --supervise n forks the shard workers,
// SIGKILLs hung ones, and requeues crashed ones with capped exponential
// backoff. --crash-after-instances k arms deterministic crash injection
// (the worker SIGKILLs itself after journaling k instances), routed
// through a FaultKind::kWorkerCrash schedule entry like every other
// chaos experiment.
//
// Usage:
//   campaign [--quick] [--threads n[,n...]] <campaign.ini> [out.json]
//   campaign [--quick] [--threads n] (--dir d | --resume d)
//            [--shard i/n] [--supervise n] [--crash-after-instances k]
//            [--shard-timeout-s t] <campaign.ini> [out.json]
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <thread>
#define DVLC_CAMPAIGN_HAS_FORK 1
#endif

#include "bench_json.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault.hpp"
#include "scenario/campaign.hpp"

namespace {

using namespace densevlc;

std::string hex64(std::uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << v;
  return out.str();
}

/// "rx.count=4 grid=..." — the sweep point's coordinates, for humans.
std::string axis_label(
    const std::vector<std::pair<std::string, std::string>>& axis_values) {
  if (axis_values.empty()) return "-";
  std::string out;
  for (const auto& [key, value] : axis_values) {
    if (!out.empty()) out += "  ";
    // Multi-key legs already spell out key=value pairs.
    if (value.find('=') != std::string::npos) {
      out += value;
    } else {
      out += key + "=" + value;
    }
  }
  return out;
}

/// Fingerprint hashes keyed by expansion index, whatever order ran.
std::vector<std::uint64_t> hashes_by_index(
    std::span<const scenario::CampaignInstance> instances,
    const scenario::CampaignRun& run) {
  std::vector<std::uint64_t> hashes(instances.size(), 0);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    hashes[instances[i].index] = run.instances[i].fingerprint_hash();
  }
  return hashes;
}

void print_points_table(std::span<const scenario::PointAggregate> points) {
  TablePrinter table{{"sweep point", "n", "mean [Mbit/s]", "ci95", "p50",
                      "p99", "p999", "Jain", "TXs"}};
  for (const auto& point : points) {
    table.add_row({axis_label(point.axis_values),
                   std::to_string(point.instance_count),
                   fmt(point.system_mbps.mean, 2),
                   fmt(point.system_mbps.ci95, 2), fmt(point.p50_mbps, 2),
                   fmt(point.p99_mbps, 2), fmt(point.p999_mbps, 2),
                   fmt(point.mean_jain, 3), fmt(point.mean_txs, 1)});
  }
  table.print(std::cout);
  table.print_csv(std::cout, "campaign");
}

/// One JSON builder for both the legacy path and the durable finalize,
/// so a resumed campaign's BENCH_campaign.json can be byte-compared
/// against an uninterrupted run's.
bench::Json build_doc(const scenario::CampaignSpec& campaign, bool quick,
                      std::size_t per_point, std::size_t num_instances,
                      std::uint64_t campaign_hash,
                      std::span<const scenario::PointAggregate> points) {
  bench::Json doc = bench::Json::object();
  doc.set("bench", "campaign");
  doc.set("name", campaign.base.name);
  doc.set("quick", quick);
  doc.set("instances_per_point", per_point);
  doc.set("num_instances", num_instances);
  doc.set("campaign_hash", hex64(campaign_hash));
  bench::Json points_json = bench::Json::array();
  for (const auto& point : points) {
    bench::Json entry = bench::Json::object();
    bench::Json axes = bench::Json::object();
    for (const auto& [key, value] : point.axis_values) {
      axes.set(key, value);
    }
    entry.set("axes", std::move(axes));
    entry.set("n", point.instance_count);
    entry.set("mean_mbps", point.system_mbps.mean);
    entry.set("stddev_mbps", point.system_mbps.stddev);
    entry.set("ci95_mbps", point.system_mbps.ci95);
    entry.set("min_mbps", point.system_mbps.min);
    entry.set("max_mbps", point.system_mbps.max);
    entry.set("p50_mbps", point.p50_mbps);
    entry.set("p99_mbps", point.p99_mbps);
    entry.set("p999_mbps", point.p999_mbps);
    entry.set("mean_jain", point.mean_jain);
    entry.set("mean_power_w", point.mean_power_w);
    entry.set("mean_txs", point.mean_txs);
    entry.set("point_hash", hex64(point.point_hash));
    points_json.push(std::move(entry));
  }
  doc.set("points", std::move(points_json));
  return doc;
}

struct Options {
  bool quick = false;
  std::vector<std::size_t> thread_counts;
  std::string spec_path;
  std::string out_path = "BENCH_campaign.json";
  std::string dir;            ///< campaign directory (durable mode)
  bool resume = false;        ///< --resume instead of --dir
  std::size_t shard_i = 0;    ///< this worker's shard
  std::size_t shard_n = 1;    ///< total shards
  bool shard_given = false;   ///< explicit --shard => worker, no finalize
  std::size_t supervise = 0;  ///< fork this many shard workers
  std::size_t crash_after = 0;
  std::size_t shard_timeout_s = 300;
  bool bad = false;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) { opt.bad = true; break; }
      std::istringstream list{v};
      std::string item;
      while (std::getline(list, item, ',')) {
        opt.thread_counts.push_back(
            static_cast<std::size_t>(std::strtoul(item.c_str(), nullptr, 10)));
      }
    } else if (arg == "--dir" || arg == "--resume") {
      const char* v = next();
      if (v == nullptr) { opt.bad = true; break; }
      opt.dir = v;
      opt.resume = arg == "--resume";
    } else if (arg == "--shard") {
      const char* v = next();
      if (v == nullptr) { opt.bad = true; break; }
      const std::string spec = v;
      const auto slash = spec.find('/');
      if (slash == std::string::npos) { opt.bad = true; break; }
      opt.shard_i = static_cast<std::size_t>(
          std::strtoul(spec.substr(0, slash).c_str(), nullptr, 10));
      opt.shard_n = static_cast<std::size_t>(
          std::strtoul(spec.substr(slash + 1).c_str(), nullptr, 10));
      opt.shard_given = true;
      if (opt.shard_n == 0 || opt.shard_i >= opt.shard_n) opt.bad = true;
    } else if (arg == "--supervise") {
      const char* v = next();
      if (v == nullptr) { opt.bad = true; break; }
      opt.supervise =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
      if (opt.supervise == 0) opt.bad = true;
    } else if (arg == "--crash-after-instances") {
      const char* v = next();
      if (v == nullptr) { opt.bad = true; break; }
      opt.crash_after =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--shard-timeout-s") {
      const char* v = next();
      if (v == nullptr) { opt.bad = true; break; }
      opt.shard_timeout_s =
          static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (opt.spec_path.empty()) {
      opt.spec_path = arg;
    } else {
      opt.out_path = arg;
    }
  }
  if (opt.spec_path.empty()) opt.bad = true;
  if (opt.shard_given && opt.supervise != 0) opt.bad = true;
  if (opt.dir.empty() &&
      (opt.shard_given || opt.supervise != 0 || opt.crash_after != 0)) {
    opt.bad = true;
  }
  return opt;
}

int usage() {
  std::cerr
      << "usage: campaign [--quick] [--threads n[,n...]] <campaign.ini> "
         "[out.json]\n"
         "       campaign [--quick] [--threads n] (--dir d | --resume d)\n"
         "                [--shard i/n] [--supervise n]\n"
         "                [--crash-after-instances k] [--shard-timeout-s t]\n"
         "                <campaign.ini> [out.json]\n";
  return 2;
}

/// Recovers the whole campaign directory and, when every instance is
/// journaled, prints the aggregate table and writes the JSON artifact.
/// Returns 0 only on a complete, consistent campaign.
int finalize_campaign(const Options& opt,
                      const scenario::CampaignSpec& campaign,
                      std::size_t per_point, std::uint64_t campaign_id,
                      std::size_t num_instances) {
  scenario::CampaignRecovery recovery = scenario::recover_campaign_dir(
      opt.dir, campaign_id, num_instances);
  for (const std::string& error : recovery.errors) {
    std::cerr << "journal error: " << error << '\n';
  }
  if (!recovery.errors.empty()) return 1;
  if (recovery.dropped_bytes != 0) {
    std::cout << "journal recovery dropped " << recovery.dropped_bytes
              << " corrupt tail byte(s)\n";
  }
  if (recovery.records.size() < num_instances) {
    std::cout << "campaign incomplete: " << recovery.records.size() << "/"
              << num_instances << " instances journaled across "
              << recovery.journal_files
              << " journal(s); resume to continue\n";
    return 1;
  }

  scenario::CampaignSummary summary = scenario::summarize_records(
      campaign, per_point, std::move(recovery.records));
  print_points_table(summary.points);
  std::cout << "\ncampaign hash: " << hex64(summary.campaign_hash)
            << "\njournals: " << recovery.journal_files << " file(s), "
            << summary.instance_count << " instances\n";
  const bench::Json doc =
      build_doc(campaign, opt.quick, per_point, num_instances,
                summary.campaign_hash, summary.points);
  if (!bench::write_json_file(opt.out_path, doc)) {
    std::cerr << "failed to write " << opt.out_path << '\n';
    return 1;
  }
  std::cout << "wrote " << opt.out_path << '\n';
  return 0;
}

/// Opens this worker's shard journal, reruns exactly the instances the
/// journal does not already hold, and streams them as they finish.
int run_worker(const Options& opt, const scenario::CampaignSpec& campaign,
               std::span<const scenario::CampaignInstance> instances,
               std::uint64_t campaign_id, std::size_t num_instances) {
  scenario::CampaignJournal::Open open = scenario::CampaignJournal::open(
      opt.dir, opt.shard_i, campaign_id, num_instances, opt.resume);
  if (!open.campaign_journal) {
    std::cerr << "cannot open shard journal: " << open.error << '\n';
    return 1;
  }
  if (open.dropped_bytes != 0) {
    std::cout << "shard " << opt.shard_i << ": dropped "
              << open.dropped_bytes << " corrupt tail byte(s)\n";
  }

  std::unordered_set<std::uint64_t> done;
  done.reserve(open.recovered.size());
  for (const scenario::InstanceRecord& record : open.recovered) {
    done.insert(record.index);
  }
  std::vector<scenario::CampaignInstance> todo;
  for (const scenario::CampaignInstance& inst : instances) {
    if (inst.index % opt.shard_n != opt.shard_i) continue;
    if (done.count(inst.index) != 0) continue;
    todo.push_back(inst);
  }
  std::cout << "shard " << opt.shard_i << "/" << opt.shard_n << ": "
            << done.size() << " recovered, " << todo.size()
            << " to run\n";

  if (opt.crash_after != 0) {
    // Crash injection rides the same declarative rail as every other
    // chaos experiment: a kWorkerCrash schedule entry whose target is
    // the number of instances this worker journals before dying.
    fault::FaultSchedule chaos;
    fault::FaultEvent crash;
    crash.kind = fault::FaultKind::kWorkerCrash;
    crash.target = opt.crash_after;
    chaos.add(crash);
    if (const auto after = chaos.worker_crash_after()) {
      open.campaign_journal->set_crash_after(*after);
      std::cout << "crash injection: SIGKILL after " << *after
                << " journaled instance(s)\n";
    }
  }

  scenario::CampaignRunOptions run_options;
  run_options.campaign_journal = open.campaign_journal.get();
  (void)scenario::run_campaign(campaign, todo, run_options);
  if (!open.campaign_journal->flush() || !open.campaign_journal->ok()) {
    std::cerr << "shard " << opt.shard_i << ": journal write failure\n";
    return 1;
  }
  std::cout << "shard " << opt.shard_i << ": journaled "
            << open.campaign_journal->records_written()
            << " new instance(s)\n";
  return 0;
}

#ifdef DVLC_CAMPAIGN_HAS_FORK

/// Forks one worker per shard (`campaign --resume d --shard i/n ...`),
/// reaps exits, SIGKILLs workers that exceed the shard timeout, and
/// requeues failed shards with capped exponential backoff. The crash
/// flag is only passed to a shard's first attempt, so an injected crash
/// demonstrates exactly one requeue cycle per shard.
int run_supervisor(const Options& opt, const std::string& self,
                   std::size_t threads) {
  using Clock = std::chrono::steady_clock;
  constexpr std::size_t kMaxAttempts = 6;

  struct Shard {
    std::size_t id = 0;
    pid_t pid = -1;
    std::size_t attempts = 0;
    Clock::time_point started;
    Clock::time_point next_launch;
    bool done = false;
  };
  std::vector<Shard> shards(opt.supervise);
  const auto start = Clock::now();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    shards[i].id = i;
    shards[i].next_launch = start;
  }

  const auto launch = [&](Shard& shard) -> bool {
    std::vector<std::string> args = {self, "--resume", opt.dir, "--shard",
                                     std::to_string(shard.id) + "/" +
                                         std::to_string(opt.supervise),
                                     "--threads", std::to_string(threads)};
    if (opt.quick) args.push_back("--quick");
    if (opt.crash_after != 0 && shard.attempts == 0) {
      args.push_back("--crash-after-instances");
      args.push_back(std::to_string(opt.crash_after));
    }
    args.push_back(opt.spec_path);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      ::execv(self.c_str(), argv.data());
      ::_exit(127);  // exec failed
    }
    shard.pid = pid;
    shard.started = Clock::now();
    std::cout << "supervisor: shard " << shard.id << " attempt "
              << (shard.attempts + 1) << " -> pid " << pid << '\n';
    return true;
  };

  const auto requeue = [&](Shard& shard, const std::string& why) -> bool {
    shard.pid = -1;
    ++shard.attempts;
    if (shard.attempts >= kMaxAttempts) {
      std::cerr << "supervisor: shard " << shard.id << " " << why
                << "; giving up after " << shard.attempts << " attempts\n";
      return false;
    }
    const std::uint64_t backoff =
        scenario::campaign_backoff_ms(shard.attempts - 1);
    shard.next_launch = Clock::now() + std::chrono::milliseconds(backoff);
    std::cout << "supervisor: shard " << shard.id << " " << why
              << "; requeue in " << backoff << " ms\n";
    return true;
  };

  bool failed = false;
  while (!failed) {
    bool all_done = true;
    const auto now = Clock::now();
    for (Shard& shard : shards) {
      if (shard.done) continue;
      all_done = false;
      if (shard.pid < 0) {
        if (now >= shard.next_launch && !launch(shard)) {
          std::cerr << "supervisor: fork failed for shard " << shard.id
                    << '\n';
          failed = true;
        }
        continue;
      }
      int status = 0;
      const pid_t reaped = ::waitpid(shard.pid, &status, WNOHANG);
      if (reaped == shard.pid) {
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          shard.done = true;
          std::cout << "supervisor: shard " << shard.id << " finished\n";
        } else {
          const std::string why =
              WIFSIGNALED(status)
                  ? "killed by signal " + std::to_string(WTERMSIG(status))
                  : "exited with status " +
                        std::to_string(WEXITSTATUS(status));
          if (!requeue(shard, why)) failed = true;
        }
        continue;
      }
      // Hung worker: past the shard timeout it gets SIGKILL; the reap
      // on the next poll routes it through the requeue path above.
      const auto running =
          std::chrono::duration_cast<std::chrono::seconds>(now -
                                                           shard.started);
      if (running.count() >= 0 &&
          static_cast<std::size_t>(running.count()) >= opt.shard_timeout_s) {
        std::cerr << "supervisor: shard " << shard.id << " timed out; "
                  << "sending SIGKILL\n";
        (void)::kill(shard.pid, SIGKILL);
        shard.started = Clock::now();  // give the reap a fresh window
      }
    }
    if (all_done) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  for (const Shard& shard : shards) {
    if (shard.pid > 0) {
      (void)::kill(shard.pid, SIGKILL);
      int status = 0;
      (void)::waitpid(shard.pid, &status, 0);
    }
  }
  return failed ? 1 : 0;
}

#endif  // DVLC_CAMPAIGN_HAS_FORK

/// Legacy in-memory mode: thread-count sweep + reversed-submission
/// check, exactly as the determinism gates expect.
int run_legacy(const Options& opt, const scenario::CampaignSpec& campaign,
               std::size_t per_point,
               std::span<const scenario::CampaignInstance> instances) {
  std::vector<std::size_t> thread_counts = opt.thread_counts;
  if (thread_counts.empty()) {
    thread_counts = {1, 4};
    if (std::find(thread_counts.begin(), thread_counts.end(),
                  hardware_threads()) == thread_counts.end()) {
      thread_counts.push_back(hardware_threads());
    }
  }

  // Run at every thread count; the first run is the reference.
  scenario::CampaignRun run;
  std::vector<std::uint64_t> reference_hashes;
  bool bit_identical = true;
  for (std::size_t threads : thread_counts) {
    set_global_threads(threads);
    scenario::CampaignRun r = scenario::run_campaign(campaign, instances);
    const auto hashes = hashes_by_index(instances, r);
    if (threads == thread_counts.front()) {
      reference_hashes = hashes;
      run = std::move(r);
    } else if (hashes != reference_hashes) {
      bit_identical = false;
    }
  }

  // Shard-order independence: resubmit the same instances in reverse
  // order; every instance must reproduce its fingerprint.
  std::vector<scenario::CampaignInstance> reversed{instances.rbegin(),
                                                   instances.rend()};
  set_global_threads(thread_counts.back());
  const scenario::CampaignRun reversed_run =
      scenario::run_campaign(campaign, reversed);
  const bool order_independent =
      hashes_by_index(reversed, reversed_run) == reference_hashes;
  set_global_threads(0);  // restore the default

  print_points_table(run.points);

  std::cout << "\ncampaign hash: " << hex64(run.campaign_hash)
            << "\ndeterminism: "
            << (bit_identical
                    ? "fingerprints bit-identical at all thread counts"
                    : "MISMATCH across thread counts")
            << "\nshard order: "
            << (order_independent ? "results independent of submission order"
                                  : "MISMATCH under reversed submission")
            << '\n';

  const bench::Json doc =
      build_doc(campaign, opt.quick, per_point, instances.size(),
                run.campaign_hash, run.points);
  if (!bench::write_json_file(opt.out_path, doc)) {
    std::cerr << "failed to write " << opt.out_path << '\n';
    return 1;
  }
  std::cout << "wrote " << opt.out_path << '\n';
  return bit_identical && order_independent ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  if (opt.bad) return usage();

  const auto parsed = scenario::load_campaign_file(opt.spec_path);
  if (!parsed.ok()) {
    std::cerr << "invalid campaign " << opt.spec_path << ":\n"
              << parsed.error_text();
    return 2;
  }
  const scenario::CampaignSpec& campaign = *parsed.campaign;
  const std::size_t per_point = opt.quick
                                    ? campaign.quick_instances_per_point
                                    : campaign.instances_per_point;

  std::vector<scenario::CampaignInstance> instances;
  const auto expand_errors =
      scenario::expand_campaign(campaign, per_point, instances);
  if (!expand_errors.empty()) {
    for (const auto& e : expand_errors) std::cerr << e.to_string() << '\n';
    return 2;
  }

  std::cout << "Campaign " << campaign.base.name << ": "
            << campaign.num_points() << " sweep points x " << per_point
            << " instances = " << instances.size() << " runs"
            << (opt.quick ? " (quick mode)" : "") << "\n\n";

  if (opt.dir.empty()) return run_legacy(opt, campaign, per_point, instances);

  // Durable mode: one thread count (no sweep), journaled execution.
  const std::size_t threads =
      opt.thread_counts.empty() ? hardware_threads()
                                : opt.thread_counts.front();
  set_global_threads(threads);
  const std::uint64_t campaign_id =
      scenario::campaign_identity(campaign, per_point);
  const std::size_t num_instances = instances.size();

  if (opt.supervise != 0) {
#ifdef DVLC_CAMPAIGN_HAS_FORK
    std::error_code ec;
    if (!opt.resume && std::filesystem::is_directory(opt.dir, ec)) {
      // A fresh --dir must not silently absorb a previous campaign.
      const scenario::CampaignRecovery existing =
          scenario::recover_campaign_dir(opt.dir, campaign_id,
                                         num_instances);
      if (!existing.records.empty() || !existing.errors.empty()) {
        std::cerr << "campaign directory " << opt.dir
                  << " already holds journal records; use --resume\n";
        return 1;
      }
    }
    const int supervise_rc = run_supervisor(opt, argv[0], threads);
    if (supervise_rc != 0) return supervise_rc;
#else
    std::cerr << "--supervise requires fork(); not available on this "
                 "platform\n";
    return 2;
#endif
  } else {
    const int worker_rc =
        run_worker(opt, campaign, instances, campaign_id, num_instances);
    if (worker_rc != 0) return worker_rc;
    // Explicit --shard means a supervisor (or script) owns the campaign
    // directory; this process only contributes its slice.
    if (opt.shard_given) return 0;
  }

  return finalize_campaign(opt, campaign, per_point, campaign_id,
                           num_instances);
}
