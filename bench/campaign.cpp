// Monte-Carlo campaign runner.
//
// Loads a campaign file (scenario schema + [campaign]/[sweep] sections),
// expands the sweep grid into seeded instances, shards them across the
// deterministic thread pool and streams per-point aggregates (mean, 95%
// CI, p50/p99/p999 tails) into BENCH_campaign.json.
//
// Determinism gates, enforced by the ctest campaign wrappers:
//   - the whole campaign re-runs at every thread count in the sweep list
//     and the per-instance fingerprints must agree bit for bit
//     (MISMATCH otherwise);
//   - the instance list re-runs in reverse submission order and each
//     instance must reproduce its fingerprint exactly — results are a
//     pure function of (campaign file, instance index), never of shard
//     order (MISMATCH otherwise).
//
// Usage: campaign [--quick] [--threads n[,n...]] <campaign.ini> [out.json]
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "scenario/campaign.hpp"

namespace {

using namespace densevlc;

std::string hex64(std::uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << v;
  return out.str();
}

/// "rx.count=4 grid=..." — the sweep point's coordinates, for humans.
std::string axis_label(
    const std::vector<std::pair<std::string, std::string>>& axis_values) {
  if (axis_values.empty()) return "-";
  std::string out;
  for (const auto& [key, value] : axis_values) {
    if (!out.empty()) out += "  ";
    // Multi-key legs already spell out key=value pairs.
    if (value.find('=') != std::string::npos) {
      out += value;
    } else {
      out += key + "=" + value;
    }
  }
  return out;
}

/// Fingerprint hashes keyed by expansion index, whatever order ran.
std::vector<std::uint64_t> hashes_by_index(
    std::span<const scenario::CampaignInstance> instances,
    const scenario::CampaignRun& run) {
  std::vector<std::uint64_t> hashes(instances.size(), 0);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    hashes[instances[i].index] = run.instances[i].fingerprint_hash();
  }
  return hashes;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<std::size_t> thread_counts;
  std::string spec_path;
  std::string out_path = "BENCH_campaign.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      std::istringstream list{argv[++i]};
      std::string item;
      while (std::getline(list, item, ',')) {
        thread_counts.push_back(
            static_cast<std::size_t>(std::strtoul(item.c_str(), nullptr, 10)));
      }
    } else if (spec_path.empty()) {
      spec_path = argv[i];
    } else {
      out_path = argv[i];
    }
  }
  if (spec_path.empty()) {
    std::cerr << "usage: campaign [--quick] [--threads n[,n...]] "
                 "<campaign.ini> [out.json]\n";
    return 2;
  }
  if (thread_counts.empty()) {
    thread_counts = {1, 4};
    if (std::find(thread_counts.begin(), thread_counts.end(),
                  hardware_threads()) == thread_counts.end()) {
      thread_counts.push_back(hardware_threads());
    }
  }

  std::ifstream in{spec_path};
  if (!in) {
    std::cerr << "cannot read " << spec_path << '\n';
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  const auto parsed = scenario::parse_campaign(buffer.str());
  if (!parsed.ok()) {
    std::cerr << "invalid campaign " << spec_path << ":\n"
              << parsed.error_text();
    return 2;
  }
  const scenario::CampaignSpec& campaign = *parsed.campaign;
  const std::size_t per_point = quick ? campaign.quick_instances_per_point
                                      : campaign.instances_per_point;

  std::vector<scenario::CampaignInstance> instances;
  const auto expand_errors =
      scenario::expand_campaign(campaign, per_point, instances);
  if (!expand_errors.empty()) {
    for (const auto& e : expand_errors) std::cerr << e.to_string() << '\n';
    return 2;
  }

  std::cout << "Campaign " << campaign.base.name << ": "
            << campaign.num_points() << " sweep points x " << per_point
            << " instances = " << instances.size() << " runs"
            << (quick ? " (quick mode)" : "") << "\n\n";

  // Run at every thread count; the first run is the reference.
  scenario::CampaignRun run;
  std::vector<std::uint64_t> reference_hashes;
  bool bit_identical = true;
  for (std::size_t threads : thread_counts) {
    set_global_threads(threads);
    scenario::CampaignRun r = scenario::run_campaign(campaign, instances);
    const auto hashes = hashes_by_index(instances, r);
    if (threads == thread_counts.front()) {
      reference_hashes = hashes;
      run = std::move(r);
    } else if (hashes != reference_hashes) {
      bit_identical = false;
    }
  }

  // Shard-order independence: resubmit the same instances in reverse
  // order; every instance must reproduce its fingerprint.
  std::vector<scenario::CampaignInstance> reversed{instances.rbegin(),
                                                   instances.rend()};
  set_global_threads(thread_counts.back());
  const scenario::CampaignRun reversed_run =
      scenario::run_campaign(campaign, reversed);
  const bool order_independent =
      hashes_by_index(reversed, reversed_run) == reference_hashes;
  set_global_threads(0);  // restore the default

  TablePrinter table{{"sweep point", "n", "mean [Mbit/s]", "ci95", "p50",
                      "p99", "p999", "Jain", "TXs"}};
  for (const auto& point : run.points) {
    table.add_row({axis_label(point.axis_values),
                   std::to_string(point.instance_count),
                   fmt(point.system_mbps.mean, 2),
                   fmt(point.system_mbps.ci95, 2), fmt(point.p50_mbps, 2),
                   fmt(point.p99_mbps, 2), fmt(point.p999_mbps, 2),
                   fmt(point.mean_jain, 3), fmt(point.mean_txs, 1)});
  }
  table.print(std::cout);
  table.print_csv(std::cout, "campaign");

  std::cout << "\ncampaign hash: " << hex64(run.campaign_hash)
            << "\ndeterminism: "
            << (bit_identical
                    ? "fingerprints bit-identical at all thread counts"
                    : "MISMATCH across thread counts")
            << "\nshard order: "
            << (order_independent ? "results independent of submission order"
                                  : "MISMATCH under reversed submission")
            << '\n';

  bench::Json doc = bench::Json::object();
  doc.set("bench", "campaign");
  doc.set("name", campaign.base.name);
  doc.set("quick", quick);
  doc.set("instances_per_point", per_point);
  doc.set("num_instances", instances.size());
  doc.set("campaign_hash", hex64(run.campaign_hash));
  bench::Json points = bench::Json::array();
  for (const auto& point : run.points) {
    bench::Json entry = bench::Json::object();
    bench::Json axes = bench::Json::object();
    for (const auto& [key, value] : point.axis_values) {
      axes.set(key, value);
    }
    entry.set("axes", std::move(axes));
    entry.set("n", point.instance_count);
    entry.set("mean_mbps", point.system_mbps.mean);
    entry.set("stddev_mbps", point.system_mbps.stddev);
    entry.set("ci95_mbps", point.system_mbps.ci95);
    entry.set("min_mbps", point.system_mbps.min);
    entry.set("max_mbps", point.system_mbps.max);
    entry.set("p50_mbps", point.p50_mbps);
    entry.set("p99_mbps", point.p99_mbps);
    entry.set("p999_mbps", point.p999_mbps);
    entry.set("mean_jain", point.mean_jain);
    entry.set("mean_power_w", point.mean_power_w);
    entry.set("mean_txs", point.mean_txs);
    entry.set("point_hash", hex64(point.point_hash));
    points.push(std::move(entry));
  }
  doc.set("points", std::move(points));
  if (!bench::write_json_file(out_path, doc)) {
    std::cerr << "failed to write " << out_path << '\n';
    return 1;
  }
  std::cout << "wrote " << out_path << '\n';
  return bit_identical && order_independent ? 0 : 1;
}
