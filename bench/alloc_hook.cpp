// Counting replacements for the global allocation functions. See
// alloc_hook.hpp for the contract. The full set (array, nothrow, and
// aligned forms) is replaced so no allocation path escapes the counter.
#include "alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void count() { g_allocs.fetch_add(1, std::memory_order_relaxed); }

void* plain_alloc(std::size_t size) noexcept {
  return std::malloc(size == 0 ? 1 : size);
}

void* aligned_alloc_impl(std::size_t size, std::size_t align) noexcept {
  if (size == 0) size = 1;
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size) != 0) return nullptr;
  return p;
}

/// Retry-through-new-handler loop required of the throwing forms.
template <typename Alloc>
void* alloc_or_throw(std::size_t size, Alloc alloc) {
  for (;;) {
    if (void* p = alloc(size)) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc{};
    handler();
  }
}

}  // namespace

namespace densevlc::bench {

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

}  // namespace densevlc::bench

void* operator new(std::size_t size) {
  count();
  return alloc_or_throw(size, plain_alloc);
}

void* operator new[](std::size_t size) {
  count();
  return alloc_or_throw(size, plain_alloc);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  count();
  return plain_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  count();
  return plain_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  count();
  return alloc_or_throw(size, [align](std::size_t s) {
    return aligned_alloc_impl(s, static_cast<std::size_t>(align));
  });
}

void* operator new[](std::size_t size, std::align_val_t align) {
  count();
  return alloc_or_throw(size, [align](std::size_t s) {
    return aligned_alloc_impl(s, static_cast<std::size_t>(align));
  });
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  count();
  return aligned_alloc_impl(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  count();
  return aligned_alloc_impl(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
