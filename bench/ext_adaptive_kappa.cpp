// Extension: personalized per-TX kappa (paper Sec. 9, "Personalized and
// adaptive kappa ... can boost the system performance towards the
// optimal result").
//
// Compares, over random instances and budgets: the uniform kappa = 1.3
// heuristic, the personalized-kappa search, and the optimal solver.
#include <iostream>
#include <vector>

#include "alloc/adaptive_kappa.hpp"
#include "alloc/optimal.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "scenario/scenarios.hpp"

int main() {
  using namespace densevlc;

  const auto tb = core::make_simulation_testbed();
  const auto instances = scenario::random_instances(20, 0.25, tb.room, 0xADA7);
  alloc::OptimalSolverConfig ocfg;
  ocfg.max_iterations = 250;
  alloc::AssignmentOptions opts;

  std::cout << "Extension - personalized per-TX kappa vs uniform vs "
               "optimal (20 instances)\n\n";

  // The gap is measured in the proportional-fairness objective the
  // paper's Eq. (5) optimizes (sum of log throughputs): both the solver
  // and the kappa search maximize exactly this quantity, so the
  // personalized gap is never larger than the uniform one by
  // construction — the question is how much of it the search closes.
  TablePrinter table{{"budget [W]", "uniform utility gap",
                      "personalized utility gap", "gap closed [%]",
                      "search evals"}};

  auto utility = [&](const channel::ChannelMatrix& h,
                     const channel::Allocation& a) {
    return channel::sum_log_utility(h, a, tb.budget);
  };

  std::vector<double> closed_all;
  for (double budget : {0.4, 0.8, 1.2}) {
    std::vector<double> uniform_gap;
    std::vector<double> personal_gap;
    std::vector<double> evals;
    for (const auto& rx_xy : instances) {
      const auto h = tb.channel_for(rx_xy);
      const auto opt = alloc::solve_optimal(h, Watts{budget}, tb.budget, ocfg);

      const auto uniform =
          alloc::heuristic_allocate(h, 1.3, Watts{budget}, tb.budget, opts);
      alloc::AdaptiveKappaConfig acfg;
      acfg.max_rounds = 5;
      const auto personal =
          alloc::personalize_kappa(h, Watts{budget}, tb.budget, opts, acfg);

      uniform_gap.push_back(
          std::max(0.0, opt.utility - utility(h, uniform.allocation)));
      personal_gap.push_back(
          std::max(0.0, opt.utility - personal.utility));
      evals.push_back(static_cast<double>(personal.evaluations));
    }
    const double u = stats::mean(uniform_gap);
    const double p = stats::mean(personal_gap);
    const double closed = u > 0.0 ? 100.0 * (u - p) / u : 0.0;
    closed_all.push_back(closed);
    table.add_numeric_row({budget, u, p, closed, stats::mean(evals)}, 3);
  }
  table.print(std::cout);
  table.print_csv(std::cout, "ext_adaptive_kappa");

  std::cout << "\nPaper: personalized kappas \"can boost the system "
               "performance towards the optimal result\".\nMeasured: the "
               "search closes "
            << fmt(stats::mean(closed_all), 0)
            << "% of the uniform heuristic's remaining gap on average ("
            << (stats::mean(closed_all) > 0.0 ? "confirmed" : "MISMATCH")
            << ")\n";
  return 0;
}
