#include "bench_json.hpp"

#include <cmath>
#include <cstdio>

#include "common/contracts.hpp"
#include "common/journal.hpp"

namespace densevlc::bench {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; encode as null so consumers fail loudly
    // rather than parse a bare token.
    out += "null";
    return;
  }
  // Shortest representation that round-trips.
  char buf[32];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) break;
  }
  out += buf;
}

}  // namespace

Json::Json(double v) : kind_{Kind::kDouble}, double_{v} {}
Json::Json(std::int64_t v) : kind_{Kind::kInt}, int_{v} {}
Json::Json(std::size_t v)
    : kind_{Kind::kInt}, int_{static_cast<std::int64_t>(v)} {}
Json::Json(int v) : kind_{Kind::kInt}, int_{v} {}
Json::Json(bool v) : kind_{Kind::kBool}, bool_{v} {}
Json::Json(std::string v) : kind_{Kind::kString}, string_{std::move(v)} {}
Json::Json(const char* v) : kind_{Kind::kString}, string_{v} {}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  DVLC_EXPECT(kind_ == Kind::kObject, "Json::set on a non-object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  DVLC_EXPECT(kind_ == Kind::kArray, "Json::push on a non-array");
  items_.push_back(std::move(value));
  return *this;
}

void Json::render(std::string& out, int depth) const {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string inner_pad(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: append_double(out, double_); break;
    case Kind::kString: append_escaped(out, string_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += inner_pad;
        items_[i].render(out, depth + 1);
        if (i + 1 < items_.size()) out.push_back(',');
        out.push_back('\n');
      }
      out += pad + "]";
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += inner_pad;
        append_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.render(out, depth + 1);
        if (i + 1 < members_.size()) out.push_back(',');
        out.push_back('\n');
      }
      out += pad + "}";
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  render(out, 0);
  out.push_back('\n');
  return out;
}

bool write_json_file(const std::string& path, const Json& value) {
  // Write-temp-then-rename: a bench killed mid-write must leave either
  // the previous artifact or the new one, never a truncated JSON file.
  return journal::write_file_atomic(path, value.dump());
}

}  // namespace densevlc::bench
