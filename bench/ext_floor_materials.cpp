// Extension: NLOS synchronization vs floor material and human motion
// (paper Sec. 9, "NLOS synchronization": pilots are detectable on less
// reflective floors, and a person walking by does not break sync).
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sync/nlos_sync.hpp"

int main() {
  using namespace densevlc;

  std::cout << "Extension - NLOS sync vs floor material and a walking "
               "person (TX2 leading TX3, 40 pilots per row)\n\n";

  struct Material {
    const char* name;
    double reflectance;
  };
  const std::vector<Material> materials{{"dark carpet", 0.15},
                                        {"wood", 0.30},
                                        {"concrete", 0.45},
                                        {"light tile", 0.60},
                                        {"glossy white", 0.80}};

  TablePrinter table{{"floor", "pilot rate", "rho", "NLOS gain",
                      "detect rate", "median error [us]"}};
  Rng rng{0xF100'12};
  double rate_dark = 0.0;
  for (const auto& mat : materials) {
    sync::NlosSyncConfig cfg;
    cfg.leader_pose = geom::ceiling_pose(0.75, 0.25, 2.0);
    cfg.follower_pose = geom::ceiling_pose(1.25, 0.25, 2.0);
    cfg.floor.reflectance = mat.reflectance;
    // Low-reflectance floors need link margin: the leader slows its
    // pilot (longer correlation window, narrower noise bandwidth), a
    // trade a real deployment makes automatically.
    if (mat.reflectance < 0.25) cfg.pilot_chip_rate_hz = 12.5e3;
    sync::NlosSynchronizer sync{cfg};
    std::size_t detected = 0;
    std::vector<double> errors;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
      const auto d = sync.simulate_once(rng);
      if (d.detected && d.id_matches) {
        ++detected;
        errors.push_back(std::abs(d.start_error_s));
      }
    }
    const double rate = static_cast<double>(detected) / trials;
    if (mat.reflectance == 0.15) rate_dark = rate;
    table.add_row({mat.name,
                   fmt_si(sync.config().pilot_chip_rate_hz, 1) + "cps",
                   fmt(mat.reflectance, 2),
                   fmt_si(sync.channel_gain(), 2),
                   fmt(100.0 * rate, 0) + "%",
                   errors.empty() ? "-" : fmt(units::to_us(
                                              stats::median(errors)),
                                              3)});
  }
  table.print(std::cout);
  table.print_csv(std::cout, "ext_floor_materials");

  // A person walking across the bounce zone between leader and follower.
  std::cout << "\nWalking person (rho = 0.5 floor), person radius 0.3 m:\n";
  TablePrinter walk{{"person position", "detect rate",
                     "median error [us]"}};
  double worst_rate = 1.0;
  for (double x : {0.5, 0.75, 1.0, 1.25, 1.5}) {
    sync::NlosSyncConfig cfg;
    cfg.leader_pose = geom::ceiling_pose(0.75, 0.25, 2.0);
    cfg.follower_pose = geom::ceiling_pose(1.25, 0.25, 2.0);
    cfg.occluders = {{x, 0.35, 0.3}};
    sync::NlosSynchronizer sync{cfg};
    std::size_t detected = 0;
    std::vector<double> errors;
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
      const auto d = sync.simulate_once(rng);
      if (d.detected && d.id_matches) {
        ++detected;
        errors.push_back(std::abs(d.start_error_s));
      }
    }
    const double rate = static_cast<double>(detected) / trials;
    worst_rate = std::min(worst_rate, rate);
    walk.add_row({"(" + fmt(x, 2) + ", 0.35)",
                  fmt(100.0 * rate, 0) + "%",
                  errors.empty() ? "-" : fmt(units::to_us(
                                             stats::median(errors)),
                                             3)});
  }
  walk.print(std::cout);
  walk.print_csv(std::cout, "ext_walking_person");

  std::cout << "\nPaper claims: pilots detectable on less reflective "
               "floors (measured dark-carpet detect rate "
            << fmt(100.0 * rate_dark, 0)
            << "%); a walking person does not break sync (worst-case "
               "detect rate with a person in the zone: "
            << fmt(100.0 * worst_rate, 0) << "%).\n";
  return 0;
}
