// Reproduces paper Table 4: median synchronization error of the three
// methods — none (10.040 us), NTP/PTP (4.565 us), and the proposed NLOS
// VLC pilot (0.575 us) — for a leading TX2 synchronizing its neighbour
// TX3 at ftx = 100 Ksymbols/s and frx = 1 Msamples/s.
#include <iostream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sync/nlos_sync.hpp"
#include "sync/timesync.hpp"

int main() {
  using namespace densevlc;

  Rng rng{0x7AB'4};
  const sync::TimeSyncConfig ts;

  // Software baselines, measured exactly as in Sec. 6.1.
  const double none = sync::measure_sync_delay(sync::SyncMethod::kNone, ts,
                                               100e3, 1000, 100, rng);
  const double ptp = sync::measure_sync_delay(sync::SyncMethod::kNtpPtp, ts,
                                              100e3, 1000, 100, rng);

  // NLOS VLC: TX2 leads TX3 (adjacent grid positions at 2 m mounting,
  // the experimental testbed of Sec. 8).
  sync::NlosSyncConfig nc;
  nc.leader_pose = geom::ceiling_pose(0.75, 0.25, 2.0);    // TX2
  nc.follower_pose = geom::ceiling_pose(1.25, 0.25, 2.0);  // TX3
  nc.leader_id = 2;
  sync::NlosSynchronizer nlos{nc};
  const auto errors = nlos.measure_errors(200, rng);
  const double nlos_median = stats::median(errors);

  std::cout << "Table 4 - Median synchronization error\n"
            << "(ftx = 100 Ksym/s, frx = 1 Msps, TX2 leading TX3, floor "
               "reflectance "
            << fmt(nc.floor.reflectance, 2) << ")\n\n";
  TablePrinter table{{"method", "paper", "measured"}};
  table.add_row({"No synchronization", "10.040 us",
                 fmt(units::to_us(none), 3) + " us"});
  table.add_row(
      {"NTP/PTP", "4.565 us", fmt(units::to_us(ptp), 3) + " us"});
  table.add_row({"NLOS VLC (ours)", "0.575 us",
                 fmt(units::to_us(nlos_median), 3) + " us"});
  table.print(std::cout);
  table.print_csv(std::cout, "table4");

  std::cout << "\nDetections: " << errors.size()
            << "/200 pilots decoded; NLOS channel gain = "
            << fmt_si(nlos.channel_gain(), 3) << "\n"
            << "Ordering " << (nlos_median < ptp && ptp < none
                                   ? "reproduced: NLOS < NTP/PTP < none"
                                   : "MISMATCH")
            << '\n';
  return 0;
}
