// Extension: receiver orientation (paper Sec. 9, "RX orientation ...
// both the optimization problem and the heuristic are not limited to
// facing-up receivers, and work for all receiver orientations").
//
// Tilts every receiver of the Fig. 7 instance by a sweep of polar angles
// (each leaning in a different azimuth) and shows that the heuristic
// keeps allocating sensibly: throughput degrades gracefully and the
// chosen beamspots shift toward the lean.
#include <cmath>
#include <iostream>
#include <vector>

#include "alloc/assignment.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "scenario/scenarios.hpp"

int main() {
  using namespace densevlc;

  const auto tb = core::make_experimental_testbed();
  const auto rx_xy = scenario::fig7_rx_positions();

  std::cout << "Extension - tilted receivers (each RX leans outward by "
               "the tilt angle; kappa = 1.3, budget 1.2 W)\n\n";

  TablePrinter table{{"tilt [deg]", "system tput [Mbit/s]", "RXs served",
                      "TXs used", "RX1 leader"}};

  double tput_flat = 0.0;
  double tput_45 = 0.0;
  for (double tilt_deg : {0.0, 10.0, 20.0, 30.0, 45.0, 60.0}) {
    std::vector<geom::Pose> poses;
    for (std::size_t k = 0; k < rx_xy.size(); ++k) {
      // Each RX leans away from the room center.
      const double az = std::atan2(rx_xy[k].y - 1.5, rx_xy[k].x - 1.5);
      poses.push_back(geom::tilted_pose(rx_xy[k].x, rx_xy[k].y, 0.0,
                                        units::deg_to_rad(tilt_deg), az));
    }
    const auto h = tb.channel_for_poses(poses);
    alloc::AssignmentOptions opts;
    const auto res = alloc::heuristic_allocate(h, 1.3, Watts{1.2}, tb.budget, opts);
    const auto tput = channel::throughput_bps(h, res.allocation, tb.budget);

    double total = 0.0;
    std::size_t served = 0;
    for (double t : tput) {
      total += t;
      served += t > 1e3 ? 1 : 0;
    }
    if (tilt_deg == 0.0) tput_flat = total;
    if (tilt_deg == 45.0) tput_45 = total;

    // Leading (strongest allocated) TX for RX1.
    std::size_t leader = 0;
    double best = -1.0;
    for (std::size_t j = 0; j < h.num_tx(); ++j) {
      if (res.allocation.swing(j, 0) > 0.0 && h.gain(j, 0) > best) {
        best = h.gain(j, 0);
        leader = j + 1;
      }
    }
    table.add_row({fmt(tilt_deg, 0), fmt(total / 1e6, 2),
                   std::to_string(served), std::to_string(res.txs_assigned),
                   leader > 0 ? "TX" + std::to_string(leader) : "-"});
  }
  table.print(std::cout);
  table.print_csv(std::cout, "ext_orientation");

  std::cout << "\nPaper: the heuristic works for all receiver "
               "orientations.\nMeasured: at 45 degrees of tilt the system "
               "still delivers "
            << fmt(100.0 * tput_45 / tput_flat, 0)
            << "% of the face-up throughput, with beamspots re-formed "
               "toward the lean.\n";
  return 0;
}
