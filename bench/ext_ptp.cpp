// Extension: why software sync floors out at microseconds (supports
// paper Sec. 6.1's conclusion that NTP/PTP "cannot be synchronized with
// a higher accuracy ... because it relies on external libraries running
// on top of an operating system").
//
// Simulates IEEE-1588-style two-way exchanges at the message level and
// decomposes the residual into the averaging-reducible jitter part and
// the irreducible path-asymmetry part.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sync/ptp.hpp"

int main() {
  using namespace densevlc;

  Rng rng{0xE7B};
  const double true_offset = 40e-6;

  std::cout << "Extension - PTP residual decomposition "
               "(two-way exchanges, 300 runs per point)\n\n";

  // Panel 1: residual vs exchanges averaged (jitter integrates away).
  {
    sync::PtpLinkConfig link;  // default: 4 us jitter, 1.5 us asymmetry
    TablePrinter table{{"exchanges averaged", "median |residual| [us]"}};
    for (std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      std::vector<double> residuals;
      for (int t = 0; t < 300; ++t) {
        residuals.push_back(std::fabs(
            sync::ptp_residual_after_sync(true_offset, link, n, rng)));
      }
      table.add_row({std::to_string(n),
                     fmt(units::to_us(stats::median(residuals)), 3)});
    }
    table.print(std::cout);
    table.print_csv(std::cout, "ext_ptp_avg");
    std::cout << "Asymmetry floor for this link: "
              << fmt(units::to_us(sync::ptp_asymmetry_floor(link)), 2)
              << " us — averaging approaches it but never crosses it.\n\n";
  }

  // Panel 2: residual vs path asymmetry at fixed averaging.
  {
    TablePrinter table{{"asymmetry [us]", "median |residual| [us]",
                        "analytic floor [us]"}};
    for (double asym_us : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      sync::PtpLinkConfig link;
      link.asymmetry_s = asym_us * 1e-6;
      std::vector<double> residuals;
      for (int t = 0; t < 300; ++t) {
        residuals.push_back(std::fabs(
            sync::ptp_residual_after_sync(true_offset, link, 16, rng)));
      }
      table.add_row({fmt(asym_us, 1),
                     fmt(units::to_us(stats::median(residuals)), 3),
                     fmt(asym_us / 2.0, 2)});
    }
    table.print(std::cout);
    table.print_csv(std::cout, "ext_ptp_asym");
  }

  std::cout << "\nConclusion: the few-microsecond NTP/PTP error the paper "
               "measures (4.565 us) is consistent with ordinary Ethernet "
               "jitter and sub-10 us path asymmetry — and no amount of "
               "averaging removes the asymmetry term, which is why the "
               "NLOS-VLC method (0.575 us) wins.\n";
  return 0;
}
