// Reproduces the paper's Sec. 5 complexity claim: solving the swing
// optimization takes 165 s in Matlab while the ranking heuristic takes
// 0.07 s — a 99.96% reduction. Our C++ projected-gradient solver is much
// faster than fmincon, but the *relative* gap between the optimal solver
// and the heuristic is the reproducible quantity. Built on
// google-benchmark; run with --benchmark_min_time=... to tighten.
#include <benchmark/benchmark.h>

#include "alloc/assignment.hpp"
#include "alloc/optimal.hpp"
#include "scenario/scenarios.hpp"

namespace {

using namespace densevlc;

const core::Testbed& testbed() {
  static const core::Testbed tb = core::make_simulation_testbed();
  return tb;
}

const channel::ChannelMatrix& fig7_channel() {
  static const channel::ChannelMatrix h =
      testbed().channel_for(scenario::fig7_rx_positions());
  return h;
}

void BM_OptimalSolver(benchmark::State& state) {
  const auto& tb = testbed();
  const auto& h = fig7_channel();
  alloc::OptimalSolverConfig cfg;
  cfg.max_iterations = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::solve_optimal(h, Watts{1.2}, tb.budget, cfg));
  }
}
BENCHMARK(BM_OptimalSolver)->Arg(100)->Arg(250)->Arg(400);

void BM_SjrRanking(benchmark::State& state) {
  const auto& h = fig7_channel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::rank_transmitters(h, 1.3));
  }
}
BENCHMARK(BM_SjrRanking);

void BM_HeuristicEndToEnd(benchmark::State& state) {
  const auto& tb = testbed();
  const auto& h = fig7_channel();
  alloc::AssignmentOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        alloc::heuristic_allocate(h, 1.3, Watts{1.2}, tb.budget, opts));
  }
}
BENCHMARK(BM_HeuristicEndToEnd);

void BM_SinrEvaluation(benchmark::State& state) {
  const auto& tb = testbed();
  const auto& h = fig7_channel();
  alloc::AssignmentOptions opts;
  const auto res = alloc::heuristic_allocate(h, 1.3, Watts{1.2}, tb.budget, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel::sinr(h, res.allocation, tb.budget));
  }
}
BENCHMARK(BM_SinrEvaluation);

}  // namespace

BENCHMARK_MAIN();
