// Ablation: binary-rounding polish on the optimal solver (quantifies
// paper Insight 2 — "only two modes of operation for the LEDs are
// enough"). For a sweep of budgets on the Fig. 7 instance plus random
// instances, compares the continuous optimum against its fully binary
// rounding.
#include <iostream>
#include <vector>

#include "alloc/optimal.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "scenario/scenarios.hpp"

int main() {
  using namespace densevlc;

  const auto tb = core::make_simulation_testbed();
  alloc::OptimalSolverConfig cfg;
  cfg.max_iterations = 250;

  std::cout << "Ablation - binary rounding of the continuous optimum "
               "(Insight 2)\n\n";

  TablePrinter table{{"budget [W]", "optimal tput [Mbit/s]",
                      "binary tput [Mbit/s]", "loss [%]", "fractional TXs"}};
  const auto instances = scenario::random_instances(20, 0.25, tb.room, 0xAB1A);

  std::vector<double> losses;  // only budgets >= 0.6 W enter the verdict
  for (double budget : {0.3, 0.6, 0.9, 1.2, 1.8}) {
    std::vector<double> opt_t;
    std::vector<double> bin_t;
    std::vector<double> fracs;
    for (const auto& rx_xy : instances) {
      const auto h = tb.channel_for(rx_xy);
      const auto opt = alloc::solve_optimal(h, Watts{budget}, tb.budget, cfg);
      const auto polished =
          alloc::polish_binary(h, opt.allocation, Watts{budget}, tb.budget, Amperes{0.9});
      auto sum = [&](const channel::Allocation& a) {
        double s = 0.0;
        for (double t : channel::throughput_bps(h, a, tb.budget)) s += t;
        return s / 1e6;
      };
      opt_t.push_back(sum(opt.allocation));
      bin_t.push_back(sum(polished.allocation));
      fracs.push_back(static_cast<double>(polished.rounded_up +
                                          polished.rounded_down));
    }
    const double mean_opt = stats::mean(opt_t);
    const double mean_bin = stats::mean(bin_t);
    const double loss = 100.0 * (1.0 - mean_bin / mean_opt);
    if (budget >= 0.6) losses.push_back(loss);
    table.add_numeric_row({budget, mean_opt, mean_bin, loss,
                           stats::mean(fracs)},
                          3);
  }
  table.print(std::cout);
  table.print_csv(std::cout, "ablation_polish");

  std::cout << "\nPaper Insight 2: binary {0, Isw,max} operation is "
               "near-optimal. (At starved budgets the paper's own Fig. 9 "
               "shows intermediate swings, so those are excluded.)\n"
               "Measured: worst-case binary loss "
            << fmt(stats::max(losses), 2)
            << "% across budgets >= 0.6 W ("
            << (stats::max(losses) < 3.0 ? "confirmed" : "MISMATCH")
            << ")\n";
  return 0;
}
