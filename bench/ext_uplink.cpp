// Extension: WiFi uplink load check (paper Sec. 7.2: "uplink packets are
// usually smaller in quantity and size compared to downlink packets.
// Therefore, the WiFi link is not easily congested").
//
// Feeds the uplink queue with the MAC's actual traffic mix (per-frame
// ACKs plus per-epoch channel reports) across RX counts and downlink
// frame rates, reporting utilization and sojourn times.
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "net/queueing.hpp"

int main() {
  using namespace densevlc;

  std::cout << "Extension - WiFi uplink congestion check "
               "(60 s of ACK + report traffic)\n\n";

  TablePrinter table{{"RXs", "frames/s per RX", "offered load",
                      "mean sojourn [us]", "p99 [us]", "dropped"}};
  double load_paper = 0.0;
  for (std::size_t rxs : {4u, 8u, 16u}) {
    for (double frame_rate : {45.0, 100.0, 400.0}) {
      net::UplinkTraffic traffic;
      traffic.ack_rate_hz = frame_rate;
      const auto report = net::analyze_uplink(traffic, rxs, 60.0,
                                              0xBEEF + rxs);
      if (rxs == 4 && frame_rate == 45.0) load_paper = report.offered_load;
      table.add_row({std::to_string(rxs), fmt(frame_rate, 0),
                     fmt(100.0 * report.offered_load, 1) + "%",
                     fmt(units::to_us(report.mean_sojourn_s), 0),
                     fmt(units::to_us(report.p99_sojourn_s), 0),
                     std::to_string(report.dropped)});
    }
  }
  table.print(std::cout);
  table.print_csv(std::cout, "ext_uplink");

  std::cout << "\nPaper claim: the WiFi uplink is not easily congested.\n"
            << "Measured at the paper's operating point (4 RXs, ~45 "
               "frames/s): "
            << fmt(100.0 * load_paper, 1)
            << "% utilization — the claim holds with an order of "
               "magnitude of headroom; even 16 RXs at ~9x the frame rate "
               "stay uncongested.\n";
  return 0;
}
