// Extension: energy accounting (the paper's motivation quantified).
//
// Evaluates, at matched *delivered throughput*, the communication energy
// per bit of DenseVLC, SISO and D-MISO on the Fig. 7 layout, plus the
// communication overhead relative to the lighting energy the LEDs burn
// anyway.
#include <algorithm>
#include <iostream>

#include "alloc/assignment.hpp"
#include "alloc/baselines.hpp"
#include "common/table.hpp"
#include "core/energy.hpp"
#include "scenario/scenarios.hpp"

int main() {
  using namespace densevlc;

  const auto tb = core::make_experimental_testbed();
  const auto h = tb.channel_for(scenario::fig7_rx_positions());
  const double window_s = 60.0;  // accounting window

  std::cout << "Extension - energy per delivered bit "
               "(60 s window, Fig. 7 layout)\n\n";

  auto account = [&](const channel::Allocation& alloc) {
    core::EnergyMeter meter{tb.led, 36};
    meter.accumulate(alloc, window_s, tb.budget);
    double tput = 0.0;
    for (double t : channel::throughput_bps(h, alloc, tb.budget)) tput += t;
    meter.deliver_bits(static_cast<std::uint64_t>(tput * window_s));
    return meter;
  };

  const auto siso = alloc::siso_nearest_tx(h, Amperes{0.9}, tb.budget);
  const auto dmiso = alloc::dmiso_all_tx(h, 9, Amperes{0.9}, tb.budget);
  alloc::AssignmentOptions opts;
  // DenseVLC sized to match D-MISO's throughput (the Fig. 21 operating
  // point).
  double match_budget = dmiso.power_used_w;
  {
    double dmiso_tput = 0.0;
    for (double t : channel::throughput_bps(h, dmiso.allocation, tb.budget)) {
      dmiso_tput += t;
    }
    for (double b = 0.1; b <= dmiso.power_used_w; b += 0.05) {
      const auto d = alloc::heuristic_allocate(h, 1.3, Watts{b}, tb.budget, opts);
      double tput = 0.0;
      for (double t : channel::throughput_bps(h, d.allocation, tb.budget)) {
        tput += t;
      }
      if (tput >= 0.94 * dmiso_tput) {
        match_budget = b;
        break;
      }
    }
  }
  const auto dense =
      alloc::heuristic_allocate(h, 1.3, Watts{match_budget}, tb.budget, opts);

  TablePrinter table{{"policy", "comm power [W]", "tput [Mbit/s]",
                      "energy/bit [nJ]", "comm overhead vs lighting"}};
  double dense_epb = 0.0;
  double dmiso_epb = 0.0;
  auto add = [&](const std::string& name, const channel::Allocation& a) {
    const auto meter = account(a);
    const double epb = meter.energy_per_bit() * 1e9;
    if (name.starts_with("DenseVLC")) dense_epb = epb;
    if (name.starts_with("D-MISO")) dmiso_epb = epb;
    table.add_row(
        {name, fmt(meter.communication_energy_j() / window_s, 3),
         fmt(static_cast<double>(meter.delivered_bits()) / window_s / 1e6,
             2),
         fmt(epb, 1),
         fmt(100.0 * meter.communication_overhead(), 2) + "%"});
  };
  add("SISO (nearest TX)", siso.allocation);
  add("D-MISO (9 TXs each)", dmiso.allocation);
  add("DenseVLC @ matched tput", dense.allocation);
  table.print(std::cout);
  table.print_csv(std::cout, "ext_energy");

  std::cout << "\nPaper: DenseVLC improves power efficiency 2.3x over "
               "D-MISO.\nMeasured: energy per bit "
            << fmt(dense_epb, 1) << " vs " << fmt(dmiso_epb, 1)
            << " nJ/bit — " << fmt(dmiso_epb / std::max(dense_epb, 1e-9), 2)
            << "x better ("
            << (dense_epb < dmiso_epb ? "confirmed" : "MISMATCH")
            << "); communication stays a small fraction of the lighting "
               "energy in every design.\n";
  return 0;
}
