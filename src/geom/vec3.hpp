// Minimal 3-D vector algebra for the optical geometry.
//
// Coordinate convention (matches the paper's figures): x/y span the floor
// plane in meters with the origin at a room corner; z points up, so the
// ceiling LEDs sit at z = room height and face -z, receivers face +z.
#pragma once

#include <cmath>

namespace densevlc::geom {

/// A 3-D vector / point with double components. Plain aggregate — no
/// invariant beyond finite components, per struct-for-data guidance.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr bool operator==(const Vec3&) const = default;

  /// Dot product.
  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }

  /// Euclidean norm.
  double norm() const { return std::sqrt(dot(*this)); }

  /// Squared norm (cheaper when only comparisons are needed).
  constexpr double norm2() const { return dot(*this); }

  /// Unit vector in this direction. Undefined for the zero vector; callers
  /// guard with norm() > 0.
  Vec3 normalized() const {
    const double n = norm();
    return {x / n, y / n, z / n};
  }

  /// Cross product.
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

/// Euclidean distance between two points.
inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

/// An oriented optical element: a position plus the unit normal of its
/// emitting (LED) or collecting (photodiode) surface.
struct Pose {
  Vec3 position{};
  Vec3 normal{0.0, 0.0, -1.0};  ///< default: ceiling-mounted, facing down
};

/// Pose helper for a ceiling luminaire at (x, y, height) facing the floor.
constexpr Pose ceiling_pose(double x, double y, double height) {
  return Pose{{x, y, height}, {0.0, 0.0, -1.0}};
}

/// Pose helper for an upward-facing receiver at (x, y, height).
constexpr Pose floor_pose(double x, double y, double height) {
  return Pose{{x, y, height}, {0.0, 0.0, 1.0}};
}

/// Pose for a receiver tilted away from vertical: `tilt_rad` is the polar
/// angle from +z (0 = facing straight up), `azimuth_rad` the direction of
/// the lean in the XY plane (0 = toward +x). Used by the RX-orientation
/// study (paper Sec. 9 notes the algorithms work for any orientation).
inline Pose tilted_pose(double x, double y, double height, double tilt_rad,
                        double azimuth_rad) {
  return Pose{{x, y, height},
              {std::sin(tilt_rad) * std::cos(azimuth_rad),
               std::sin(tilt_rad) * std::sin(azimuth_rad),
               std::cos(tilt_rad)}};
}

}  // namespace densevlc::geom
