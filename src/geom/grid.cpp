#include "geom/grid.hpp"

namespace densevlc::geom {

std::vector<Pose> make_ceiling_grid(const Room& room, const GridSpec& spec) {
  std::vector<Pose> poses;
  poses.reserve(spec.count());
  // Center the grid footprint in the room.
  const double span_x = static_cast<double>(spec.cols - 1) * spec.pitch;
  const double span_y = static_cast<double>(spec.rows - 1) * spec.pitch;
  const double x0 = (room.width - span_x) / 2.0;
  const double y0 = (room.depth - span_y) / 2.0;
  for (std::size_t r = 0; r < spec.rows; ++r) {
    for (std::size_t c = 0; c < spec.cols; ++c) {
      poses.push_back(ceiling_pose(x0 + static_cast<double>(c) * spec.pitch,
                                   y0 + static_cast<double>(r) * spec.pitch,
                                   spec.mount_height_m));
    }
  }
  return poses;
}

std::vector<Vec3> make_raster(double x0, double x1, double y0, double y1,
                              double z, std::size_t per_axis) {
  std::vector<Vec3> pts;
  if (per_axis == 0) return pts;
  pts.reserve(per_axis * per_axis);
  const double dx =
      per_axis > 1 ? (x1 - x0) / static_cast<double>(per_axis - 1) : 0.0;
  const double dy =
      per_axis > 1 ? (y1 - y0) / static_cast<double>(per_axis - 1) : 0.0;
  for (std::size_t iy = 0; iy < per_axis; ++iy) {
    for (std::size_t ix = 0; ix < per_axis; ++ix) {
      pts.push_back({x0 + static_cast<double>(ix) * dx,
                     y0 + static_cast<double>(iy) * dy, z});
    }
  }
  return pts;
}

}  // namespace densevlc::geom
