// Room geometry and regular transmitter grids.
//
// DenseVLC deploys N LEDs in a square grid on the ceiling (6x6 with 0.5 m
// pitch in the paper). These helpers build that layout and enumerate
// sample points for illuminance maps.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/vec3.hpp"

namespace densevlc::geom {

/// Axis-aligned room with the floor at z = 0.
struct Room {
  double width = 3.0;    ///< extent in x [m]
  double depth = 3.0;    ///< extent in y [m]
  double height_m = 2.8;  ///< ceiling height

  /// True if the (x, y) point lies inside the floor rectangle.
  constexpr bool contains_xy(double x, double y) const {
    return x >= 0.0 && x <= width && y >= 0.0 && y <= depth;
  }

  /// Center of the floor plane.
  constexpr Vec3 floor_center() const {
    return {width / 2.0, depth / 2.0, 0.0};
  }
};

/// Parameters of a regular n x n ceiling grid of luminaires.
struct GridSpec {
  std::size_t rows = 6;      ///< grid rows (y direction)
  std::size_t cols = 6;      ///< grid columns (x direction)
  double pitch = 0.5;        ///< inter-luminaire spacing [m]
  double mount_height_m = 2.8;  ///< z of the luminaire plane

  /// Total number of luminaires.
  constexpr std::size_t count() const { return rows * cols; }
};

/// Builds downward-facing ceiling poses for the grid, centered in the room.
/// Index order matches the paper's TX numbering: TX1 is the top-left
/// (minimum x, minimum y) and indices advance along x first, then y —
/// i.e. index = row * cols + col, position x = offset + col * pitch.
std::vector<Pose> make_ceiling_grid(const Room& room, const GridSpec& spec);

/// Enumerates (x, y) sample points of a regular raster over a rectangle
/// [x0, x1] x [y0, y1] at the given z, with `per_axis` points per axis.
/// Used by the illuminance map and uniformity checks.
std::vector<Vec3> make_raster(double x0, double x1, double y0, double y1,
                              double z, std::size_t per_axis);

}  // namespace densevlc::geom
