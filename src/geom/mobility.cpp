#include "geom/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace densevlc::geom {

WaypointMobility::WaypointMobility(std::vector<Waypoint> waypoints)
    : waypoints_{std::move(waypoints)} {
  if (waypoints_.empty()) {
    throw std::invalid_argument{"WaypointMobility: need >= 1 waypoint"};
  }
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (waypoints_[i].time_s <= waypoints_[i - 1].time_s) {
      throw std::invalid_argument{
          "WaypointMobility: times must be strictly increasing"};
    }
  }
}

geom::Vec3 WaypointMobility::position(double t_s) const {
  if (t_s <= waypoints_.front().time_s) return waypoints_.front().pos;
  if (t_s >= waypoints_.back().time_s) return waypoints_.back().pos;
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (t_s <= waypoints_[i].time_s) {
      const auto& a = waypoints_[i - 1];
      const auto& b = waypoints_[i];
      const double f = (t_s - a.time_s) / (b.time_s - a.time_s);
      return a.pos + (b.pos - a.pos) * f;
    }
  }
  return waypoints_.back().pos;
}

RandomWalkMobility::RandomWalkMobility(geom::Vec3 start, double speed_mps,
                                       double heading_interval_s,
                                       const geom::Room& room,
                                       double duration_s,
                                       std::uint64_t seed) {
  Rng rng{seed};
  const auto ticks =
      static_cast<std::size_t>(std::ceil(duration_s / tick_s_)) + 1;
  track_.reserve(ticks);
  geom::Vec3 pos = start;
  double heading = rng.uniform(0.0, 2.0 * kPi);
  double until_turn = heading_interval_s;
  for (std::size_t i = 0; i < ticks; ++i) {
    track_.push_back(pos);
    until_turn -= tick_s_;
    if (until_turn <= 0.0) {
      heading = rng.uniform(0.0, 2.0 * kPi);
      until_turn = heading_interval_s;
    }
    double nx = pos.x + speed_mps * tick_s_ * std::cos(heading);
    double ny = pos.y + speed_mps * tick_s_ * std::sin(heading);
    // Reflect off the walls.
    if (nx < 0.0 || nx > room.width) {
      heading = kPi - heading;
      nx = std::clamp(nx, 0.0, room.width);
    }
    if (ny < 0.0 || ny > room.depth) {
      heading = -heading;
      ny = std::clamp(ny, 0.0, room.depth);
    }
    pos.x = nx;
    pos.y = ny;
  }
}

geom::Vec3 RandomWalkMobility::position(double t_s) const {
  if (track_.empty()) return {};
  auto idx = static_cast<std::size_t>(std::max(0.0, t_s) / tick_s_);
  idx = std::min(idx, track_.size() - 1);
  return track_[idx];
}

}  // namespace densevlc::geom
