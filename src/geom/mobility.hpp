// Receiver mobility models (substitute for the OpenBuilds ACRO 2-axis
// positioners that move the paper's RXs around the 3 m x 3 m floor).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "geom/grid.hpp"
#include "geom/vec3.hpp"

namespace densevlc::geom {

/// Position of a receiver as a function of simulated time.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Position at time `t_s` [s from scenario start].
  virtual Vec3 position(double t_s) const = 0;
};

/// A receiver that never moves.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec3 pos) : pos_{pos} {}
  Vec3 position(double /*t_s*/) const override { return pos_; }

 private:
  Vec3 pos_;
};

/// Piecewise-linear motion through timed waypoints. Before the first
/// waypoint the position holds at the first; after the last it holds at
/// the last. Waypoint times must be strictly increasing.
class WaypointMobility final : public MobilityModel {
 public:
  struct Waypoint {
    double time_s = 0.0;
    Vec3 pos{};
  };

  /// Throws std::invalid_argument on empty or non-monotonic waypoints.
  explicit WaypointMobility(std::vector<Waypoint> waypoints);

  Vec3 position(double t_s) const override;

 private:
  std::vector<Waypoint> waypoints_;
};

/// A bounded random walk at constant speed: a new heading is drawn every
/// `heading_interval_s`; walls reflect. Deterministic given the seed.
/// Positions are pre-sampled on a fine grid so position(t) is a pure
/// function of t (required by the MobilityModel contract).
class RandomWalkMobility final : public MobilityModel {
 public:
  RandomWalkMobility(Vec3 start, double speed_mps,
                     double heading_interval_s, const Room& room,
                     double duration_s, std::uint64_t seed);

  Vec3 position(double t_s) const override;

 private:
  std::vector<Vec3> track_;  ///< sampled every tick_s_
  double tick_s_ = 0.01;
};

}  // namespace densevlc::geom
