// Evaluation scenarios of the paper, ready to instantiate.
//
// The testbed description itself (geometry + Table 1 parameters) lives in
// core/testbed.hpp — the system configuration embeds it, and `core` sits
// below `scenario` in the layering DAG. This header keeps the paper's
// receiver placements: the fixed instance of Fig. 7 (identical to Table 6
// Scenario 2), the random instances of Fig. 6 (100 draws around the
// Fig. 7 anchors), Table 6's Scenarios 1 and 3, and the chaos-soak fault
// schedule. The declarative counterpart — scenario *files* instead of
// hand-wired C++ — lives next door in scenario/spec.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/testbed.hpp"
#include "fault/fault.hpp"
#include "geom/grid.hpp"
#include "geom/vec3.hpp"

namespace densevlc::scenario {

/// Fig. 7 / Table 6 Scenario 2 receiver positions.
std::vector<geom::Vec3> fig7_rx_positions();

/// Table 6 Scenario 1 positions (interference-free, 2 m spacing).
std::vector<geom::Vec3> scenario1_rx_positions();

/// Table 6 Scenario 3 positions (1 m spacing, each RX under a TX).
std::vector<geom::Vec3> scenario3_rx_positions();

/// Fig. 6: `count` random instances; each instance places every RX
/// uniformly in a disc of `radius_m` around its Fig. 7 anchor, clamped to
/// the room. Deterministic given the seed.
std::vector<std::vector<geom::Vec3>> random_instances(
    std::size_t count, double radius_m, const geom::Room& room,
    std::uint64_t seed);

/// Chaos-soak fault schedule for an `num_tx`-LED grid: `led_fail_fraction`
/// of the LEDs (rounded to the nearest count, seed-chosen) burn out
/// permanently at `t_fail_s`; a report-loss burst and a sync-pilot-loss
/// window each cover one epoch starting two epochs later, so the soak
/// exercises the watchdog and the degraded sync path too. Deterministic
/// given the seed.
fault::FaultSchedule chaos_schedule(std::size_t num_tx,
                                    double led_fail_fraction,
                                    double t_fail_s, double epoch_period_s,
                                    std::uint64_t seed);

}  // namespace densevlc::scenario
