#include "scenario/spec.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "common/ini.hpp"

namespace densevlc::scenario {
namespace {

// ---------------------------------------------------------------------------
// Strict value parsing: a malformed value is an error, never a fallback.

std::optional<double> parse_double(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 0);  // 0x ok
  if (end != text.c_str() + text.size()) return std::nullopt;
  return v;
}

std::optional<bool> parse_bool(const std::string& text) {
  if (text == "true" || text == "yes" || text == "on" || text == "1") {
    return true;
  }
  if (text == "false" || text == "no" || text == "off" || text == "0") {
    return false;
  }
  return std::nullopt;
}

/// Shortest round-trip decimal form of a double ("0.5", not "0.500000").
std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string format_hex(std::uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << v;
  return out.str();
}

/// Splits a trailing 1-based index off a dynamic key stem:
/// "x12" -> ("x", 12). Returns 0 when there is no valid index.
std::size_t split_index(const std::string& leaf, std::string& stem) {
  std::size_t digits = 0;
  while (digits < leaf.size() &&
         std::isdigit(static_cast<unsigned char>(leaf[leaf.size() - 1 - digits]))) {
    ++digits;
  }
  if (digits == 0 || digits == leaf.size()) return 0;
  stem = leaf.substr(0, leaf.size() - digits);
  const auto idx = parse_u64(leaf.substr(leaf.size() - digits));
  return idx ? static_cast<std::size_t>(*idx) : 0;
}

// ---------------------------------------------------------------------------
// Key dispatch. One function handles one "key = value" pair against a
// spec; the INI parse, sweep overrides, and CLI overrides all funnel
// through it so every entry point rejects the same malformed inputs.

struct KeyOutcome {
  bool known = false;                ///< key belongs to the schema
  std::optional<SpecError> error;    ///< set when the value is rejected
};

KeyOutcome reject(const std::string& key, const std::string& message) {
  return {true, SpecError{key, message}};
}

KeyOutcome accept() { return {true, std::nullopt}; }

/// Ensures `v` has at least `n` elements, appending defaults.
template <typename T>
void grow_to(std::vector<T>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
}

KeyOutcome apply_key(ScenarioSpec& spec, const std::string& key,
                     const std::string& value) {
  const auto num = [&]() { return parse_double(value); };

  // --- [scenario] ---------------------------------------------------------
  if (key == "scenario.name") {
    if (value.empty()) return reject(key, "scenario name must not be empty");
    spec.name = value;
    return accept();
  }
  if (key == "scenario.kind") {
    if (value == "analytic") {
      spec.kind = EvalKind::kAnalytic;
    } else if (value == "soak") {
      spec.kind = EvalKind::kSoak;
    } else {
      return reject(key, "expected 'analytic' or 'soak' (got '" + value + "')");
    }
    return accept();
  }
  if (key == "scenario.seed") {
    const auto v = parse_u64(value);
    if (!v) return reject(key, "expected an unsigned integer seed");
    spec.seed = *v;
    return accept();
  }
  if (key == "scenario.epochs") {
    const auto v = parse_u64(value);
    if (!v || *v < 1 || *v > 100000) {
      return reject(key, "expected an epoch count in [1, 100000]");
    }
    spec.epochs = static_cast<std::size_t>(*v);
    return accept();
  }

  // --- [system] -----------------------------------------------------------
  if (key == "system.testbed") {
    if (value == "simulation") {
      spec.testbed = TestbedKind::kSimulation;
    } else if (value == "experimental") {
      spec.testbed = TestbedKind::kExperimental;
    } else {
      return reject(key,
                    "expected 'simulation' or 'experimental' (got '" + value +
                        "')");
    }
    return accept();
  }
  if (key == "system.kappa") {
    const auto v = num();
    if (!v || *v <= 0.0) return reject(key, "kappa must be a positive number");
    spec.kappa = *v;
    return accept();
  }
  if (key == "system.power_budget_w") {
    const auto v = num();
    if (!v || *v <= 0.0) {
      return reject(key, "power budget must be a positive number of watts");
    }
    spec.power_budget_w = *v;
    return accept();
  }
  if (key == "system.bandwidth_mhz") {
    const auto v = num();
    if (!v || *v <= 0.0) {
      return reject(key, "bandwidth must be a positive number of MHz");
    }
    spec.bandwidth_mhz = *v;
    return accept();
  }
  if (key == "system.incremental_probing") {
    const auto v = parse_bool(value);
    if (!v) return reject(key, "expected a boolean (true/false)");
    spec.incremental_probing = *v;
    return accept();
  }

  // --- [room] -------------------------------------------------------------
  if (key == "room.width" || key == "room.depth" || key == "room.height") {
    const auto v = num();
    if (!v || *v <= 0.0 || *v > 1000.0) {
      return reject(key, "room dimensions must be in (0, 1000] meters");
    }
    if (key == "room.width") spec.room_width_m = *v;
    if (key == "room.depth") spec.room_depth_m = *v;
    if (key == "room.height") spec.room_height_m = *v;
    return accept();
  }

  // --- [grid] -------------------------------------------------------------
  if (key == "grid.rows" || key == "grid.cols") {
    const auto v = parse_u64(value);
    if (!v || *v < 1 || *v > 64) {
      return reject(key, "grid dimensions must be in [1, 64]");
    }
    if (key == "grid.rows") spec.grid_rows = static_cast<std::size_t>(*v);
    if (key == "grid.cols") spec.grid_cols = static_cast<std::size_t>(*v);
    return accept();
  }
  if (key == "grid.pitch") {
    const auto v = num();
    if (!v || *v <= 0.0) return reject(key, "grid pitch must be positive");
    spec.grid_pitch_m = *v;
    return accept();
  }
  if (key == "grid.mount_height") {
    const auto v = num();
    if (!v || *v <= 0.0) {
      return reject(key, "mount height must be a positive number of meters");
    }
    spec.grid_mount_height_m = *v;
    return accept();
  }

  // --- [led] --------------------------------------------------------------
  if (key == "led.bias_ma") {
    const auto v = num();
    if (!v || *v <= 0.0) return reject(key, "LED bias must be positive mA");
    spec.led_bias_ma = *v;
    return accept();
  }
  if (key == "led.max_swing_ma") {
    const auto v = num();
    if (!v || *v <= 0.0) return reject(key, "max swing must be positive mA");
    spec.led_max_swing_ma = *v;
    return accept();
  }
  if (key == "led.half_angle_deg") {
    const auto v = num();
    if (!v || *v <= 0.0 || *v > 90.0) {
      return reject(key, "half angle must be in (0, 90] degrees");
    }
    spec.led_half_angle_deg = *v;
    return accept();
  }

  // --- [rx] ---------------------------------------------------------------
  if (key == "rx.placement") {
    if (value == "fixed") {
      spec.placement = RxPlacement::kFixed;
    } else if (value == "uniform") {
      spec.placement = RxPlacement::kUniform;
    } else {
      return reject(key, "expected 'fixed' or 'uniform' (got '" + value + "')");
    }
    return accept();
  }
  if (key == "rx.count") {
    const auto v = parse_u64(value);
    if (!v || *v < 1 || *v > 64) {
      return reject(key, "receiver count must be in [1, 64]");
    }
    spec.rx_count = static_cast<std::size_t>(*v);
    return accept();
  }
  if (key == "rx.height") {
    const auto v = num();
    if (!v || *v < 0.0) return reject(key, "rx height must be >= 0 meters");
    spec.rx_height_m = *v;
    return accept();
  }
  if (key == "rx.margin") {
    const auto v = num();
    if (!v || *v < 0.0) return reject(key, "rx margin must be >= 0 meters");
    spec.rx_margin_m = *v;
    return accept();
  }
  if (key.rfind("rx.", 0) == 0) {
    std::string stem;
    const std::size_t idx = split_index(key.substr(3), stem);
    if (idx >= 1 && idx <= 64 && (stem == "x" || stem == "y")) {
      const auto v = num();
      if (!v) return reject(key, "expected a coordinate in meters");
      grow_to(spec.rx_fixed, idx);
      if (stem == "x") spec.rx_fixed[idx - 1].x = *v;
      if (stem == "y") spec.rx_fixed[idx - 1].y = *v;
      return accept();
    }
    return {false, std::nullopt};
  }

  // --- [illum] ------------------------------------------------------------
  if (key == "illum.target_lux") {
    const auto v = num();
    if (!v || *v <= 0.0) return reject(key, "target must be positive lux");
    spec.dimming_enabled = true;
    spec.target_lux = *v;
    return accept();
  }
  if (key == "illum.leds_per_tx") {
    const auto v = parse_u64(value);
    if (!v || *v < 1 || *v > 100) {
      return reject(key, "LEDs per TX must be in [1, 100]");
    }
    spec.dimming_enabled = true;
    spec.leds_per_tx = static_cast<std::size_t>(*v);
    return accept();
  }

  // --- [blockage] ---------------------------------------------------------
  if (key.rfind("blockage.", 0) == 0) {
    std::string stem;
    const std::size_t idx = split_index(key.substr(9), stem);
    if (idx >= 1 && idx <= 16 &&
        (stem == "x" || stem == "y" || stem == "radius" || stem == "height")) {
      const auto v = num();
      if (!v) return reject(key, "expected a number (meters)");
      if ((stem == "radius" || stem == "height") && *v <= 0.0) {
        return reject(key, "blocker " + stem + " must be positive");
      }
      grow_to(spec.blockers, idx);
      if (stem == "x") spec.blockers[idx - 1].x = *v;
      if (stem == "y") spec.blockers[idx - 1].y = *v;
      if (stem == "radius") spec.blockers[idx - 1].radius = *v;
      if (stem == "height") spec.blockers[idx - 1].height_m = *v;
      return accept();
    }
    return {false, std::nullopt};
  }

  // --- [faults] -----------------------------------------------------------
  if (key == "faults.led_fail_fraction") {
    const auto v = num();
    if (!v || *v < 0.0 || *v > 1.0) {
      return reject(key, "LED fail fraction must be in [0, 1]");
    }
    spec.faults_enabled = true;
    spec.led_fail_fraction = *v;
    return accept();
  }
  if (key == "faults.time_s") {
    const auto v = num();
    if (!v || *v < 0.0) return reject(key, "fault time must be >= 0 seconds");
    spec.faults_enabled = true;
    spec.fault_time_s = *v;
    return accept();
  }
  if (key == "faults.seed") {
    const auto v = parse_u64(value);
    if (!v) return reject(key, "expected an unsigned integer seed");
    spec.faults_enabled = true;
    spec.fault_seed = *v;
    return accept();
  }

  return {false, std::nullopt};
}

}  // namespace

ScenarioSpec spec_defaults(TestbedKind testbed) {
  ScenarioSpec spec;  // simulation defaults
  spec.testbed = testbed;
  if (testbed == TestbedKind::kExperimental) {
    spec.grid_mount_height_m = 2.0;
    spec.rx_height_m = 0.0;
  }
  return spec;
}

std::string SpecParseResult::error_text() const {
  std::string out;
  for (const SpecError& e : errors) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

std::optional<SpecError> apply_override(ScenarioSpec& spec,
                                        const std::string& key,
                                        const std::string& value) {
  const KeyOutcome out = apply_key(spec, key, value);
  if (!out.known) {
    return SpecError{key, "unknown scenario key"};
  }
  return out.error;
}

std::vector<SpecError> validate_spec(const ScenarioSpec& spec) {
  std::vector<SpecError> errors;
  const auto fail = [&](const std::string& key, const std::string& msg) {
    errors.push_back({key, msg});
  };

  if (spec.rx_count == 0) {
    fail("rx.count", "scenario has no receivers (rx.count is required)");
  }
  if (spec.placement == RxPlacement::kFixed) {
    if (spec.rx_fixed.size() != spec.rx_count) {
      fail("rx.count",
           "fixed placement lists " + std::to_string(spec.rx_fixed.size()) +
               " coordinate pairs but rx.count = " +
               std::to_string(spec.rx_count));
    }
    for (std::size_t i = 0; i < spec.rx_fixed.size(); ++i) {
      const auto& p = spec.rx_fixed[i];
      if (p.x < 0.0 || p.x > spec.room_width_m || p.y < 0.0 ||
          p.y > spec.room_depth_m) {
        fail("rx.x" + std::to_string(i + 1),
             "receiver " + std::to_string(i + 1) + " at (" +
                 format_double(p.x) + ", " + format_double(p.y) +
                 ") lies outside the room");
      }
    }
  } else {
    if (!spec.rx_fixed.empty()) {
      fail("rx.x1", "uniform placement must not list fixed coordinates");
    }
    if (2.0 * spec.rx_margin_m >=
        std::min(spec.room_width_m, spec.room_depth_m)) {
      fail("rx.margin", "margin leaves no floor area to place receivers in");
    }
  }

  if (spec.grid_mount_height_m > spec.room_height_m) {
    fail("grid.mount_height", "luminaires would mount above the ceiling");
  }
  if (spec.grid_pitch_m * static_cast<double>(spec.grid_cols - 1) >
          spec.room_width_m ||
      spec.grid_pitch_m * static_cast<double>(spec.grid_rows - 1) >
          spec.room_depth_m) {
    fail("grid.pitch", "grid footprint exceeds the room");
  }

  if (spec.rx_height_m >= spec.grid_mount_height_m) {
    fail("rx.height", "receivers must sit below the luminaire plane");
  }

  for (std::size_t i = 0; i < spec.blockers.size(); ++i) {
    const auto& b = spec.blockers[i];
    if (b.radius <= 0.0) {
      fail("blockage.radius" + std::to_string(i + 1),
           "blocker radius must be positive");
    }
    if (b.height_m <= 0.0) {
      fail("blockage.height" + std::to_string(i + 1),
           "blocker height must be positive");
    }
    if (b.x < 0.0 || b.x > spec.room_width_m || b.y < 0.0 ||
        b.y > spec.room_depth_m) {
      fail("blockage.x" + std::to_string(i + 1),
           "blocker center lies outside the room");
    }
  }

  if (spec.faults_enabled && spec.kind != EvalKind::kSoak) {
    fail("faults.led_fail_fraction",
         "fault schedules require scenario.kind = soak (the analytic "
         "one-shot never evaluates them)");
  }
  return errors;
}

SpecParseResult parse_spec(const std::string& text) {
  SpecParseResult result;
  const IniConfig ini = IniConfig::parse(text);
  if (!ini.errors().empty()) {
    std::istringstream lines{ini.errors()};
    std::string line;
    while (std::getline(lines, line)) {
      result.errors.push_back({"<syntax>", line});
    }
    return result;
  }

  // The testbed choice re-bases every default, so resolve it first —
  // std::map iteration would otherwise hand us [system] after [grid].
  TestbedKind testbed = TestbedKind::kSimulation;
  if (const auto declared = ini.get("system.testbed")) {
    ScenarioSpec probe;
    const KeyOutcome out = apply_key(probe, "system.testbed", *declared);
    if (out.error) {
      result.errors.push_back(*out.error);
      return result;
    }
    testbed = probe.testbed;
  }

  ScenarioSpec spec = spec_defaults(testbed);
  for (const auto& [key, value] : ini.items()) {
    const KeyOutcome out = apply_key(spec, key, value);
    if (!out.known) {
      result.errors.push_back({key, "unknown scenario key"});
    } else if (out.error) {
      result.errors.push_back(*out.error);
    }
  }

  for (SpecError& e : validate_spec(spec)) {
    result.errors.push_back(std::move(e));
  }
  if (result.errors.empty()) result.spec = std::move(spec);
  return result;
}

SpecParseResult load_spec_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    SpecParseResult result;
    result.errors.push_back(
        {path, "cannot open scenario file (missing or unreadable)"});
    return result;
  }
  std::string text{std::istreambuf_iterator<char>{in},
                   std::istreambuf_iterator<char>{}};
  if (in.bad()) {
    SpecParseResult result;
    result.errors.push_back({path, "read error while loading scenario file"});
    return result;
  }
  return parse_spec(text);
}

std::string serialize_spec(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "[scenario]\n";
  out << "name = " << spec.name << '\n';
  out << "kind = " << to_string(spec.kind) << '\n';
  out << "seed = " << format_hex(spec.seed) << '\n';
  out << "epochs = " << spec.epochs << '\n';

  out << "\n[system]\n";
  out << "testbed = " << to_string(spec.testbed) << '\n';
  out << "kappa = " << format_double(spec.kappa) << '\n';
  out << "power_budget_w = " << format_double(spec.power_budget_w) << '\n';
  out << "bandwidth_mhz = " << format_double(spec.bandwidth_mhz) << '\n';
  out << "incremental_probing = "
      << (spec.incremental_probing ? "true" : "false") << '\n';

  out << "\n[room]\n";
  out << "width = " << format_double(spec.room_width_m) << '\n';
  out << "depth = " << format_double(spec.room_depth_m) << '\n';
  out << "height = " << format_double(spec.room_height_m) << '\n';

  out << "\n[grid]\n";
  out << "rows = " << spec.grid_rows << '\n';
  out << "cols = " << spec.grid_cols << '\n';
  out << "pitch = " << format_double(spec.grid_pitch_m) << '\n';
  out << "mount_height = " << format_double(spec.grid_mount_height_m) << '\n';

  out << "\n[led]\n";
  out << "bias_ma = " << format_double(spec.led_bias_ma) << '\n';
  out << "max_swing_ma = " << format_double(spec.led_max_swing_ma) << '\n';
  out << "half_angle_deg = " << format_double(spec.led_half_angle_deg)
      << '\n';

  out << "\n[rx]\n";
  out << "placement = " << to_string(spec.placement) << '\n';
  out << "count = " << spec.rx_count << '\n';
  out << "height = " << format_double(spec.rx_height_m) << '\n';
  out << "margin = " << format_double(spec.rx_margin_m) << '\n';
  for (std::size_t i = 0; i < spec.rx_fixed.size(); ++i) {
    out << "x" << (i + 1) << " = " << format_double(spec.rx_fixed[i].x)
        << '\n';
    out << "y" << (i + 1) << " = " << format_double(spec.rx_fixed[i].y)
        << '\n';
  }

  if (spec.dimming_enabled) {
    out << "\n[illum]\n";
    out << "target_lux = " << format_double(spec.target_lux) << '\n';
    out << "leds_per_tx = " << spec.leds_per_tx << '\n';
  }

  if (!spec.blockers.empty()) {
    out << "\n[blockage]\n";
    for (std::size_t i = 0; i < spec.blockers.size(); ++i) {
      const auto& b = spec.blockers[i];
      out << "x" << (i + 1) << " = " << format_double(b.x) << '\n';
      out << "y" << (i + 1) << " = " << format_double(b.y) << '\n';
      out << "radius" << (i + 1) << " = " << format_double(b.radius) << '\n';
      out << "height" << (i + 1) << " = " << format_double(b.height_m)
          << '\n';
    }
  }

  if (spec.faults_enabled) {
    out << "\n[faults]\n";
    out << "led_fail_fraction = " << format_double(spec.led_fail_fraction)
        << '\n';
    out << "time_s = " << format_double(spec.fault_time_s) << '\n';
    out << "seed = " << format_hex(spec.fault_seed) << '\n';
  }
  return out.str();
}

const char* to_string(EvalKind kind) {
  return kind == EvalKind::kAnalytic ? "analytic" : "soak";
}

const char* to_string(TestbedKind testbed) {
  return testbed == TestbedKind::kSimulation ? "simulation" : "experimental";
}

const char* to_string(RxPlacement placement) {
  return placement == RxPlacement::kFixed ? "fixed" : "uniform";
}

}  // namespace densevlc::scenario
