#include "scenario/campaign.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace densevlc::scenario {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 0);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return v;
}

/// Splits an axis value on '|' into trimmed legs.
std::vector<std::string> split_legs(const std::string& value) {
  std::vector<std::string> legs;
  std::size_t start = 0;
  while (true) {
    const auto bar = value.find('|', start);
    legs.push_back(trim(value.substr(
        start, bar == std::string::npos ? std::string::npos : bar - start)));
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return legs;
}

/// Applies one axis leg to a spec. A leg containing '=' is a
/// whitespace-separated list of absolute `key=value` overrides; any
/// other leg is the value of the axis key itself.
std::optional<SpecError> apply_leg(ScenarioSpec& spec,
                                   const std::string& axis_key,
                                   const std::string& leg) {
  if (leg.find('=') == std::string::npos) {
    return apply_override(spec, axis_key, leg);
  }
  std::istringstream tokens{leg};
  std::string token;
  while (tokens >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 > token.size()) {
      return SpecError{"sweep." + axis_key,
                       "expected key=value overrides (got '" + token + "')"};
    }
    if (auto err = apply_override(spec, token.substr(0, eq),
                                  token.substr(eq + 1))) {
      err->key = "sweep." + axis_key + " -> " + err->key;
      return err;
    }
  }
  return std::nullopt;
}

/// FNV-1a over a sequence of 64-bit hashes (hash of hashes).
std::uint64_t hash_u64s(std::span<const std::uint64_t> values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t v : values) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

namespace fs = std::filesystem;

/// FNV-1a continuation over a byte string (for campaign_identity).
std::uint64_t fnv1a_text(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Journal payload tags. The header is always the first record of a
// shard journal and binds the file to one campaign; instance records
// follow in completion order.
constexpr std::uint8_t kTagHeader = 0x01;
constexpr std::uint8_t kTagInstance = 0x02;

/// "DVLCCAMP" read back as a little-endian u64.
constexpr std::uint64_t kJournalMagic = 0x504D414343564C44ULL;
constexpr std::uint64_t kJournalVersion = 1;

void put_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * byte)) & 0xffU));
  }
}

std::uint64_t get_u64le(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int byte = 0; byte < 8; ++byte) {
    v |= static_cast<std::uint64_t>(in[byte]) << (8 * byte);
  }
  return v;
}

struct JournalHeader {
  std::uint64_t campaign_id = 0;
  std::uint64_t num_instances = 0;
};

std::vector<std::uint8_t> encode_header(std::uint64_t campaign_id,
                                        std::uint64_t num_instances) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 4 * 8);
  out.push_back(kTagHeader);
  put_u64le(out, kJournalMagic);
  put_u64le(out, kJournalVersion);
  put_u64le(out, campaign_id);
  put_u64le(out, num_instances);
  return out;
}

std::optional<JournalHeader> decode_header(
    std::span<const std::uint8_t> payload) {
  if (payload.size() != 1 + 4 * 8 || payload[0] != kTagHeader) {
    return std::nullopt;
  }
  if (get_u64le(payload.data() + 1) != kJournalMagic) return std::nullopt;
  if (get_u64le(payload.data() + 9) != kJournalVersion) return std::nullopt;
  JournalHeader header;
  header.campaign_id = get_u64le(payload.data() + 17);
  header.num_instances = get_u64le(payload.data() + 25);
  return header;
}

/// One aggregation row: a durable record plus its sweep-point identity.
/// run_campaign() and summarize_records() both reduce through
/// aggregate_rows so a live run and a journal replay cannot diverge.
struct RecordRow {
  std::size_t point = 0;
  const std::vector<std::pair<std::string, std::string>>* axis_values =
      nullptr;
  InstanceRecord record;
};

CampaignSummary aggregate_rows(std::size_t num_points,
                               std::vector<RecordRow> rows) {
  // Index order is the canonical reduction order: it is what every
  // shard split, thread count, and crash/resume history reassembles to.
  std::sort(rows.begin(), rows.end(),
            [](const RecordRow& a, const RecordRow& b) {
              return a.record.index < b.record.index;
            });

  CampaignSummary out;
  out.instance_count = rows.size();
  out.points.resize(num_points);
  std::vector<std::vector<double>> mbps(num_points);
  std::vector<std::vector<std::uint64_t>> hashes(num_points);
  std::vector<std::uint64_t> all_hashes;
  all_hashes.reserve(rows.size());
  for (const RecordRow& row : rows) {
    if (row.point >= num_points) continue;
    PointAggregate& agg = out.points[row.point];
    if (agg.instance_count == 0 && row.axis_values != nullptr) {
      agg.axis_values = *row.axis_values;
    }
    ++agg.instance_count;
    mbps[row.point].push_back(row.record.system_mbps);
    hashes[row.point].push_back(row.record.fingerprint_hash);
    all_hashes.push_back(row.record.fingerprint_hash);
    agg.mean_jain += row.record.jain;
    agg.mean_power_w += row.record.power_used_w;
    agg.mean_txs += row.record.txs_assigned;
  }
  for (std::size_t p = 0; p < num_points; ++p) {
    PointAggregate& agg = out.points[p];
    if (agg.instance_count == 0) continue;
    const double n = static_cast<double>(agg.instance_count);
    agg.mean_jain /= n;
    agg.mean_power_w /= n;
    agg.mean_txs /= n;
    agg.system_mbps = stats::summarize(mbps[p]);
    agg.p50_mbps = stats::quantile(mbps[p], 0.50);
    agg.p99_mbps = stats::quantile(mbps[p], 0.99);
    agg.p999_mbps = stats::quantile(mbps[p], 0.999);
    agg.point_hash = hash_u64s(hashes[p]);
  }
  out.campaign_hash = hash_u64s(all_hashes);
  return out;
}

}  // namespace

std::size_t CampaignSpec::num_points() const {
  std::size_t points = 1;
  for (const CampaignAxis& axis : axes) points *= axis.values.size();
  return points;
}

std::size_t CampaignSpec::num_instances() const {
  return num_points() * instances_per_point;
}

std::string CampaignParseResult::error_text() const {
  std::string out;
  for (const SpecError& e : errors) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

CampaignParseResult parse_campaign(const std::string& text) {
  CampaignParseResult result;
  CampaignSpec campaign;

  // Split the file by section: [campaign] and [sweep] are consumed here
  // (line order preserved — axis declaration order IS the sweep-point
  // enumeration order); everything else is scenario schema and goes to
  // parse_spec verbatim. The line handling mirrors IniConfig::parse.
  std::string spec_text;
  std::istringstream in{text};
  std::string raw;
  std::string section;
  bool quick_set = false;
  while (std::getline(in, raw)) {
    std::string line = raw;
    const auto comment = line.find_first_of(";#");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (!line.empty() && line.front() == '[' && line.back() == ']') {
      section = trim(line.substr(1, line.size() - 2));
    }
    if (section != "campaign" && section != "sweep") {
      spec_text += raw;
      spec_text += '\n';
      continue;
    }
    if (line.empty() || line.front() == '[') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      result.errors.push_back(
          {"<syntax>", "[" + section + "] line without '=': " + line});
      continue;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      result.errors.push_back({"<syntax>", "[" + section + "] empty key"});
      continue;
    }

    if (section == "campaign") {
      const auto v = parse_u64(value);
      if (key == "instances") {
        if (!v || *v < 1 || *v > 1000000) {
          result.errors.push_back(
              {"campaign.instances",
               "instances per point must be in [1, 1000000]"});
        } else {
          campaign.instances_per_point = static_cast<std::size_t>(*v);
        }
      } else if (key == "quick_instances") {
        if (!v || *v < 1 || *v > 1000000) {
          result.errors.push_back(
              {"campaign.quick_instances",
               "quick instances per point must be in [1, 1000000]"});
        } else {
          campaign.quick_instances_per_point = static_cast<std::size_t>(*v);
          quick_set = true;
        }
      } else {
        result.errors.push_back(
            {"campaign." + key, "unknown campaign key"});
      }
      continue;
    }

    // [sweep]
    const auto dup =
        std::find_if(campaign.axes.begin(), campaign.axes.end(),
                     [&](const CampaignAxis& a) { return a.key == key; });
    if (dup != campaign.axes.end()) {
      result.errors.push_back({"sweep." + key, "duplicate sweep axis"});
      continue;
    }
    CampaignAxis axis;
    axis.key = key;
    axis.values = split_legs(value);
    for (const std::string& leg : axis.values) {
      if (leg.empty()) {
        result.errors.push_back(
            {"sweep." + key, "empty sweep value (check stray '|')"});
      }
    }
    campaign.axes.push_back(std::move(axis));
  }

  SpecParseResult base = parse_spec(spec_text);
  for (SpecError& e : base.errors) result.errors.push_back(std::move(e));
  if (!result.errors.empty()) return result;
  campaign.base = std::move(*base.spec);
  if (!quick_set) {
    campaign.quick_instances_per_point =
        std::min<std::size_t>(campaign.instances_per_point, 2);
  }

  // Every sweep point must expand to a valid spec; probing the full grid
  // here (specs only, nothing runs) means a campaign file is either
  // rejected with a typed error or guaranteed runnable.
  std::vector<CampaignInstance> probe;
  std::vector<SpecError> expand_errors =
      expand_campaign(campaign, 1, probe);
  for (SpecError& e : expand_errors) result.errors.push_back(std::move(e));
  if (result.errors.empty()) result.campaign = std::move(campaign);
  return result;
}

CampaignParseResult load_campaign_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    CampaignParseResult result;
    result.errors.push_back(
        {path, "cannot open campaign file (missing or unreadable)"});
    return result;
  }
  std::string text{std::istreambuf_iterator<char>{in},
                   std::istreambuf_iterator<char>{}};
  if (in.bad()) {
    CampaignParseResult result;
    result.errors.push_back({path, "read error while loading campaign file"});
    return result;
  }
  return parse_campaign(text);
}

std::vector<SpecError> expand_campaign(const CampaignSpec& campaign,
                                       std::size_t instances_per_point,
                                       std::vector<CampaignInstance>& out) {
  std::vector<SpecError> errors;
  std::vector<CampaignInstance> instances;
  const std::size_t points = campaign.num_points();
  for (std::size_t p = 0; p < points; ++p) {
    // Decode the point index into one leg per axis, first axis outermost.
    std::vector<std::size_t> leg(campaign.axes.size(), 0);
    std::size_t rem = p;
    for (std::size_t a = campaign.axes.size(); a-- > 0;) {
      leg[a] = rem % campaign.axes[a].values.size();
      rem /= campaign.axes[a].values.size();
    }

    ScenarioSpec spec = campaign.base;
    std::vector<std::pair<std::string, std::string>> axis_values;
    bool point_ok = true;
    for (std::size_t a = 0; a < campaign.axes.size(); ++a) {
      const std::string& value = campaign.axes[a].values[leg[a]];
      axis_values.emplace_back(campaign.axes[a].key, value);
      if (auto err = apply_leg(spec, campaign.axes[a].key, value)) {
        err->message = "sweep point " + std::to_string(p) + ": " +
                       err->message;
        errors.push_back(std::move(*err));
        point_ok = false;
      }
    }
    if (point_ok) {
      for (SpecError& e : validate_spec(spec)) {
        e.message = "sweep point " + std::to_string(p) + ": " + e.message;
        errors.push_back(std::move(e));
        point_ok = false;
      }
    }
    if (!point_ok) continue;

    for (std::size_t r = 0; r < instances_per_point; ++r) {
      CampaignInstance inst;
      inst.index = p * instances_per_point + r;
      inst.point = p;
      inst.rep = r;
      inst.seed = Rng::derive_stream_seed(campaign.base.seed, inst.index);
      inst.spec = spec;
      inst.axis_values = axis_values;
      instances.push_back(std::move(inst));
    }
  }
  if (errors.empty()) out = std::move(instances);
  return errors;
}

InstanceRecord make_record(const CampaignInstance& instance,
                           const InstanceResult& result) {
  InstanceRecord record;
  record.index = instance.index;
  record.seed = instance.seed;
  record.fingerprint_hash = result.fingerprint_hash();
  record.system_mbps = result.system_mbps;
  record.jain = result.jain;
  record.power_used_w = result.power_used_w;
  record.txs_assigned = result.txs_assigned;
  return record;
}

std::vector<std::uint8_t> encode_instance_record(const InstanceRecord& record) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 7 * 8);
  out.push_back(kTagInstance);
  put_u64le(out, record.index);
  put_u64le(out, record.seed);
  put_u64le(out, record.fingerprint_hash);
  put_u64le(out, std::bit_cast<std::uint64_t>(record.system_mbps));
  put_u64le(out, std::bit_cast<std::uint64_t>(record.jain));
  put_u64le(out, std::bit_cast<std::uint64_t>(record.power_used_w));
  put_u64le(out, std::bit_cast<std::uint64_t>(record.txs_assigned));
  return out;
}

std::optional<InstanceRecord> decode_instance_record(
    std::span<const std::uint8_t> payload) {
  if (payload.size() != 1 + 7 * 8 || payload[0] != kTagInstance) {
    return std::nullopt;
  }
  InstanceRecord record;
  record.index = get_u64le(payload.data() + 1);
  record.seed = get_u64le(payload.data() + 9);
  record.fingerprint_hash = get_u64le(payload.data() + 17);
  record.system_mbps = std::bit_cast<double>(get_u64le(payload.data() + 25));
  record.jain = std::bit_cast<double>(get_u64le(payload.data() + 33));
  record.power_used_w = std::bit_cast<double>(get_u64le(payload.data() + 41));
  record.txs_assigned = std::bit_cast<double>(get_u64le(payload.data() + 49));
  return record;
}

std::uint64_t campaign_identity(const CampaignSpec& campaign,
                                std::size_t instances_per_point) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a_text(h, serialize_spec(campaign.base));
  for (const CampaignAxis& axis : campaign.axes) {
    h = fnv1a_text(h, "\naxis=" + axis.key);
    for (const std::string& value : axis.values) {
      h = fnv1a_text(h, "|" + value);
    }
  }
  h = fnv1a_text(h, "\nper_point=" + std::to_string(instances_per_point));
  return h;
}

std::string shard_journal_path(const std::string& dir, std::size_t shard) {
  return (fs::path{dir} / ("journal-" + std::to_string(shard) + ".dvlcj"))
      .string();
}

std::uint64_t campaign_backoff_ms(std::size_t attempt) {
  constexpr std::uint64_t kBaseMs = 100;
  constexpr std::uint64_t kCapMs = 5000;
  std::uint64_t ms = kBaseMs;
  for (std::size_t i = 0; i < attempt && ms < kCapMs; ++i) ms *= 2;
  return std::min(ms, kCapMs);
}

CampaignJournal::CampaignJournal(journal::JournalWriter writer)
    : writer_{std::move(writer)} {}

CampaignJournal::Open CampaignJournal::open(const std::string& dir,
                                            std::size_t shard,
                                            std::uint64_t campaign_id,
                                            std::uint64_t num_instances,
                                            bool resume,
                                            std::size_t fsync_every) {
  Open out;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    out.error = "cannot create campaign directory " + dir + ": " +
                ec.message();
    return out;
  }
  const std::string path = shard_journal_path(dir, shard);

  // Recover whatever a previous process left: intact records survive, a
  // corrupt or torn tail is measured here and physically truncated away
  // when the writer reopens at the valid prefix length below.
  journal::JournalRecovery recovery = journal::read_journal(path);
  out.dropped_bytes = recovery.dropped_bytes;
  bool need_header = true;
  if (!recovery.records.empty()) {
    const auto header = decode_header(recovery.records.front());
    if (!header) {
      out.error = path + ": first record is not a campaign journal header";
      return out;
    }
    if (header->campaign_id != campaign_id ||
        header->num_instances != num_instances) {
      out.error = path + ": journal belongs to a different campaign "
                         "(identity mismatch — wrong file, or a --quick "
                         "journal resumed without --quick?)";
      return out;
    }
    need_header = false;
    for (std::size_t i = 1; i < recovery.records.size(); ++i) {
      const auto record = decode_instance_record(recovery.records[i]);
      if (!record || record->index >= num_instances) {
        out.error = path + ": intact record " + std::to_string(i) +
                    " is not a valid instance record";
        return out;
      }
      out.recovered.push_back(*record);
    }
    if (!resume && !out.recovered.empty()) {
      out.error = path + ": journal already holds " +
                  std::to_string(out.recovered.size()) +
                  " instance records; resume it explicitly instead of "
                  "overwriting finished work";
      return out;
    }
  }

  auto writer =
      journal::JournalWriter::open(path, recovery.valid_bytes, fsync_every);
  if (!writer) {
    out.error = path + ": cannot open journal for append";
    return out;
  }
  std::unique_ptr<CampaignJournal> sink{
      new CampaignJournal{std::move(*writer)}};
  if (need_header) {
    const std::vector<std::uint8_t> header =
        encode_header(campaign_id, num_instances);
    if (!sink->writer_.append(header) || !sink->writer_.flush()) {
      out.error = path + ": cannot write journal header";
      return out;
    }
  }
  out.campaign_journal = std::move(sink);
  return out;
}

void CampaignJournal::set_crash_after(std::size_t count) {
  std::lock_guard<std::mutex> lock{mu_};
  crash_after_ = count;
}

void CampaignJournal::on_result(const CampaignInstance& instance,
                                const InstanceResult& result) {
  const std::vector<std::uint8_t> payload =
      encode_instance_record(make_record(instance, result));
  std::lock_guard<std::mutex> lock{mu_};
  if (!writer_.append(payload)) {
    ok_ = false;
    return;
  }
  ++written_;
  if (crash_after_ != 0) {
    // Crash injection wants an exact, durable crash point: sync every
    // record, then die without unwinding — exactly like a real SIGKILL.
    if (!writer_.flush()) ok_ = false;
    if (written_ >= crash_after_) {
#ifdef SIGKILL
      (void)std::raise(SIGKILL);
#endif
      std::_Exit(137);
    }
  }
}

bool CampaignJournal::flush() {
  std::lock_guard<std::mutex> lock{mu_};
  return writer_.flush();
}

CampaignRecovery recover_campaign_dir(const std::string& dir,
                                      std::uint64_t campaign_id,
                                      std::uint64_t num_instances) {
  CampaignRecovery out;
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    out.errors.push_back("campaign directory not found: " + dir);
    return out;
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator{dir, ec}) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("journal-", 0) == 0 && name.size() > 6 &&
        name.substr(name.size() - 6) == ".dvlcj") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    out.errors.push_back("cannot scan campaign directory " + dir + ": " +
                         ec.message());
    return out;
  }
  std::sort(paths.begin(), paths.end());

  std::map<std::uint64_t, InstanceRecord> by_index;
  for (const std::string& path : paths) {
    journal::JournalRecovery recovery = journal::read_journal(path);
    ++out.journal_files;
    out.dropped_bytes += recovery.dropped_bytes;
    if (recovery.records.empty()) continue;
    const auto header = decode_header(recovery.records.front());
    if (!header) {
      out.errors.push_back(path + ": first record is not a campaign "
                                  "journal header");
      continue;
    }
    if (header->campaign_id != campaign_id ||
        header->num_instances != num_instances) {
      out.errors.push_back(path +
                           ": journal belongs to a different campaign "
                           "(identity mismatch)");
      continue;
    }
    for (std::size_t i = 1; i < recovery.records.size(); ++i) {
      const auto record = decode_instance_record(recovery.records[i]);
      if (!record || record->index >= num_instances) {
        out.errors.push_back(path + ": intact record " + std::to_string(i) +
                             " is not a valid instance record");
        continue;
      }
      const auto [it, inserted] = by_index.emplace(record->index, *record);
      // Byte-equal duplicates are legal: a requeued shard re-runs the
      // tail its dead predecessor had already journaled, and the PR 7
      // seed contract makes the rerun bit-identical. A *different*
      // record under the same index means mixed campaigns — fatal.
      if (!inserted && encode_instance_record(it->second) !=
                           encode_instance_record(*record)) {
        out.errors.push_back(path +
                             ": conflicting duplicate record for instance " +
                             std::to_string(record->index));
      }
    }
  }
  out.records.reserve(by_index.size());
  for (const auto& [index, record] : by_index) out.records.push_back(record);
  return out;
}

CampaignSummary summarize_records(const CampaignSpec& campaign,
                                  std::size_t instances_per_point,
                                  std::vector<InstanceRecord> records) {
  // One probe instance per sweep point rebuilds the axis labels without
  // rerunning anything; campaigns are validated at parse time, so the
  // probe expansion cannot fail here.
  std::vector<CampaignInstance> probe;
  const std::vector<SpecError> errors = expand_campaign(campaign, 1, probe);
  const std::size_t num_points = campaign.num_points();
  std::vector<RecordRow> rows;
  rows.reserve(records.size());
  const std::size_t per_point = instances_per_point == 0
                                    ? 1
                                    : instances_per_point;
  for (InstanceRecord& record : records) {
    RecordRow row;
    row.point = static_cast<std::size_t>(record.index) / per_point;
    if (errors.empty() && row.point < probe.size()) {
      row.axis_values = &probe[row.point].axis_values;
    }
    row.record = record;
    rows.push_back(std::move(row));
  }
  return aggregate_rows(num_points, std::move(rows));
}

CampaignRun run_campaign(const CampaignSpec& campaign,
                         std::span<const CampaignInstance> instances) {
  return run_campaign(campaign, instances, CampaignRunOptions{});
}

CampaignRun run_campaign(const CampaignSpec& campaign,
                         std::span<const CampaignInstance> instances,
                         const CampaignRunOptions& options) {
  CampaignRun run;
  run.instances.resize(instances.size());
  // One instance per index slot: results land in expansion order no
  // matter which worker ran them, so aggregation below (and the campaign
  // hash) cannot observe scheduling. Nested parallel_for calls inside
  // the channel builder degenerate to inline serial execution. The
  // journal sink serialises appends internally; completion *order* on
  // disk is scheduling-dependent, which is fine — records are keyed by
  // expansion index and reduced in index order.
  parallel_for(0, instances.size(), [&](std::size_t i) {
    run.instances[i] =
        run_instance(compile(instances[i].spec), instances[i].seed);
    if (options.campaign_journal != nullptr) {
      options.campaign_journal->on_result(instances[i], run.instances[i]);
    }
  });

  std::vector<RecordRow> rows;
  rows.reserve(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    RecordRow row;
    row.point = instances[i].point;
    row.axis_values = &instances[i].axis_values;
    row.record = make_record(instances[i], run.instances[i]);
    rows.push_back(std::move(row));
  }
  CampaignSummary summary =
      aggregate_rows(campaign.num_points(), std::move(rows));
  run.points = std::move(summary.points);
  run.campaign_hash = summary.campaign_hash;
  return run;
}

}  // namespace densevlc::scenario
