#include "scenario/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace densevlc::scenario {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 0);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return v;
}

/// Splits an axis value on '|' into trimmed legs.
std::vector<std::string> split_legs(const std::string& value) {
  std::vector<std::string> legs;
  std::size_t start = 0;
  while (true) {
    const auto bar = value.find('|', start);
    legs.push_back(trim(value.substr(
        start, bar == std::string::npos ? std::string::npos : bar - start)));
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return legs;
}

/// Applies one axis leg to a spec. A leg containing '=' is a
/// whitespace-separated list of absolute `key=value` overrides; any
/// other leg is the value of the axis key itself.
std::optional<SpecError> apply_leg(ScenarioSpec& spec,
                                   const std::string& axis_key,
                                   const std::string& leg) {
  if (leg.find('=') == std::string::npos) {
    return apply_override(spec, axis_key, leg);
  }
  std::istringstream tokens{leg};
  std::string token;
  while (tokens >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 > token.size()) {
      return SpecError{"sweep." + axis_key,
                       "expected key=value overrides (got '" + token + "')"};
    }
    if (auto err = apply_override(spec, token.substr(0, eq),
                                  token.substr(eq + 1))) {
      err->key = "sweep." + axis_key + " -> " + err->key;
      return err;
    }
  }
  return std::nullopt;
}

/// FNV-1a over a sequence of 64-bit hashes (hash of hashes).
std::uint64_t hash_u64s(std::span<const std::uint64_t> values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t v : values) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace

std::size_t CampaignSpec::num_points() const {
  std::size_t points = 1;
  for (const CampaignAxis& axis : axes) points *= axis.values.size();
  return points;
}

std::size_t CampaignSpec::num_instances() const {
  return num_points() * instances_per_point;
}

std::string CampaignParseResult::error_text() const {
  std::string out;
  for (const SpecError& e : errors) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

CampaignParseResult parse_campaign(const std::string& text) {
  CampaignParseResult result;
  CampaignSpec campaign;

  // Split the file by section: [campaign] and [sweep] are consumed here
  // (line order preserved — axis declaration order IS the sweep-point
  // enumeration order); everything else is scenario schema and goes to
  // parse_spec verbatim. The line handling mirrors IniConfig::parse.
  std::string spec_text;
  std::istringstream in{text};
  std::string raw;
  std::string section;
  bool quick_set = false;
  while (std::getline(in, raw)) {
    std::string line = raw;
    const auto comment = line.find_first_of(";#");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (!line.empty() && line.front() == '[' && line.back() == ']') {
      section = trim(line.substr(1, line.size() - 2));
    }
    if (section != "campaign" && section != "sweep") {
      spec_text += raw;
      spec_text += '\n';
      continue;
    }
    if (line.empty() || line.front() == '[') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      result.errors.push_back(
          {"<syntax>", "[" + section + "] line without '=': " + line});
      continue;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      result.errors.push_back({"<syntax>", "[" + section + "] empty key"});
      continue;
    }

    if (section == "campaign") {
      const auto v = parse_u64(value);
      if (key == "instances") {
        if (!v || *v < 1 || *v > 1000000) {
          result.errors.push_back(
              {"campaign.instances",
               "instances per point must be in [1, 1000000]"});
        } else {
          campaign.instances_per_point = static_cast<std::size_t>(*v);
        }
      } else if (key == "quick_instances") {
        if (!v || *v < 1 || *v > 1000000) {
          result.errors.push_back(
              {"campaign.quick_instances",
               "quick instances per point must be in [1, 1000000]"});
        } else {
          campaign.quick_instances_per_point = static_cast<std::size_t>(*v);
          quick_set = true;
        }
      } else {
        result.errors.push_back(
            {"campaign." + key, "unknown campaign key"});
      }
      continue;
    }

    // [sweep]
    const auto dup =
        std::find_if(campaign.axes.begin(), campaign.axes.end(),
                     [&](const CampaignAxis& a) { return a.key == key; });
    if (dup != campaign.axes.end()) {
      result.errors.push_back({"sweep." + key, "duplicate sweep axis"});
      continue;
    }
    CampaignAxis axis;
    axis.key = key;
    axis.values = split_legs(value);
    for (const std::string& leg : axis.values) {
      if (leg.empty()) {
        result.errors.push_back(
            {"sweep." + key, "empty sweep value (check stray '|')"});
      }
    }
    campaign.axes.push_back(std::move(axis));
  }

  SpecParseResult base = parse_spec(spec_text);
  for (SpecError& e : base.errors) result.errors.push_back(std::move(e));
  if (!result.errors.empty()) return result;
  campaign.base = std::move(*base.spec);
  if (!quick_set) {
    campaign.quick_instances_per_point =
        std::min<std::size_t>(campaign.instances_per_point, 2);
  }

  // Every sweep point must expand to a valid spec; probing the full grid
  // here (specs only, nothing runs) means a campaign file is either
  // rejected with a typed error or guaranteed runnable.
  std::vector<CampaignInstance> probe;
  std::vector<SpecError> expand_errors =
      expand_campaign(campaign, 1, probe);
  for (SpecError& e : expand_errors) result.errors.push_back(std::move(e));
  if (result.errors.empty()) result.campaign = std::move(campaign);
  return result;
}

std::vector<SpecError> expand_campaign(const CampaignSpec& campaign,
                                       std::size_t instances_per_point,
                                       std::vector<CampaignInstance>& out) {
  std::vector<SpecError> errors;
  std::vector<CampaignInstance> instances;
  const std::size_t points = campaign.num_points();
  for (std::size_t p = 0; p < points; ++p) {
    // Decode the point index into one leg per axis, first axis outermost.
    std::vector<std::size_t> leg(campaign.axes.size(), 0);
    std::size_t rem = p;
    for (std::size_t a = campaign.axes.size(); a-- > 0;) {
      leg[a] = rem % campaign.axes[a].values.size();
      rem /= campaign.axes[a].values.size();
    }

    ScenarioSpec spec = campaign.base;
    std::vector<std::pair<std::string, std::string>> axis_values;
    bool point_ok = true;
    for (std::size_t a = 0; a < campaign.axes.size(); ++a) {
      const std::string& value = campaign.axes[a].values[leg[a]];
      axis_values.emplace_back(campaign.axes[a].key, value);
      if (auto err = apply_leg(spec, campaign.axes[a].key, value)) {
        err->message = "sweep point " + std::to_string(p) + ": " +
                       err->message;
        errors.push_back(std::move(*err));
        point_ok = false;
      }
    }
    if (point_ok) {
      for (SpecError& e : validate_spec(spec)) {
        e.message = "sweep point " + std::to_string(p) + ": " + e.message;
        errors.push_back(std::move(e));
        point_ok = false;
      }
    }
    if (!point_ok) continue;

    for (std::size_t r = 0; r < instances_per_point; ++r) {
      CampaignInstance inst;
      inst.index = p * instances_per_point + r;
      inst.point = p;
      inst.rep = r;
      inst.seed = Rng::derive_stream_seed(campaign.base.seed, inst.index);
      inst.spec = spec;
      inst.axis_values = axis_values;
      instances.push_back(std::move(inst));
    }
  }
  if (errors.empty()) out = std::move(instances);
  return errors;
}

CampaignRun run_campaign(const CampaignSpec& campaign,
                         std::span<const CampaignInstance> instances) {
  CampaignRun run;
  run.instances.resize(instances.size());
  // One instance per index slot: results land in expansion order no
  // matter which worker ran them, so aggregation below (and the campaign
  // hash) cannot observe scheduling. Nested parallel_for calls inside
  // the channel builder degenerate to inline serial execution.
  parallel_for(0, instances.size(), [&](std::size_t i) {
    run.instances[i] =
        run_instance(compile(instances[i].spec), instances[i].seed);
  });

  std::vector<std::uint64_t> instance_hashes;
  instance_hashes.reserve(instances.size());
  for (const InstanceResult& r : run.instances) {
    instance_hashes.push_back(r.fingerprint_hash());
  }
  run.campaign_hash = hash_u64s(instance_hashes);

  const std::size_t points = campaign.num_points();
  run.points.resize(points);
  std::vector<std::vector<double>> mbps(points);
  std::vector<std::vector<std::uint64_t>> hashes(points);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    PointAggregate& agg = run.points[instances[i].point];
    if (agg.instance_count == 0) {
      agg.axis_values = instances[i].axis_values;
    }
    ++agg.instance_count;
    const InstanceResult& r = run.instances[i];
    mbps[instances[i].point].push_back(r.system_mbps);
    hashes[instances[i].point].push_back(instance_hashes[i]);
    agg.mean_jain += r.jain;
    agg.mean_power_w += r.power_used_w;
    agg.mean_txs += r.txs_assigned;
  }
  for (std::size_t p = 0; p < points; ++p) {
    PointAggregate& agg = run.points[p];
    if (agg.instance_count == 0) continue;
    const double n = static_cast<double>(agg.instance_count);
    agg.mean_jain /= n;
    agg.mean_power_w /= n;
    agg.mean_txs /= n;
    agg.system_mbps = stats::summarize(mbps[p]);
    agg.p50_mbps = stats::quantile(mbps[p], 0.50);
    agg.p99_mbps = stats::quantile(mbps[p], 0.99);
    agg.p999_mbps = stats::quantile(mbps[p], 0.999);
    agg.point_hash = hash_u64s(hashes[p]);
  }
  return run;
}

}  // namespace densevlc::scenario
