// Scenario compilation and single-instance evaluation.
//
// compile() lowers a validated ScenarioSpec into the concrete objects
// the rest of the stack consumes — a core::SystemConfig whose testbed,
// LED operating point and link budget are built from the spec fields
// (running the luminaire planner first when the spec dims), plus the
// allocator options and evaluation plan. run_instance() then executes
// one seeded instance:
//
//   - receiver placement: fixed coordinates, or uniform draws from the
//     instance's placement stream (Rng::split of the instance seed, so
//     an instance's layout is a pure function of its seed — independent
//     of shard order and thread count);
//   - analytic scenarios build the LOS channel, apply blockage, run the
//     SJR heuristic once and fingerprint the per-RX Shannon throughputs
//     (the Fig. 8 evaluation path);
//   - soak scenarios assemble a full DenseVlcSystem (fault schedule
//     included) and fingerprint every epoch's post-decision throughputs
//     (the chaos-soak evaluation path of bench/ext_faults).
//
// The fingerprint is the reproducibility contract: two runs of the same
// compiled scenario at the same instance seed must agree bit for bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "alloc/assignment.hpp"
#include "core/config.hpp"
#include "scenario/spec.hpp"

namespace densevlc::scenario {

/// RNG sub-stream ids hung off the instance seed. The system itself is
/// seeded with the instance seed directly (stream of its own choosing);
/// scenario-level draws use split streams so adding a new draw site
/// never perturbs an existing one.
inline constexpr std::uint64_t kPlacementStream = 1;

/// A spec lowered to runnable form. `system.seed` is a placeholder —
/// run_instance() overwrites it with the instance seed.
struct CompiledScenario {
  core::SystemConfig system;
  alloc::AssignmentOptions alloc_options;
  EvalKind kind = EvalKind::kAnalytic;
  double kappa = 1.3;
  double power_budget_w = 1.2;
  RxPlacement placement = RxPlacement::kFixed;
  std::vector<geom::Vec3> fixed_rx;
  std::size_t rx_count = 0;
  double rx_margin_m = 0.4;
  std::vector<channel::CylinderBlocker> blockers;
  std::size_t epochs = 1;
};

/// Everything measured from one seeded instance.
struct InstanceResult {
  /// Exact per-RX throughput bits: one entry per RX (analytic) or per
  /// epoch x RX in epoch order (soak). Bit-compared across thread
  /// counts and shard orders.
  std::vector<double> fingerprint;
  std::vector<double> per_rx_mbps;    ///< final-decision per-RX throughput
  double system_mbps = 0.0;           ///< sum (analytic) / epoch mean (soak)
  double jain = 0.0;                  ///< fairness of per_rx_mbps
  double power_used_w = 0.0;
  double txs_assigned = 0.0;          ///< epoch mean for soaks
  // Soak-only extras (empty/zero for analytic instances).
  std::vector<double> epoch_held_mbps;     ///< held allocation vs faulted H
  std::vector<double> epoch_decided_mbps;  ///< after each decision
  std::uint64_t watchdog_holds = 0;
  std::size_t dead_txs = 0;

  /// FNV-1a over the fingerprint's IEEE-754 bit patterns.
  std::uint64_t fingerprint_hash() const;
};

/// FNV-1a 64-bit hash over the bit patterns of a double sequence.
std::uint64_t hash_doubles(std::span<const double> values);

/// Lowers a validated spec. Precondition: validate_spec(spec) is empty.
CompiledScenario compile(const ScenarioSpec& spec);

/// Receiver floor positions of one instance: the fixed list, or uniform
/// draws from the placement stream of `instance_seed`.
std::vector<geom::Vec3> instance_rx_positions(const CompiledScenario& scenario,
                                              std::uint64_t instance_seed);

/// Runs one seeded instance to completion. Pure: the result depends
/// only on (scenario, instance_seed).
InstanceResult run_instance(const CompiledScenario& scenario,
                            std::uint64_t instance_seed);

}  // namespace densevlc::scenario
