#include "scenario/compile.hpp"

#include <cstring>

#include "channel/blockage.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "core/system.hpp"
#include "illum/dimming.hpp"
#include "scenario/scenarios.hpp"

namespace densevlc::scenario {

std::uint64_t hash_doubles(std::span<const double> values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (double v : values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (bits >> (8 * byte)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::uint64_t InstanceResult::fingerprint_hash() const {
  return hash_doubles(fingerprint);
}

CompiledScenario compile(const ScenarioSpec& spec) {
  CompiledScenario out;
  out.kind = spec.kind;
  out.kappa = spec.kappa;
  out.power_budget_w = spec.power_budget_w;
  out.placement = spec.placement;
  out.fixed_rx = spec.rx_fixed;
  out.rx_count = spec.rx_count;
  out.rx_margin_m = spec.rx_margin_m;
  out.blockers = spec.blockers;
  out.epochs = spec.epochs;

  // The testbed, field by field from the spec — identical construction
  // order to core::make_*_testbed so a spec at the paper defaults is
  // bit-identical to the hand-wired testbeds.
  core::Testbed tb;
  tb.room = geom::Room{spec.room_width_m, spec.room_depth_m,
                       spec.room_height_m};
  tb.grid = geom::GridSpec{spec.grid_rows, spec.grid_cols, spec.grid_pitch_m,
                           spec.grid_mount_height_m};
  tb.rx_height_m = spec.rx_height_m;
  tb.emitter.half_power_semi_angle_rad =
      units::deg_to_rad(spec.led_half_angle_deg);
  tb.pd = optics::Photodiode{};
  tb.led = optics::LedModel{
      optics::LedElectrical{},
      optics::LedOperatingPoint{units::mA(spec.led_bias_ma),
                                units::mA(spec.led_max_swing_ma)}};
  const Hertz bandwidth{units::MHz(spec.bandwidth_mhz)};
  tb.budget = channel::LinkBudget::from_led(
      tb.led, AmperesPerWatt{0.4}, AmpsSquaredPerHertz{7.02e-23}, bandwidth);
  out.alloc_options.max_swing_a = units::mA(spec.led_max_swing_ma);

  if (spec.dimming_enabled) {
    // The illumination target dictates the bias; the swing ceiling and
    // the link budget follow from the dimmed operating point (paper
    // Sec. 3.4, mirrored from the ext_dimming wiring).
    illum::LuminaireDesign design;
    design.target_lux = spec.target_lux;
    design.leds_per_tx = spec.leds_per_tx;
    const auto plan = plan_luminaires(tb.room, tb.tx_poses(), tb.emitter,
                                      tb.led.electrical(), design);
    tb.led = optics::LedModel{tb.led.electrical(),
                              optics::LedOperatingPoint{plan.bias_a,
                                                        plan.max_swing_a}};
    tb.budget = channel::LinkBudget::from_led(
        tb.led, AmperesPerWatt{0.4}, AmpsSquaredPerHertz{7.02e-23},
        bandwidth);
    out.alloc_options.max_swing_a = plan.max_swing_a;
  }

  out.system.testbed = tb;
  out.system.kappa = spec.kappa;
  out.system.power_budget_w = spec.power_budget_w;
  out.system.max_swing_a = out.alloc_options.max_swing_a;
  out.system.incremental_probing = spec.incremental_probing;
  out.system.seed = spec.seed;  // placeholder; run_instance re-seeds
  if (spec.faults_enabled) {
    out.system.faults = chaos_schedule(
        tb.grid.count(), spec.led_fail_fraction, spec.fault_time_s,
        out.system.mac.epoch_period_s, spec.fault_seed);
  }
  return out;
}

std::vector<geom::Vec3> instance_rx_positions(const CompiledScenario& scenario,
                                              std::uint64_t instance_seed) {
  if (scenario.placement == RxPlacement::kFixed) return scenario.fixed_rx;
  Rng rng{Rng::derive_stream_seed(instance_seed, kPlacementStream)};
  const auto& room = scenario.system.testbed.room;
  std::vector<geom::Vec3> rx_xy;
  rx_xy.reserve(scenario.rx_count);
  for (std::size_t k = 0; k < scenario.rx_count; ++k) {
    const double x =
        rng.uniform(scenario.rx_margin_m, room.width - scenario.rx_margin_m);
    const double y =
        rng.uniform(scenario.rx_margin_m, room.depth - scenario.rx_margin_m);
    rx_xy.push_back({x, y, 0.0});
  }
  return rx_xy;
}

namespace {

InstanceResult run_analytic(const CompiledScenario& scenario,
                            const std::vector<geom::Vec3>& rx_xy) {
  const core::Testbed& tb = scenario.system.testbed;
  channel::ChannelMatrix h = tb.channel_for(rx_xy);
  if (!scenario.blockers.empty()) {
    h = channel::apply_blockage(h, tb.tx_poses(), tb.rx_poses(rx_xy),
                                scenario.blockers);
  }
  const auto res =
      alloc::heuristic_allocate(h, scenario.kappa,
                                Watts{scenario.power_budget_w}, tb.budget,
                                scenario.alloc_options);
  const auto tput = channel::throughput_bps(h, res.allocation, tb.budget);

  InstanceResult out;
  out.fingerprint = tput;
  for (double t : tput) {
    out.per_rx_mbps.push_back(t / 1e6);
    out.system_mbps += t / 1e6;
  }
  out.jain = stats::jain_index(tput);
  out.power_used_w = res.power_used_w;
  out.txs_assigned = static_cast<double>(res.txs_assigned);
  return out;
}

InstanceResult run_soak(const CompiledScenario& scenario,
                        const std::vector<geom::Vec3>& rx_xy,
                        std::uint64_t instance_seed) {
  core::SystemConfig cfg = scenario.system;
  cfg.seed = instance_seed;
  auto system = core::DenseVlcSystem::with_static_rxs(cfg, rx_xy);

  InstanceResult out;
  out.dead_txs = cfg.faults.dead_tx_count(
      static_cast<double>(scenario.epochs) * cfg.mac.epoch_period_s);
  double decided_sum = 0.0;
  double txs_sum = 0.0;
  for (std::size_t e = 0; e < scenario.epochs; ++e) {
    const double t = static_cast<double>(e) * cfg.mac.epoch_period_s;
    // What users experience between a fault and the next decision: the
    // held allocation evaluated against the channel as it is *now*.
    const auto held =
        system.controller().expected_throughput(system.faulted_channel(t));
    double held_sum = 0.0;
    for (double x : held) held_sum += x;
    out.epoch_held_mbps.push_back(held_sum / 1e6);

    const auto epoch = system.run_epoch_analytic(t);
    double post_sum = 0.0;
    for (double x : epoch.throughput_bps) {
      post_sum += x;
      out.fingerprint.push_back(x);
    }
    out.epoch_decided_mbps.push_back(post_sum / 1e6);
    decided_sum += post_sum / 1e6;
    txs_sum += static_cast<double>(epoch.txs_assigned);
    out.power_used_w = epoch.power_used_w;
    if (e + 1 == scenario.epochs) {
      out.per_rx_mbps.clear();
      for (double x : epoch.throughput_bps) {
        out.per_rx_mbps.push_back(x / 1e6);
      }
    }
  }
  out.system_mbps = decided_sum / static_cast<double>(scenario.epochs);
  out.txs_assigned = txs_sum / static_cast<double>(scenario.epochs);
  out.jain = stats::jain_index(out.per_rx_mbps);
  out.watchdog_holds = system.controller().watchdog_holds();
  return out;
}

}  // namespace

InstanceResult run_instance(const CompiledScenario& scenario,
                            std::uint64_t instance_seed) {
  const auto rx_xy = instance_rx_positions(scenario, instance_seed);
  return scenario.kind == EvalKind::kAnalytic
             ? run_analytic(scenario, rx_xy)
             : run_soak(scenario, rx_xy, instance_seed);
}

}  // namespace densevlc::scenario
