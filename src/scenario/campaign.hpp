// Monte-Carlo campaign expansion and execution.
//
// A campaign file is a scenario file plus two extra sections:
//
//   [campaign]
//   instances = 20          ; seeded instances per sweep point
//   quick_instances = 2     ; optional --quick override
//
//   [sweep]
//   rx.count = 2 | 4 | 6 | 8
//   grid = grid.rows=4 grid.cols=4 grid.pitch=0.75 | grid.rows=6 ...
//
// Every [sweep] key is one axis; the cartesian product of all axes forms
// the sweep grid. An axis value is either a bare scalar (applied to the
// axis key itself) or a space-separated list of `key=value` overrides
// (for axes whose legs must move several spec fields together, like a
// grid that densifies at matching pitch). Each point is instantiated
// `instances` times; instance i of the whole campaign draws its seed as
// Rng::derive_stream_seed(base seed, i), so a result is a pure function
// of the campaign file — independent of shard order and thread count.
//
// run_campaign() shards instances across the deterministic thread pool
// and reduces per-point aggregates (mean, 95% CI, p50/p99/p999 tails).
// Cross-thread-count bit-identity is asserted by bench/campaign and the
// tests/scenario determinism suite.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "scenario/compile.hpp"
#include "scenario/spec.hpp"

namespace densevlc::scenario {

/// One sweep axis: a label (the INI key under [sweep]) and its values.
struct CampaignAxis {
  std::string key;                  ///< axis label / target spec key
  std::vector<std::string> values;  ///< one entry per leg
};

/// A parsed campaign: the base scenario plus the sweep grid.
struct CampaignSpec {
  ScenarioSpec base;
  std::vector<CampaignAxis> axes;        ///< cartesian product
  std::size_t instances_per_point = 1;
  std::size_t quick_instances_per_point = 2;

  /// Sweep points (1 when there are no axes).
  std::size_t num_points() const;
  /// num_points() * instances_per_point.
  std::size_t num_instances() const;
};

/// Outcome of parsing a campaign file (spec iff `errors` is empty).
struct CampaignParseResult {
  std::optional<CampaignSpec> campaign;
  std::vector<SpecError> errors;

  bool ok() const { return campaign.has_value(); }
  std::string error_text() const;
};

/// Parses campaign INI text ([campaign] and [sweep] on top of the
/// scenario schema). Same contract as parse_spec: typed errors, no
/// silent defaulting.
[[nodiscard]] CampaignParseResult parse_campaign(const std::string& text);

/// One expanded instance: the fully-overridden spec plus its identity.
struct CampaignInstance {
  std::size_t index = 0;  ///< global expansion index (seed stream id)
  std::size_t point = 0;  ///< sweep-point index
  std::size_t rep = 0;    ///< repetition within the point
  std::uint64_t seed = 0;
  ScenarioSpec spec;
  /// (axis key, value) of this instance's sweep point, in axis order.
  std::vector<std::pair<std::string, std::string>> axis_values;
};

/// Expands the sweep grid into seeded instances (point-major, reps
/// inner). Axis overrides that fail to apply or produce an invalid spec
/// become typed errors; instances are only returned when clean.
[[nodiscard]] std::vector<SpecError> expand_campaign(
    const CampaignSpec& campaign, std::size_t instances_per_point,
    std::vector<CampaignInstance>& out);

/// Aggregate statistics over one sweep point's instances.
struct PointAggregate {
  std::vector<std::pair<std::string, std::string>> axis_values;
  std::size_t instance_count = 0;
  stats::Summary system_mbps;  ///< mean/stddev/median/min/max/ci95
  double p50_mbps = 0.0;
  double p99_mbps = 0.0;
  double p999_mbps = 0.0;
  double mean_jain = 0.0;
  double mean_power_w = 0.0;
  double mean_txs = 0.0;
  std::uint64_t point_hash = 0;  ///< FNV over instance fingerprint hashes
};

/// Everything a campaign run produces.
struct CampaignRun {
  std::vector<InstanceResult> instances;  ///< expansion order
  std::vector<PointAggregate> points;     ///< sweep-point order
  std::uint64_t campaign_hash = 0;        ///< FNV over instance hashes
};

/// Runs every instance (sharded over the global thread pool; results
/// are bit-identical at any thread count) and reduces the aggregates.
CampaignRun run_campaign(const CampaignSpec& campaign,
                         std::span<const CampaignInstance> instances);

}  // namespace densevlc::scenario
