// Monte-Carlo campaign expansion and execution.
//
// A campaign file is a scenario file plus two extra sections:
//
//   [campaign]
//   instances = 20          ; seeded instances per sweep point
//   quick_instances = 2     ; optional --quick override
//
//   [sweep]
//   rx.count = 2 | 4 | 6 | 8
//   grid = grid.rows=4 grid.cols=4 grid.pitch=0.75 | grid.rows=6 ...
//
// Every [sweep] key is one axis; the cartesian product of all axes forms
// the sweep grid. An axis value is either a bare scalar (applied to the
// axis key itself) or a space-separated list of `key=value` overrides
// (for axes whose legs must move several spec fields together, like a
// grid that densifies at matching pitch). Each point is instantiated
// `instances` times; instance i of the whole campaign draws its seed as
// Rng::derive_stream_seed(base seed, i), so a result is a pure function
// of the campaign file — independent of shard order and thread count.
//
// run_campaign() shards instances across the deterministic thread pool
// and reduces per-point aggregates (mean, 95% CI, p50/p99/p999 tails).
// Cross-thread-count bit-identity is asserted by bench/campaign and the
// tests/scenario determinism suite.
//
// Durability (PR 9): a campaign can stream every completed instance as a
// compact InstanceRecord into an append-only journal (common/journal.hpp)
// inside a *campaign directory*. Because the PR 7 seed contract makes
// each instance a pure function of (campaign file, expansion index), a
// crashed run resumes by recovering the journal, skipping the recovered
// indices, and running only the missing ones — and the resumed campaign
// hash is bit-identical to an uninterrupted run. Independent OS
// processes shard the point-major index space (index mod n) into
// disjoint per-shard journals of the same directory; summarize_records()
// rebuilds the per-point aggregates from any complete record set.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/journal.hpp"
#include "common/stats.hpp"
#include "scenario/compile.hpp"
#include "scenario/spec.hpp"

namespace densevlc::scenario {

/// One sweep axis: a label (the INI key under [sweep]) and its values.
struct CampaignAxis {
  std::string key;                  ///< axis label / target spec key
  std::vector<std::string> values;  ///< one entry per leg
};

/// A parsed campaign: the base scenario plus the sweep grid.
struct CampaignSpec {
  ScenarioSpec base;
  std::vector<CampaignAxis> axes;        ///< cartesian product
  std::size_t instances_per_point = 1;
  std::size_t quick_instances_per_point = 2;

  /// Sweep points (1 when there are no axes).
  std::size_t num_points() const;
  /// num_points() * instances_per_point.
  std::size_t num_instances() const;
};

/// Outcome of parsing a campaign file (spec iff `errors` is empty).
struct CampaignParseResult {
  std::optional<CampaignSpec> campaign;
  std::vector<SpecError> errors;

  bool ok() const { return campaign.has_value(); }
  std::string error_text() const;
};

/// Parses campaign INI text ([campaign] and [sweep] on top of the
/// scenario schema). Same contract as parse_spec: typed errors, no
/// silent defaulting.
[[nodiscard]] CampaignParseResult parse_campaign(const std::string& text);

/// Reads and parses a campaign file. A missing or unreadable path is a
/// typed SpecError whose key carries the path — never an empty parse.
[[nodiscard]] CampaignParseResult load_campaign_file(const std::string& path);

/// One expanded instance: the fully-overridden spec plus its identity.
struct CampaignInstance {
  std::size_t index = 0;  ///< global expansion index (seed stream id)
  std::size_t point = 0;  ///< sweep-point index
  std::size_t rep = 0;    ///< repetition within the point
  std::uint64_t seed = 0;
  ScenarioSpec spec;
  /// (axis key, value) of this instance's sweep point, in axis order.
  std::vector<std::pair<std::string, std::string>> axis_values;
};

/// Expands the sweep grid into seeded instances (point-major, reps
/// inner). Axis overrides that fail to apply or produce an invalid spec
/// become typed errors; instances are only returned when clean.
[[nodiscard]] std::vector<SpecError> expand_campaign(
    const CampaignSpec& campaign, std::size_t instances_per_point,
    std::vector<CampaignInstance>& out);

/// Aggregate statistics over one sweep point's instances.
struct PointAggregate {
  std::vector<std::pair<std::string, std::string>> axis_values;
  std::size_t instance_count = 0;
  stats::Summary system_mbps;  ///< mean/stddev/median/min/max/ci95
  double p50_mbps = 0.0;
  double p99_mbps = 0.0;
  double p999_mbps = 0.0;
  double mean_jain = 0.0;
  double mean_power_w = 0.0;
  double mean_txs = 0.0;
  std::uint64_t point_hash = 0;  ///< FNV over instance fingerprint hashes
};

/// Everything a campaign run produces.
struct CampaignRun {
  std::vector<InstanceResult> instances;  ///< submitted-span order
  std::vector<PointAggregate> points;     ///< sweep-point order
  std::uint64_t campaign_hash = 0;        ///< FNV over instance hashes
};

// --- durable journal layer -------------------------------------------------

/// Compact durable record of one completed instance: its identity plus
/// exactly the bits the campaign aggregates consume. Records are
/// order-free — the expansion index keys everything — so any subset of
/// shards/crash survivors reassembles into the same campaign.
struct InstanceRecord {
  std::uint64_t index = 0;             ///< expansion index (seed stream id)
  std::uint64_t seed = 0;              ///< derived instance seed (sanity)
  std::uint64_t fingerprint_hash = 0;  ///< InstanceResult::fingerprint_hash
  double system_mbps = 0.0;
  double jain = 0.0;
  double power_used_w = 0.0;
  double txs_assigned = 0.0;
};

/// The record an instance result journals.
InstanceRecord make_record(const CampaignInstance& instance,
                           const InstanceResult& result);

/// Binary journal payload of one instance record (fixed-size,
/// little-endian, IEEE-754 bit patterns — decoding is exact).
std::vector<std::uint8_t> encode_instance_record(const InstanceRecord& record);

/// Decodes an instance payload; nullopt when the payload is not an
/// instance record (wrong tag or size).
[[nodiscard]] std::optional<InstanceRecord> decode_instance_record(
    std::span<const std::uint8_t> payload);

/// Identity of a durable campaign: FNV-1a over the canonical base-spec
/// serialization, the sweep axes, and the per-point instance count.
/// Resume and shard merges reject journals whose identity differs —
/// records from a different campaign file (or a --quick journal resumed
/// without --quick) must never be mixed in.
std::uint64_t campaign_identity(const CampaignSpec& campaign,
                                std::size_t instances_per_point);

/// Journal file of shard `shard` inside a campaign directory.
std::string shard_journal_path(const std::string& dir, std::size_t shard);

/// Supervisor requeue backoff: capped exponential, `attempt` counting
/// from 0 (100 ms, 200 ms, ... capped at 5 s).
std::uint64_t campaign_backoff_ms(std::size_t attempt);

/// Thread-safe streaming sink: every completed instance is framed and
/// appended to one shard journal, fsync'd in batches. Opening recovers
/// an existing file first (dropping a corrupt tail in place), verifies
/// the header, and reports the recovered records so the caller can skip
/// their indices.
class CampaignJournal {
 public:
  struct Open {
    std::unique_ptr<CampaignJournal> campaign_journal;  ///< null on error
    std::vector<InstanceRecord> recovered;  ///< valid records already on disk
    std::uint64_t dropped_bytes = 0;        ///< corrupt suffix discarded
    std::string error;                      ///< nonempty on hard failure
  };

  /// Opens (or creates) dir/journal-<shard>.dvlcj. With `resume` false
  /// an existing journal holding instance records is refused — losing a
  /// previous run's records requires an explicit resume decision.
  /// `fsync_every` batches fsyncs (1 = every record durable on append).
  static Open open(const std::string& dir, std::size_t shard,
                   std::uint64_t campaign_id, std::uint64_t num_instances,
                   bool resume, std::size_t fsync_every = 32);

  /// Crash injection: SIGKILL this process the moment `count` instances
  /// have been journaled by it (0 disables). While armed, every record
  /// is fsync'd on append so the crash point is durable and exact.
  void set_crash_after(std::size_t count);

  /// Streams one finished instance (thread-safe; called from workers).
  void on_result(const CampaignInstance& instance,
                 const InstanceResult& result);

  [[nodiscard]] bool flush();
  /// Sticky I/O health: false once any append/flush failed.
  bool ok() const { return ok_ && writer_.ok(); }
  std::size_t records_written() const { return written_; }

 private:
  explicit CampaignJournal(journal::JournalWriter writer);

  std::mutex mu_;
  journal::JournalWriter writer_;
  std::size_t written_ = 0;
  std::size_t crash_after_ = 0;
  bool ok_ = true;
};

/// Options threading the durable layer through a run.
struct CampaignRunOptions {
  CampaignJournal* campaign_journal = nullptr;  ///< optional streaming sink
};

/// Merged recovery of every shard journal (journal-*.dvlcj) in a
/// campaign directory. Records are deduplicated by index (byte-equal
/// duplicates are legal — a requeued shard may overlap its dead
/// predecessor's tail — conflicting ones are errors) and sorted.
struct CampaignRecovery {
  std::vector<InstanceRecord> records;  ///< deduped, ascending index
  std::uint64_t dropped_bytes = 0;      ///< corrupt suffix total
  std::size_t journal_files = 0;
  std::vector<std::string> errors;  ///< identity/conflict problems (fatal)
};

/// Scans `dir` for shard journals and recovers their records. Corrupt
/// tails are tolerated (counted in dropped_bytes); a journal whose
/// header does not match (campaign_id, num_instances) is an error.
[[nodiscard]] CampaignRecovery recover_campaign_dir(
    const std::string& dir, std::uint64_t campaign_id,
    std::uint64_t num_instances);

/// Per-point aggregates + campaign hash rebuilt from records alone
/// (sorted by expansion index, so the result is independent of shard
/// order, thread count, and how many crash/resume cycles produced the
/// records). run_campaign() routes through this too: a resumed campaign
/// and an uninterrupted one are bit-identical by construction.
struct CampaignSummary {
  std::vector<PointAggregate> points;
  std::uint64_t campaign_hash = 0;
  std::size_t instance_count = 0;
};

CampaignSummary summarize_records(const CampaignSpec& campaign,
                                  std::size_t instances_per_point,
                                  std::vector<InstanceRecord> records);

/// Runs every instance (sharded over the global thread pool; results
/// are bit-identical at any thread count) and reduces the aggregates.
CampaignRun run_campaign(const CampaignSpec& campaign,
                         std::span<const CampaignInstance> instances);

/// As above, optionally streaming every completed instance into a
/// durable campaign journal as shards finish.
CampaignRun run_campaign(const CampaignSpec& campaign,
                         std::span<const CampaignInstance> instances,
                         const CampaignRunOptions& options);

}  // namespace densevlc::scenario
