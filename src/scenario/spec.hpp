// Declarative scenario specification.
//
// Every hand-wired `bench/ext_*` setup is a point in the same small
// space: a room, a ceiling grid, an LED operating point, a receiver
// placement, and optional dimming / blockage / fault axes, evaluated
// either as a one-shot analytic allocation or as a multi-epoch soak.
// This module names that space: a ScenarioSpec is parsed from an INI
// scenario file (the schema extends sample_scenario.ini), validated with
// typed per-key errors (malformed or out-of-range values are rejected —
// never silently defaulted), serialized back to canonical INI for
// round-trip tests, and compiled into a runnable system configuration by
// scenario/compile.hpp. Sweep grids over the same keys live in
// scenario/campaign.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "channel/blockage.hpp"
#include "geom/vec3.hpp"

namespace densevlc::scenario {

/// How a compiled scenario is evaluated.
enum class EvalKind {
  kAnalytic,  ///< one-shot allocate + Shannon throughput (Fig. 8 path)
  kSoak,      ///< multi-epoch DenseVlcSystem run (chaos-soak path)
};

/// Which Table 1 testbed supplies the defaults.
enum class TestbedKind {
  kSimulation,    ///< Sec. 4: 2.8 m ceiling, RXs on a 0.8 m table
  kExperimental,  ///< Sec. 8: 2.0 m mounting, RXs on the floor
};

/// How receiver positions are produced per instance.
enum class RxPlacement {
  kFixed,    ///< the listed x<i>/y<i> coordinates, every instance
  kUniform,  ///< seeded uniform draws inside the room minus a margin
};

/// One typed validation problem: which key, and what is wrong with it.
struct SpecError {
  std::string key;      ///< INI key ("grid.rows") or "<syntax>"
  std::string message;  ///< human-readable reason

  /// "key: message" for logs and test assertions.
  std::string to_string() const { return key + ": " + message; }
};

/// The declarative scenario description. Field defaults are the
/// simulation testbed of paper Table 1; `spec_defaults(kExperimental)`
/// re-bases them on the Sec. 8 hardware. All lengths are meters, currents
/// milliamps, angles degrees — matching the INI schema.
struct ScenarioSpec {
  // [scenario]
  std::string name = "unnamed";
  EvalKind kind = EvalKind::kAnalytic;
  std::uint64_t seed = 0xD5EED;
  std::size_t epochs = 10;  ///< soak only

  // [system]
  TestbedKind testbed = TestbedKind::kSimulation;
  double kappa = 1.3;
  double power_budget_w = 1.2;
  double bandwidth_mhz = 1.0;
  bool incremental_probing = false;

  // [room]
  double room_width_m = 3.0;
  double room_depth_m = 3.0;
  double room_height_m = 2.8;

  // [grid]
  std::size_t grid_rows = 6;
  std::size_t grid_cols = 6;
  double grid_pitch_m = 0.5;
  double grid_mount_height_m = 2.8;

  // [led]
  double led_bias_ma = 450.0;
  double led_max_swing_ma = 900.0;
  double led_half_angle_deg = 15.0;

  // [rx]
  RxPlacement placement = RxPlacement::kFixed;
  std::size_t rx_count = 0;
  double rx_height_m = 0.8;
  double rx_margin_m = 0.4;          ///< uniform placement wall margin
  std::vector<geom::Vec3> rx_fixed;  ///< fixed placement coordinates

  // [illum] — present only when the section appears: the luminaire
  // planner then re-derives the LED bias and swing ceiling from the
  // illumination target before the communication layer is evaluated.
  bool dimming_enabled = false;
  double target_lux = 500.0;
  std::size_t leds_per_tx = 1;

  // [blockage]
  std::vector<channel::CylinderBlocker> blockers;

  // [faults] — present only when the section appears; requires kSoak.
  bool faults_enabled = false;
  double led_fail_fraction = 0.0;
  double fault_time_s = 3.5;
  std::uint64_t fault_seed = 0xFA17;
};

/// Spec with every field at the named testbed's defaults.
ScenarioSpec spec_defaults(TestbedKind testbed);

/// Outcome of parsing: either a validated spec or the full error list
/// (never both; a spec is only returned when `errors` is empty).
struct SpecParseResult {
  std::optional<ScenarioSpec> spec;
  std::vector<SpecError> errors;

  bool ok() const { return spec.has_value(); }
  /// All errors joined with newlines (for CLI diagnostics).
  std::string error_text() const;
};

/// Parses scenario INI text. Unknown keys, malformed values and
/// out-of-range fields are typed errors; nothing is silently defaulted.
[[nodiscard]] SpecParseResult parse_spec(const std::string& text);

/// Reads and parses a scenario file. A missing or unreadable path is a
/// typed SpecError whose key carries the path — never an empty parse.
[[nodiscard]] SpecParseResult load_spec_file(const std::string& path);

/// Applies one "key = value" override to an already-parsed spec (sweep
/// axes and CLI overrides use this). Returns the error when the key is
/// unknown or the value malformed; the caller re-validates the whole
/// spec afterwards via validate_spec.
[[nodiscard]] std::optional<SpecError> apply_override(
    ScenarioSpec& spec, const std::string& key, const std::string& value);

/// Range and cross-field checks over a fully-assembled spec.
std::vector<SpecError> validate_spec(const ScenarioSpec& spec);

/// Canonical INI serialization: parse(serialize(s)) reproduces `s`
/// exactly (doubles are printed with shortest-round-trip precision).
std::string serialize_spec(const ScenarioSpec& spec);

const char* to_string(EvalKind kind);
const char* to_string(TestbedKind testbed);
const char* to_string(RxPlacement placement);

}  // namespace densevlc::scenario
