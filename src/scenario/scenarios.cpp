#include "scenario/scenarios.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace densevlc::scenario {

std::vector<geom::Vec3> fig7_rx_positions() {
  return {{0.92, 0.92, 0.0},
          {1.65, 0.65, 0.0},
          {0.72, 1.93, 0.0},
          {1.99, 1.69, 0.0}};
}

std::vector<geom::Vec3> scenario1_rx_positions() {
  return {{0.50, 0.50, 0.0},
          {2.50, 0.50, 0.0},
          {0.50, 2.50, 0.0},
          {2.50, 2.50, 0.0}};
}

std::vector<geom::Vec3> scenario3_rx_positions() {
  return {{0.75, 0.75, 0.0},
          {1.75, 0.75, 0.0},
          {0.75, 1.75, 0.0},
          {1.75, 1.75, 0.0}};
}

std::vector<std::vector<geom::Vec3>> random_instances(std::size_t count,
                                                      double radius_m,
                                                      const geom::Room& room,
                                                      std::uint64_t seed) {
  const auto anchors = fig7_rx_positions();
  Rng rng{seed};
  std::vector<std::vector<geom::Vec3>> instances;
  instances.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<geom::Vec3> rxs;
    rxs.reserve(anchors.size());
    for (const auto& anchor : anchors) {
      // Uniform in a disc: r = R sqrt(u).
      const double r = radius_m * std::sqrt(rng.uniform());
      const double theta = rng.uniform(0.0, 2.0 * kPi);
      geom::Vec3 p{anchor.x + r * std::cos(theta),
                   anchor.y + r * std::sin(theta), 0.0};
      p.x = std::clamp(p.x, 0.0, room.width);
      p.y = std::clamp(p.y, 0.0, room.depth);
      rxs.push_back(p);
    }
    instances.push_back(std::move(rxs));
  }
  return instances;
}

fault::FaultSchedule chaos_schedule(std::size_t num_tx,
                                    double led_fail_fraction,
                                    double t_fail_s, double epoch_period_s,
                                    std::uint64_t seed) {
  const auto failures = static_cast<std::size_t>(std::llround(
      led_fail_fraction * static_cast<double>(num_tx)));
  auto schedule = fault::FaultSchedule::random_led_burnouts(
      num_tx, failures, t_fail_s, seed);

  fault::FaultEvent burst;
  burst.kind = fault::FaultKind::kReportLossBurst;
  burst.t_start_s = t_fail_s + 2.0 * epoch_period_s;
  burst.t_end_s = burst.t_start_s + epoch_period_s;
  schedule.add(burst);

  fault::FaultEvent pilot;
  pilot.kind = fault::FaultKind::kSyncPilotLoss;
  pilot.t_start_s = burst.t_start_s;
  pilot.t_end_s = burst.t_end_s;
  schedule.add(pilot);
  return schedule;
}

}  // namespace densevlc::scenario
