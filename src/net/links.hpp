// Control-plane network models (paper Sec. 7.2).
//
// The controller pushes frames to the TXs over Ethernet multicast; RXs
// acknowledge and report channel measurements back over a WiFi uplink
// (the BBB Wireless' built-in radio). Neither path needs bit-level
// modeling — the MAC only cares about delivery, latency and loss — so
// both are discrete-event link models with configurable distributions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/simtime.hpp"
#include "common/event_queue.hpp"

namespace densevlc::net {

/// Latency/loss parameters of a link.
struct LinkConfig {
  double base_latency_s = 100e-6;   ///< fixed propagation + stack time
  double jitter_mean_s = 20e-6;     ///< exponential jitter mean
  double loss_probability = 0.0;    ///< independent per-delivery loss
};

/// Per-link delivery counters, kept by every SimLink so tests and the
/// chaos bench can assert loss and latency behaviour instead of
/// ignoring send()'s verdict.
struct LinkStats {
  std::uint64_t sent = 0;       ///< send() calls
  std::uint64_t lost = 0;       ///< loss draws that ate the packet
  std::uint64_t delivered = 0;  ///< handler invocations so far
  double total_latency_s = 0.0; ///< summed over delivered packets
  double max_latency_s = 0.0;

  /// Packets scheduled but not yet delivered by the simulator.
  std::uint64_t in_flight() const { return sent - lost - delivered; }
  double mean_latency_s() const {
    return delivered > 0 ? total_latency_s / static_cast<double>(delivered)
                         : 0.0;
  }
};

/// Point-to-point link: delivers byte payloads to a handler with
/// randomized latency; lost deliveries simply never arrive.
class SimLink {
 public:
  using Handler = std::function<void(const std::vector<std::uint8_t>&)>;

  SimLink(Simulator& simulator, const LinkConfig& cfg, Rng rng)
      : sim_{&simulator}, cfg_{cfg}, rng_{rng} {}

  /// Queues a delivery. Returns false if the draw decided the packet is
  /// lost (the handler will never fire for it). The link must outlive
  /// the simulator events it schedules (it tallies the delivery).
  [[nodiscard]] bool send(std::vector<std::uint8_t> payload, Handler handler);

  /// One latency draw [s] (exposed for tests).
  double draw_latency();

  const LinkConfig& config() const { return cfg_; }

  /// Counters.
  const LinkStats& stats() const { return stats_; }
  std::uint64_t sent() const { return stats_.sent; }
  std::uint64_t lost() const { return stats_.lost; }

 private:
  Simulator* sim_;
  LinkConfig cfg_;
  Rng rng_;
  LinkStats stats_;
};

/// Ethernet multicast from the controller to all subscribed TXs: one
/// send() fans out to every subscriber with independent latency draws
/// (switch queuing differs per port).
class EthernetMulticast {
 public:
  using Handler =
      std::function<void(std::size_t subscriber_id,
                         const std::vector<std::uint8_t>&)>;

  EthernetMulticast(Simulator& simulator, const LinkConfig& cfg,
                    Rng rng)
      : sim_{&simulator}, cfg_{cfg}, rng_{rng} {}

  /// Registers a subscriber; returns its id.
  std::size_t subscribe(Handler handler);

  /// Multicasts a payload to every subscriber.
  void send(const std::vector<std::uint8_t>& payload);

  std::size_t subscriber_count() const { return handlers_.size(); }

  /// Aggregate counters over all subscriber deliveries.
  const LinkStats& stats() const { return stats_; }

 private:
  Simulator* sim_;
  LinkConfig cfg_;
  Rng rng_;
  std::vector<Handler> handlers_;
  LinkStats stats_;
};

}  // namespace densevlc::net
