#include "net/links.hpp"

#include <cmath>

namespace densevlc::net {

double SimLink::draw_latency() {
  double u;
  do {
    u = rng_.uniform();
  } while (u <= 0.0);
  return cfg_.base_latency_s - cfg_.jitter_mean_s * std::log(u);
}

bool SimLink::send(std::vector<std::uint8_t> payload, Handler handler) {
  ++sent_;
  if (rng_.bernoulli(cfg_.loss_probability)) {
    ++lost_;
    return false;
  }
  const double latency = draw_latency();
  sim_->schedule_in(SimTime::from_seconds(latency),
                    [payload = std::move(payload),
                     handler = std::move(handler)] { handler(payload); });
  return true;
}

std::size_t EthernetMulticast::subscribe(Handler handler) {
  handlers_.push_back(std::move(handler));
  return handlers_.size() - 1;
}

void EthernetMulticast::send(const std::vector<std::uint8_t>& payload) {
  for (std::size_t id = 0; id < handlers_.size(); ++id) {
    double u;
    do {
      u = rng_.uniform();
    } while (u <= 0.0);
    const double latency = cfg_.base_latency_s - cfg_.jitter_mean_s *
                                                     std::log(u);
    sim_->schedule_in(
        SimTime::from_seconds(latency),
        [this, id, payload] { handlers_[id](id, payload); });
  }
}

}  // namespace densevlc::net
