#include "net/links.hpp"

#include <algorithm>
#include <cmath>

namespace densevlc::net {

double SimLink::draw_latency() {
  double u;
  do {
    u = rng_.uniform();
  } while (u <= 0.0);
  return cfg_.base_latency_s - cfg_.jitter_mean_s * std::log(u);
}

bool SimLink::send(std::vector<std::uint8_t> payload, Handler handler) {
  ++stats_.sent;
  if (rng_.bernoulli(cfg_.loss_probability)) {
    ++stats_.lost;
    return false;
  }
  const double latency = draw_latency();
  sim_->schedule_in(SimTime::from_seconds(latency),
                    [this, latency, payload = std::move(payload),
                     handler = std::move(handler)] {
                      ++stats_.delivered;
                      stats_.total_latency_s += latency;
                      stats_.max_latency_s =
                          std::max(stats_.max_latency_s, latency);
                      handler(payload);
                    });
  return true;
}

std::size_t EthernetMulticast::subscribe(Handler handler) {
  handlers_.push_back(std::move(handler));
  return handlers_.size() - 1;
}

void EthernetMulticast::send(const std::vector<std::uint8_t>& payload) {
  for (std::size_t id = 0; id < handlers_.size(); ++id) {
    double u;
    do {
      u = rng_.uniform();
    } while (u <= 0.0);
    const double latency = cfg_.base_latency_s - cfg_.jitter_mean_s *
                                                     std::log(u);
    ++stats_.sent;
    sim_->schedule_in(SimTime::from_seconds(latency),
                      [this, id, latency, payload] {
                        ++stats_.delivered;
                        stats_.total_latency_s += latency;
                        stats_.max_latency_s =
                            std::max(stats_.max_latency_s, latency);
                        handlers_[id](id, payload);
                      });
  }
}

}  // namespace densevlc::net
