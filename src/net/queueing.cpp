#include "net/queueing.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace densevlc::net {

bool FifoQueue::arrive(double t_s) {
  // Work off anything that would have departed by now.
  if (server_free_at_ < t_s) server_free_at_ = t_s;
  // Backlog is implicit in server_free_at_; track for capacity checks.
  const double queue_ahead_s = server_free_at_ - t_s;
  backlog_ = static_cast<std::size_t>(
      std::ceil(queue_ahead_s / service_time_s_));
  if (backlog_ >= capacity_) {
    ++dropped_;
    return false;
  }
  const double departure = server_free_at_ + service_time_s_;
  sojourns_.push_back(departure - t_s);
  server_free_at_ = departure;
  return true;
}

UplinkLoadReport analyze_uplink(const UplinkTraffic& traffic,
                                std::size_t num_rx, double duration_s,
                                std::uint64_t seed) {
  Rng rng{seed};

  // Generate Poisson arrivals for each source and class, then merge.
  struct Arrival {
    double t;
    double airtime;
  };
  std::vector<Arrival> arrivals;
  auto add_stream = [&](double rate_hz, double airtime_s) {
    if (rate_hz <= 0.0) return;
    double t = 0.0;
    while (true) {
      double u;
      do {
        u = rng.uniform();
      } while (u <= 0.0);
      t += -std::log(u) / rate_hz;
      if (t >= duration_s) break;
      arrivals.push_back({t, airtime_s});
    }
  };
  for (std::size_t k = 0; k < num_rx; ++k) {
    add_stream(traffic.ack_rate_hz, traffic.ack_airtime_s);
    add_stream(traffic.report_rate_hz, traffic.report_airtime_s);
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) { return a.t < b.t; });

  // Serve through a queue whose service time is per-frame airtime; use
  // the mean airtime as the FIFO's nominal service for capacity math,
  // but serve each frame for its own airtime.
  UplinkLoadReport report;
  double busy_s = 0.0;
  double server_free_at = 0.0;
  std::vector<double> sojourns;
  std::size_t dropped = 0;
  const std::size_t capacity = 64;
  for (const auto& a : arrivals) {
    if (server_free_at < a.t) server_free_at = a.t;
    const double backlog_s = server_free_at - a.t;
    if (backlog_s > static_cast<double>(capacity) * a.airtime) {
      ++dropped;
      continue;
    }
    const double departure = server_free_at + a.airtime;
    sojourns.push_back(departure - a.t);
    server_free_at = departure;
    busy_s += a.airtime;
  }

  report.offered_load = duration_s > 0.0 ? busy_s / duration_s : 0.0;
  report.mean_sojourn_s = stats::mean(sojourns);
  report.p99_sojourn_s = stats::quantile(sojourns, 0.99);
  report.dropped = dropped;
  report.served = sojourns.size();
  return report;
}

}  // namespace densevlc::net
