// Uplink queueing analysis (paper Sec. 7.2: "uplink packets are usually
// smaller in quantity and size compared to downlink packets. Therefore,
// the WiFi link is not easily congested").
//
// A FIFO transmission queue with deterministic per-frame service time,
// fed by the MAC's ACK and channel-report traffic, verifies that claim
// quantitatively: for the paper's rates the offered load is a few
// percent of the WiFi link's capacity, so queueing delay stays near one
// service time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace densevlc::net {

/// A work-conserving FIFO queue with deterministic service.
class FifoQueue {
 public:
  /// `service_time_s` per frame; `capacity` frames buffered (arrivals
  /// beyond it are dropped and counted).
  FifoQueue(double service_time_s, std::size_t capacity)
      : service_time_s_{service_time_s}, capacity_{capacity} {}

  /// Offers a frame at absolute time `t_s`. Returns false when dropped.
  bool arrive(double t_s);

  /// Sojourn times (arrival to departure) of all served frames [s].
  const std::vector<double>& sojourn_times() const { return sojourns_; }

  std::size_t dropped() const { return dropped_; }
  std::size_t served() const { return sojourns_.size(); }
  std::size_t backlog_at_last_arrival() const { return backlog_; }

 private:
  double service_time_s_;
  std::size_t capacity_;
  double server_free_at_ = 0.0;
  std::size_t backlog_ = 0;
  std::size_t dropped_ = 0;
  std::vector<double> sojourns_;
};

/// Traffic description of one uplink source (per-RX ACKs + reports).
struct UplinkTraffic {
  double ack_rate_hz = 45.0;       ///< one per delivered frame
  double ack_airtime_s = 60e-6;    ///< tiny WiFi frame
  double report_rate_hz = 1.0;     ///< one per epoch
  double report_airtime_s = 250e-6;///< 76 B payload + WiFi overhead
};

/// Result of an offered-load analysis.
struct UplinkLoadReport {
  double offered_load = 0.0;   ///< utilization in [0, ...)
  double mean_sojourn_s = 0.0;
  double p99_sojourn_s = 0.0;
  std::size_t dropped = 0;
  std::size_t served = 0;
};

/// Simulates `duration_s` of uplink traffic from `num_rx` receivers
/// multiplexed onto one queue. Arrivals are Poisson per source
/// (deterministically seeded).
UplinkLoadReport analyze_uplink(const UplinkTraffic& traffic,
                                std::size_t num_rx, double duration_s,
                                std::uint64_t seed);

}  // namespace densevlc::net
