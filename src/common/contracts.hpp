// Runtime contracts for the numeric kernels.
//
// The SINR/SJR math, the GF(256) field arithmetic and the event engine
// all have preconditions that, when violated, produce silently-wrong
// numbers rather than crashes. DVLC_ASSERT / DVLC_EXPECT turn those
// violations into immediate, message-rich aborts:
//
//   DVLC_ASSERT(rx < num_rx(), "RX index out of range");   // internal invariant
//   DVLC_EXPECT(kappa >= 0.0, "kappa must be non-negative"); // API precondition
//
// Both print the expression, the message, and file:line to stderr and
// abort, so death tests and sanitizer runs pinpoint the violation.
// Contracts are compiled out when DVLC_NO_CONTRACTS is defined (the
// CMake option DENSEVLC_CONTRACTS=OFF, default for Release builds),
// leaving zero overhead in production binaries.
#pragma once

namespace densevlc::detail {

/// Prints a rich diagnostic and aborts. Never returns.
[[noreturn]] void contract_violation(const char* kind, const char* expr,
                                     const char* msg, const char* file,
                                     int line) noexcept;

}  // namespace densevlc::detail

#if defined(DVLC_NO_CONTRACTS)

#define DVLC_ASSERT(cond, msg) static_cast<void>(0)
#define DVLC_EXPECT(cond, msg) static_cast<void>(0)

#else

/// Internal invariant: something the module itself guarantees.
#define DVLC_ASSERT(cond, msg)                                        \
  ((cond) ? static_cast<void>(0)                                      \
          : ::densevlc::detail::contract_violation(                   \
                "DVLC_ASSERT", #cond, (msg), __FILE__, __LINE__))

/// API precondition: something the caller must guarantee.
#define DVLC_EXPECT(cond, msg)                                        \
  ((cond) ? static_cast<void>(0)                                      \
          : ::densevlc::detail::contract_violation(                   \
                "DVLC_EXPECT", #cond, (msg), __FILE__, __LINE__))

#endif  // DVLC_NO_CONTRACTS
