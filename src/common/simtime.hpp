// Fixed-point simulation time.
//
// The discrete-event simulator and the synchronization subsystem need a
// time representation that is exact under addition (no floating-point
// drift when accumulating millions of symbol periods). SimTime stores
// nanoseconds in a signed 64-bit integer, giving ~292 years of range —
// ample for 100-second experiment runs at nanosecond resolution.
#pragma once

#include <compare>
#include <cstdint>

namespace densevlc {

/// A point in (or duration of) simulated time, in integer nanoseconds.
///
/// SimTime is a regular value type with full ordering; arithmetic between
/// SimTimes yields SimTime (durations and instants share the
/// representation, as in std::chrono's practice for simulation clocks).
class SimTime {
 public:
  /// Zero time (the epoch of every simulation run).
  constexpr SimTime() = default;

  /// Constructs from a raw nanosecond count.
  static constexpr SimTime from_ns(std::int64_t ns) { return SimTime{ns}; }

  /// Constructs from integer microseconds.
  static constexpr SimTime from_us(std::int64_t us) {
    return SimTime{us * 1000};
  }

  /// Constructs from integer milliseconds.
  static constexpr SimTime from_ms(std::int64_t ms) {
    return SimTime{ms * 1000000};
  }

  /// Constructs from integer seconds.
  static constexpr SimTime from_sec(std::int64_t sec) {
    return SimTime{sec * 1000000000};
  }

  /// Constructs from a floating-point second count, rounding to nearest ns.
  static constexpr SimTime from_seconds(double seconds) {
    const double ns = seconds * 1e9;
    return SimTime{static_cast<std::int64_t>(ns >= 0 ? ns + 0.5 : ns - 0.5)};
  }

  /// Raw nanosecond count.
  constexpr std::int64_t ns() const { return ns_; }

  /// Value in microseconds (exact division truncates; use seconds() for
  /// fractional display).
  constexpr std::int64_t us() const { return ns_ / 1000; }

  /// Value in seconds as a double (display / ratio use only).
  constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr SimTime operator+(SimTime other) const {
    return SimTime{ns_ + other.ns_};
  }
  constexpr SimTime operator-(SimTime other) const {
    return SimTime{ns_ - other.ns_};
  }
  constexpr SimTime operator-() const { return SimTime{-ns_}; }
  constexpr SimTime& operator+=(SimTime other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime other) {
    ns_ -= other.ns_;
    return *this;
  }
  /// Scales a duration by an integer factor (e.g. n symbol periods).
  constexpr SimTime operator*(std::int64_t factor) const {
    return SimTime{ns_ * factor};
  }

  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

}  // namespace densevlc
