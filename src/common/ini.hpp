// Minimal INI-style configuration parser.
//
// Examples and tools accept scenario files so users can describe their
// own rooms without recompiling. Supported syntax:
//
//   ; comment      # comment
//   [section]
//   key = value
//
// Keys are addressed as "section.key" ("" section for keys before any
// header). Values keep their raw text; typed getters parse on demand.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace densevlc {

/// Parsed INI content with typed accessors.
class IniConfig {
 public:
  /// Parses text. Malformed lines (no '=', unterminated section) are
  /// reported via the error string; parsing continues past them.
  static IniConfig parse(const std::string& text);

  /// Loads a file; nullopt when it cannot be read.
  [[nodiscard]] static std::optional<IniConfig> load(const std::string& path);

  /// Raw text value of "section.key".
  std::optional<std::string> get(const std::string& key) const;

  /// Typed getters; return the fallback when missing or unparsable.
  double get_double(const std::string& key, double fallback) const;
  long get_int(const std::string& key, long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  /// Whether the key exists.
  bool has(const std::string& key) const;

  /// All key-value pairs, ordered by full key name. Schema-checking
  /// consumers (the scenario spec parser) iterate this to reject unknown
  /// keys instead of silently ignoring them.
  const std::map<std::string, std::string>& items() const { return values_; }

  /// Number of key-value pairs.
  std::size_t size() const { return values_.size(); }

  /// Parse diagnostics (one line per problem; empty when clean).
  const std::string& errors() const { return errors_; }

 private:
  std::map<std::string, std::string> values_;
  std::string errors_;
};

}  // namespace densevlc
