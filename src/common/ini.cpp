#include "common/ini.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace densevlc {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

IniConfig IniConfig::parse(const std::string& text) {
  IniConfig cfg;
  std::istringstream in{text};
  std::string line;
  std::string section;
  std::size_t line_no = 0;
  std::ostringstream errors;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments (outside of values containing ';' we keep simple:
    // comment starts at the first ';' or '#').
    const auto comment = line.find_first_of(";#");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        errors << "line " << line_no << ": malformed section header\n";
        continue;
      }
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      errors << "line " << line_no << ": expected key = value\n";
      continue;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      errors << "line " << line_no << ": empty key\n";
      continue;
    }
    const std::string full = section.empty() ? key : section + "." + key;
    cfg.values_[full] = value;
  }
  cfg.errors_ = errors.str();
  return cfg;
}

std::optional<IniConfig> IniConfig::load(const std::string& path) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::optional<std::string> IniConfig::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool IniConfig::has(const std::string& key) const {
  return values_.contains(key);
}

double IniConfig::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  return end != v->c_str() && end != nullptr && *end == '\0' ? parsed
                                                             : fallback;
}

long IniConfig::get_int(const std::string& key, long fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v->c_str(), &end, 10);
  return end != v->c_str() && end != nullptr && *end == '\0' ? parsed
                                                             : fallback;
}

bool IniConfig::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  return fallback;
}

std::string IniConfig::get_string(const std::string& key,
                                  const std::string& fallback) const {
  return get(key).value_or(fallback);
}

}  // namespace densevlc
