// Fixed-size thread pool with deterministic data-parallel helpers.
//
// Every hot loop in the simulator (gain matrices, illuminance rasters,
// prober sweeps, allocator candidate evaluation) is embarrassingly
// parallel, but the repo's reproducibility contract demands more than
// "eventually the same answer": results must be *bit-identical* at any
// thread count, so a bench run on a laptop and a CI run on a 64-core box
// pin the same golden numbers.
//
// The design choices that make this hold:
//
//   - parallel_for / parallel_reduce split an index range into chunks
//     whose boundaries depend ONLY on the range length (never on the
//     thread count), so the grouping of floating-point operations is a
//     pure function of the problem;
//   - chunks may execute on any worker in any order, but every chunk
//     writes to its own slot and parallel_reduce combines the per-chunk
//     partials serially in ascending chunk order (ordered combine);
//   - there is no work stealing and no dynamic re-chunking — scheduling
//     freedom is confined to *which thread* runs a chunk, which cannot
//     affect the arithmetic.
//
// A pool of size 1 (or a reentrant call from inside a chunk) degenerates
// to plain inline execution with zero synchronization, which doubles as
// the reference serial path: serial and parallel are the same code.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace densevlc {

/// A fixed-size pool executing batches of independently indexed chunks.
/// The calling thread participates, so ThreadPool{n} uses n threads total
/// (n - 1 workers). Batches from concurrent callers are serialized.
class ThreadPool {
 public:
  /// `num_threads` == 0 is treated as 1 (pure serial execution).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads used per batch (workers + the calling thread).
  std::size_t num_threads() const { return num_threads_; }

  /// Runs chunk_fn(c) for every c in [0, num_chunks), blocking until all
  /// chunks completed. Chunk-to-thread placement is unspecified; chunk
  /// indices are claimed monotonically. Reentrant calls from inside a
  /// chunk execute serially inline (no nested parallelism). The first
  /// exception thrown by a chunk is rethrown to the caller after the
  /// batch drains.
  void run_chunks(std::size_t num_chunks,
                  const std::function<void(std::size_t)>& chunk_fn);

 private:
  void worker_loop();
  /// Claims and runs chunks until none remain; expects `lock` held.
  void drain_current_job(std::unique_lock<std::mutex>& lock);

  std::size_t num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;  ///< signals workers: job available
  std::condition_variable cv_done_;  ///< signals caller: chunks finished
  const std::function<void(std::size_t)>* job_ = nullptr;  // guarded by mu_
  std::size_t job_total_ = 0;        ///< chunks in the current batch
  std::size_t job_next_ = 0;         ///< next unclaimed chunk index
  std::size_t job_unfinished_ = 0;   ///< claimed-or-unclaimed chunks left
  std::exception_ptr job_error_;     ///< first chunk exception
  bool stop_ = false;
};

/// max(1, std::thread::hardware_concurrency()).
std::size_t hardware_threads();

/// The process-wide pool used by parallel_for / parallel_reduce. Sized on
/// first use from the DENSEVLC_THREADS environment variable, defaulting
/// to hardware_threads().
ThreadPool& global_pool();

/// Replaces the global pool with one of `num_threads` threads (0 = reset
/// to the first-use default). Not safe to call while a batch is running.
void set_global_threads(std::size_t num_threads);

/// Thread count of the current global pool.
std::size_t global_threads();

namespace detail {

/// Upper bound on chunks per batch. Small enough that per-chunk overhead
/// stays negligible, large enough to load-balance 64 threads.
inline constexpr std::size_t kMaxChunks = 64;

/// Number of chunks used for a range of n items — a function of n only.
inline std::size_t chunk_count(std::size_t n) {
  return n < kMaxChunks ? n : kMaxChunks;
}

/// Half-open bounds of chunk c when n items split into `chunks` chunks:
/// the first (n % chunks) chunks get one extra item. Depends only on
/// (n, chunks, c).
inline std::pair<std::size_t, std::size_t> chunk_bounds(std::size_t n,
                                                        std::size_t chunks,
                                                        std::size_t c) {
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  const std::size_t lo = c * base + (c < extra ? c : extra);
  const std::size_t hi = lo + base + (c < extra ? 1 : 0);
  return {lo, hi};
}

}  // namespace detail

/// Calls body(i) for every i in [begin, end) on the global pool. Bodies
/// must only write to i-indexed (disjoint) destinations; under that
/// contract the result is identical to the serial loop at any thread
/// count.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = detail::chunk_count(n);
  const std::function<void(std::size_t)> chunk_fn = [&](std::size_t c) {
    const auto [lo, hi] = detail::chunk_bounds(n, chunks, c);
    for (std::size_t i = lo; i < hi; ++i) body(begin + i);
  };
  global_pool().run_chunks(chunks, chunk_fn);
}

/// Deterministic chunked reduction: acc_c = fold of map(i) over chunk c
/// (in index order, seeded with `identity`), then the partials are
/// combined serially in ascending chunk order. Because chunk boundaries
/// depend only on the range length, the result is bit-identical at any
/// thread count — including 1 — though it may differ from an unchunked
/// serial fold (the chunked grouping IS the canonical result).
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, Map&& map,
                  Combine&& combine) {
  if (end <= begin) return identity;
  const std::size_t n = end - begin;
  const std::size_t chunks = detail::chunk_count(n);
  std::vector<T> partial(chunks, identity);
  const std::function<void(std::size_t)> chunk_fn = [&](std::size_t c) {
    const auto [lo, hi] = detail::chunk_bounds(n, chunks, c);
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(begin + i));
    partial[c] = acc;
  };
  global_pool().run_chunks(chunks, chunk_fn);
  T total = identity;
  for (const T& p : partial) total = combine(total, p);
  return total;
}

}  // namespace densevlc
