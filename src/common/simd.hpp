// Portable fixed-width SIMD wrapper for the PHY/DSP vector kernels.
//
// Three backends with one contract:
//
//   ScalarBackend   plain C++ loops, always available, bit-identical to
//                   the vector backends by construction (byte kernels are
//                   exact; float kernels vectorize across independent
//                   streams with per-lane operation order unchanged).
//   Avx2Backend     x86-64, compiled only in TUs built with -mavx2 (the
//                   dedicated *_simd.cpp TUs; see src/dsp/CMakeLists.txt
//                   and src/phy/CMakeLists.txt).
//   NeonBackend     aarch64, compiled wherever __ARM_NEON is on (default
//                   for aarch64 targets).
//
// This header is the ONLY file in the repo allowed to touch raw ISA
// intrinsics — the dvlc_analyze `simd-raw-intrinsic` rule flags
// `_mm*`/`vld1q_*` anywhere else. Kernels are written once as templates
// over a backend (src/dsp/dsp_kernels.hpp, src/phy/phy_kernels.hpp) and
// instantiated for ScalarBackend in the regular TUs and for
// `simd::VectorBackend` in the *_simd.cpp TUs.
//
// Runtime selection (common/simd.cpp): `use_vector_kernels()` is true
// when the CPU supports the compiled vector ISA and the escape hatch is
// off. `DVLC_FORCE_SCALAR=1` in the environment — or
// `set_force_scalar(true)` from tests — forces every dispatch site onto
// the scalar kernels; outputs are bit-identical either way (the
// differential suite in tests/phy pins this).
//
// Vector type groups:
//   u8v    native-width unsigned byte vector (kU8Lanes bytes)
//   row16  fixed 16-byte lane group (LUT row copies)
//   tbl16  a 16-entry byte table for nibble lookups (PSHUFB / TBL)
//   f64x4  fixed group of 4 doubles (lane-parallel IIR / correlation)
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#define DVLC_SIMD_HAVE_AVX2 1
#endif
#if defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#define DVLC_SIMD_HAVE_NEON 1
#endif

namespace densevlc::simd {

// --- Runtime backend selection (state lives in common/simd.cpp) ----------

/// True when vector dispatch is suppressed: DVLC_FORCE_SCALAR=1 in the
/// environment, or an explicit set_force_scalar(true).
bool force_scalar() noexcept;

/// Test/bench hook overriding the environment switch (both directions).
void set_force_scalar(bool on) noexcept;

/// True when the running CPU can execute the vector ISA the *_simd TUs
/// were compiled for (AVX2 on x86-64, always true on aarch64/NEON).
bool cpu_has_vector_support() noexcept;

/// The dispatch predicate every kernel call site uses.
bool use_vector_kernels() noexcept;

/// Name of the backend dispatch sites select right now: "avx2", "neon",
/// or "scalar" (when unsupported or forced).
const char* active_backend_name() noexcept;

// --- Scalar backend ------------------------------------------------------

struct ScalarBackend {
  static constexpr const char* kName = "scalar";
  static constexpr std::size_t kU8Lanes = 16;

  struct u8v {
    std::array<std::uint8_t, 16> b;
  };
  struct row16 {
    std::array<std::uint8_t, 16> b;
  };
  struct tbl16 {
    std::array<std::uint8_t, 16> t;
  };
  struct f64x4 {
    std::array<double, 4> d;
  };

  static u8v loadu(const std::uint8_t* p) {
    u8v v;
    std::memcpy(v.b.data(), p, 16);
    return v;
  }
  static void storeu(std::uint8_t* p, u8v v) { std::memcpy(p, v.b.data(), 16); }
  static u8v broadcast(std::uint8_t x) {
    u8v v;
    v.b.fill(x);
    return v;
  }
  static u8v xor_(u8v a, u8v b) {
    u8v r;
    for (std::size_t i = 0; i < 16; ++i) {
      r.b[i] = static_cast<std::uint8_t>(a.b[i] ^ b.b[i]);
    }
    return r;
  }
  static u8v and_(u8v a, u8v b) {
    u8v r;
    for (std::size_t i = 0; i < 16; ++i) {
      r.b[i] = static_cast<std::uint8_t>(a.b[i] & b.b[i]);
    }
    return r;
  }
  /// Per-byte logical shift right by 4 (high nibble, zero-extended).
  static u8v srl4(u8v a) {
    u8v r;
    for (std::size_t i = 0; i < 16; ++i) {
      r.b[i] = static_cast<std::uint8_t>(a.b[i] >> 4);
    }
    return r;
  }
  static tbl16 load_table(const std::uint8_t* t16) {
    tbl16 t;
    std::memcpy(t.t.data(), t16, 16);
    return t;
  }
  /// Table lookup; every index byte must be < 16.
  static u8v lookup(const tbl16& t, u8v idx) {
    u8v r;
    for (std::size_t i = 0; i < 16; ++i) r.b[i] = t.t[idx.b[i] & 0x0F];
    return r;
  }
  /// Bit i of the result is set iff byte i is nonzero.
  static std::uint32_t movemask_nonzero(u8v v) {
    std::uint32_t m = 0;
    for (std::size_t i = 0; i < 16; ++i) {
      if (v.b[i] != 0) m |= (1u << i);
    }
    return m;
  }

  static row16 load16(const std::uint8_t* p) {
    row16 r;
    std::memcpy(r.b.data(), p, 16);
    return r;
  }
  static void store16(std::uint8_t* p, row16 r) {
    std::memcpy(p, r.b.data(), 16);
  }

  static f64x4 load4(const double* p) {
    f64x4 v;
    std::memcpy(v.d.data(), p, 4 * sizeof(double));
    return v;
  }
  static void store4(double* p, f64x4 v) {
    std::memcpy(p, v.d.data(), 4 * sizeof(double));
  }
  static f64x4 broadcast4(double x) {
    f64x4 v;
    v.d.fill(x);
    return v;
  }
  static f64x4 add4(f64x4 a, f64x4 b) {
    f64x4 r;
    for (std::size_t i = 0; i < 4; ++i) r.d[i] = a.d[i] + b.d[i];
    return r;
  }
  static f64x4 sub4(f64x4 a, f64x4 b) {
    f64x4 r;
    for (std::size_t i = 0; i < 4; ++i) r.d[i] = a.d[i] - b.d[i];
    return r;
  }
  static f64x4 mul4(f64x4 a, f64x4 b) {
    f64x4 r;
    for (std::size_t i = 0; i < 4; ++i) r.d[i] = a.d[i] * b.d[i];
    return r;
  }
};

// --- AVX2 backend (only in TUs compiled with -mavx2) ---------------------

#if defined(DVLC_SIMD_HAVE_AVX2)

struct Avx2Backend {
  static constexpr const char* kName = "avx2";
  static constexpr std::size_t kU8Lanes = 32;

  using u8v = __m256i;
  using row16 = __m128i;
  using tbl16 = __m256i;  // 16-byte table broadcast to both 128-bit halves
  using f64x4 = __m256d;

  static u8v loadu(const std::uint8_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu(std::uint8_t* p, u8v v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static u8v broadcast(std::uint8_t x) {
    return _mm256_set1_epi8(static_cast<char>(x));
  }
  static u8v xor_(u8v a, u8v b) { return _mm256_xor_si256(a, b); }
  static u8v and_(u8v a, u8v b) { return _mm256_and_si256(a, b); }
  static u8v srl4(u8v a) {
    // No per-byte shift on AVX2: shift 16-bit lanes, mask cross-byte bleed.
    return _mm256_and_si256(_mm256_srli_epi16(a, 4),
                            _mm256_set1_epi8(0x0F));
  }
  static tbl16 load_table(const std::uint8_t* t16) {
    const __m128i t = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t16));
    return _mm256_broadcastsi128_si256(t);
  }
  static u8v lookup(const tbl16& t, u8v idx) {
    // PSHUFB within each 128-bit half; the table is replicated, so both
    // halves index the same 16 entries. Indices are < 16 (bit 7 clear).
    return _mm256_shuffle_epi8(t, idx);
  }
  static std::uint32_t movemask_nonzero(u8v v) {
    const __m256i eq0 = _mm256_cmpeq_epi8(v, _mm256_setzero_si256());
    return ~static_cast<std::uint32_t>(_mm256_movemask_epi8(eq0));
  }

  static row16 load16(const std::uint8_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store16(std::uint8_t* p, row16 r) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), r);
  }

  static f64x4 load4(const double* p) { return _mm256_loadu_pd(p); }
  static void store4(double* p, f64x4 v) { _mm256_storeu_pd(p, v); }
  static f64x4 broadcast4(double x) { return _mm256_set1_pd(x); }
  // Plain mul + add (no FMA): matches the scalar backend's rounding
  // exactly, which is what keeps the float kernels bit-identical.
  static f64x4 add4(f64x4 a, f64x4 b) { return _mm256_add_pd(a, b); }
  static f64x4 sub4(f64x4 a, f64x4 b) { return _mm256_sub_pd(a, b); }
  static f64x4 mul4(f64x4 a, f64x4 b) { return _mm256_mul_pd(a, b); }
};

#endif  // DVLC_SIMD_HAVE_AVX2

// --- NEON backend (aarch64) ----------------------------------------------

#if defined(DVLC_SIMD_HAVE_NEON)

struct NeonBackend {
  static constexpr const char* kName = "neon";
  static constexpr std::size_t kU8Lanes = 16;

  using u8v = uint8x16_t;
  using row16 = uint8x16_t;
  using tbl16 = uint8x16_t;
  struct f64x4 {
    float64x2_t lo;
    float64x2_t hi;
  };

  static u8v loadu(const std::uint8_t* p) { return vld1q_u8(p); }
  static void storeu(std::uint8_t* p, u8v v) { vst1q_u8(p, v); }
  static u8v broadcast(std::uint8_t x) { return vdupq_n_u8(x); }
  static u8v xor_(u8v a, u8v b) { return veorq_u8(a, b); }
  static u8v and_(u8v a, u8v b) { return vandq_u8(a, b); }
  static u8v srl4(u8v a) { return vshrq_n_u8(a, 4); }
  static tbl16 load_table(const std::uint8_t* t16) { return vld1q_u8(t16); }
  static u8v lookup(const tbl16& t, u8v idx) { return vqtbl1q_u8(t, idx); }
  static std::uint32_t movemask_nonzero(u8v v) {
    // 0xFF where nonzero, AND per-lane bit weights, horizontal add per
    // half (weights are disjoint, so add == or).
    static const std::uint8_t kWeights[16] = {1, 2, 4, 8, 16, 32, 64, 128,
                                              1, 2, 4, 8, 16, 32, 64, 128};
    const uint8x16_t mask = vtstq_u8(v, v);
    const uint8x16_t weighted = vandq_u8(mask, vld1q_u8(kWeights));
    const std::uint32_t lo = vaddv_u8(vget_low_u8(weighted));
    const std::uint32_t hi = vaddv_u8(vget_high_u8(weighted));
    return lo | (hi << 8);
  }

  static row16 load16(const std::uint8_t* p) { return vld1q_u8(p); }
  static void store16(std::uint8_t* p, row16 r) { vst1q_u8(p, r); }

  static f64x4 load4(const double* p) {
    return f64x4{vld1q_f64(p), vld1q_f64(p + 2)};
  }
  static void store4(double* p, f64x4 v) {
    vst1q_f64(p, v.lo);
    vst1q_f64(p + 2, v.hi);
  }
  static f64x4 broadcast4(double x) {
    return f64x4{vdupq_n_f64(x), vdupq_n_f64(x)};
  }
  static f64x4 add4(f64x4 a, f64x4 b) {
    return f64x4{vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
  }
  static f64x4 sub4(f64x4 a, f64x4 b) {
    return f64x4{vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
  }
  // vmulq, not vfmaq: keeps rounding identical to the scalar backend.
  static f64x4 mul4(f64x4 a, f64x4 b) {
    return f64x4{vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
  }
};

#endif  // DVLC_SIMD_HAVE_NEON

// --- The vector backend this TU compiles to ------------------------------

#if defined(DVLC_SIMD_HAVE_AVX2)
using VectorBackend = Avx2Backend;
#define DVLC_SIMD_HAS_VECTOR_BACKEND 1
#elif defined(DVLC_SIMD_HAVE_NEON)
using VectorBackend = NeonBackend;
#define DVLC_SIMD_HAS_VECTOR_BACKEND 1
#else
using VectorBackend = ScalarBackend;
#define DVLC_SIMD_HAS_VECTOR_BACKEND 0
#endif

}  // namespace densevlc::simd
