// Runtime backend selection for the SIMD wrapper (see common/simd.hpp).
//
// The decision is process-global so every dispatch site (Manchester,
// GF(256), correlator, biquad) flips together: either all kernels run the
// compiled vector backend or all run the scalar one. That keeps the
// differential story simple — one switch, two bit-identical universes.
#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>

namespace densevlc::simd {
namespace {

// -1 = no override (follow the environment), 0 = vector allowed,
// 1 = forced scalar.
std::atomic<int> g_force_override{-1};

bool env_force_scalar() {
  static const bool forced = [] {
    const char* e = std::getenv("DVLC_FORCE_SCALAR");
    return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
  }();
  return forced;
}

}  // namespace

bool force_scalar() noexcept {
  const int o = g_force_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return env_force_scalar();
}

void set_force_scalar(bool on) noexcept {
  g_force_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool cpu_has_vector_support() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  // The *_simd.cpp TUs are compiled with -mavx2 on x86; executing them on
  // a pre-AVX2 core would fault, so gate on the CPUID feature bit.
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
#elif defined(__aarch64__)
  return true;  // NEON is baseline on aarch64
#else
  return false;
#endif
}

bool use_vector_kernels() noexcept {
  return cpu_has_vector_support() && !force_scalar();
}

const char* active_backend_name() noexcept {
  if (!use_vector_kernels()) return "scalar";
#if defined(__x86_64__) || defined(__i386__)
  return "avx2";
#elif defined(__aarch64__)
  return "neon";
#else
  return "scalar";
#endif
}

}  // namespace densevlc::simd
