#include "common/event_queue.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace densevlc {

std::uint64_t Simulator::schedule_at(SimTime when, Callback cb) {
  DVLC_EXPECT(cb != nullptr, "scheduled callback must not be empty");
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id});
  callbacks_.emplace_back(id, std::move(cb));
  return id;
}

std::uint64_t Simulator::schedule_in(SimTime delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

Simulator::Callback* Simulator::find_callback(std::uint64_t id) {
  for (auto& [cb_id, cb] : callbacks_) {
    if (cb_id == id) return &cb;
  }
  return nullptr;
}

void Simulator::erase_callback(std::uint64_t id) {
  callbacks_.erase(
      std::remove_if(callbacks_.begin(), callbacks_.end(),
                     [id](const auto& p) { return p.first == id; }),
      callbacks_.end());
}

bool Simulator::cancel(std::uint64_t id) {
  if (find_callback(id) == nullptr) return false;
  erase_callback(id);
  ++cancelled_count_;  // its queue entry becomes a tombstone
  DVLC_ASSERT(cancelled_count_ <= queue_.size(),
              "more tombstones than queued events");
  return true;
}

std::size_t Simulator::run_until(SimTime limit) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= limit) {
    const Event ev = queue_.top();
    queue_.pop();
    Callback* cb = find_callback(ev.id);
    if (cb == nullptr) {
      // Cancelled tombstone.
      if (cancelled_count_ > 0) --cancelled_count_;
      continue;
    }
    Callback run = std::move(*cb);
    erase_callback(ev.id);
    now_ = ev.when;
    run();
    ++executed;
  }
  if (now_ < limit) now_ = limit;
  return executed;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (!queue_.empty() && executed < max_events) {
    const Event ev = queue_.top();
    queue_.pop();
    Callback* cb = find_callback(ev.id);
    if (cb == nullptr) {
      if (cancelled_count_ > 0) --cancelled_count_;
      continue;
    }
    Callback run = std::move(*cb);
    erase_callback(ev.id);
    now_ = ev.when;
    run();
    ++executed;
  }
  return executed;
}

}  // namespace densevlc
