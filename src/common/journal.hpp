// Durable append-only record journal.
//
// A million-instance Monte-Carlo campaign must survive the same failure
// the controller survives in miniature: dying mid-work without losing
// what it already finished. This module is the storage half of that
// contract. A *journal* is a flat file of length-prefixed, CRC32-framed
// records appended as work completes and fsync'd in batches; reading one
// back recovers the longest valid record prefix and drops exactly the
// corrupt or truncated suffix a crash can leave behind (a partially
// written frame, a torn length word, garbage past the last fsync). The
// writer can reopen an existing journal at its recovered length, so a
// resumed process continues the same file the dead one left.
//
// Record framing, all little-endian:
//
//   [u32 payload_size][u32 crc32(payload)][payload bytes]
//
// Payload contents are the caller's business (scenario/campaign.hpp
// defines the campaign records); the journal only guarantees that a
// record handed back by read_journal() is byte-identical to the record
// appended. write_file_atomic() is the companion primitive for
// *checkpoint* artifacts (JSON, SARIF): write-temp-then-rename, so an
// interrupted run never leaves a truncated file under the final name.
#pragma once

#include <cstdint>
#include <cstdio>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace densevlc::journal {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Appends length-prefixed CRC-framed records to a journal file and
/// fsyncs every `fsync_every` appends (and on flush()/close()). I/O
/// errors are sticky: once ok() is false the journal must be considered
/// incomplete on disk (recovery still salvages every durable record).
class JournalWriter {
 public:
  /// Sentinel for open(): keep the whole existing file.
  static constexpr std::uint64_t kKeepAll =
      std::numeric_limits<std::uint64_t>::max();

  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens `path` for appending, creating it when missing. When
  /// `keep_bytes` is not kKeepAll an existing file is first truncated to
  /// that length — the resume path passes the recovered valid prefix
  /// here so a corrupt tail is physically dropped before new records
  /// land after it. Returns nullopt when the file cannot be opened.
  [[nodiscard]] static std::optional<JournalWriter> open(
      const std::string& path, std::uint64_t keep_bytes = kKeepAll,
      std::size_t fsync_every = 32);

  /// Appends one framed record. Durable only after the next flush().
  [[nodiscard]] bool append(std::span<const std::uint8_t> payload);

  /// Flushes libc buffers and fsyncs the file descriptor.
  [[nodiscard]] bool flush();

  /// Flush + close. ok() keeps reporting the final health afterwards.
  void close();

  bool is_open() const { return file_ != nullptr; }
  /// False after any append/flush/truncate failure (sticky).
  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }
  std::size_t records_appended() const { return appended_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::size_t fsync_every_ = 32;
  std::size_t unsynced_ = 0;
  std::size_t appended_ = 0;
  bool ok_ = true;
};

/// Outcome of reading a journal back. `records` is the longest valid
/// record prefix; `valid_bytes` is its on-disk length (what a resuming
/// writer passes as keep_bytes) and `dropped_bytes` the corrupt or
/// truncated suffix that was discarded. Reading never fails on corrupt
/// input — a missing file is simply zero records with `missing` set.
struct JournalRecovery {
  std::vector<std::vector<std::uint8_t>> records;
  std::uint64_t valid_bytes = 0;
  std::uint64_t dropped_bytes = 0;
  bool missing = false;
};

/// Recovers every intact record of `path` (see JournalRecovery).
[[nodiscard]] JournalRecovery read_journal(const std::string& path);

/// Atomically replaces `path` with `contents`: the bytes go to a
/// temporary file in the same directory (write + fsync), which is then
/// renamed over the target. A crash at any instant leaves either the
/// old file or the new one, never a truncated hybrid.
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     const std::string& contents);

}  // namespace densevlc::journal
