#include "common/contracts.hpp"

#include <cstdio>
#include <cstdlib>

namespace densevlc::detail {

[[noreturn]] void contract_violation(const char* kind, const char* expr,
                                     const char* msg, const char* file,
                                     int line) noexcept {
  std::fprintf(stderr,
               "\n%s failed: %s\n  condition: %s\n  location:  %s:%d\n",
               kind, msg, expr, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace densevlc::detail
