// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the simulator (AWGN, clock jitter, packet
// loss, mobility, instance generation) draws from an Rng that is seeded
// explicitly. Benches seed from fixed constants so a given figure is
// reproduced bit-for-bit across runs.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace densevlc {

/// A seedable pseudo-random source wrapping std::mt19937_64.
///
/// The wrapper pins down the distributions used (so results do not change
/// across standard-library implementations of distribution algorithms is
/// NOT guaranteed by the C++ standard for std::normal_distribution; we
/// therefore implement gaussian() via Box-Muller on top of the raw engine,
/// which IS fully specified).
class Rng {
 public:
  /// Constructs with an explicit seed. Equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed) : seed_{seed}, engine_{seed} {}

  /// Constructs sub-stream `stream_id` of `seed`: shorthand for
  /// Rng{derive_stream_seed(seed, stream_id)}.
  Rng(std::uint64_t seed, std::uint64_t stream_id)
      : Rng{derive_stream_seed(seed, stream_id)} {}

  /// Mixes (seed, stream_id) into the seed of an independent sub-stream
  /// (SplitMix64 finalizer). Pure function: parallel workers can derive
  /// their streams without touching shared state, and stream i of a given
  /// seed is the same no matter which thread asks, in what order.
  static std::uint64_t derive_stream_seed(std::uint64_t seed,
                                          std::uint64_t stream_id);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate via Box-Muller (fully deterministic given the
  /// engine state; pairs are cached so consecutive calls cost one transform
  /// per two samples).
  double gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Bernoulli trial: true with probability p (p clamped to [0,1]).
  bool bernoulli(double p);

  /// Returns a fresh child RNG whose seed is derived from this stream.
  /// Used to give independent substreams to simulator components.
  /// Stateful: consumes two draws, so consecutive forks differ.
  Rng fork();

  /// Returns child stream `stream_id` WITHOUT consuming any state: the
  /// result depends only on this Rng's construction seed. This is the
  /// splitting primitive for deterministic parallelism — give item i the
  /// stream split(i) and the draws are reproducible at any thread count.
  Rng split(std::uint64_t stream_id) const {
    return Rng{derive_stream_seed(seed_, stream_id)};
  }

  /// The seed this stream was constructed with.
  std::uint64_t seed() const { return seed_; }

  /// Fisher-Yates shuffle of a vector, using this stream.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Access to the raw engine for interop with standard algorithms.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_ = 0;
  std::mt19937_64 engine_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace densevlc
