#include "common/thread_pool.hpp"

#include <cstdlib>
#include <memory>
#include <string>

namespace densevlc {
namespace {

/// True while this thread executes a chunk; reentrant run_chunks calls
/// then fall back to inline serial execution instead of deadlocking on
/// the (already busy) pool.
thread_local bool t_in_chunk = false;

/// Save/restore, not set/clear: the inline (reentrant) path of
/// run_chunks opens its own scope, and an unconditional reset would
/// mark the thread idle while it is still inside the outer chunk — the
/// next nested call would then enqueue on the busy pool and deadlock
/// against its own batch.
struct ChunkScope {
  ChunkScope() : prev_{t_in_chunk} { t_in_chunk = true; }
  ~ChunkScope() { t_in_chunk = prev_; }

 private:
  bool prev_;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_{num_threads == 0 ? 1 : num_threads} {
  workers_.reserve(num_threads_ - 1);
  for (std::size_t t = 0; t + 1 < num_threads_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{mu_};
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::drain_current_job(std::unique_lock<std::mutex>& lock) {
  while (job_next_ < job_total_) {
    const std::size_t c = job_next_++;
    const auto* fn = job_;
    lock.unlock();
    {
      ChunkScope scope;
      try {
        (*fn)(c);
      } catch (...) {
        lock.lock();
        if (!job_error_) job_error_ = std::current_exception();
        --job_unfinished_;
        if (job_unfinished_ == 0) cv_done_.notify_all();
        continue;
      }
    }
    lock.lock();
    --job_unfinished_;
    if (job_unfinished_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::run_chunks(std::size_t num_chunks,
                            const std::function<void(std::size_t)>& chunk_fn) {
  if (num_chunks == 0) return;
  if (num_threads_ <= 1 || num_chunks == 1 || t_in_chunk) {
    ChunkScope scope;
    for (std::size_t c = 0; c < num_chunks; ++c) chunk_fn(c);
    return;
  }

  std::unique_lock<std::mutex> lock{mu_};
  // Serialize concurrent top-level batches.
  cv_done_.wait(lock, [this] { return job_ == nullptr; });
  job_ = &chunk_fn;
  job_total_ = num_chunks;
  job_next_ = 0;
  job_unfinished_ = num_chunks;
  job_error_ = nullptr;
  cv_work_.notify_all();

  drain_current_job(lock);
  cv_done_.wait(lock, [this] { return job_unfinished_ == 0; });

  const std::exception_ptr error = job_error_;
  job_ = nullptr;
  job_error_ = nullptr;
  cv_done_.notify_all();  // wake callers queued on job_ == nullptr
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock{mu_};
  for (;;) {
    cv_work_.wait(lock, [this] {
      return stop_ || (job_ != nullptr && job_next_ < job_total_);
    });
    if (stop_) return;
    drain_current_job(lock);
  }
}

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

namespace {

std::size_t default_threads() {
  if (const char* env = std::getenv("DENSEVLC_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return hardware_threads();
}

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;  // guarded by g_pool_mu

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock{g_pool_mu};
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_threads());
  return *g_pool;
}

void set_global_threads(std::size_t num_threads) {
  std::lock_guard<std::mutex> lock{g_pool_mu};
  g_pool = std::make_unique<ThreadPool>(
      num_threads == 0 ? default_threads() : num_threads);
}

std::size_t global_threads() { return global_pool().num_threads(); }

}  // namespace densevlc
