#include "common/rng.hpp"

#include <cmath>

#include "common/units.hpp"

namespace densevlc {

double Rng::uniform() {
  // 53 random bits -> double in [0, 1), the standard bit-exact recipe.
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  // Rejection sampling for an unbiased integer in [lo, hi].
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<std::int64_t>(engine_());
  }
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t draw;
  do {
    draw = engine_();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller: two uniforms -> two independent standard normals.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * kPi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() {
  // Mix two draws so sibling forks do not share prefixes.
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Rng{a ^ (b * 0x9E3779B97F4A7C15ULL)};
}

std::uint64_t Rng::derive_stream_seed(std::uint64_t seed,
                                      std::uint64_t stream_id) {
  // SplitMix64 finalizer over seed advanced by (stream_id + 1) strides of
  // the golden-ratio increment; the +1 keeps stream 0 distinct from the
  // parent seed itself.
  std::uint64_t z = seed + (stream_id + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace densevlc
