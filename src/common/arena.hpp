// Reusable buffer arena for the zero-allocation sample path.
//
// The PHY hot loops (files marked `// DVLC_HOT`) must not touch the heap
// in steady state: every frame reuses buffers whose capacity was
// established during the first (warm-up) frame. The idiom throughout the
// fast paths is a caller-owned scratch struct of named vectors, each
// managed through the helpers below — `arena_resize` grows capacity only
// until the high-water mark is reached, after which a resize is a plain
// size bookkeeping update and the hot loop performs zero allocations.
//
// SDR stacks keep their sample paths allocation-free the same way
// (pre-sized sample buffers reused across slots); this header is the
// repo-wide home of that contract so the `hot-loop-alloc` lint rule can
// point offenders at one explanation.
#pragma once

#include <cstddef>
#include <vector>

namespace densevlc {

/// Resizes `buf` to exactly `n` elements while keeping its capacity.
/// Steady state (capacity >= n): no allocation, newly exposed elements
/// keep their previous values and must be overwritten by the caller.
/// Warm-up (capacity < n): one geometric growth, amortized away.
template <class T>
inline std::vector<T>& arena_resize(std::vector<T>& buf, std::size_t n) {
  buf.resize(n);
  return buf;
}

/// Empties `buf` without releasing storage, for append-style refills that
/// stay within the warmed-up capacity.
template <class T>
inline std::vector<T>& arena_clear(std::vector<T>& buf) {
  buf.clear();
  return buf;
}

/// True once `buf` can hold `n` elements without allocating — the
/// steady-state condition the allocation-count assertions rely on.
template <class T>
inline bool arena_warm(const std::vector<T>& buf, std::size_t n) {
  return buf.capacity() >= n;
}

}  // namespace densevlc
