// Reusable buffer arena for the zero-allocation sample path.
//
// The PHY hot loops (files marked `// DVLC_HOT`) must not touch the heap
// in steady state: every frame reuses buffers whose capacity was
// established during the first (warm-up) frame. The idiom throughout the
// fast paths is a caller-owned scratch struct of named vectors, each
// managed through the helpers below — `arena_resize` grows capacity only
// until the high-water mark is reached, after which a resize is a plain
// size bookkeeping update and the hot loop performs zero allocations.
//
// SDR stacks keep their sample paths allocation-free the same way
// (pre-sized sample buffers reused across slots); this header is the
// repo-wide home of that contract so the `hot-loop-alloc` lint rule can
// point offenders at one explanation.
//
// SIMD alignment: scratch buffers consumed by the vector kernels
// (common/simd.hpp backends) use `AlignedVector<T>`, whose allocator
// hands out 32-byte-aligned storage — wide enough for AVX2's 256-bit
// loads and a multiple of NEON's 16-byte lanes — so warmed arena buffers
// never force the unaligned-load penalty path. The arena helpers are
// allocator-generic and work on both plain and aligned vectors.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace densevlc {

/// Alignment guarantee (bytes) for `AlignedVector` storage: one full
/// AVX2 vector, and a multiple of every narrower backend's lane width.
inline constexpr std::size_t kArenaAlignment = 32;

/// Minimal aligned allocator for arena scratch buffers. Every allocation
/// is aligned to `kArenaAlignment` bytes via the C++17 aligned operator
/// new, so vector kernels can assume aligned bases for warmed buffers.
template <class T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    return static_cast<T*>(
        ::operator new(bytes, std::align_val_t{kArenaAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kArenaAlignment});
  }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// A std::vector whose storage is always `kArenaAlignment`-aligned.
template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Resizes `buf` to exactly `n` elements while keeping its capacity.
/// Steady state (capacity >= n): no allocation; newly exposed elements
/// are value-initialized and must be overwritten by the caller.
/// Warm-up (capacity < n): one geometric growth, amortized away.
template <class T, class A>
inline std::vector<T, A>& arena_resize(std::vector<T, A>& buf,
                                       std::size_t n) {
  buf.resize(n);
  return buf;
}

/// Empties `buf` without releasing storage, for append-style refills that
/// stay within the warmed-up capacity.
template <class T, class A>
inline std::vector<T, A>& arena_clear(std::vector<T, A>& buf) {
  buf.clear();
  return buf;
}

/// True once `buf` can hold `n` elements without allocating — the
/// steady-state condition the allocation-count assertions rely on.
template <class T, class A>
inline bool arena_warm(const std::vector<T, A>& buf, std::size_t n) {
  return buf.capacity() >= n;
}

}  // namespace densevlc
