#include "common/pgm.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <string>

namespace densevlc {

std::vector<std::uint8_t> to_pgm(const ScalarField& field, double lo,
                                 double hi) {
  std::vector<std::uint8_t> out;
  if (field.width == 0 || field.height == 0 ||
      field.values.size() != field.width * field.height) {
    return out;
  }
  if (lo >= hi) {
    lo = *std::min_element(field.values.begin(), field.values.end());
    hi = *std::max_element(field.values.begin(), field.values.end());
    if (lo >= hi) hi = lo + 1.0;  // flat field: render mid-gray-ish
  }

  const std::string header = "P5\n" + std::to_string(field.width) + " " +
                             std::to_string(field.height) + "\n255\n";
  out.assign(header.begin(), header.end());
  out.reserve(out.size() + field.values.size());
  for (double v : field.values) {
    const double norm = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
    out.push_back(static_cast<std::uint8_t>(std::lround(norm * 255.0)));
  }
  return out;
}

bool write_pgm(const ScalarField& field, const std::string& path, double lo,
               double hi) {
  const auto bytes = to_pgm(field, lo, hi);
  if (bytes.empty()) return false;
  std::ofstream out{path, std::ios::binary};
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

}  // namespace densevlc
