// Grayscale PGM image export for spatial maps (illuminance, coverage).
//
// PGM is the simplest portable raster format: any image viewer opens it
// and it needs no dependencies. Values are normalized to [0, 255] over
// the data range (or an explicit range for comparable scales across
// images).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace densevlc {

/// A row-major scalar field destined for an image.
struct ScalarField {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<double> values;  ///< size == width * height, row-major;
                               ///< row 0 renders at the image top
};

/// Renders the field into binary PGM (P5) bytes, mapping [lo, hi] to
/// [0, 255] with clipping. Pass lo >= hi to auto-range over the data.
[[nodiscard]] std::vector<std::uint8_t> to_pgm(const ScalarField& field,
                                               double lo = 0.0,
                                               double hi = 0.0);

/// Writes the PGM to a file. Returns false on I/O failure.
[[nodiscard]] bool write_pgm(const ScalarField& field, const std::string& path,
                             double lo = 0.0, double hi = 0.0);

}  // namespace densevlc
