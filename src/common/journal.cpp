#include "common/journal.hpp"

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define DVLC_JOURNAL_HAS_FSYNC 1
#endif

namespace densevlc::journal {
namespace {

namespace fs = std::filesystem;

/// Frame header: payload size + payload CRC, both little-endian u32.
constexpr std::size_t kFrameHeaderBytes = 8;

/// A length word above this is treated as corruption, not a record: no
/// legitimate campaign record is remotely this large, and trusting a
/// garbage length would make recovery swallow the rest of the file.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 26;  // 64 MiB

void put_u32le(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v & 0xffU);
  out[1] = static_cast<std::uint8_t>((v >> 8) & 0xffU);
  out[2] = static_cast<std::uint8_t>((v >> 16) & 0xffU);
  out[3] = static_cast<std::uint8_t>((v >> 24) & 0xffU);
}

std::uint32_t get_u32le(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

bool sync_to_disk(std::FILE* file) {
  if (std::fflush(file) != 0) return false;
#ifdef DVLC_JOURNAL_HAS_FSYNC
  return ::fsync(fileno(file)) == 0;
#else
  return true;
#endif
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::uint8_t b : bytes) {
    crc = table[(crc ^ b) & 0xffU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

JournalWriter::~JournalWriter() { close(); }

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : file_{std::exchange(other.file_, nullptr)},
      path_{std::move(other.path_)},
      fsync_every_{other.fsync_every_},
      unsynced_{other.unsynced_},
      appended_{other.appended_},
      ok_{other.ok_} {}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    close();
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
    fsync_every_ = other.fsync_every_;
    unsynced_ = other.unsynced_;
    appended_ = other.appended_;
    ok_ = other.ok_;
  }
  return *this;
}

std::optional<JournalWriter> JournalWriter::open(const std::string& path,
                                                std::uint64_t keep_bytes,
                                                std::size_t fsync_every) {
  if (keep_bytes != kKeepAll) {
    std::error_code ec;
    const std::uint64_t size = fs::exists(path, ec)
                                   ? static_cast<std::uint64_t>(
                                         fs::file_size(path, ec))
                                   : 0;
    if (!ec && size > keep_bytes) {
      fs::resize_file(path, keep_bytes, ec);
      if (ec) return std::nullopt;
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) return std::nullopt;
  JournalWriter writer;
  writer.file_ = file;
  writer.path_ = path;
  writer.fsync_every_ = fsync_every == 0 ? 1 : fsync_every;
  return writer;
}

bool JournalWriter::append(std::span<const std::uint8_t> payload) {
  if (file_ == nullptr || payload.size() > kMaxPayloadBytes) {
    ok_ = false;
    return false;
  }
  std::uint8_t header[kFrameHeaderBytes];
  put_u32le(header, static_cast<std::uint32_t>(payload.size()));
  put_u32le(header + 4, crc32(payload));
  if (std::fwrite(header, 1, kFrameHeaderBytes, file_) != kFrameHeaderBytes) {
    ok_ = false;
    return false;
  }
  if (!payload.empty() &&
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    ok_ = false;
    return false;
  }
  ++appended_;
  if (++unsynced_ >= fsync_every_) return flush();
  return true;
}

bool JournalWriter::flush() {
  if (file_ == nullptr) return ok_;
  if (!sync_to_disk(file_)) {
    ok_ = false;
    return false;
  }
  unsynced_ = 0;
  return true;
}

void JournalWriter::close() {
  if (file_ == nullptr) return;
  if (!flush()) ok_ = false;
  if (std::fclose(file_) != 0) ok_ = false;
  file_ = nullptr;
}

JournalRecovery read_journal(const std::string& path) {
  JournalRecovery recovery;
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    recovery.missing = true;
    return recovery;
  }
  std::string bytes{std::istreambuf_iterator<char>{in},
                    std::istreambuf_iterator<char>{}};
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  const std::uint64_t total = bytes.size();

  std::uint64_t at = 0;
  while (at + kFrameHeaderBytes <= total) {
    const std::uint32_t size = get_u32le(data + at);
    const std::uint32_t crc = get_u32le(data + at + 4);
    if (size > kMaxPayloadBytes) break;                      // garbage length
    if (at + kFrameHeaderBytes + size > total) break;        // torn payload
    std::span<const std::uint8_t> payload{data + at + kFrameHeaderBytes,
                                          size};
    if (crc32(payload) != crc) break;                        // bit rot / tear
    recovery.records.emplace_back(payload.begin(), payload.end());
    at += kFrameHeaderBytes + size;
  }
  recovery.valid_bytes = at;
  recovery.dropped_bytes = total - at;
  return recovery;
}

bool write_file_atomic(const std::string& path, const std::string& contents) {
#ifdef DVLC_JOURNAL_HAS_FSYNC
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
#else
  const std::string tmp = path + ".tmp";
#endif
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return false;
  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), file) ==
                contents.size();
  ok = sync_to_disk(file) && ok;
  ok = (std::fclose(file) == 0) && ok;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) (void)std::remove(tmp.c_str());
  return ok;
}

}  // namespace densevlc::journal
