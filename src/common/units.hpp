// Physical constants and unit helpers used across DenseVLC.
//
// Convention: SI base units everywhere unless a name says otherwise —
// meters, seconds, amperes, watts, hertz. Illuminance is in lux,
// luminous flux in lumen. Currents that the paper quotes in mA are
// stored in amperes; helper literals below make call sites readable.
#pragma once

#include "common/quantity.hpp"

namespace densevlc {

/// Mathematical constant pi (double precision).
inline constexpr double kPi = 3.14159265358979323846;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Thermal voltage kT/q at T = 300 K [V]. Used by the LED Shockley model.
// DVLC_LINT_WAIVE(units): physics constant, unit documented above
inline constexpr double kThermalVoltage300K = 0.025852;

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299792458.0;

/// Luminous efficacy of the photopic peak (555 nm) [lm/W]. Used to convert
/// radiant flux of a white LED into luminous flux with a spectral factor.
// DVLC_LINT_WAIVE(units): physics constant, unit documented above
inline constexpr double kLuminousEfficacyPeak = 683.0;

/// Typical luminous efficacy of radiation for a cool-white phosphor LED
/// [lm/W of optical power]. CREE XT-E class emitters land near this value.
inline constexpr LumensPerWatt kWhiteLedEfficacy{300.0};

namespace units {

/// Converts degrees to radians.
constexpr double deg_to_rad(double deg) { return deg * kPi / 180.0; }

/// Converts radians to degrees.
constexpr double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

/// Converts milliamperes to amperes.
constexpr double mA(double milliamps) { return milliamps * 1e-3; }

/// Converts amperes to milliamperes (for display).
constexpr double to_mA(double amps) { return amps * 1e3; }

/// Converts milliwatts to watts.
constexpr double mW(double milliwatts) { return milliwatts * 1e-3; }

/// Converts watts to milliwatts (for display).
constexpr double to_mW(double watts) { return watts * 1e3; }

/// Converts megahertz to hertz.
constexpr double MHz(double megahertz) { return megahertz * 1e6; }

/// Converts kilohertz to hertz.
constexpr double kHz(double kilohertz) { return kilohertz * 1e3; }

/// Converts square millimeters to square meters.
constexpr double mm2(double square_mm) { return square_mm * 1e-6; }

/// Converts microseconds to seconds.
constexpr double us(double microseconds) { return microseconds * 1e-6; }

/// Converts seconds to microseconds (for display).
constexpr double to_us(double seconds) { return seconds * 1e6; }

// Typed overloads: the display-side converters accept the Quantity alias
// directly so call sites never unwrap just to format a number.

/// Converts a typed current to milliamperes (for display).
constexpr double to_mA(Amperes amps) { return amps.value() * 1e3; }

/// Converts a typed power to milliwatts (for display).
constexpr double to_mW(Watts watts) { return watts.value() * 1e3; }

/// Converts a typed duration to microseconds (for display).
constexpr double to_us(Seconds seconds) { return seconds.value() * 1e6; }

/// Converts a typed throughput to Mbit/s (for display).
constexpr double to_Mbps(BitsPerSecond bps) { return bps.value() * 1e-6; }

}  // namespace units
}  // namespace densevlc
