// Descriptive statistics used by the evaluation harness.
//
// The paper reports means with 95% confidence intervals (Fig. 8), medians
// (Table 4, Fig. 12), empirical CDFs (Fig. 10) and histograms (Fig. 11).
// These helpers compute exactly those summaries from sample vectors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace densevlc::stats {

/// Arithmetic mean. Returns 0 for an empty span.
double mean(std::span<const double> samples);

/// Unbiased sample variance (n-1 denominator). Returns 0 for n < 2.
double variance(std::span<const double> samples);

/// Sample standard deviation.
double stddev(std::span<const double> samples);

/// Median (average of middle pair for even n). Returns 0 for empty input.
double median(std::span<const double> samples);

/// p-quantile in [0,1] by linear interpolation between order statistics
/// (type-7, the numpy/Matlab default). Returns 0 for empty input.
double quantile(std::span<const double> samples, double p);

/// Half-width of the normal-approximation 95% confidence interval of the
/// mean: 1.96 * s / sqrt(n). Returns 0 for n < 2.
double ci95_halfwidth(std::span<const double> samples);

/// Jain's fairness index (sum x)^2 / (n * sum x^2) in (0, 1]; 1 is a
/// perfectly even split. Returns 0 for empty or all-zero input.
double jain_index(std::span<const double> samples);

/// Minimum value; 0 for empty input.
double min(std::span<const double> samples);

/// Maximum value; 0 for empty input.
double max(std::span<const double> samples);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;  ///< sample value (x axis)
  double cdf = 0.0;    ///< fraction of samples <= value (y axis)
};

/// Empirical CDF: sorted sample values paired with cumulative fractions
/// i/n. Ties collapse to the highest fraction.
std::vector<CdfPoint> empirical_cdf(std::span<const double> samples);

/// A histogram over equal-width bins spanning [lo, hi].
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  double bin_width = 0.0;
  std::vector<std::size_t> counts;  ///< one entry per bin
  std::size_t total = 0;            ///< number of binned samples

  /// Center of bin i (for plotting).
  double bin_center(std::size_t i) const {
    return lo + (static_cast<double>(i) + 0.5) * bin_width;
  }
  /// Fraction of samples in bin i (probability, as Fig. 11 plots).
  double probability(std::size_t i) const {
    return total == 0 ? 0.0
                      : static_cast<double>(counts[i]) /
                            static_cast<double>(total);
  }
};

/// Builds a histogram with `bins` equal-width bins over [lo, hi].
/// Samples outside the range clamp into the edge bins.
Histogram histogram(std::span<const double> samples, double lo, double hi,
                    std::size_t bins);

/// Summary bundle convenient for table rows.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  double ci95 = 0.0;  ///< 95% CI half-width of the mean
};

/// Computes all Summary fields in one pass over a copy of the samples.
Summary summarize(std::span<const double> samples);

}  // namespace densevlc::stats
