// Discrete-event simulation engine.
//
// A minimal, deterministic event loop: callbacks are executed in
// timestamp order, ties broken by scheduling order (FIFO), which makes
// runs bit-reproducible. The MAC protocol, the network models and the
// mobility updates all run on this engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/simtime.hpp"

namespace densevlc {

/// The event-driven simulator clock and dispatcher.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `cb` to run at absolute time `when`. Scheduling in the past
  /// clamps to now() (executes next). Returns an id usable with cancel().
  std::uint64_t schedule_at(SimTime when, Callback cb);

  /// Schedules `cb` to run `delay` after now().
  std::uint64_t schedule_in(SimTime delay, Callback cb);

  /// Cancels a pending event. Cancelling an already-run or unknown id is
  /// a no-op. Returns true if the event was pending.
  bool cancel(std::uint64_t id);

  /// Runs events until the queue empties or `limit` is exceeded.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime limit);

  /// Runs until the queue is exhausted (use with care — event chains that
  /// reschedule themselves never finish). Returns events executed.
  std::size_t run_all(std::size_t max_events = 10'000'000);

  /// Number of pending events.
  std::size_t pending() const { return queue_.size() - cancelled_count_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Callbacks parked by id; erased on execution or cancel.
  std::vector<std::pair<std::uint64_t, Callback>> callbacks_;
  std::size_t cancelled_count_ = 0;

  Callback* find_callback(std::uint64_t id);
  void erase_callback(std::uint64_t id);
};

}  // namespace densevlc
