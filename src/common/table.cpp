#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace densevlc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_{std::move(headers)} {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_numeric_row(const std::vector<double>& values,
                                   int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ')
         << '|';
    }
    os << '\n';
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void TablePrinter::print_csv(std::ostream& os, const std::string& tag) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    os << "csv," << tag;
    for (const auto& cell : cells) os << ',' << cell;
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string fmt_si(double value, int precision) {
  const double mag = std::fabs(value);
  const char* suffix = "";
  double scaled = value;
  if (mag >= 1e9) {
    scaled = value / 1e9;
    suffix = "G";
  } else if (mag >= 1e6) {
    scaled = value / 1e6;
    suffix = "M";
  } else if (mag >= 1e3) {
    scaled = value / 1e3;
    suffix = "k";
  } else if (mag > 0.0 && mag < 1e-6) {
    scaled = value * 1e9;
    suffix = "n";
  } else if (mag > 0.0 && mag < 1e-3) {
    scaled = value * 1e6;
    suffix = "u";
  } else if (mag > 0.0 && mag < 1.0) {
    scaled = value * 1e3;
    suffix = "m";
  }
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << scaled << suffix;
  return oss.str();
}

}  // namespace densevlc
