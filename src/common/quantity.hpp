// Compile-time dimensional safety: Quantity<Dim> strong types.
//
// DenseVLC's pipeline is unit-laden physics — Lambertian gains, swing
// currents in amperes, communication power budgets in watts, illuminance
// in lux, throughput in bit/s. Sec. 3's P_C,tot = sum r * (Isw/2)^2 mixes
// A, ohm and W in one line; a transposed argument used to be a runtime
// convention violation at best. This header turns unit errors into
// compile errors:
//
//   Watts p = Amperes{0.45} * Amperes{0.45} * Ohms{0.2188};  // ok
//   Watts q = Amperes{0.45} * Ohms{0.2188};                  // error: that's Volts
//   double d = p;                                            // error: use .value()
//
// Dimensions are an integer exponent pack over six base axes chosen for
// this codebase (SI length/mass/time/current, plus luminous flux and data
// bits as independent axes so lux and bit/s get their own algebra):
//
//   axis      unit     carried by
//   length    m        Meters, SquareMeters, Lux (m^-2 factor)
//   mass      kg       Watts, Joules, Volts, Ohms (derived SI)
//   time      s        Seconds, Hertz, BitsPerSecond, Watts, ...
//   current   A        Amperes, SquareAmperes, Volts, Ohms
//   luminous  lm       Lumens, Lux, LumensPerWatt
//   data      bit      Bits, BitsPerSecond
//
// Products and quotients derive dimensions automatically (A * ohm = V,
// A^2 * ohm = W, lx * m^2 = lm, bit/s / Hz = bit); a fully cancelled
// dimension collapses to plain double, so ratios read naturally. The
// wrapper holds a single double with every operation constexpr-inline:
// zero overhead at -O2 (bench/micro_runtime --quick guards this).
//
// The only escape hatch is .value(); bulk storage (std::vector<double>
// matrices) stays raw by design and re-enters the typed world at the
// scalar API boundary.
#pragma once

#include <cmath>
#include <type_traits>

namespace densevlc {

/// Exponent pack of one dimension: meters^L kg^M s^T A^I lm^J bit^D.
template <int L, int M, int T, int I, int J, int D>
struct Dim {
  static constexpr int length = L;
  static constexpr int mass = M;
  static constexpr int time = T;
  static constexpr int current = I;
  static constexpr int luminous = J;
  static constexpr int data = D;
};

using Dimensionless = Dim<0, 0, 0, 0, 0, 0>;

template <class A, class B>
using DimMultiply = Dim<A::length + B::length, A::mass + B::mass,
                        A::time + B::time, A::current + B::current,
                        A::luminous + B::luminous, A::data + B::data>;

template <class A, class B>
using DimDivide = Dim<A::length - B::length, A::mass - B::mass,
                      A::time - B::time, A::current - B::current,
                      A::luminous - B::luminous, A::data - B::data>;

template <class A>
using DimSqrt = Dim<A::length / 2, A::mass / 2, A::time / 2, A::current / 2,
                    A::luminous / 2, A::data / 2>;

template <class A>
inline constexpr bool kDimIsDimensionless =
    A::length == 0 && A::mass == 0 && A::time == 0 && A::current == 0 &&
    A::luminous == 0 && A::data == 0;

template <class A>
inline constexpr bool kDimHasEvenExponents =
    A::length % 2 == 0 && A::mass % 2 == 0 && A::time % 2 == 0 &&
    A::current % 2 == 0 && A::luminous % 2 == 0 && A::data % 2 == 0;

/// A double tagged with a dimension. Construction from raw double is
/// explicit; reading the raw value is explicit (.value()). Same-dimension
/// sums and comparisons work directly; products/quotients derive the
/// result dimension at compile time.
template <class DimT>
class Quantity {
 public:
  using dimension = DimT;

  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_{v} {}

  /// The raw magnitude in coherent SI-style base units (the only way out
  /// of the typed world; grep-able by the invariant linter).
  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr Quantity operator-() const { return Quantity{-v_}; }
  constexpr Quantity operator+() const { return *this; }

  constexpr Quantity& operator+=(Quantity o) { v_ += o.v_; return *this; }
  constexpr Quantity& operator-=(Quantity o) { v_ -= o.v_; return *this; }
  constexpr Quantity& operator*=(double s) { v_ *= s; return *this; }
  constexpr Quantity& operator/=(double s) { v_ /= s; return *this; }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.v_ + b.v_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.v_ - b.v_};
  }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity{a.v_ * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity{s * a.v_};
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity{a.v_ / s};
  }

  friend constexpr bool operator==(Quantity a, Quantity b) {
    return a.v_ == b.v_;
  }
  friend constexpr bool operator!=(Quantity a, Quantity b) {
    return a.v_ != b.v_;
  }
  friend constexpr bool operator<(Quantity a, Quantity b) {
    return a.v_ < b.v_;
  }
  friend constexpr bool operator<=(Quantity a, Quantity b) {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>(Quantity a, Quantity b) {
    return a.v_ > b.v_;
  }
  friend constexpr bool operator>=(Quantity a, Quantity b) {
    return a.v_ >= b.v_;
  }

 private:
  double v_ = 0.0;
};

namespace detail {

// A product/quotient whose dimension fully cancels collapses to double so
// ratios (efficiencies, gains, relative errors) read as plain numbers.
template <class DimT>
constexpr auto make_quantity(double v) {
  if constexpr (kDimIsDimensionless<DimT>) {
    return v;
  } else {
    return Quantity<DimT>{v};
  }
}

}  // namespace detail

template <class DA, class DB>
constexpr auto operator*(Quantity<DA> a, Quantity<DB> b) {
  return detail::make_quantity<DimMultiply<DA, DB>>(a.value() * b.value());
}

template <class DA, class DB>
constexpr auto operator/(Quantity<DA> a, Quantity<DB> b) {
  return detail::make_quantity<DimDivide<DA, DB>>(a.value() / b.value());
}

template <class DA>
constexpr auto operator/(double s, Quantity<DA> a) {
  return detail::make_quantity<DimDivide<Dimensionless, DA>>(s / a.value());
}

/// sqrt of a quantity with even exponents (e.g. sqrt(A^2) = A — how the
/// front-end turns integrated noise PSD into a current sigma).
template <class DimT>
Quantity<DimSqrt<DimT>> sqrt(Quantity<DimT> q) {
  static_assert(kDimHasEvenExponents<DimT>,
                "sqrt of a quantity whose dimension has odd exponents is "
                "not representable");
  return Quantity<DimSqrt<DimT>>{std::sqrt(q.value())};
}

/// |q| with the same dimension.
template <class DimT>
Quantity<DimT> abs(Quantity<DimT> q) {
  return Quantity<DimT>{std::fabs(q.value())};
}

// ---------------------------------------------------------------------------
// Typed aliases for the quantities DenseVLC actually moves around.
// ---------------------------------------------------------------------------

using Meters = Quantity<Dim<1, 0, 0, 0, 0, 0>>;
using SquareMeters = Quantity<Dim<2, 0, 0, 0, 0, 0>>;
using Seconds = Quantity<Dim<0, 0, 1, 0, 0, 0>>;
using Hertz = Quantity<Dim<0, 0, -1, 0, 0, 0>>;
using MetersPerSecond = Quantity<Dim<1, 0, -1, 0, 0, 0>>;
using Amperes = Quantity<Dim<0, 0, 0, 1, 0, 0>>;
using SquareAmperes = Quantity<Dim<0, 0, 0, 2, 0, 0>>;
using Watts = Quantity<Dim<2, 1, -3, 0, 0, 0>>;
using Joules = Quantity<Dim<2, 1, -2, 0, 0, 0>>;
using Volts = Quantity<Dim<2, 1, -3, -1, 0, 0>>;
using Ohms = Quantity<Dim<2, 1, -3, -2, 0, 0>>;
using Lumens = Quantity<Dim<0, 0, 0, 0, 1, 0>>;
using Lux = Quantity<Dim<-2, 0, 0, 0, 1, 0>>;
using LumensPerWatt = Quantity<Dim<-2, -1, 3, 0, 1, 0>>;
using AmperesPerWatt = Quantity<Dim<-2, -1, 3, 1, 0, 0>>;
using Bits = Quantity<Dim<0, 0, 0, 0, 0, 1>>;
using BitsPerSecond = Quantity<Dim<0, 0, -1, 0, 0, 1>>;
/// Single-sided current-noise power spectral density N0 [A^2/Hz] = A^2 s.
using AmpsSquaredPerHertz = Quantity<Dim<0, 0, 1, 2, 0, 0>>;

// Consistency checks of the derivation algebra (paper Sec. 3.4 identities).
static_assert(std::is_same_v<decltype(Amperes{} * Ohms{}), Volts>,
              "A * ohm must be V");
static_assert(std::is_same_v<decltype(Amperes{} * Amperes{} * Ohms{}), Watts>,
              "A^2 * ohm must be W (Eq. 10: P_C = r * (Isw/2)^2)");
static_assert(std::is_same_v<decltype(Volts{} * Amperes{}), Watts>,
              "V * A must be W");
static_assert(std::is_same_v<decltype(Watts{} * Seconds{}), Joules>,
              "W * s must be J");
static_assert(std::is_same_v<decltype(Lux{} * SquareMeters{}), Lumens>,
              "lx * m^2 must be lm");
static_assert(std::is_same_v<decltype(Watts{} * LumensPerWatt{}), Lumens>,
              "W * (lm/W) must be lm");
static_assert(std::is_same_v<decltype(Bits{} / Seconds{}), BitsPerSecond>,
              "bit / s must be bit/s");
static_assert(std::is_same_v<decltype(AmpsSquaredPerHertz{} * Hertz{}),
                             SquareAmperes>,
              "N0 * bandwidth must be A^2");
static_assert(std::is_same_v<decltype(Watts{} / Watts{}), double>,
              "fully cancelled dimensions collapse to double");

// ---------------------------------------------------------------------------
// User-defined literals: 36.0_mA, 2.0_W, 1.0_MHz, 500.0_lx, ...
// ---------------------------------------------------------------------------

inline namespace literals {

constexpr Meters operator""_m(long double v) { return Meters{static_cast<double>(v)}; }
constexpr Meters operator""_m(unsigned long long v) { return Meters{static_cast<double>(v)}; }
constexpr Meters operator""_mm(long double v) { return Meters{static_cast<double>(v) * 1e-3}; }
constexpr Meters operator""_cm(long double v) { return Meters{static_cast<double>(v) * 1e-2}; }
constexpr SquareMeters operator""_m2(long double v) { return SquareMeters{static_cast<double>(v)}; }
constexpr SquareMeters operator""_mm2(long double v) { return SquareMeters{static_cast<double>(v) * 1e-6}; }
constexpr Seconds operator""_s(long double v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_s(unsigned long long v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_ms(long double v) { return Seconds{static_cast<double>(v) * 1e-3}; }
constexpr Seconds operator""_us(long double v) { return Seconds{static_cast<double>(v) * 1e-6}; }
constexpr Seconds operator""_ns(long double v) { return Seconds{static_cast<double>(v) * 1e-9}; }
constexpr Hertz operator""_Hz(long double v) { return Hertz{static_cast<double>(v)}; }
constexpr Hertz operator""_Hz(unsigned long long v) { return Hertz{static_cast<double>(v)}; }
constexpr Hertz operator""_kHz(long double v) { return Hertz{static_cast<double>(v) * 1e3}; }
constexpr Hertz operator""_MHz(long double v) { return Hertz{static_cast<double>(v) * 1e6}; }
constexpr Amperes operator""_A(long double v) { return Amperes{static_cast<double>(v)}; }
constexpr Amperes operator""_mA(long double v) { return Amperes{static_cast<double>(v) * 1e-3}; }
constexpr Watts operator""_W(long double v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_mW(long double v) { return Watts{static_cast<double>(v) * 1e-3}; }
constexpr Joules operator""_J(long double v) { return Joules{static_cast<double>(v)}; }
constexpr Volts operator""_V(long double v) { return Volts{static_cast<double>(v)}; }
constexpr Ohms operator""_Ohm(long double v) { return Ohms{static_cast<double>(v)}; }
constexpr Lumens operator""_lm(long double v) { return Lumens{static_cast<double>(v)}; }
constexpr Lux operator""_lx(long double v) { return Lux{static_cast<double>(v)}; }
constexpr Lux operator""_lx(unsigned long long v) { return Lux{static_cast<double>(v)}; }
constexpr LumensPerWatt operator""_lm_per_W(long double v) { return LumensPerWatt{static_cast<double>(v)}; }
constexpr BitsPerSecond operator""_bps(long double v) { return BitsPerSecond{static_cast<double>(v)}; }
constexpr BitsPerSecond operator""_bps(unsigned long long v) { return BitsPerSecond{static_cast<double>(v)}; }
constexpr BitsPerSecond operator""_kbps(long double v) { return BitsPerSecond{static_cast<double>(v) * 1e3}; }
constexpr BitsPerSecond operator""_Mbps(long double v) { return BitsPerSecond{static_cast<double>(v) * 1e6}; }

}  // namespace literals
}  // namespace densevlc
