#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace densevlc::stats {

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double variance(std::span<const double> samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double acc = 0.0;
  for (double s : samples) acc += (s - m) * (s - m);
  return acc / static_cast<double>(samples.size() - 1);
}

double stddev(std::span<const double> samples) {
  return std::sqrt(variance(samples));
}

double median(std::span<const double> samples) {
  return quantile(samples, 0.5);
}

double quantile(std::span<const double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 1.0);
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double ci95_halfwidth(std::span<const double> samples) {
  if (samples.size() < 2) return 0.0;
  return 1.96 * stddev(samples) /
         std::sqrt(static_cast<double>(samples.size()));
}

double jain_index(std::span<const double> samples) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : samples) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(samples.size()) * sum_sq);
}

double min(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  return *std::min_element(samples.begin(), samples.end());
}

double max(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  return *std::max_element(samples.begin(), samples.end());
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> samples) {
  std::vector<CdfPoint> out;
  if (samples.empty()) return out;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  out.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Collapse ties: keep only the last (highest-CDF) entry per value.
    if (!out.empty() && out.back().value == sorted[i]) {
      out.back().cdf = static_cast<double>(i + 1) / n;
    } else {
      out.push_back({sorted[i], static_cast<double>(i + 1) / n});
    }
  }
  return out;
}

Histogram histogram(std::span<const double> samples, double lo, double hi,
                    std::size_t bins) {
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins == 0 ? 1 : bins, 0);
  h.bin_width = (hi - lo) / static_cast<double>(h.counts.size());
  if (h.bin_width <= 0.0) h.bin_width = 1.0;
  for (double s : samples) {
    auto idx = static_cast<std::ptrdiff_t>((s - lo) / h.bin_width);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(h.counts.size()) - 1);
    ++h.counts[static_cast<std::size_t>(idx)];
    ++h.total;
  }
  return h;
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.n = samples.size();
  s.mean = mean(samples);
  s.stddev = stddev(samples);
  s.median = median(samples);
  s.min = min(samples);
  s.max = max(samples);
  s.ci95 = ci95_halfwidth(samples);
  return s;
}

}  // namespace densevlc::stats
