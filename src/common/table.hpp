// Console table and CSV emission for the benchmark harness.
//
// Every bench binary prints its figure/table data twice: once as an
// aligned human-readable table and once as CSV (prefixed lines) so the
// series can be re-plotted. TablePrinter keeps that output uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace densevlc {

/// Accumulates rows of string cells and renders them aligned or as CSV.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are kept.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision into a row.
  void add_numeric_row(const std::vector<double>& values, int precision = 4);

  /// Renders an aligned, boxed table.
  void print(std::ostream& os) const;

  /// Renders CSV lines, each prefixed with "csv," so they are easy to grep
  /// out of mixed bench output.
  void print_csv(std::ostream& os, const std::string& tag) const;

  /// Number of data rows accumulated so far.
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for ad-hoc rows).
std::string fmt(double value, int precision = 4);

/// Formats a double in engineering style with an SI-ish suffix for
/// readability in tables (e.g. 1.25e6 -> "1.250M"). Values in [0.001,
/// 1000) print plainly.
std::string fmt_si(double value, int precision = 3);

}  // namespace densevlc
