#include "core/prober.hpp"

#include <cmath>
#include <vector>

#include "common/thread_pool.hpp"
#include "dsp/correlate.hpp"

namespace densevlc::core {
namespace {

constexpr std::size_t kProbeChips = 64;

/// Deterministic, DC-balanced probe pattern (maximal-length LFSR bits,
/// then forced balance by pairing).
const std::vector<phy::Chip>& probe_pattern() {
  static const std::vector<phy::Chip> pattern = [] {
    std::vector<phy::Chip> chips;
    chips.reserve(kProbeChips);
    unsigned lfsr = 0xACE1u;
    for (std::size_t i = 0; i < kProbeChips / 2; ++i) {
      const unsigned bit =
          ((lfsr >> 0) ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1u;
      lfsr = (lfsr >> 1) | (bit << 15);
      // Emit the bit and its complement: guaranteed DC-free.
      chips.push_back(bit ? phy::Chip::kHigh : phy::Chip::kLow);
      chips.push_back(bit ? phy::Chip::kLow : phy::Chip::kHigh);
    }
    return chips;
  }();
  return pattern;
}

}  // namespace

ChannelProber::ChannelProber(const optics::LedModel& led,
                             const phy::OokParams& ook,
                             const phy::FrontEndConfig& frontend,
                             double max_swing_a)
    : led_{led}, ook_{ook}, frontend_{frontend}, swing_a_{max_swing_a} {
  // Calibration: optical swing amplitude at full probe swing, times the
  // receive chain's small-signal gain, gives volts of slicer amplitude
  // per unit channel gain.
  const double ib = led_.operating_point().bias_current_a;
  const double optical_amplitude =
      led_.electrical().wall_plug_efficiency *
      (led_.power_at_current(Amperes{ib + swing_a_ / 2.0}) -
       led_.power_at_current(Amperes{ib - swing_a_ / 2.0}))
          .value() /
      2.0;
  volts_per_gain_ = frontend_.responsivity_a_per_w * frontend_.tia_gain_ohm *
                    frontend_.ac_gain * optical_amplitude;
}

ProbeResult ChannelProber::probe_link(double h, Rng& rng) const {
  ProbeResult out;
  if (h <= 0.0) return out;

  // Build the TX current waveform: bias lead-in, probe at full swing,
  // bias tail for filter settling.
  phy::OokParams params = ook_;
  params.swing_current_a = swing_a_;
  const phy::OokModulator mod{params};
  const auto& pattern = probe_pattern();

  dsp::Waveform current = mod.idle(8);
  {
    const dsp::Waveform body = mod.modulate(pattern);
    current.samples.insert(current.samples.end(), body.samples.begin(),
                           body.samples.end());
    const dsp::Waveform tail = mod.idle(8);
    current.samples.insert(current.samples.end(), tail.samples.begin(),
                           tail.samples.end());
  }

  // Electro-optics and the channel.
  dsp::Waveform optical = current;
  const double eta = led_.electrical().wall_plug_efficiency;
  for (double& s : optical.samples) {
    s = h * eta * led_.power_at_current(Amperes{s}).value();
  }

  phy::ReceiverFrontEnd fe{frontend_, rng.fork()};
  const dsp::Waveform rx = fe.process(optical);

  // Locate the probe.
  const double spc = frontend_.adc.sample_rate_hz / params.chip_rate_hz;
  std::vector<double> tpl;
  tpl.reserve(static_cast<std::size_t>(
      std::ceil(static_cast<double>(pattern.size()) * spc)));
  for (std::size_t s = 0;
       s < static_cast<std::size_t>(
               std::ceil(static_cast<double>(pattern.size()) * spc));
       ++s) {
    const auto idx = std::min<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(s) / spc),
        pattern.size() - 1);
    tpl.push_back(pattern[idx] == phy::Chip::kHigh ? 1.0 : -1.0);
  }
  const auto peak = dsp::detect_pattern(rx.samples, tpl, 0.5);
  if (!peak) return out;
  out.detected = true;

  // Slice with the known pattern and average sign-corrected amplitudes.
  phy::OokDemodulator demod{params.chip_rate_hz,
                            frontend_.adc.sample_rate_hz};
  std::vector<double> chip_values;
  chip_values.reserve(pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const double start =
        static_cast<double>(peak->index) + static_cast<double>(i) * spc;
    const auto lo = static_cast<std::size_t>(start + 0.25 * spc);
    const auto hi = static_cast<std::size_t>(start + 0.75 * spc);
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t s = lo; s <= hi && s < rx.samples.size(); ++s) {
      acc += rx.samples[s];
      ++n;
    }
    if (n > 0) chip_values.push_back(acc / static_cast<double>(n));
  }
  double amplitude = 0.0;
  for (std::size_t i = 0; i < chip_values.size(); ++i) {
    const double sign = pattern[i] == phy::Chip::kHigh ? 1.0 : -1.0;
    amplitude += sign * chip_values[i];
  }
  amplitude /= static_cast<double>(chip_values.size());
  out.gain_estimate = std::max(0.0, amplitude) / volts_per_gain_;

  if (const auto snr = dsp::m2m4_snr(chip_values)) {
    out.snr_db = snr->snr_db;
  }
  return out;
}

channel::ChannelMatrix ChannelProber::probe_matrix(
    const channel::ChannelMatrix& truth, Rng& rng) const {
  // One fork anchors the whole sweep to the caller's stream position;
  // each link then gets its own split() sub-stream so the noise draws are
  // a function of (sweep, link index) alone — not of the order (or
  // thread) in which links are probed. Bit-identical at any thread count.
  const Rng sweep = rng.fork();
  const std::size_t m = truth.num_rx();
  channel::ChannelMatrix measured = truth;
  parallel_for(0, truth.num_tx() * m, [&](std::size_t idx) {
    const std::size_t j = idx / m;
    const std::size_t k = idx % m;
    Rng link_rng = sweep.split(idx);
    measured.set_gain(j, k,
                      probe_link(truth.gain(j, k), link_rng).gain_estimate);
  });
  return measured;
}

channel::ChannelMatrix ChannelProber::probe_matrix_incremental(
    const channel::ChannelMatrix& truth, Rng& rng,
    const std::vector<bool>& dirty_rx,
    const channel::ChannelMatrix& previous) const {
  // One fork regardless of how many links are skipped: the caller's
  // stream stays aligned with probe_matrix, so everything drawn after
  // the sweep (report loss, TX offsets, ...) is unaffected by the mode.
  const Rng sweep = rng.fork();
  const std::size_t n = truth.num_tx();
  const std::size_t m = truth.num_rx();
  const bool shape_ok = previous.num_tx() == n && previous.num_rx() == m &&
                        dirty_rx.size() == m;
  channel::ChannelMatrix measured = shape_ok ? previous : truth;

  // Work list of global link indices to probe; split() is keyed by the
  // same index as the full sweep, so each probed link draws the noise it
  // would have drawn under probe_matrix.
  std::vector<std::size_t> work;
  work.reserve(n * m);
  for (std::size_t idx = 0; idx < n * m; ++idx) {
    if (!shape_ok || dirty_rx[idx % m]) work.push_back(idx);
  }
  parallel_for(0, work.size(), [&](std::size_t w) {
    const std::size_t idx = work[w];
    const std::size_t j = idx / m;
    const std::size_t k = idx % m;
    Rng link_rng = sweep.split(idx);
    measured.set_gain(j, k,
                      probe_link(truth.gain(j, k), link_rng).gain_estimate);
  });
  return measured;
}

}  // namespace densevlc::core
