// Waveform-level channel measurement (paper Sec. 7.2, "Channel
// measurements").
//
// To quantify link quality, each TX in turn transmits a predefined chip
// pattern; the RX captures it through its full analog chain, estimates
// the received swing amplitude (and the M2M4 SNR), and reports the
// implied path loss back to the controller. The estimate inverts the
// known front-end gain chain, so measured gains are directly comparable
// with model gains — the experimental-pipeline benches (Figs. 18-20)
// build their channel matrices from these measurements.
#pragma once

#include <optional>

#include "channel/model.hpp"
#include "common/rng.hpp"
#include "dsp/snr_estimator.hpp"
#include "optics/led_model.hpp"
#include "phy/frontend.hpp"
#include "phy/ook.hpp"

namespace densevlc::core {

/// One link measurement.
struct ProbeResult {
  double gain_estimate = 0.0;  ///< reconstructed H (optical DC gain)
  double snr_db = 0.0;         ///< M2M4 estimate over the probe chips
  bool detected = false;       ///< probe found above the noise floor
};

/// Measures links by driving the PHY end to end.
class ChannelProber {
 public:
  /// `ook` fixes chip rate and currents; probes always use full swing.
  ChannelProber(const optics::LedModel& led, const phy::OokParams& ook,
                const phy::FrontEndConfig& frontend, double max_swing_a);

  /// Probes one link of true gain `h` (from geometry or a fading draw).
  /// Noise and quantization make the estimate imperfect — exactly the
  /// imperfection the heuristic has to live with in practice.
  ProbeResult probe_link(double h, Rng& rng) const;

  /// Probes every entry of a true channel matrix, returning the measured
  /// matrix (undetected links measure 0). Links are probed in parallel on
  /// the global pool; each link draws from its own split() sub-stream of
  /// one fork of `rng`, so the measurement is bit-identical at any thread
  /// count (and `rng` advances by exactly one fork regardless of size).
  channel::ChannelMatrix probe_matrix(const channel::ChannelMatrix& truth,
                                      Rng& rng) const;

  /// Incremental sweep: probes only the RX columns flagged in `dirty_rx`;
  /// clean columns keep the measurements in `previous` (that airtime is
  /// simply not spent). Consumes exactly one fork of `rng` like
  /// probe_matrix, and keys each link's noise sub-stream by the same
  /// global link index, so an all-dirty mask reproduces probe_matrix
  /// bit for bit. Falls back to a full sweep when `previous` or
  /// `dirty_rx` does not match the truth dimensions.
  channel::ChannelMatrix probe_matrix_incremental(
      const channel::ChannelMatrix& truth, Rng& rng,
      const std::vector<bool>& dirty_rx,
      const channel::ChannelMatrix& previous) const;

  /// The calibration constant mapping received voltage amplitude back to
  /// channel gain: volts per unit H.
  double volts_per_gain() const { return volts_per_gain_; }

 private:
  optics::LedModel led_;
  phy::OokParams ook_;
  phy::FrontEndConfig frontend_;
  double swing_a_;
  double volts_per_gain_ = 0.0;
};

}  // namespace densevlc::core
