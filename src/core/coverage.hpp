// Spatial communication coverage analysis.
//
// Where can a user actually receive data, and how fast? CoverageMap
// rasterizes the room and evaluates, at every point, the throughput a
// single roaming receiver would get if the controller formed a beamspot
// for it there under a given power budget — the communication analogue
// of the illuminance map, and the planner's main tool for spotting dead
// zones (e.g. under a failed luminaire or outside the grid footprint).
#pragma once

#include <cstddef>
#include <vector>

#include "common/pgm.hpp"
#include "core/testbed.hpp"

namespace densevlc::core {

/// Parameters of a coverage computation.
struct CoverageConfig {
  double power_budget_w = 0.3;  ///< budget granted to the roaming user
  double kappa = 1.3;
  double max_swing_a = 0.9;
  std::size_t raster_per_axis = 31;
};

/// Result raster plus summary statistics.
struct CoverageResult {
  ScalarField throughput_mbps;  ///< row-major, row 0 at y = max (image top)
  double min_mbps = 0.0;
  double max_mbps = 0.0;
  double mean_mbps = 0.0;

  /// Fraction of points reaching at least `threshold_fraction` of the
  /// map maximum.
  double coverage_fraction(double threshold_fraction) const;
};

/// Computes the map for a testbed: a single roaming RX per raster point,
/// served by the SJR heuristic under the config's budget. `failed_txs`
/// marks dead luminaires (their links contribute nothing) — the failure-
/// injection case coverage analysis exists for.
CoverageResult compute_coverage(const Testbed& testbed,
                                const CoverageConfig& cfg,
                                const std::vector<std::size_t>& failed_txs = {});

}  // namespace densevlc::core
