// Energy accounting (the paper's core motivation: "saving energy is the
// key reason for deploying LEDs ... VLC incurs limited extra power, and
// no power is wasted").
//
// EnergyMeter integrates the illumination and communication power of a
// TX population over time and derives the figures of merit the paper
// argues about: communication overhead relative to lighting, and energy
// per delivered bit.
#pragma once

#include <cstddef>
#include <cstdint>

#include "channel/model.hpp"
#include "optics/led_model.hpp"

namespace densevlc::core {

/// Integrates energy over a run.
class EnergyMeter {
 public:
  EnergyMeter(const optics::LedModel& led, std::size_t num_tx)
      : led_{led}, num_tx_{num_tx} {}

  /// Accounts `dt_s` seconds under the given allocation: every TX burns
  /// illumination power; TXs with swing burn the extra communication
  /// power of Eq. (10).
  void accumulate(const channel::Allocation& alloc, double dt_s,
                  const channel::LinkBudget& budget);

  /// Records delivered payload bits (for energy-per-bit).
  void deliver_bits(std::uint64_t bits) { bits_ += bits; }

  /// Totals [J].
  double illumination_energy_j() const { return illumination_j_; }
  double communication_energy_j() const { return communication_j_; }

  /// Fraction of total energy spent on communication.
  double communication_overhead() const {
    const double total = illumination_j_ + communication_j_;
    return total > 0.0 ? communication_j_ / total : 0.0;
  }

  /// Extra communication energy per delivered payload bit [J/bit]; 0
  /// when nothing was delivered.
  double energy_per_bit() const {
    return bits_ > 0 ? communication_j_ / static_cast<double>(bits_) : 0.0;
  }

  std::uint64_t delivered_bits() const { return bits_; }

 private:
  optics::LedModel led_;
  std::size_t num_tx_;
  double illumination_j_ = 0.0;
  double communication_j_ = 0.0;
  std::uint64_t bits_ = 0;
};

}  // namespace densevlc::core
