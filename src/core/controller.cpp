#include "core/controller.hpp"

#include <algorithm>

#include "alloc/adaptive_kappa.hpp"

namespace densevlc::core {

std::size_t Controller::update_channel(
    const channel::ChannelMatrix& measured) {
  alloc::AssignmentOptions opts;
  opts.max_swing_a = cfg_.max_swing_a;
  opts.allow_partial_tail = false;  // Insight 2: binary swing in practice

  std::vector<alloc::RankedTx> ranking;
  if (cfg_.personalize_kappa) {
    alloc::AdaptiveKappaConfig acfg;
    acfg.initial_kappa = cfg_.kappa;
    acfg.max_rounds = 4;
    const auto personal = alloc::personalize_kappa(
        measured, Watts{cfg_.power_budget_w}, cfg_.link_budget, opts, acfg);
    ranking = alloc::rank_transmitters_per_tx(measured, personal.kappas);
  } else {
    ranking = alloc::rank_transmitters(measured, cfg_.kappa);
  }
  const auto result =
      alloc::assign_by_ranking(ranking, measured.num_tx(), measured.num_rx(),
                               Watts{cfg_.power_budget_w}, cfg_.link_budget,
                               opts);
  alloc_ = result.allocation;
  power_used_w_ = result.power_used_w;

  // Group assigned TXs into beamspots, preserving rank order so the
  // first-listed TX is the best channel — it becomes the leader.
  beamspots_.clear();
  for (std::size_t rx = 0; rx < measured.num_rx(); ++rx) {
    Beamspot spot;
    spot.rx = rx;
    for (const auto& entry : ranking) {
      if (entry.rx == rx && alloc_.swing(entry.tx, rx) > 0.0) {
        spot.txs.push_back(entry.tx);
      }
    }
    if (!spot.txs.empty()) {
      // The leader is the member with the best measured channel to the
      // served RX: its pilot reaches the co-serving neighbours strongest.
      spot.leader = spot.txs.front();
      for (std::size_t tx : spot.txs) {
        if (measured.gain(tx, rx) > measured.gain(spot.leader, rx)) {
          spot.leader = tx;
        }
      }
      beamspots_.push_back(std::move(spot));
    }
  }
  return result.txs_assigned;
}

std::optional<Beamspot> Controller::beamspot_for(std::size_t rx) const {
  for (const auto& spot : beamspots_) {
    if (spot.rx == rx) return spot;
  }
  return std::nullopt;
}

std::vector<double> Controller::expected_throughput(
    const channel::ChannelMatrix& truth) const {
  if (alloc_.num_tx() != truth.num_tx() ||
      alloc_.num_rx() != truth.num_rx()) {
    return std::vector<double>(truth.num_rx(), 0.0);
  }
  return channel::throughput_bps(truth, alloc_, cfg_.link_budget);
}

std::optional<phy::ControllerFrame> Controller::make_data_command(
    std::size_t rx, std::vector<std::uint8_t> payload,
    std::uint16_t src) const {
  const auto spot = beamspot_for(rx);
  if (!spot) return std::nullopt;
  phy::ControllerFrame cf;
  for (std::size_t tx : spot->txs) {
    if (tx < 64) cf.tx_mask |= (std::uint64_t{1} << tx);
  }
  cf.leading_tx = static_cast<std::uint8_t>(spot->leader);
  cf.frame.dst = static_cast<std::uint16_t>(rx);
  cf.frame.src = src;
  cf.frame.protocol = static_cast<std::uint16_t>(phy::Protocol::kData);
  cf.frame.payload = std::move(payload);
  return cf;
}

}  // namespace densevlc::core
