#include "core/controller.hpp"

#include <algorithm>

#include "alloc/adaptive_kappa.hpp"
#include "common/contracts.hpp"

namespace densevlc::core {

std::size_t Controller::update_channel(
    const channel::ChannelMatrix& measured) {
  EpochInput input;
  input.measured = measured;
  return update_epoch(input);
}

bool Controller::age_reports(const std::vector<bool>& fresh,
                             std::size_t num_rx) {
  if (health_.size() < num_rx) {
    health_.resize(num_rx);
    for (auto& h : health_) {
      h.backoff_epochs = std::max<std::size_t>(
          1, cfg_.degradation.backoff_initial_epochs);
    }
  }
  bool any_fresh = false;
  for (std::size_t rx = 0; rx < num_rx; ++rx) {
    auto& h = health_[rx];
    const bool is_fresh = fresh.empty() || fresh[rx];
    if (is_fresh) {
      h.state = RxLinkState::kFresh;
      h.silent_epochs = 0;
      h.backoff_epochs = std::max<std::size_t>(
          1, cfg_.degradation.backoff_initial_epochs);
      h.epochs_until_reprobe = 0;
      any_fresh = true;
      continue;
    }
    ++h.silent_epochs;
    if (h.silent_epochs <= cfg_.degradation.hold_epochs) {
      h.state = RxLinkState::kStale;
      continue;
    }
    if (h.state != RxLinkState::kExpired) {
      // Entering expiry: retry immediately, then back off exponentially.
      h.state = RxLinkState::kExpired;
      ++h.reprobes;
      h.epochs_until_reprobe = h.backoff_epochs;
    } else if (h.epochs_until_reprobe == 0) {
      ++h.reprobes;
      h.backoff_epochs = std::min(2 * h.backoff_epochs,
                                  cfg_.degradation.backoff_max_epochs);
      h.epochs_until_reprobe = h.backoff_epochs;
    } else {
      --h.epochs_until_reprobe;
    }
  }
  return any_fresh;
}

void Controller::prune_dead_txs(const std::vector<bool>& dead_tx) {
  if (dead_tx.empty()) return;
  const auto is_dead = [&](std::size_t tx) {
    return tx < dead_tx.size() && dead_tx[tx];
  };
  std::vector<Beamspot> surviving;
  for (auto& spot : beamspots_) {
    const std::size_t old_leader = spot.leader;
    bool leader_died = false;
    std::vector<std::size_t> alive;
    for (std::size_t tx : spot.txs) {
      if (is_dead(tx)) {
        if (tx < alloc_.num_tx()) alloc_.set_swing(tx, spot.rx, 0.0);
        leader_died = leader_died || tx == old_leader;
      } else {
        alive.push_back(tx);
      }
    }
    if (alive.empty()) continue;  // beamspot dissolved
    spot.txs = std::move(alive);
    if (leader_died) {
      // Re-elect: the survivor with the best channel to the served RX,
      // judged by the measurements the held decision was based on.
      spot.leader = spot.txs.front();
      if (last_view_.num_tx() > 0) {
        for (std::size_t tx : spot.txs) {
          if (last_view_.gain(tx, spot.rx) >
              last_view_.gain(spot.leader, spot.rx)) {
            spot.leader = tx;
          }
        }
      }
      ++leader_reelections_;
    }
    surviving.push_back(std::move(spot));
  }
  beamspots_ = std::move(surviving);
  power_used_w_ =
      channel::total_comm_power(alloc_, cfg_.link_budget).value();
}

std::size_t Controller::update_epoch(const EpochInput& input) {
  const std::size_t num_rx = input.measured.num_rx();
  const std::size_t num_tx = input.measured.num_tx();
  DVLC_EXPECT(input.fresh.empty() || input.fresh.size() == num_rx,
              "fresh flags must match the RX count");
  DVLC_EXPECT(input.dead_tx.empty() || input.dead_tx.size() == num_tx,
              "dead-TX flags must match the TX count");

  const bool any_fresh = age_reports(input.fresh, num_rx);

  // Watchdog: when the decision deadline was missed, or the uplink went
  // completely silent, re-deciding on garbage only thrashes the TXs —
  // hold the last-good allocation (minus any TXs that died since).
  const bool hold =
      cfg_.degradation.enabled && have_decision_ &&
      (input.overrun || (!any_fresh && !input.fresh.empty()));
  if (hold) {
    ++watchdog_holds_;
    prune_dead_txs(input.dead_tx);
    std::size_t assigned = 0;
    for (const auto& spot : beamspots_) assigned += spot.txs.size();
    return assigned;
  }

  // Working view: dead TXs and expired RXs are erased before the SJR
  // ranking, so power re-forms around the surviving hardware.
  channel::ChannelMatrix view = input.measured;
  if (!input.dead_tx.empty()) {
    for (std::size_t tx = 0; tx < num_tx; ++tx) {
      if (!input.dead_tx[tx]) continue;
      for (std::size_t rx = 0; rx < num_rx; ++rx) view.set_gain(tx, rx, 0.0);
    }
  }
  if (cfg_.degradation.enabled) {
    for (std::size_t rx = 0; rx < num_rx && rx < health_.size(); ++rx) {
      if (health_[rx].state != RxLinkState::kExpired) continue;
      for (std::size_t tx = 0; tx < num_tx; ++tx) view.set_gain(tx, rx, 0.0);
    }
  }

  alloc::AssignmentOptions opts;
  opts.max_swing_a = cfg_.max_swing_a;
  opts.allow_partial_tail = false;  // Insight 2: binary swing in practice

  std::vector<alloc::RankedTx> ranking;
  if (cfg_.personalize_kappa) {
    alloc::AdaptiveKappaConfig acfg;
    acfg.initial_kappa = cfg_.kappa;
    acfg.max_rounds = 4;
    const auto personal = alloc::personalize_kappa(
        view, Watts{cfg_.power_budget_w}, cfg_.link_budget, opts, acfg);
    ranking = alloc::rank_transmitters_per_tx(view, personal.kappas);
  } else {
    ranking = alloc::rank_transmitters(view, cfg_.kappa);
  }
  const auto result =
      alloc::assign_by_ranking(ranking, view.num_tx(), view.num_rx(),
                               Watts{cfg_.power_budget_w}, cfg_.link_budget,
                               opts);
  alloc_ = result.allocation;
  power_used_w_ = result.power_used_w;

  // Group assigned TXs into beamspots, preserving rank order so the
  // first-listed TX is the best channel — it becomes the leader.
  beamspots_.clear();
  for (std::size_t rx = 0; rx < view.num_rx(); ++rx) {
    Beamspot spot;
    spot.rx = rx;
    for (const auto& entry : ranking) {
      if (entry.rx == rx && alloc_.swing(entry.tx, rx) > 0.0) {
        spot.txs.push_back(entry.tx);
      }
    }
    if (!spot.txs.empty()) {
      // The leader is the member with the best measured channel to the
      // served RX: its pilot reaches the co-serving neighbours strongest.
      spot.leader = spot.txs.front();
      for (std::size_t tx : spot.txs) {
        if (view.gain(tx, rx) > view.gain(spot.leader, rx)) {
          spot.leader = tx;
        }
      }
      beamspots_.push_back(std::move(spot));
    }
  }
  last_view_ = std::move(view);
  have_decision_ = true;
  return result.txs_assigned;
}

const RxHealth& Controller::rx_health(std::size_t rx) const {
  static const RxHealth kDefault{};
  return rx < health_.size() ? health_[rx] : kDefault;
}

std::optional<Beamspot> Controller::beamspot_for(std::size_t rx) const {
  for (const auto& spot : beamspots_) {
    if (spot.rx == rx) return spot;
  }
  return std::nullopt;
}

std::vector<double> Controller::expected_throughput(
    const channel::ChannelMatrix& truth) const {
  if (alloc_.num_tx() != truth.num_tx() ||
      alloc_.num_rx() != truth.num_rx()) {
    return std::vector<double>(truth.num_rx(), 0.0);
  }
  return channel::throughput_bps(truth, alloc_, cfg_.link_budget);
}

std::optional<phy::ControllerFrame> Controller::make_data_command(
    std::size_t rx, std::vector<std::uint8_t> payload,
    std::uint16_t src) const {
  const auto spot = beamspot_for(rx);
  if (!spot) return std::nullopt;
  phy::ControllerFrame cf;
  for (std::size_t tx : spot->txs) {
    if (tx < 64) cf.tx_mask |= (std::uint64_t{1} << tx);
  }
  cf.leading_tx = static_cast<std::uint8_t>(spot->leader);
  cf.frame.dst = static_cast<std::uint16_t>(rx);
  cf.frame.src = src;
  cf.frame.protocol = static_cast<std::uint16_t>(phy::Protocol::kData);
  cf.frame.payload = std::move(payload);
  return cf;
}

}  // namespace densevlc::core
