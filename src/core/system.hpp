// DenseVlcSystem: the full cell-free VLC MIMO system, end to end.
//
// Owns the discrete-event simulator, the control-plane network models,
// the controller, the channel prober, and the waveform data path, and
// runs the MAC protocol of paper Sec. 3.2:
//
//   1. probe phase — every TX in turn radiates the measurement pattern;
//      all RXs estimate their downlink gains;
//   2. report phase — RXs push their measurements to the controller over
//      the WiFi uplink (reports can be lost; stale columns persist);
//   3. decision — the controller runs the SJR heuristic and forms
//      beamspots with appointed leading TXs;
//   4. data phase — the controller multicasts frames over Ethernet; the
//      selected TXs transmit jointly, aligned by the configured sync
//      method; RXs decode and acknowledge over WiFi.
//
// Two evaluation paths exist, matching the paper's own methodology:
// frame-accurate waveform simulation (run()) for PER/sync experiments,
// and the analytic SINR/Shannon path (run_epoch_analytic()) for the
// throughput-versus-power studies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/model.hpp"
#include "common/rng.hpp"
#include "core/beamspot.hpp"
#include "core/config.hpp"
#include "core/controller.hpp"
#include "core/prober.hpp"
#include "net/links.hpp"
#include "common/event_queue.hpp"
#include "geom/mobility.hpp"

namespace densevlc::core {

/// Per-receiver counters from a waveform-level run.
struct RxStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t payload_bits_delivered = 0;
  std::uint64_t acks_received = 0;

  /// Packet error rate in [0, 1].
  double per() const {
    return frames_sent == 0
               ? 0.0
               : 1.0 - static_cast<double>(frames_delivered) /
                           static_cast<double>(frames_sent);
  }
};

/// Summary of a waveform-level run.
struct RunReport {
  std::vector<RxStats> rx;
  std::size_t epochs = 0;
  double duration_s = 0.0;

  /// Delivered goodput of one RX [bit/s].
  double throughput_bps(std::size_t rx_id) const {
    return duration_s > 0.0
               ? static_cast<double>(rx[rx_id].payload_bits_delivered) /
                     duration_s
               : 0.0;
  }
};

/// Summary of one analytic (SINR-model) epoch.
struct EpochReport {
  std::vector<double> throughput_bps;  ///< per RX, Shannon under truth
  double power_used_w = 0.0;
  std::size_t txs_assigned = 0;
  std::vector<Beamspot> beamspots;
};

/// The assembled system.
class DenseVlcSystem {
 public:
  /// `mobility` supplies one model per RX (the models define the RX count).
  DenseVlcSystem(const SystemConfig& cfg,
                 std::vector<std::unique_ptr<geom::MobilityModel>> mobility);

  /// Convenience: static RXs at the given floor positions.
  static DenseVlcSystem with_static_rxs(
      const SystemConfig& cfg, const std::vector<geom::Vec3>& positions);

  std::size_t num_rx() const { return mobility_.size(); }
  std::size_t num_tx() const { return cfg_.testbed.grid.count(); }

  /// True LOS channel matrix at simulated time `t_s` (geometry + optics).
  channel::ChannelMatrix true_channel(double t_s) const;

  /// true_channel with the fault schedule applied: burnt-out LEDs
  /// radiate nothing, saturated or flickering drivers scale their rows.
  /// This is the physical channel the probes and data frames actually
  /// traverse while faults are active.
  channel::ChannelMatrix faulted_channel(double t_s) const;

  /// Runs the full MAC with the waveform data path for `duration_s`
  /// simulated seconds, `payload_bytes` per data frame.
  RunReport run(double duration_s, std::size_t payload_bytes);

  /// Per-RX reliability counters from an ARQ run.
  struct ArqStats {
    std::uint64_t segments_offered = 0;
    std::uint64_t segments_delivered = 0;  ///< ACKed at the controller
    std::uint64_t segments_dropped = 0;    ///< retry budget exhausted
    std::uint64_t transmissions = 0;       ///< incl. retransmissions
    std::uint64_t duplicates = 0;          ///< suppressed at the RX
    std::uint64_t give_ups = 0;            ///< typed ARQ give-up notices
  };
  struct ArqReport {
    std::vector<ArqStats> rx;
    double duration_s = 0.0;

    /// Application goodput [bit/s] counting each segment once.
    double goodput_bps(std::size_t rx_id, std::size_t payload_bytes) const {
      return duration_s > 0.0
                 ? static_cast<double>(rx[rx_id].segments_delivered) *
                       static_cast<double>(payload_bytes) * 8.0 / duration_s
                 : 0.0;
    }
  };

  /// Like run(), but with stop-and-wait ARQ on every beamspot: the
  /// controller retransmits unacknowledged segments (up to
  /// `max_attempts`), receivers suppress duplicates, and lost WiFi ACKs
  /// trigger spurious-but-harmless retries. Each RX is offered
  /// `segments_per_rx` segments up front.
  ArqReport run_arq(double duration_s, std::size_t payload_bytes,
                    std::size_t segments_per_rx,
                    std::size_t max_attempts = 4);

  /// Runs probe + report + decision at time `t_s` on the analytic path
  /// and returns expected Shannon throughputs under the true channel.
  EpochReport run_epoch_analytic(double t_s);

  /// Draws the per-TX start-time offsets for a beamspot transmission
  /// under the configured sync mode [s]. While a sync-pilot-loss fault
  /// is active at `t_s`, NLOS-synced followers miss the leader's pilot
  /// and fall back to the unsynchronized start-time spread.
  std::vector<double> draw_tx_offsets(const Beamspot& spot, Rng& rng,
                                      double t_s = 0.0) const;

  /// BBB hosting TX `id`: the grid is managed in 2x2 blocks of four TXs
  /// per BeagleBone (Sec. 7.1), so TX2 and TX8 share a board.
  std::size_t bbb_of(std::size_t tx_id) const;

  const Controller& controller() const { return controller_; }
  const SystemConfig& config() const { return cfg_; }

  /// Empirical NLOS sync error samples gathered at construction [signed s].
  const std::vector<double>& nlos_error_samples() const {
    return nlos_errors_;
  }

 private:
  void measure_and_decide(double t_s, Rng& rng);

  SystemConfig cfg_;
  std::vector<std::unique_ptr<geom::MobilityModel>> mobility_;
  Controller controller_;
  ChannelProber prober_;
  JointTransmission data_path_;
  Rng master_rng_;
  std::vector<double> nlos_errors_;
  // Last measured gains per RX (columns survive lost reports).
  std::vector<std::vector<double>> last_reports_;
  std::uint8_t epoch_counter_ = 0;
  // Geometry cache behind true_channel(): only the columns of RXs that
  // moved (x/y — rx_poses ignores z) are recomputed, which is
  // bit-identical to a full rebuild because los_gain is a pure function
  // of the poses. mutable: true_channel() is logically const; the system
  // is driven from a single thread.
  mutable std::vector<geom::Vec3> truth_positions_;
  mutable channel::ChannelMatrix truth_cache_;
  mutable bool truth_cache_valid_ = false;
  // Incremental-probing state (cfg_.incremental_probing): the physical
  // channel seen by the last probe sweep, and what it measured.
  channel::ChannelMatrix last_probe_truth_;
  channel::ChannelMatrix last_measured_;
  bool have_probe_cache_ = false;
};

}  // namespace densevlc::core
