#include "core/system.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "mac/arq.hpp"
#include "mac/report.hpp"
#include "sync/nlos_sync.hpp"

namespace densevlc::core {
namespace {

ControllerConfig controller_config(const SystemConfig& cfg) {
  ControllerConfig cc;
  cc.kappa = cfg.kappa;
  cc.personalize_kappa = cfg.personalize_kappa;
  cc.power_budget_w = cfg.power_budget_w;
  cc.max_swing_a = cfg.max_swing_a;
  cc.link_budget = cfg.testbed.budget;
  cc.degradation = cfg.degradation;
  return cc;
}

}  // namespace

DenseVlcSystem::DenseVlcSystem(
    const SystemConfig& cfg,
    std::vector<std::unique_ptr<geom::MobilityModel>> mobility)
    : cfg_{cfg},
      mobility_{std::move(mobility)},
      controller_{controller_config(cfg)},
      prober_{cfg.testbed.led, cfg.ook, cfg.frontend, cfg.max_swing_a},
      data_path_{cfg.testbed.led, cfg.ook, cfg.frontend},
      master_rng_{cfg.seed} {
  last_reports_.assign(mobility_.size(),
                       std::vector<double>(num_tx(), 0.0));

  // Characterize the NLOS sync error once, for a representative adjacent
  // TX pair, and bootstrap per-frame offsets from the samples.
  if (cfg_.sync_mode == SyncMode::kNlosVlc) {
    sync::NlosSyncConfig nc;
    const double h = cfg_.testbed.grid.mount_height_m;
    nc.leader_pose = geom::ceiling_pose(1.25, 1.25, h);
    nc.follower_pose = geom::ceiling_pose(1.75, 1.25, h);
    nc.emitter = cfg_.testbed.emitter;
    nc.pd = cfg_.testbed.pd;
    nc.floor = cfg_.floor;
    nc.led = cfg_.testbed.led;
    nc.pilot_chip_rate_hz = cfg_.ook.chip_rate_hz;
    nc.swing_current_a = cfg_.max_swing_a;
    nc.frontend = cfg_.frontend;
    sync::NlosSynchronizer synchronizer{nc};
    Rng rng = master_rng_.fork();
    for (std::size_t t = 0; t < 32; ++t) {
      const auto d = synchronizer.simulate_once(rng);
      if (d.detected && d.id_matches) {
        nlos_errors_.push_back(d.start_error_s);
      }
    }
    if (nlos_errors_.empty()) {
      // Pathological geometry (e.g. black floor): fall back to one ADC
      // sample of uncertainty so the system still runs, degraded.
      nlos_errors_.push_back(1.0 / cfg_.frontend.adc.sample_rate_hz);
    }
  }
}

DenseVlcSystem DenseVlcSystem::with_static_rxs(
    const SystemConfig& cfg, const std::vector<geom::Vec3>& positions) {
  std::vector<std::unique_ptr<geom::MobilityModel>> mobility;
  mobility.reserve(positions.size());
  for (const auto& p : positions) {
    mobility.push_back(std::make_unique<geom::StaticMobility>(p));
  }
  return DenseVlcSystem{cfg, std::move(mobility)};
}

channel::ChannelMatrix DenseVlcSystem::true_channel(double t_s) const {
  std::vector<geom::Vec3> positions;
  positions.reserve(mobility_.size());
  for (const auto& m : mobility_) positions.push_back(m->position(t_s));
  if (truth_cache_valid_ && truth_positions_.size() == positions.size()) {
    // Recompute only the columns of RXs that moved. rx_poses() uses the
    // x/y components alone, so z changes cannot dirty a column.
    std::vector<std::size_t> dirty;
    for (std::size_t k = 0; k < positions.size(); ++k) {
      if (positions[k].x != truth_positions_[k].x ||
          positions[k].y != truth_positions_[k].y) {
        dirty.push_back(k);
      }
    }
    if (!dirty.empty()) {
      cfg_.testbed.update_channel_for(truth_cache_, positions, dirty);
    }
  } else {
    truth_cache_ = cfg_.testbed.channel_for(positions);
    truth_cache_valid_ = true;
  }
  truth_positions_ = std::move(positions);
  return truth_cache_;
}

channel::ChannelMatrix DenseVlcSystem::faulted_channel(double t_s) const {
  auto h = true_channel(t_s);
  if (cfg_.faults.empty()) return h;
  for (std::size_t j = 0; j < h.num_tx(); ++j) {
    const double scale = cfg_.faults.tx_output_scale(j, t_s);
    if (scale == 1.0) continue;
    for (std::size_t k = 0; k < h.num_rx(); ++k) {
      h.set_gain(j, k, h.gain(j, k) * scale);
    }
  }
  return h;
}

std::size_t DenseVlcSystem::bbb_of(std::size_t tx_id) const {
  const std::size_t cols = cfg_.testbed.grid.cols;
  const std::size_t row = tx_id / cols;
  const std::size_t col = tx_id % cols;
  return (row / 2) * ((cols + 1) / 2) + (col / 2);
}

std::vector<double> DenseVlcSystem::draw_tx_offsets(const Beamspot& spot,
                                                    Rng& rng,
                                                    double t_s) const {
  // Offsets are shared per BBB: four TXs hang off one PRU.
  std::vector<double> offsets(spot.txs.size(), 0.0);
  std::vector<std::size_t> bbbs(spot.txs.size());
  for (std::size_t i = 0; i < spot.txs.size(); ++i) {
    bbbs[i] = bbb_of(spot.txs[i]);
  }
  const std::size_t leader_bbb = bbb_of(spot.leader);

  // Draw one offset per distinct BBB.
  std::vector<std::pair<std::size_t, double>> bbb_offsets;
  auto offset_for_bbb = [&](std::size_t bbb) -> double {
    for (const auto& [b, o] : bbb_offsets) {
      if (b == bbb) return o;
    }
    double drawn = 0.0;
    switch (cfg_.sync_mode) {
      case SyncMode::kNone: {
        double u;
        do {
          u = rng.uniform();
        } while (u <= 0.0);
        drawn = -cfg_.timesync.delivery_jitter_mean_s * std::log(u) +
                rng.uniform(0.0, cfg_.timesync.stack_start_spread_s) +
                rng.gaussian(0.0, cfg_.timesync.event_jitter_sigma_s);
        break;
      }
      case SyncMode::kNtpPtp:
        drawn = rng.gaussian(0.0, cfg_.timesync.ntp_ptp_residual_sigma_s) +
                rng.gaussian(0.0, cfg_.timesync.event_jitter_sigma_s);
        break;
      case SyncMode::kNlosVlc:
        if (bbb == leader_bbb) {
          drawn = 0.0;  // the leader defines the timeline
        } else if (cfg_.faults.sync_pilot_lost(t_s)) {
          // The follower never saw the pilot: it free-runs on multicast
          // arrival, i.e. the unsynchronized spread of SyncMode::kNone.
          double u;
          do {
            u = rng.uniform();
          } while (u <= 0.0);
          drawn = -cfg_.timesync.delivery_jitter_mean_s * std::log(u) +
                  rng.uniform(0.0, cfg_.timesync.stack_start_spread_s) +
                  rng.gaussian(0.0, cfg_.timesync.event_jitter_sigma_s);
        } else {
          const auto idx = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(nlos_errors_.size()) - 1));
          drawn = nlos_errors_[idx];
        }
        break;
    }
    bbb_offsets.emplace_back(bbb, drawn);
    return drawn;
  };

  for (std::size_t i = 0; i < spot.txs.size(); ++i) {
    offsets[i] = offset_for_bbb(bbbs[i]);
  }
  return offsets;
}

void DenseVlcSystem::measure_and_decide(double t_s, Rng& rng) {
  const auto truth = faulted_channel(t_s);
  // With incremental probing on, only RX columns whose physical channel
  // changed since the previous sweep (movement, blockage, TX fault
  // scaling) are re-probed; clean columns keep their last measurement.
  // Either path consumes exactly one fork of `rng`, so the draws after
  // the sweep (WiFi report loss, ...) are identical in both modes.
  channel::ChannelMatrix measured;
  if (cfg_.incremental_probing) {
    if (have_probe_cache_ && last_probe_truth_.num_tx() == truth.num_tx() &&
        last_probe_truth_.num_rx() == truth.num_rx()) {
      std::vector<bool> dirty(truth.num_rx(), false);
      for (std::size_t k = 0; k < truth.num_rx(); ++k) {
        for (std::size_t j = 0; j < truth.num_tx(); ++j) {
          if (truth.gain(j, k) != last_probe_truth_.gain(j, k)) {
            dirty[k] = true;
            break;
          }
        }
      }
      measured =
          prober_.probe_matrix_incremental(truth, rng, dirty, last_measured_);
    } else {
      measured = prober_.probe_matrix(truth, rng);
    }
    last_probe_truth_ = truth;
    last_measured_ = measured;
    have_probe_cache_ = true;
  } else {
    measured = prober_.probe_matrix(truth, rng);
  }

  // Each RX serializes a quantized channel report and sends it over the
  // lossy WiFi uplink; the controller decodes what arrives. A lost
  // report leaves the controller with the previous epoch's column.
  // Injected faults add to the random loss: a dropped-out RX never
  // transmits, and a report-loss burst swallows the whole uplink. The
  // random loss draw always happens first so a fault-free schedule
  // reproduces the pre-fault byte streams exactly.
  std::vector<bool> fresh(num_rx(), false);
  for (std::size_t k = 0; k < num_rx(); ++k) {
    mac::ChannelReport report;
    report.rx_id = static_cast<std::uint16_t>(k);
    report.epoch = epoch_counter_;
    report.gains.reserve(num_tx());
    for (std::size_t j = 0; j < num_tx(); ++j) {
      report.gains.push_back(measured.gain(j, k));
    }
    const auto wire = mac::encode_report(report);

    if (rng.bernoulli(cfg_.wifi.loss_probability)) continue;  // lost
    if (cfg_.faults.rx_down(k, t_s)) continue;
    if (cfg_.faults.reports_blocked(t_s)) continue;
    const auto decoded = mac::decode_report(wire);
    if (!decoded || decoded->gains.size() != num_tx()) continue;
    for (std::size_t j = 0; j < num_tx(); ++j) {
      last_reports_[k][j] = decoded->gains[j];
    }
    fresh[k] = true;
  }
  ++epoch_counter_;

  EpochInput input;
  input.measured = channel::ChannelMatrix{
      num_tx(), num_rx(), std::vector<double>(num_tx() * num_rx(), 0.0)};
  for (std::size_t j = 0; j < num_tx(); ++j) {
    for (std::size_t k = 0; k < num_rx(); ++k) {
      input.measured.set_gain(j, k, last_reports_[k][j]);
    }
  }
  input.fresh = std::move(fresh);
  // Dead drivers announce themselves over the Ethernet control plane
  // (BBB heartbeats), so the controller can exclude them immediately.
  if (!cfg_.faults.empty()) {
    input.dead_tx.assign(num_tx(), false);
    for (std::size_t j = 0; j < num_tx(); ++j) {
      input.dead_tx[j] = cfg_.faults.tx_dead(j, t_s);
    }
    input.overrun = cfg_.faults.epoch_overrun(t_s);
  }
  controller_.update_epoch(input);
}

EpochReport DenseVlcSystem::run_epoch_analytic(double t_s) {
  Rng rng = master_rng_.fork();
  measure_and_decide(t_s, rng);
  EpochReport report;
  report.throughput_bps = controller_.expected_throughput(true_channel(t_s));
  report.power_used_w = controller_.power_used_w();
  report.beamspots = controller_.beamspots();
  for (const auto& spot : report.beamspots) {
    report.txs_assigned += spot.txs.size();
  }
  return report;
}

RunReport DenseVlcSystem::run(double duration_s, std::size_t payload_bytes) {
  RunReport report;
  report.rx.resize(num_rx());
  report.duration_s = duration_s;

  Simulator des;
  Rng rng = master_rng_.fork();
  net::EthernetMulticast eth{des, cfg_.ethernet, rng.fork()};
  net::SimLink wifi{des, cfg_.wifi, rng.fork()};
  Rng data_rng = rng.fork();

  // Fixed payload content (deterministic; receivers verify equality).
  std::vector<std::uint8_t> payload(payload_bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7 + 13);
  }

  phy::MacFrame probe_frame;  // airtime sizing only
  probe_frame.payload = payload;
  const double airtime = data_path_.frame_airtime_s(probe_frame);
  const double probe_phase_s =
      static_cast<double>(num_tx()) *
      (cfg_.mac.probe_chip_count + 16.0) / cfg_.ook.chip_rate_hz;
  const double slot_s = airtime + cfg_.mac.guard_period_s +
                        cfg_.ethernet.base_latency_s + 2e-3;

  // The TX plane: one multicast subscriber that radiates commands.
  // Commands for one slot are batched so concurrent beamspots interfere.
  struct SlotCommand {
    std::vector<phy::ControllerFrame> frames;
  };

  // Reused across slots by the batched PHY pass in run_slot.
  JointTransmission::TransmitBatchScratch phy_batch;

  auto run_slot = [&](const SlotCommand& slot) {
    const double now_s = des.now().seconds();
    const auto truth = faulted_channel(now_s);
    // Pre-draw every beamspot's servers/offsets toward its own RX.
    struct Prepared {
      std::size_t rx;
      std::vector<ServingTx> servers;
      phy::MacFrame frame;
      std::vector<std::size_t> tx_ids;
      std::vector<double> offsets;
    };
    std::vector<Prepared> prepared;
    for (const auto& cf : slot.frames) {
      const auto spot = controller_.beamspot_for(cf.frame.dst);
      if (!spot) continue;
      Prepared p;
      p.rx = cf.frame.dst;
      p.frame = cf.frame;
      p.tx_ids = spot->txs;
      p.offsets = draw_tx_offsets(*spot, data_rng, now_s);
      for (std::size_t i = 0; i < spot->txs.size(); ++i) {
        ServingTx s;
        s.tx_id = spot->txs[i];
        s.gain = truth.gain(spot->txs[i], p.rx);
        s.swing_a = controller_.allocation().swing(spot->txs[i], p.rx);
        s.start_offset_s = p.offsets[i];
        p.servers.push_back(s);
      }
      prepared.push_back(std::move(p));
    }

    // One batched PHY pass for every beamspot of the slot: build all
    // lanes' jobs (interference views must outlive the call), then run
    // the front-end and demodulator over all lanes at once. Outcomes and
    // the data_rng stream are bit-identical to per-spot transmit() calls.
    std::vector<std::vector<InterfererGroup>> interference(prepared.size());
    std::vector<JointTransmission::TransmitJob> jobs(prepared.size());
    for (std::size_t pi = 0; pi < prepared.size(); ++pi) {
      const auto& p = prepared[pi];
      // Other beamspots are interference at this RX.
      std::vector<InterfererGroup>& interferers = interference[pi];
      for (const auto& q : prepared) {
        if (q.rx == p.rx) continue;
        InterfererGroup group;
        group.frame = q.frame;
        for (std::size_t i = 0; i < q.tx_ids.size(); ++i) {
          ServingTx s;
          s.tx_id = q.tx_ids[i];
          s.gain = truth.gain(q.tx_ids[i], p.rx);
          s.swing_a = controller_.allocation().swing(q.tx_ids[i], q.rx);
          s.start_offset_s = q.offsets[i];
          group.txs.push_back(s);
        }
        interferers.push_back(std::move(group));
      }
      jobs[pi] = JointTransmission::TransmitJob{p.servers, &p.frame,
                                                interferers, 0.0};
    }
    std::vector<TransmissionOutcome> outcomes(prepared.size());
    data_path_.transmit_batch(jobs, data_rng, outcomes, phy_batch);

    for (std::size_t pi = 0; pi < prepared.size(); ++pi) {
      const auto& p = prepared[pi];
      ++report.rx[p.rx].frames_sent;
      const TransmissionOutcome& outcome = outcomes[pi];
      if (outcome.delivered && !cfg_.faults.rx_down(p.rx, now_s)) {
        ++report.rx[p.rx].frames_delivered;
        report.rx[p.rx].payload_bits_delivered +=
            p.frame.payload.size() * 8;
        // MAC acknowledgement over WiFi. A lost ACK only dents the
        // counter (wifi.stats() keeps the tally); stop-and-wait
        // recovery lives in run_arq().
        const std::size_t rx_id = p.rx;
        (void)wifi.send({static_cast<std::uint8_t>(rx_id)},
                        [&report, rx_id](const std::vector<std::uint8_t>&) {
                          ++report.rx[rx_id].acks_received;
                        });
      }
    }
  };

  eth.subscribe([&](std::size_t, const std::vector<std::uint8_t>& bytes) {
    // One byte per frame count, then serialized controller frames.
    SlotCommand slot;
    std::size_t at = 1;
    const std::size_t count = bytes.empty() ? 0 : bytes[0];
    for (std::size_t i = 0; i < count && at < bytes.size(); ++i) {
      const auto cf = phy::parse_controller_frame(
          std::span<const std::uint8_t>{bytes}.subspan(at));
      if (!cf) break;
      slot.frames.push_back(*cf);
      at += 9 + phy::serialized_frame_bytes(cf->frame.payload.size());
    }
    run_slot(slot);
  });

  const auto epochs = static_cast<std::size_t>(
      std::ceil(duration_s / cfg_.mac.epoch_period_s));
  report.epochs = epochs;

  for (std::size_t e = 0; e < epochs; ++e) {
    const double epoch_start =
        static_cast<double>(e) * cfg_.mac.epoch_period_s;
    const double epoch_end =
        std::min(duration_s, epoch_start + cfg_.mac.epoch_period_s);
    des.schedule_at(SimTime::from_seconds(epoch_start), [&, epoch_start,
                                                         epoch_end] {
      measure_and_decide(epoch_start, data_rng);
      double t = epoch_start + probe_phase_s;
      while (t + slot_s <= epoch_end) {
        des.schedule_at(SimTime::from_seconds(t), [&] {
          // Build the slot's multicast command: one frame per beamspot.
          std::vector<std::uint8_t> wire;
          std::uint8_t count = 0;
          std::vector<std::uint8_t> body;
          for (const auto& spot : controller_.beamspots()) {
            auto cf = controller_.make_data_command(spot.rx, payload,
                                                    /*src=*/0xC0);
            if (!cf) continue;
            const auto ser = phy::serialize_controller_frame(*cf);
            body.insert(body.end(), ser.begin(), ser.end());
            ++count;
          }
          wire.push_back(count);
          wire.insert(wire.end(), body.begin(), body.end());
          eth.send(wire);
        });
        t += slot_s;
      }
    });
  }

  des.run_until(SimTime::from_seconds(duration_s + 1.0));
  return report;
}

DenseVlcSystem::ArqReport DenseVlcSystem::run_arq(
    double duration_s, std::size_t payload_bytes,
    std::size_t segments_per_rx, std::size_t max_attempts) {
  ArqReport report;
  report.rx.resize(num_rx());
  report.duration_s = duration_s;

  Rng rng = master_rng_.fork();

  // Offer every RX its workload up front.
  std::vector<mac::ArqTransmitter> senders;
  std::vector<mac::ArqReceiver> receivers(num_rx());
  for (std::size_t k = 0; k < num_rx(); ++k) {
    senders.emplace_back(max_attempts);
    for (std::size_t s = 0; s < segments_per_rx; ++s) {
      std::vector<std::uint8_t> data(payload_bytes);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>(i + s * 31 + k * 7);
      }
      senders[k].enqueue(std::move(data));
    }
    report.rx[k].segments_offered = segments_per_rx;
  }

  // Slot sizing: ARQ payloads carry one extra sequence byte.
  phy::MacFrame sizing;
  sizing.payload.assign(payload_bytes + 1, 0);
  const double airtime = data_path_.frame_airtime_s(sizing);
  const double slot_s = airtime + cfg_.mac.guard_period_s +
                        cfg_.ethernet.base_latency_s + 2e-3;
  const double probe_phase_s =
      static_cast<double>(num_tx()) *
      (cfg_.mac.probe_chip_count + 16.0) / cfg_.ook.chip_rate_hz;

  double t = 0.0;
  double next_epoch = 0.0;
  while (t + slot_s <= duration_s) {
    if (t >= next_epoch) {
      measure_and_decide(t, rng);
      next_epoch += cfg_.mac.epoch_period_s;
      t += probe_phase_s;
      if (t + slot_s > duration_s) break;
    }

    // Collect this slot's transmissions (one per backlogged beamspot).
    struct SlotTx {
      std::size_t rx;
      mac::Segment segment;
      phy::MacFrame frame;
      Beamspot spot;
      std::vector<double> offsets;
    };
    std::vector<SlotTx> slot;
    for (const auto& spot : controller_.beamspots()) {
      const auto segment = senders[spot.rx].next_segment();
      if (!segment) continue;
      SlotTx entry;
      entry.rx = spot.rx;
      entry.segment = *segment;
      entry.frame.dst = static_cast<std::uint16_t>(spot.rx);
      entry.frame.src = 0xC0;
      entry.frame.protocol = static_cast<std::uint16_t>(
          phy::Protocol::kData);
      entry.frame.payload = mac::encode_segment(*segment);
      entry.spot = spot;
      entry.offsets = draw_tx_offsets(spot, rng, t);
      slot.push_back(std::move(entry));
    }
    if (slot.empty()) {
      bool anything_left = false;
      for (const auto& sender : senders) {
        anything_left = anything_left || sender.backlog() > 0;
      }
      if (!anything_left) break;  // workload finished
      t += slot_s;
      continue;
    }

    const auto truth = faulted_channel(t);
    for (const auto& entry : slot) {
      std::vector<ServingTx> servers;
      for (std::size_t i = 0; i < entry.spot.txs.size(); ++i) {
        const std::size_t tx = entry.spot.txs[i];
        servers.push_back({tx, truth.gain(tx, entry.rx),
                           controller_.allocation().swing(tx, entry.rx),
                           entry.offsets[i]});
      }
      std::vector<InterfererGroup> interferers;
      for (const auto& other : slot) {
        if (other.rx == entry.rx) continue;
        InterfererGroup group;
        group.frame = other.frame;
        for (std::size_t i = 0; i < other.spot.txs.size(); ++i) {
          const std::size_t tx = other.spot.txs[i];
          group.txs.push_back(
              {tx, truth.gain(tx, entry.rx),
               controller_.allocation().swing(tx, other.rx),
               other.offsets[i]});
        }
        interferers.push_back(std::move(group));
      }

      ++report.rx[entry.rx].transmissions;
      const auto outcome =
          data_path_.transmit(servers, entry.frame, rng, interferers);
      bool acked = false;
      if (outcome.delivered && !cfg_.faults.rx_down(entry.rx, t)) {
        const auto decoded = mac::decode_segment(entry.frame.payload);
        const auto rx_outcome = receivers[entry.rx].on_segment(*decoded);
        if (!rx_outcome.deliver_to_app) {
          ++report.rx[entry.rx].duplicates;
        }
        // The ACK rides the lossy WiFi uplink.
        if (!rng.bernoulli(cfg_.wifi.loss_probability)) {
          acked = senders[entry.rx].on_ack(rx_outcome.ack_seq);
        }
      }
      if (!acked) {
        // A give-up is the transmitter's typed notice that the retry
        // budget is gone; the controller tallies delivery failures here.
        if (senders[entry.rx].on_timeout()) {
          ++report.rx[entry.rx].give_ups;
        }
      }
    }
    t += slot_s;
  }

  for (std::size_t k = 0; k < num_rx(); ++k) {
    report.rx[k].segments_delivered = senders[k].delivered();
    report.rx[k].segments_dropped = senders[k].dropped();
    DVLC_ASSERT(report.rx[k].give_ups == report.rx[k].segments_dropped,
                "every dropped segment must surface one give-up notice");
  }
  return report;
}

}  // namespace densevlc::core
