#include "core/beamspot.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "dsp/snr_estimator.hpp"

namespace densevlc::core {

JointTransmission::JointTransmission(const optics::LedModel& led,
                                     const phy::OokParams& ook,
                                     const phy::FrontEndConfig& frontend)
    : led_{led}, ook_{ook}, frontend_{frontend} {}

double JointTransmission::frame_airtime_s(const phy::MacFrame& frame) const {
  const auto chips = phy::frame_to_chips(frame).size();
  return static_cast<double>(chips) / ook_.chip_rate_hz;
}

void JointTransmission::render_optical_into(
    std::span<const ServingTx> servers, const phy::MacFrame& frame,
    std::span<const InterfererGroup> interferers, double ambient_optical_w,
    dsp::Waveform& optical) const {
  const auto chips = phy::frame_to_chips(frame);
  const double tx_rate = ook_.sample_rate_hz();

  // Every participating chip stream shares one timeline.
  std::size_t longest_chips = chips.size();
  double max_offset = 0.0;
  for (const auto& s : servers) {
    max_offset = std::max(max_offset, std::fabs(s.start_offset_s));
  }
  std::vector<std::vector<phy::Chip>> interferer_chips;
  interferer_chips.reserve(interferers.size());
  for (const auto& group : interferers) {
    interferer_chips.push_back(phy::frame_to_chips(group.frame));
    longest_chips = std::max(longest_chips, interferer_chips.back().size());
    for (const auto& s : group.txs) {
      max_offset = std::max(max_offset, std::fabs(s.start_offset_s));
    }
  }

  const std::size_t guard_samples = 16 * ook_.samples_per_chip;
  const auto offset_samples_max =
      static_cast<std::size_t>(std::ceil(max_offset * tx_rate));
  const std::size_t total = longest_chips * ook_.samples_per_chip +
                            2 * guard_samples + 2 * offset_samples_max;

  optical.sample_rate_hz = tx_rate;
  optical.samples.assign(total, ambient_optical_w);

  const double eta = led_.electrical().wall_plug_efficiency;
  const double bias = led_.operating_point().bias_current_a;
  const auto base_start =
      static_cast<double>(guard_samples + offset_samples_max);

  auto add_stream = [&](const ServingTx& server,
                        const std::vector<phy::Chip>& stream) {
    if (server.gain <= 0.0) return;
    const auto start = static_cast<std::ptrdiff_t>(
        base_start +
        static_cast<double>(std::llround(server.start_offset_s * tx_rate)));
    const double half = server.swing_a / 2.0;
    const double p_bias =
        eta * led_.power_at_current(Amperes{bias}).value();
    const double p_high =
        eta * led_.power_at_current(Amperes{bias + half}).value();
    const double p_low =
        eta * led_.power_at_current(Amperes{bias - half}).value();
    const auto frame_samples = static_cast<std::ptrdiff_t>(
        stream.size() * ook_.samples_per_chip);

    for (std::size_t s = 0; s < total; ++s) {
      const auto rel = static_cast<std::ptrdiff_t>(s) - start;
      double level;
      if (rel < 0 || rel >= frame_samples) {
        level = p_bias;  // idle illumination before/after the frame
      } else {
        const auto chip_idx =
            static_cast<std::size_t>(rel) / ook_.samples_per_chip;
        level = stream[chip_idx] == phy::Chip::kHigh ? p_high : p_low;
      }
      optical.samples[s] += server.gain * level;
    }
  };

  for (const auto& server : servers) add_stream(server, chips);
  for (std::size_t g = 0; g < interferers.size(); ++g) {
    for (const auto& itx : interferers[g].txs) {
      add_stream(itx, interferer_chips[g]);
    }
  }
}

TransmissionOutcome JointTransmission::transmit(
    std::span<const ServingTx> servers, const phy::MacFrame& frame,
    Rng& rng, std::span<const InterfererGroup> interferers,
    double ambient_optical_w) const {
  TransmissionOutcome out;
  if (servers.empty()) return out;

  dsp::Waveform optical;
  render_optical_into(servers, frame, interferers, ambient_optical_w,
                      optical);

  phy::ReceiverFrontEnd fe{frontend_, rng.fork()};
  const dsp::Waveform rx = fe.process(optical);

  const phy::OokDemodulator demod{ook_.chip_rate_hz,
                                  frontend_.adc.sample_rate_hz};
  const auto result = demod.receive_frame(rx.samples);
  if (!result) return out;

  out.preamble_found = true;
  out.correlation = result->correlation;
  out.corrected_bytes = result->parsed.corrected_bytes;
  out.delivered = result->parsed.frame == frame;
  if (const auto snr = dsp::m2m4_snr(rx.samples)) {
    out.snr_estimate_db = snr->snr_db;
  }
  return out;
}

void JointTransmission::transmit_batch(std::span<const TransmitJob> jobs,
                                       Rng& rng,
                                       std::span<TransmissionOutcome> outcomes,
                                       TransmitBatchScratch& scratch) const {
  const std::size_t n = jobs.size();
  DVLC_EXPECT(outcomes.size() == n,
              "transmit_batch: one outcome per job");
  scratch.optical.resize(n);
  scratch.rx.resize(n);
  scratch.active.clear();
  for (std::size_t i = 0; i < n; ++i) {
    outcomes[i] = TransmissionOutcome{};
    if (jobs[i].servers.empty()) continue;  // scalar path never forks here
    render_optical_into(jobs[i].servers, *jobs[i].frame, jobs[i].interferers,
                        jobs[i].ambient_optical_w, scratch.optical[i]);
    scratch.active.push_back(i);
  }
  const std::size_t m = scratch.active.size();

  // Rendering draws nothing from `rng`, so forking all noise substreams
  // here — in job order — yields the exact per-lane streams of the
  // sequential transmit() calls.
  scratch.fes.clear();
  scratch.fes.reserve(m);
  scratch.fe_ptrs.resize(m);
  scratch.optical_ptrs.resize(m);
  scratch.rx_ptrs.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t lane = scratch.active[j];
    scratch.fes.emplace_back(frontend_, rng.fork());
    scratch.optical_ptrs[j] = &scratch.optical[lane];
    scratch.rx_ptrs[j] = &scratch.rx[lane];
  }
  for (std::size_t j = 0; j < m; ++j) scratch.fe_ptrs[j] = &scratch.fes[j];
  phy::ReceiverFrontEnd::process_batch_into(scratch.fe_ptrs,
                                            scratch.optical_ptrs,
                                            scratch.rx_ptrs,
                                            scratch.fe_scratch);

  const phy::OokDemodulator demod{ook_.chip_rate_hz,
                                  frontend_.adc.sample_rate_hz};
  scratch.signals.resize(m);
  scratch.results.resize(m);
  scratch.ok.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    scratch.signals[j] = scratch.rx_ptrs[j]->samples;
  }
  demod.receive_batch_into(scratch.signals, scratch.results, scratch.ok,
                           scratch.rx_scratch);

  for (std::size_t j = 0; j < m; ++j) {
    if (scratch.ok[j] == 0) continue;  // scalar leaves the default outcome
    const std::size_t lane = scratch.active[j];
    const phy::OokDemodulator::RxResult& r = scratch.results[j];
    TransmissionOutcome& out = outcomes[lane];
    out.preamble_found = true;
    out.correlation = r.correlation;
    out.corrected_bytes = r.parsed.corrected_bytes;
    out.delivered = r.parsed.frame == *jobs[lane].frame;
    if (const auto snr = dsp::m2m4_snr(scratch.signals[j])) {
      out.snr_estimate_db = snr->snr_db;
    }
  }
}

}  // namespace densevlc::core
