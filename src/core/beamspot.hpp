// Joint multi-TX transmission emulation (the beamspot data path).
//
// All TXs of a beamspot radiate the same Manchester frame; the receiver
// sees the superposition of their optical signals, each scaled by its
// channel gain and shifted by its residual start-time error. This class
// renders that superposition at waveform level and runs it through the RX
// front-end and demodulator — the code path behind Table 5's iperf rows,
// where misaligned frames from unsynchronized BBBs destroy each other and
// NLOS-synchronized ones decode cleanly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "optics/led_model.hpp"
#include "phy/frame.hpp"
#include "phy/frontend.hpp"
#include "phy/ook.hpp"

namespace densevlc::core {

/// One transmitter participating in a beamspot transmission.
struct ServingTx {
  std::size_t tx_id = 0;
  double gain = 0.0;            ///< channel gain H to the target RX
  double swing_a = 0.9;         ///< assigned swing
  double start_offset_s = 0.0;  ///< residual sync error vs. nominal start
};

/// Result of one frame transmission attempt.
struct TransmissionOutcome {
  bool delivered = false;        ///< decoded and payload matches
  bool preamble_found = false;
  std::size_t corrected_bytes = 0;
  double correlation = 0.0;
  double snr_estimate_db = 0.0;  ///< M2M4 over the frame (0 if unfound)
};

/// Another beamspot radiating a different frame concurrently — its TXs
/// appear at this RX as structured interference.
struct InterfererGroup {
  std::vector<ServingTx> txs;  ///< gains are toward the *victim* RX
  phy::MacFrame frame;
};

/// Renders and receives joint transmissions.
class JointTransmission {
 public:
  JointTransmission(const optics::LedModel& led, const phy::OokParams& ook,
                    const phy::FrontEndConfig& frontend);

  /// Transmits `frame` from every serving TX simultaneously (up to their
  /// start offsets) and attempts reception. `interferers` radiate their
  /// own frames on the same timeline. `ambient_optical_w` adds a constant
  /// ambient-light term (stripped by AC coupling but consuming ADC
  /// headroom).
  TransmissionOutcome transmit(std::span<const ServingTx> servers,
                               const phy::MacFrame& frame, Rng& rng,
                               std::span<const InterfererGroup> interferers = {},
                               double ambient_optical_w = 0.0) const;

  /// On-air duration of a frame [s] (chips / chip rate), excluding guards.
  double frame_airtime_s(const phy::MacFrame& frame) const;

  // --- Batch transmission path (see phy/frame_batch.hpp) ----------------

  /// One lane of transmit_batch: the arguments of one transmit() call.
  /// Referenced spans/frames must stay alive for the call.
  struct TransmitJob {
    std::span<const ServingTx> servers;
    const phy::MacFrame* frame = nullptr;
    std::span<const InterfererGroup> interferers;
    double ambient_optical_w = 0.0;
  };

  /// Batch workspace: per-lane waveforms plus the front-end and
  /// demodulator batch scratch. Reuse across slots.
  struct TransmitBatchScratch {
    std::vector<dsp::Waveform> optical;
    std::vector<dsp::Waveform> rx;
    std::vector<std::size_t> active;
    std::vector<phy::ReceiverFrontEnd> fes;
    std::vector<phy::ReceiverFrontEnd*> fe_ptrs;
    std::vector<const dsp::Waveform*> optical_ptrs;
    std::vector<dsp::Waveform*> rx_ptrs;
    std::vector<std::span<const double>> signals;
    std::vector<phy::OokDemodulator::RxResult> results;
    std::vector<std::uint8_t> ok;
    phy::ReceiverFrontEnd::BatchScratch fe_scratch;
    phy::OokDemodulator::BatchRxScratch rx_scratch;
  };

  /// Transmits every job and fills outcomes[i] exactly as the equivalent
  /// sequence of transmit() calls would — bit-identical outcomes and Rng
  /// stream (lanes render first, which draws nothing; noise substreams
  /// fork in job order, skipping lanes with no servers, exactly like the
  /// sequential early-return). The receive side runs the batch front-end
  /// and demodulator paths.
  void transmit_batch(std::span<const TransmitJob> jobs, Rng& rng,
                      std::span<TransmissionOutcome> outcomes,
                      TransmitBatchScratch& scratch) const;

 private:
  // DVLC_LINT_WAIVE(api-into-wrapper): private pipeline stage, not an API
  void render_optical_into(std::span<const ServingTx> servers,
                           const phy::MacFrame& frame,
                           std::span<const InterfererGroup> interferers,
                           double ambient_optical_w,
                           dsp::Waveform& optical) const;

  optics::LedModel led_;
  phy::OokParams ook_;
  phy::FrontEndConfig frontend_;
};

}  // namespace densevlc::core
