#include "core/coverage.hpp"

#include <algorithm>

#include "alloc/assignment.hpp"

namespace densevlc::core {

double CoverageResult::coverage_fraction(double threshold_fraction) const {
  if (throughput_mbps.values.empty() || max_mbps <= 0.0) return 0.0;
  const double threshold = threshold_fraction * max_mbps;
  std::size_t covered = 0;
  for (double v : throughput_mbps.values) {
    covered += v >= threshold ? 1 : 0;
  }
  return static_cast<double>(covered) /
         static_cast<double>(throughput_mbps.values.size());
}

CoverageResult compute_coverage(const Testbed& testbed,
                                const CoverageConfig& cfg,
                                const std::vector<std::size_t>& failed_txs) {
  CoverageResult out;
  const std::size_t n = cfg.raster_per_axis;
  out.throughput_mbps.width = n;
  out.throughput_mbps.height = n;
  out.throughput_mbps.values.assign(n * n, 0.0);
  if (n == 0) return out;

  alloc::AssignmentOptions opts;
  opts.max_swing_a = cfg.max_swing_a;
  opts.allow_partial_tail = true;

  const double dx =
      n > 1 ? testbed.room.width / static_cast<double>(n - 1) : 0.0;
  const double dy =
      n > 1 ? testbed.room.depth / static_cast<double>(n - 1) : 0.0;

  double sum = 0.0;
  bool first = true;
  for (std::size_t iy = 0; iy < n; ++iy) {
    for (std::size_t ix = 0; ix < n; ++ix) {
      const double x = static_cast<double>(ix) * dx;
      const double y = static_cast<double>(iy) * dy;
      auto h = testbed.channel_for({{x, y, 0.0}});
      for (std::size_t dead : failed_txs) {
        if (dead < h.num_tx()) h.set_gain(dead, 0, 0.0);
      }
      const auto res = alloc::heuristic_allocate(
          h, cfg.kappa, Watts{cfg.power_budget_w}, testbed.budget, opts);
      const double mbps =
          channel::throughput_bps(h, res.allocation, testbed.budget)[0] /
          1e6;
      // Image row 0 is the top: y = max renders first.
      out.throughput_mbps.values[(n - 1 - iy) * n + ix] = mbps;
      sum += mbps;
      if (first) {
        out.min_mbps = out.max_mbps = mbps;
        first = false;
      } else {
        out.min_mbps = std::min(out.min_mbps, mbps);
        out.max_mbps = std::max(out.max_mbps, mbps);
      }
    }
  }
  out.mean_mbps = sum / static_cast<double>(n * n);
  return out;
}

}  // namespace densevlc::core
