#include "core/energy.hpp"

namespace densevlc::core {

void EnergyMeter::accumulate(const channel::Allocation& alloc, double dt_s,
                             const channel::LinkBudget& budget) {
  if (dt_s <= 0.0) return;
  const Seconds dt{dt_s};
  // W * s = J, derived by the quantity algebra.
  illumination_j_ +=
      (led_.illumination_power() * static_cast<double>(num_tx_) * dt).value();
  Watts comm{0.0};
  for (std::size_t j = 0; j < alloc.num_tx(); ++j) {
    comm += channel::tx_comm_power(alloc.tx_total_swing(j), budget);
  }
  communication_j_ += (comm * dt).value();
}

}  // namespace densevlc::core
