// Top-level system configuration for DenseVLC.
//
// Bundles every subsystem's parameters with the defaults of paper
// Table 1 and Sec. 7-8, so `SystemConfig{}` is the paper's testbed.
#pragma once

#include <cstddef>

#include "core/controller.hpp"
#include "fault/fault.hpp"
#include "net/links.hpp"
#include "optics/nlos.hpp"
#include "phy/frontend.hpp"
#include "phy/ook.hpp"
#include "core/testbed.hpp"
#include "sync/timesync.hpp"

namespace densevlc::core {

/// How the TXs of a beamspot get their common start time.
enum class SyncMode {
  kNone,     ///< fire on multicast arrival (Table 5 row 2 behaviour)
  kNtpPtp,   ///< software clock sync (Sec. 6.1)
  kNlosVlc,  ///< leading-TX pilot over the floor bounce (Sec. 6.2)
};

/// MAC epoch timing.
struct MacTiming {
  double probe_chip_count = 64;     ///< chips per channel-measurement probe
  double epoch_period_s = 1.0;      ///< re-measure / re-allocate interval
  double guard_period_s = 100e-6;   ///< between pilot end and data start
};

/// Everything needed to instantiate the full system.
struct SystemConfig {
  Testbed testbed = make_experimental_testbed();
  phy::OokParams ook{};                 ///< 100 kchip/s, Table 1 currents
  phy::FrontEndConfig frontend{};       ///< RX chain incl. 1 Msps ADC
  sync::TimeSyncConfig timesync{};      ///< NTP/PTP + no-sync calibration
  optics::FloorSurface floor{};         ///< NLOS bounce surface
  SyncMode sync_mode = SyncMode::kNlosVlc;
  MacTiming mac{};
  net::LinkConfig ethernet{100e-6, 15e-6, 0.0};   ///< controller -> TXs
  net::LinkConfig wifi{1.5e-3, 0.5e-3, 0.01};     ///< RX -> controller
  double kappa = 1.3;                   ///< SJR heuristic weight
  bool personalize_kappa = false;       ///< per-TX kappa search per epoch
  double power_budget_w = 1.2;          ///< P_C,tot for communication
  double max_swing_a = 0.9;             ///< Isw,max
  std::uint64_t seed = 0xD5EED;         ///< master randomness seed
  /// Re-probe only links whose physical channel changed since the last
  /// epoch; unchanged RX columns keep their previous measurement instead
  /// of burning probe airtime on a fresh (noisy) estimate. Off by
  /// default: the legacy full sweep re-draws every link each epoch, and
  /// the two modes only agree bit for bit while every column is dirty.
  bool incremental_probing = false;
  DegradationConfig degradation{};      ///< controller fallback behaviour
  fault::FaultSchedule faults{};        ///< injected component failures
};

}  // namespace densevlc::core
