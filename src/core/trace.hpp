// Run tracing: structured CSV timelines of what the controller decided.
//
// Long-running experiments need post-hoc inspection — which beamspots
// formed when, how throughput moved, what the power budget did. The
// TraceRecorder accumulates one row per (epoch, RX) and renders CSV that
// spreadsheet tools and plotting scripts ingest directly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/quantity.hpp"
#include "core/controller.hpp"

namespace densevlc::core {

/// One per-RX snapshot of an epoch.
struct TraceRow {
  double time_s = 0.0;
  std::size_t rx = 0;
  double throughput_bps = 0.0;
  std::size_t serving_txs = 0;
  std::size_t leader = 0;       ///< 0-based TX id; only valid if served
  bool served = false;
  double power_used_w = 0.0;    ///< whole-system figure, repeated per RX
};

/// Collects epoch snapshots and renders them.
class TraceRecorder {
 public:
  /// Records one epoch: per-RX throughputs plus the beamspot layout.
  /// The throughput vector is raw bulk storage in bit/s (the controller
  /// hands it over verbatim); the scalar epoch facts are typed.
  void record_epoch(Seconds time,
                    const std::vector<double>& throughput_bps,
                    const std::vector<Beamspot>& beamspots,
                    Watts power_used);

  /// All rows so far, epoch-major then RX-major.
  const std::vector<TraceRow>& rows() const { return rows_; }

  /// Number of epochs recorded.
  std::size_t epochs() const { return epochs_; }

  /// Renders CSV with a header line.
  void write_csv(std::ostream& os) const;

  /// Convenience: writes to a file; false on I/O error.
  [[nodiscard]] bool save(const std::string& path) const;

  /// Number of receivers per epoch (fixed after the first record_epoch).
  std::size_t num_rx() const { return num_rx_; }

  /// Per-RX mean throughput across all recorded epochs.
  /// Precondition: rx < num_rx() once any epoch has been recorded.
  BitsPerSecond mean_throughput(std::size_t rx) const;

  /// Number of epochs in which the RX's leader changed from the
  /// previous epoch (a beamspot handover).
  /// Precondition: rx < num_rx() once any epoch has been recorded.
  std::size_t leader_changes(std::size_t rx) const;

 private:
  std::vector<TraceRow> rows_;
  std::size_t epochs_ = 0;
  std::size_t num_rx_ = 0;
};

}  // namespace densevlc::core
