// The DenseVLC controller: decision logic and beamspot orchestration
// (paper Sec. 3.2).
//
// The controller periodically receives measured downlink channel
// qualities from the RXs, runs the SJR ranking heuristic under the
// configured power budget, groups the selected TXs into per-RX beamspots,
// and appoints each beamspot's leading TX (the member with the best
// channel to the served RX — its pilot also reaches the co-serving TXs
// best, since they are its neighbours).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "alloc/assignment.hpp"
#include "channel/model.hpp"
#include "phy/frame.hpp"

namespace densevlc::core {

/// A formed beamspot: the TXs jointly serving one RX.
struct Beamspot {
  std::size_t rx = 0;
  std::vector<std::size_t> txs;  ///< serving TX ids, rank order
  std::size_t leader = 0;        ///< appointed leading TX
};

/// Decision-logic configuration.
struct ControllerConfig {
  double kappa = 1.3;
  double power_budget_w = 1.2;
  double max_swing_a = 0.9;
  channel::LinkBudget link_budget{};
  /// Run the per-TX kappa personalization (paper Sec. 9) on every
  /// channel update instead of the uniform-kappa ranking. Costs a few
  /// hundred heuristic evaluations per epoch (~ms) for a utility bump.
  bool personalize_kappa = false;
};

/// Holds the latest measurements and the allocation derived from them.
class Controller {
 public:
  explicit Controller(const ControllerConfig& cfg) : cfg_{cfg} {}

  const ControllerConfig& config() const { return cfg_; }

  /// Ingests a fresh measured channel matrix and recomputes the
  /// allocation and beamspots. Returns the number of TXs assigned.
  std::size_t update_channel(const channel::ChannelMatrix& measured);

  /// Latest allocation (zero-size before the first update).
  const channel::Allocation& allocation() const { return alloc_; }

  /// Beamspots formed by the latest update (empty RX groups omitted).
  const std::vector<Beamspot>& beamspots() const { return beamspots_; }

  /// Beamspot serving `rx`, if any TX was assigned to it.
  std::optional<Beamspot> beamspot_for(std::size_t rx) const;

  /// Communication power the latest allocation draws [W].
  double power_used_w() const { return power_used_w_; }

  /// Expected per-RX Shannon throughput under a (typically the true)
  /// channel matrix [bit/s].
  std::vector<double> expected_throughput(
      const channel::ChannelMatrix& truth) const;

  /// Builds the Ethernet frame commanding a data transmission to `rx`:
  /// TX mask of the serving beamspot, its leader, and the MAC frame.
  /// Returns nullopt when no beamspot serves `rx`.
  std::optional<phy::ControllerFrame> make_data_command(
      std::size_t rx, std::vector<std::uint8_t> payload,
      std::uint16_t src) const;

 private:
  ControllerConfig cfg_;
  channel::Allocation alloc_;
  std::vector<Beamspot> beamspots_;
  double power_used_w_ = 0.0;
};

}  // namespace densevlc::core
