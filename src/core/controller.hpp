// The DenseVLC controller: decision logic and beamspot orchestration
// (paper Sec. 3.2).
//
// The controller periodically receives measured downlink channel
// qualities from the RXs, runs the SJR ranking heuristic under the
// configured power budget, groups the selected TXs into per-RX beamspots,
// and appoints each beamspot's leading TX (the member with the best
// channel to the served RX — its pilot also reaches the co-serving TXs
// best, since they are its neighbours).
//
// On top of the paper's happy path sits a graceful-degradation layer
// (see docs/architecture.md, "Fault model"): per-RX report aging with
// exponential-backoff re-probing, a watchdog that falls back to the
// last-good allocation when the epoch overruns or every report goes
// silent, dead-TX exclusion feeding the SJR ranking, and leader
// re-election when a held beamspot's leading TX dies.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "alloc/assignment.hpp"
#include "channel/model.hpp"
#include "phy/frame.hpp"

namespace densevlc::core {

/// A formed beamspot: the TXs jointly serving one RX.
struct Beamspot {
  std::size_t rx = 0;
  std::vector<std::size_t> txs;  ///< serving TX ids, rank order
  std::size_t leader = 0;        ///< appointed leading TX
};

/// Graceful-degradation knobs. Epoch counts are in controller decision
/// periods (cfg.mac.epoch_period_s each).
struct DegradationConfig {
  bool enabled = true;
  /// Silent epochs a last-good column is trusted before it expires and
  /// the RX is released from the allocation.
  std::size_t hold_epochs = 3;
  /// Re-probe cadence for expired RXs: first retry after this many
  /// epochs, doubling per retry up to the cap.
  std::size_t backoff_initial_epochs = 1;
  std::size_t backoff_max_epochs = 8;
};

/// Where an RX's measurement column sits in the aging state machine.
enum class RxLinkState : std::uint8_t {
  kFresh,    ///< report decoded this epoch
  kStale,    ///< silent, but the held column is still trusted
  kExpired,  ///< silent past hold_epochs; released from the allocation
};

/// Per-RX degradation bookkeeping, exposed for tests and benches.
struct RxHealth {
  RxLinkState state = RxLinkState::kFresh;
  std::size_t silent_epochs = 0;       ///< epochs since the last report
  std::size_t backoff_epochs = 1;      ///< current re-probe interval
  std::size_t epochs_until_reprobe = 0;
  std::uint64_t reprobes = 0;          ///< backoff retries issued so far
};

/// One epoch's controller input. Empty `fresh` means every RX reported;
/// empty `dead_tx` means every TX is healthy — so the happy path pays
/// nothing for the fault plumbing.
struct EpochInput {
  channel::ChannelMatrix measured;  ///< assembled controller view
  std::vector<bool> fresh;          ///< per RX: report decoded this epoch
  std::vector<bool> dead_tx;        ///< per TX: exclude from allocation
  bool overrun = false;             ///< decision deadline missed
};

/// Decision-logic configuration.
struct ControllerConfig {
  double kappa = 1.3;
  double power_budget_w = 1.2;
  double max_swing_a = 0.9;
  channel::LinkBudget link_budget{};
  /// Run the per-TX kappa personalization (paper Sec. 9) on every
  /// channel update instead of the uniform-kappa ranking. Costs a few
  /// hundred heuristic evaluations per epoch (~ms) for a utility bump.
  bool personalize_kappa = false;
  DegradationConfig degradation{};
};

/// Holds the latest measurements and the allocation derived from them.
class Controller {
 public:
  explicit Controller(const ControllerConfig& cfg) : cfg_{cfg} {}

  const ControllerConfig& config() const { return cfg_; }

  /// Ingests a fresh measured channel matrix and recomputes the
  /// allocation and beamspots. Returns the number of TXs assigned.
  /// Shorthand for update_epoch with all reports fresh and no faults.
  std::size_t update_channel(const channel::ChannelMatrix& measured);

  /// Full degradation-aware epoch update: ages report freshness, runs
  /// the watchdog, excludes dead TXs from the SJR ranking, and
  /// recomputes (or holds) the allocation. Returns TXs assigned.
  std::size_t update_epoch(const EpochInput& input);

  /// Latest allocation (zero-size before the first update).
  const channel::Allocation& allocation() const { return alloc_; }

  /// Beamspots formed by the latest update (empty RX groups omitted).
  const std::vector<Beamspot>& beamspots() const { return beamspots_; }

  /// Beamspot serving `rx`, if any TX was assigned to it.
  std::optional<Beamspot> beamspot_for(std::size_t rx) const;

  /// Communication power the latest allocation draws [W].
  double power_used_w() const { return power_used_w_; }

  /// Degradation observables.
  const RxHealth& rx_health(std::size_t rx) const;
  std::uint64_t watchdog_holds() const { return watchdog_holds_; }
  std::uint64_t leader_reelections() const { return leader_reelections_; }

  /// Expected per-RX Shannon throughput under a (typically the true)
  /// channel matrix [bit/s].
  std::vector<double> expected_throughput(
      const channel::ChannelMatrix& truth) const;

  /// Builds the Ethernet frame commanding a data transmission to `rx`:
  /// TX mask of the serving beamspot, its leader, and the MAC frame.
  /// Returns nullopt when no beamspot serves `rx`.
  std::optional<phy::ControllerFrame> make_data_command(
      std::size_t rx, std::vector<std::uint8_t> payload,
      std::uint16_t src) const;

 private:
  /// Advances the per-RX aging/backoff state machine for one epoch.
  /// Returns true when at least one RX reported fresh.
  bool age_reports(const std::vector<bool>& fresh, std::size_t num_rx);

  /// Strips dead TXs out of the held beamspots and allocation,
  /// re-electing leaders where the leading TX died.
  void prune_dead_txs(const std::vector<bool>& dead_tx);

  ControllerConfig cfg_;
  channel::Allocation alloc_;
  std::vector<Beamspot> beamspots_;
  double power_used_w_ = 0.0;
  channel::ChannelMatrix last_view_;   ///< measured view of the last decision
  std::vector<RxHealth> health_;
  bool have_decision_ = false;
  std::uint64_t watchdog_holds_ = 0;
  std::uint64_t leader_reelections_ = 0;
};

}  // namespace densevlc::core
