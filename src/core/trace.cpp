#include "core/trace.hpp"

#include <fstream>
#include <ostream>

#include "common/contracts.hpp"

namespace densevlc::core {

void TraceRecorder::record_epoch(Seconds time,
                                 const std::vector<double>& throughput_bps,
                                 const std::vector<Beamspot>& beamspots,
                                 Watts power_used) {
  DVLC_EXPECT(epochs_ == 0 || throughput_bps.size() == num_rx_,
              "RX count changed between epochs");
  DVLC_EXPECT(power_used >= Watts{0.0}, "power_used must be non-negative");
  num_rx_ = throughput_bps.size();
  for (const auto& spot : beamspots) {
    DVLC_EXPECT(spot.rx < throughput_bps.size(),
                "beamspot RX index out of range");
  }
  for (std::size_t rx = 0; rx < throughput_bps.size(); ++rx) {
    TraceRow row;
    row.time_s = time.value();
    row.rx = rx;
    row.throughput_bps = throughput_bps[rx];
    row.power_used_w = power_used.value();
    for (const auto& spot : beamspots) {
      if (spot.rx == rx) {
        row.served = true;
        row.serving_txs = spot.txs.size();
        row.leader = spot.leader;
      }
    }
    rows_.push_back(row);
  }
  ++epochs_;
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "time_s,rx,throughput_bps,served,serving_txs,leader,power_w\n";
  for (const auto& r : rows_) {
    os << r.time_s << ',' << r.rx << ',' << r.throughput_bps << ','
       << (r.served ? 1 : 0) << ',' << r.serving_txs << ','
       << (r.served ? static_cast<long>(r.leader) : -1) << ','
       << r.power_used_w << '\n';
  }
}

bool TraceRecorder::save(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  write_csv(out);
  return static_cast<bool>(out);
}

BitsPerSecond TraceRecorder::mean_throughput(std::size_t rx) const {
  DVLC_EXPECT(epochs_ == 0 || rx < num_rx_,
              "RX index out of range in mean_throughput");
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& r : rows_) {
    if (r.rx == rx) {
      sum += r.throughput_bps;
      ++count;
    }
  }
  return BitsPerSecond{count > 0 ? sum / static_cast<double>(count) : 0.0};
}

std::size_t TraceRecorder::leader_changes(std::size_t rx) const {
  DVLC_EXPECT(epochs_ == 0 || rx < num_rx_,
              "RX index out of range in leader_changes");
  std::size_t changes = 0;
  bool have_prev = false;
  std::size_t prev = 0;
  bool prev_served = false;
  for (const auto& r : rows_) {
    if (r.rx != rx) continue;
    if (have_prev && r.served && prev_served && r.leader != prev) {
      ++changes;
    }
    prev = r.leader;
    prev_served = r.served;
    have_prev = true;
  }
  return changes;
}

}  // namespace densevlc::core
