// Multi-link channel abstraction: gains, SINR, throughput, power.
//
// This module implements the system model of paper Sec. 3.3-3.4 for N
// transmitters and M receivers:
//
//   SINR_i = (R eta r sum_j H_{j,i} (I^{j,i}/2)^2)^2
//            -----------------------------------------------------  (Eq. 12)
//            N0 B + (R eta r sum_{k != i} sum_j H_{j,i} (I^{j,k}/2)^2)^2
//
//   P_C,tot = sum_j r * (sum_k I^{j,k} / 2)^2                       (Eq. 7)
//
//   throughput_i = B log2(1 + SINR_i), utility = sum_i log(throughput_i)
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "common/quantity.hpp"
#include "geom/vec3.hpp"
#include "optics/lambertian.hpp"
#include "optics/led_model.hpp"

namespace densevlc::channel {

/// The N x M line-of-sight gain matrix between TXs (rows) and RXs (cols).
class ChannelMatrix {
 public:
  ChannelMatrix() = default;

  /// Dense construction from raw gains (row-major: gains[j * num_rx + k]).
  ChannelMatrix(std::size_t num_tx, std::size_t num_rx,
                std::vector<double> gains);

  /// Computes gains from geometry with the Lambertian LOS model.
  static ChannelMatrix from_geometry(
      const std::vector<geom::Pose>& tx_poses,
      const std::vector<geom::Pose>& rx_poses,
      const optics::LambertianEmitter& emitter, const optics::Photodiode& pd);

  /// Recomputes only the listed RX columns from geometry; every other
  /// entry keeps its value. The per-entry arithmetic is the same call
  /// from_geometry makes, so updating the dirty columns of a cached
  /// matrix is bit-identical to a full rebuild. Dimensions must match.
  void update_columns_from_geometry(
      const std::vector<geom::Pose>& tx_poses,
      const std::vector<geom::Pose>& rx_poses,
      const optics::LambertianEmitter& emitter, const optics::Photodiode& pd,
      std::span<const std::size_t> dirty_rx);

  std::size_t num_tx() const { return num_tx_; }
  std::size_t num_rx() const { return num_rx_; }

  /// Gain H_{tx, rx}.
  double gain(std::size_t tx, std::size_t rx) const {
    DVLC_ASSERT(tx < num_tx_ && rx < num_rx_, "gain index out of range");
    return gains_[tx * num_rx_ + rx];
  }

  /// Mutable access (used by the experimental-measurement pipeline, which
  /// overwrites model gains with measured ones).
  void set_gain(std::size_t tx, std::size_t rx, double h) {
    DVLC_ASSERT(tx < num_tx_ && rx < num_rx_, "set_gain index out of range");
    gains_[tx * num_rx_ + rx] = h;
  }

  /// Index of the TX with the strongest channel to `rx`.
  std::size_t best_tx_for(std::size_t rx) const;

 private:
  std::size_t num_tx_ = 0;
  std::size_t num_rx_ = 0;
  std::vector<double> gains_;
};

/// Scalar link-budget parameters entering the SINR (paper Table 1).
struct LinkBudget {
  double responsivity_a_per_w = 0.4;      ///< R
  double wall_plug_efficiency = 0.4;      ///< eta
  double dynamic_resistance_ohm = 0.2188; ///< r at Ib = 450 mA (CREE XT-E)
  double noise_psd_a2_per_hz = 7.02e-23;  ///< N0 (single-sided)
  double bandwidth_hz = 1e6;              ///< B

  /// Builds the budget from an LED model (derives r and eta).
  static LinkBudget from_led(const optics::LedModel& led,
                             AmperesPerWatt responsivity,
                             AmpsSquaredPerHertz noise_psd, Hertz bandwidth);

  /// Typed views of the scalar fields (the aggregate keeps raw doubles so
  /// designated-initializer call sites stay terse).
  Ohms dynamic_resistance() const { return Ohms{dynamic_resistance_ohm}; }
  Hertz bandwidth() const { return Hertz{bandwidth_hz}; }
  AmpsSquaredPerHertz noise_psd() const {
    return AmpsSquaredPerHertz{noise_psd_a2_per_hz};
  }
};

/// A swing-current allocation: entry (j, k) is TX j's swing dedicated to
/// RX k [A]. Row-major storage. The matrix itself is raw-double bulk
/// storage (the optimizer's vectorized updates run on data()); typed
/// quantities re-enter at the per-TX aggregate (tx_total_swing) and the
/// power functions below.
class Allocation {
 public:
  Allocation() = default;
  Allocation(std::size_t num_tx, std::size_t num_rx)
      : num_tx_{num_tx}, num_rx_{num_rx}, swing_(num_tx * num_rx, 0.0) {}

  std::size_t num_tx() const { return num_tx_; }
  std::size_t num_rx() const { return num_rx_; }

  double swing(std::size_t tx, std::size_t rx) const {
    DVLC_ASSERT(tx < num_tx_ && rx < num_rx_, "swing index out of range");
    return swing_[tx * num_rx_ + rx];
  }
  void set_swing(std::size_t tx, std::size_t rx, double isw) {
    DVLC_ASSERT(tx < num_tx_ && rx < num_rx_, "set_swing index out of range");
    DVLC_EXPECT(isw >= 0.0, "swing current must be non-negative");
    swing_[tx * num_rx_ + rx] = isw;
  }

  /// Total swing emitted by TX j (sum over RXs) — the quantity bounded by
  /// Isw,max in constraint (6) and entering the power in Eq. (7).
  Amperes tx_total_swing(std::size_t tx) const;

  /// Raw storage (for the optimizer's vectorized updates).
  std::vector<double>& data() { return swing_; }
  const std::vector<double>& data() const { return swing_; }

 private:
  std::size_t num_tx_ = 0;
  std::size_t num_rx_ = 0;
  std::vector<double> swing_;
};

/// Per-RX SINR under an allocation (Eq. 12). Vector of length num_rx.
std::vector<double> sinr(const ChannelMatrix& h, const Allocation& alloc,
                         const LinkBudget& budget);

/// Shannon throughput per RX: B log2(1 + SINR) [bit/s].
std::vector<double> throughput_bps(const ChannelMatrix& h,
                                   const Allocation& alloc,
                                   const LinkBudget& budget);

/// Proportional-fairness objective of Eq. (5): sum_i ln(throughput_i).
/// RXs with zero throughput contribute a large negative penalty instead of
/// -inf so gradient methods keep a usable search direction.
double sum_log_utility(const ChannelMatrix& h, const Allocation& alloc,
                       const LinkBudget& budget);

/// Total extra electrical power spent on communication (Eq. 7).
Watts total_comm_power(const Allocation& alloc, const LinkBudget& budget);

/// Communication power drawn by a single TX at total swing `total_swing`:
/// r * (Isw/2)^2, the A^2 * ohm = W product of Eq. (7), dimension-checked
/// at compile time.
Watts tx_comm_power(Amperes total_swing, const LinkBudget& budget);

}  // namespace densevlc::channel
