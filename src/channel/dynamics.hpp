// Temporal channel dynamics (paper Sec. 2.1: "VLC links exhibit high
// dynamics when the TXs and RXs are not static", citing DanceVLC-style
// measurements).
//
// Beyond deterministic geometry changes from mobility, real links
// fluctuate from small orientation wobble, hand shadows and reflections.
// The standard first-order model is a Gauss-Markov multiplicative
// process per link:
//
//   f_{t+dt} = mu + a (f_t - mu) + sqrt(1 - a^2) * sigma * w,
//   a = exp(-dt / tau)
//
// with stationary mean mu = 1, stddev sigma, correlation time tau.
// Fluctuations clamp at zero (gains cannot go negative).
#pragma once

#include <cstddef>
#include <vector>

#include "channel/model.hpp"
#include "common/quantity.hpp"
#include "common/rng.hpp"

namespace densevlc::channel {

/// Parameters of the per-link fluctuation process.
struct FadingConfig {
  double sigma = 0.1;              ///< stationary relative stddev
  double correlation_time_s = 0.5; ///< tau
};

/// Time-correlated multiplicative fading for an N x M link set.
class GaussMarkovFading {
 public:
  /// Factors start at their stationary distribution.
  GaussMarkovFading(std::size_t num_tx, std::size_t num_rx,
                    const FadingConfig& cfg, Rng rng);

  /// Advances all link factors by `dt` seconds.
  void step(Seconds dt);

  /// Current factor of link (tx, rx) (>= 0, mean 1).
  double factor(std::size_t tx, std::size_t rx) const {
    return factors_[tx * num_rx_ + rx];
  }

  /// Applies the current factors to a geometric channel matrix.
  ChannelMatrix apply(const ChannelMatrix& h) const;

  const FadingConfig& config() const { return cfg_; }

 private:
  std::size_t num_tx_;
  std::size_t num_rx_;
  FadingConfig cfg_;
  Rng rng_;
  std::vector<double> factors_;
};

}  // namespace densevlc::channel
