#include "channel/dynamics.hpp"

#include <algorithm>
#include <cmath>

namespace densevlc::channel {

GaussMarkovFading::GaussMarkovFading(std::size_t num_tx, std::size_t num_rx,
                                     const FadingConfig& cfg, Rng rng)
    : num_tx_{num_tx}, num_rx_{num_rx}, cfg_{cfg}, rng_{rng} {
  factors_.resize(num_tx_ * num_rx_);
  for (double& f : factors_) {
    f = std::max(0.0, rng_.gaussian(1.0, cfg_.sigma));
  }
}

void GaussMarkovFading::step(Seconds dt) {
  const double dt_s = dt.value();
  if (dt_s <= 0.0) return;
  const double a = std::exp(-dt_s / cfg_.correlation_time_s);
  const double innovation = std::sqrt(1.0 - a * a) * cfg_.sigma;
  for (double& f : factors_) {
    f = 1.0 + a * (f - 1.0) + rng_.gaussian(0.0, innovation);
    f = std::max(0.0, f);
  }
}

ChannelMatrix GaussMarkovFading::apply(const ChannelMatrix& h) const {
  ChannelMatrix out = h;
  for (std::size_t j = 0; j < num_tx_ && j < h.num_tx(); ++j) {
    for (std::size_t k = 0; k < num_rx_ && k < h.num_rx(); ++k) {
      out.set_gain(j, k, h.gain(j, k) * factor(j, k));
    }
  }
  return out;
}

}  // namespace densevlc::channel
