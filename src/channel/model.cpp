#include "channel/model.hpp"

#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"

namespace densevlc::channel {

ChannelMatrix::ChannelMatrix(std::size_t num_tx, std::size_t num_rx,
                             std::vector<double> gains)
    : num_tx_{num_tx}, num_rx_{num_rx}, gains_{std::move(gains)} {
  if (gains_.size() != num_tx_ * num_rx_) {
    throw std::invalid_argument{"ChannelMatrix: gains size mismatch"};
  }
}

ChannelMatrix ChannelMatrix::from_geometry(
    const std::vector<geom::Pose>& tx_poses,
    const std::vector<geom::Pose>& rx_poses,
    const optics::LambertianEmitter& emitter, const optics::Photodiode& pd) {
  // Parallel over TX rows; each row writes a disjoint slice, so the
  // result is identical to the serial double loop at any thread count.
  const std::size_t m = rx_poses.size();
  std::vector<double> gains(tx_poses.size() * m, 0.0);
  parallel_for(0, tx_poses.size(), [&](std::size_t j) {
    for (std::size_t k = 0; k < m; ++k) {
      gains[j * m + k] = optics::los_gain(emitter, pd, tx_poses[j], rx_poses[k]);
    }
  });
  return ChannelMatrix{tx_poses.size(), rx_poses.size(), std::move(gains)};
}

void ChannelMatrix::update_columns_from_geometry(
    const std::vector<geom::Pose>& tx_poses,
    const std::vector<geom::Pose>& rx_poses,
    const optics::LambertianEmitter& emitter, const optics::Photodiode& pd,
    std::span<const std::size_t> dirty_rx) {
  DVLC_EXPECT(tx_poses.size() == num_tx_ && rx_poses.size() == num_rx_,
              "update_columns_from_geometry: dimension mismatch");
  // Parallel over TX rows like from_geometry; each row writes a disjoint
  // slice, so the result is thread-count independent.
  parallel_for(0, num_tx_, [&](std::size_t j) {
    for (std::size_t k : dirty_rx) {
      DVLC_ASSERT(k < num_rx_, "dirty column out of range");
      gains_[j * num_rx_ + k] =
          optics::los_gain(emitter, pd, tx_poses[j], rx_poses[k]);
    }
  });
}

std::size_t ChannelMatrix::best_tx_for(std::size_t rx) const {
  std::size_t best = 0;
  double best_gain = -1.0;
  for (std::size_t tx = 0; tx < num_tx_; ++tx) {
    if (gain(tx, rx) > best_gain) {
      best_gain = gain(tx, rx);
      best = tx;
    }
  }
  return best;
}

LinkBudget LinkBudget::from_led(const optics::LedModel& led,
                                AmperesPerWatt responsivity,
                                AmpsSquaredPerHertz noise_psd,
                                Hertz bandwidth) {
  DVLC_EXPECT(responsivity.value() > 0.0, "responsivity must be positive");
  DVLC_EXPECT(noise_psd.value() >= 0.0, "noise PSD must be >= 0");
  DVLC_EXPECT(bandwidth.value() > 0.0, "bandwidth must be positive");
  LinkBudget b;
  b.responsivity_a_per_w = responsivity.value();
  b.wall_plug_efficiency = led.electrical().wall_plug_efficiency;
  b.dynamic_resistance_ohm = led.dynamic_resistance().value();
  b.noise_psd_a2_per_hz = noise_psd.value();
  b.bandwidth_hz = bandwidth.value();
  return b;
}

Amperes Allocation::tx_total_swing(std::size_t tx) const {
  double total = 0.0;
  for (std::size_t rx = 0; rx < num_rx_; ++rx) total += swing(tx, rx);
  return Amperes{total};
}

std::vector<double> sinr(const ChannelMatrix& h, const Allocation& alloc,
                         const LinkBudget& budget) {
  const std::size_t n = h.num_tx();
  const std::size_t m = h.num_rx();
  const double scale = budget.responsivity_a_per_w *
                       budget.wall_plug_efficiency *
                       budget.dynamic_resistance_ohm;
  const double noise = budget.noise_psd_a2_per_hz * budget.bandwidth_hz;

  // Photocurrent contributions at RX i from the signals intended for
  // RX k: c[i][k] = scale * sum_j H_{j,i} (I^{j,k}/2)^2.
  std::vector<double> contributions(m * m, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < m; ++k) {
      const double half = alloc.swing(j, k) / 2.0;
      if (half <= 0.0) continue;
      const double power = half * half;
      for (std::size_t i = 0; i < m; ++i) {
        contributions[i * m + k] += h.gain(j, i) * power;
      }
    }
  }

  std::vector<double> out(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double signal_current = scale * contributions[i * m + i];
    double interference_current = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      if (k == i) continue;
      interference_current += scale * contributions[i * m + k];
    }
    const double denom =
        noise + interference_current * interference_current;
    out[i] = denom > 0.0 ? signal_current * signal_current / denom : 0.0;
  }
  return out;
}

std::vector<double> throughput_bps(const ChannelMatrix& h,
                                   const Allocation& alloc,
                                   const LinkBudget& budget) {
  auto s = sinr(h, alloc, budget);
  for (double& v : s) {
    v = budget.bandwidth_hz * std::log2(1.0 + v);
  }
  return s;
}

double sum_log_utility(const ChannelMatrix& h, const Allocation& alloc,
                       const LinkBudget& budget) {
  const auto tput = throughput_bps(h, alloc, budget);
  double utility = 0.0;
  for (double t : tput) {
    // Floor at 1 bit/s: log(0) would sink the objective to -inf and erase
    // all gradient information for the other receivers.
    utility += std::log(t > 1.0 ? t : 1.0) + (t > 1.0 ? 0.0 : t - 1.0);
  }
  return utility;
}

Watts tx_comm_power(Amperes total_swing, const LinkBudget& budget) {
  DVLC_EXPECT(total_swing.value() >= 0.0,
              "total drive-current swing must be >= 0");
  const Amperes half = total_swing / 2.0;
  return half * half * budget.dynamic_resistance();
}

Watts total_comm_power(const Allocation& alloc, const LinkBudget& budget) {
  Watts total{0.0};
  for (std::size_t j = 0; j < alloc.num_tx(); ++j) {
    total += tx_comm_power(alloc.tx_total_swing(j), budget);
  }
  return total;
}

}  // namespace densevlc::channel
