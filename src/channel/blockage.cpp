#include "channel/blockage.hpp"

#include <algorithm>
#include <cmath>

namespace densevlc::channel {

bool segment_blocked(const geom::Vec3& a, const geom::Vec3& b,
                     const CylinderBlocker& blocker) {
  // Project onto the XY plane: find the parameter range of the segment
  // inside the blocker's circle, then check whether any point of that
  // range has z within [0, height].
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double fx = a.x - blocker.x;
  const double fy = a.y - blocker.y;

  const double qa = dx * dx + dy * dy;
  const double qb = 2.0 * (fx * dx + fy * dy);
  const double qc = fx * fx + fy * fy - blocker.radius * blocker.radius;

  double t0;
  double t1;
  if (qa < 1e-18) {
    // Vertical segment in XY: inside the circle or not, wholly.
    if (qc > 0.0) return false;
    t0 = 0.0;
    t1 = 1.0;
  } else {
    const double disc = qb * qb - 4.0 * qa * qc;
    if (disc <= 0.0) return false;  // misses (or grazes) the circle
    const double root = std::sqrt(disc);
    t0 = (-qb - root) / (2.0 * qa);
    t1 = (-qb + root) / (2.0 * qa);
    // Clip to the segment; keep an open interval so touching endpoints
    // do not count.
    t0 = std::max(t0, 0.0);
    t1 = std::min(t1, 1.0);
    if (t0 >= t1) return false;
  }

  // z is affine in t: the segment portion inside the circle spans
  // z in [min, max]; blocked if that interval meets [0, height].
  const double z0 = a.z + (b.z - a.z) * t0;
  const double z1 = a.z + (b.z - a.z) * t1;
  const double z_lo = std::min(z0, z1);
  const double z_hi = std::max(z0, z1);
  return z_lo <= blocker.height_m && z_hi >= 0.0;
}

ChannelMatrix apply_blockage(const ChannelMatrix& h,
                             const std::vector<geom::Pose>& tx_poses,
                             const std::vector<geom::Pose>& rx_poses,
                             std::span<const CylinderBlocker> blockers) {
  ChannelMatrix out = h;
  for (std::size_t j = 0; j < h.num_tx(); ++j) {
    for (std::size_t k = 0; k < h.num_rx(); ++k) {
      for (const auto& blocker : blockers) {
        if (segment_blocked(tx_poses[j].position, rx_poses[k].position,
                            blocker)) {
          out.set_gain(j, k, 0.0);
          break;
        }
      }
    }
  }
  return out;
}

std::size_t count_blocked_links(const std::vector<geom::Pose>& tx_poses,
                                const std::vector<geom::Pose>& rx_poses,
                                std::span<const CylinderBlocker> blockers) {
  std::size_t count = 0;
  for (const auto& tx : tx_poses) {
    for (const auto& rx : rx_poses) {
      for (const auto& blocker : blockers) {
        if (segment_blocked(tx.position, rx.position, blocker)) {
          ++count;
          break;
        }
      }
    }
  }
  return count;
}

}  // namespace densevlc::channel
