// Line-of-sight blockage (paper Sec. 9, "Blockage").
//
// People and furniture interrupt VLC links. The standard model is a
// vertical cylinder (a human body): a link is blocked when its 3-D
// segment from TX to RX passes through the cylinder volume. In
// traditional VLC blockage only hurts; the paper conjectures that in
// cell-free massive MIMO it "could bring benefit to the system since it
// can reduce the interference from other TXs" — the blockage extension
// bench quantifies exactly that.
#pragma once

#include <span>
#include <vector>

#include "channel/model.hpp"
#include "geom/vec3.hpp"

namespace densevlc::channel {

/// A vertical cylindrical blocker standing on the floor.
struct CylinderBlocker {
  double x = 0.0;        ///< center x [m]
  double y = 0.0;        ///< center y [m]
  double radius = 0.15;  ///< ~human torso
  double height_m = 1.7;  ///< top of the cylinder
};

/// True if the open segment a->b intersects the blocker volume.
/// Endpoints exactly on the surface do not count as blocked.
bool segment_blocked(const geom::Vec3& a, const geom::Vec3& b,
                     const CylinderBlocker& blocker);

/// Returns a copy of `h` with every blocked link's gain set to zero.
/// `tx_poses` / `rx_poses` must match the matrix dimensions.
ChannelMatrix apply_blockage(const ChannelMatrix& h,
                             const std::vector<geom::Pose>& tx_poses,
                             const std::vector<geom::Pose>& rx_poses,
                             std::span<const CylinderBlocker> blockers);

/// Number of (TX, RX) links a set of blockers interrupts.
std::size_t count_blocked_links(const std::vector<geom::Pose>& tx_poses,
                                const std::vector<geom::Pose>& rx_poses,
                                std::span<const CylinderBlocker> blockers);

}  // namespace densevlc::channel
