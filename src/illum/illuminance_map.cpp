#include "illum/illuminance_map.hpp"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.hpp"

namespace densevlc::illum {

IlluminanceMap::IlluminanceMap(const geom::Room& room,
                               const std::vector<geom::Pose>& luminaires,
                               const optics::LambertianEmitter& emitter,
                               const optics::LedModel& led,
                               double plane_height_m,
                               std::size_t samples_per_axis,
                               double efficacy_lm_per_w)
    : room_{room},
      luminaires_{luminaires},
      emitter_{emitter},
      optical_power_w_{led.optical_power_illumination()},
      efficacy_{efficacy_lm_per_w},
      plane_height_m_{plane_height_m},
      per_axis_{samples_per_axis} {
  lux_.resize(per_axis_ * per_axis_, 0.0);
  if (per_axis_ == 0) return;
  const double dx =
      per_axis_ > 1 ? room.width / static_cast<double>(per_axis_ - 1) : 0.0;
  const double dy =
      per_axis_ > 1 ? room.depth / static_cast<double>(per_axis_ - 1) : 0.0;
  // Parallel over raster rows; each row fills a disjoint slice of lux_,
  // so the map is bit-identical to the serial raster at any thread count.
  parallel_for(0, per_axis_, [&](std::size_t iy) {
    for (std::size_t ix = 0; ix < per_axis_; ++ix) {
      lux_[iy * per_axis_ + ix] = evaluate(static_cast<double>(ix) * dx,
                                           static_cast<double>(iy) * dy);
    }
  });
}

double IlluminanceMap::at(std::size_t ix, std::size_t iy) const {
  return lux_[iy * per_axis_ + ix];
}

double IlluminanceMap::evaluate(double x, double y) const {
  const geom::Pose point = geom::floor_pose(x, y, plane_height_m_);
  double total = 0.0;
  for (const auto& lum : luminaires_) {
    total += optics::illuminance_lux(emitter_, lum, point, optical_power_w_,
                                     efficacy_);
  }
  return total;
}

IlluminanceMap::AreaStats IlluminanceMap::area_of_interest_stats(
    double side_m) const {
  AreaStats s;
  if (per_axis_ == 0) return s;
  const double cx = room_.width / 2.0;
  const double cy = room_.depth / 2.0;
  const double half = side_m / 2.0;
  const double dx =
      per_axis_ > 1 ? room_.width / static_cast<double>(per_axis_ - 1) : 0.0;
  const double dy =
      per_axis_ > 1 ? room_.depth / static_cast<double>(per_axis_ - 1) : 0.0;
  double sum = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t iy = 0; iy < per_axis_; ++iy) {
    const double y = static_cast<double>(iy) * dy;
    if (y < cy - half || y > cy + half) continue;
    for (std::size_t ix = 0; ix < per_axis_; ++ix) {
      const double x = static_cast<double>(ix) * dx;
      if (x < cx - half || x > cx + half) continue;
      const double v = at(ix, iy);
      if (s.samples == 0) {
        lo = hi = v;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      sum += v;
      ++s.samples;
    }
  }
  if (s.samples == 0) return s;
  s.average_lux = sum / static_cast<double>(s.samples);
  s.min_lux = lo;
  s.max_lux = hi;
  s.uniformity = s.average_lux > 0.0 ? s.min_lux / s.average_lux : 0.0;
  return s;
}

bool IlluminanceMap::satisfies(const IsoRequirement& req,
                               double side_m) const {
  const AreaStats s = area_of_interest_stats(side_m);
  return s.average_lux >= req.min_average_lux &&
         s.uniformity >= req.min_uniformity;
}

double size_bias_for_average_lux(const geom::Room& room,
                                 const std::vector<geom::Pose>& luminaires,
                                 const optics::LambertianEmitter& emitter,
                                 const optics::LedElectrical& elec,
                                 double plane_height_m, double aoi_side_m,
                                 double target_lux, double efficacy_lm_per_w,
                                 double i_max_a) {
  auto average_at = [&](double bias) {
    optics::LedModel led{elec, {bias, 2.0 * bias}};
    const IlluminanceMap map{room,          luminaires, emitter, led,
                             plane_height_m, 31,         efficacy_lm_per_w};
    return map.area_of_interest_stats(aoi_side_m).average_lux;
  };
  double lo = 1e-4;
  double hi = i_max_a;
  if (average_at(hi) < target_lux) return hi;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (average_at(mid) < target_lux) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace densevlc::illum
