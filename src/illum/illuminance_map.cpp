#include "illum/illuminance_map.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"

namespace densevlc::illum {

IlluminanceMap::IlluminanceMap(const geom::Room& room,
                               const std::vector<geom::Pose>& luminaires,
                               const optics::LambertianEmitter& emitter,
                               const optics::LedModel& led,
                               Meters plane_height,
                               std::size_t samples_per_axis,
                               LumensPerWatt efficacy)
    : room_{room},
      luminaires_{luminaires},
      emitter_{emitter},
      optical_power_w_{led.optical_power_illumination().value()},
      efficacy_{efficacy.value()},
      plane_height_m_{plane_height.value()},
      per_axis_{samples_per_axis} {
  lux_.resize(per_axis_ * per_axis_, 0.0);
  if (per_axis_ == 0) return;
  const double dx =
      per_axis_ > 1 ? room.width / static_cast<double>(per_axis_ - 1) : 0.0;
  const double dy =
      per_axis_ > 1 ? room.depth / static_cast<double>(per_axis_ - 1) : 0.0;
  // Parallel over raster rows; each row fills a disjoint slice of lux_,
  // so the map is bit-identical to the serial raster at any thread count.
  parallel_for(0, per_axis_, [&](std::size_t iy) {
    for (std::size_t ix = 0; ix < per_axis_; ++ix) {
      lux_[iy * per_axis_ + ix] =
          evaluate(Meters{static_cast<double>(ix) * dx},
                   Meters{static_cast<double>(iy) * dy})
              .value();
    }
  });
}

Lux IlluminanceMap::at(std::size_t ix, std::size_t iy) const {
  return Lux{lux_[iy * per_axis_ + ix]};
}

Lux IlluminanceMap::evaluate(Meters x, Meters y) const {
  DVLC_EXPECT(std::isfinite(x.value()) && std::isfinite(y.value()),
              "sample point must be finite");
  const geom::Pose point =
      geom::floor_pose(x.value(), y.value(), plane_height_m_);
  Lux total{0.0};
  for (const auto& lum : luminaires_) {
    total += optics::illuminance_lux(emitter_, lum, point,
                                     Watts{optical_power_w_},
                                     LumensPerWatt{efficacy_});
  }
  return total;
}

IlluminanceMap::AreaStats IlluminanceMap::area_of_interest_stats(
    Meters side) const {
  DVLC_EXPECT(side.value() >= 0.0, "area-of-interest side must be >= 0");
  AreaStats s;
  if (per_axis_ == 0) return s;
  const double cx = room_.width / 2.0;
  const double cy = room_.depth / 2.0;
  const double half = side.value() / 2.0;
  const double dx =
      per_axis_ > 1 ? room_.width / static_cast<double>(per_axis_ - 1) : 0.0;
  const double dy =
      per_axis_ > 1 ? room_.depth / static_cast<double>(per_axis_ - 1) : 0.0;
  double sum = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t iy = 0; iy < per_axis_; ++iy) {
    const double y = static_cast<double>(iy) * dy;
    if (y < cy - half || y > cy + half) continue;
    for (std::size_t ix = 0; ix < per_axis_; ++ix) {
      const double x = static_cast<double>(ix) * dx;
      if (x < cx - half || x > cx + half) continue;
      const double v = at(ix, iy).value();
      if (s.samples == 0) {
        lo = hi = v;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      sum += v;
      ++s.samples;
    }
  }
  if (s.samples == 0) return s;
  s.average_lux = sum / static_cast<double>(s.samples);
  s.min_lux = lo;
  s.max_lux = hi;
  s.uniformity = s.average_lux > 0.0 ? s.min_lux / s.average_lux : 0.0;
  return s;
}

bool IlluminanceMap::satisfies(const IsoRequirement& req,
                               Meters side) const {
  DVLC_EXPECT(req.min_average_lux >= 0.0 && req.min_uniformity >= 0.0,
              "ISO requirement thresholds must be >= 0");
  const AreaStats s = area_of_interest_stats(side);
  return s.average_lux >= req.min_average_lux &&
         s.uniformity >= req.min_uniformity;
}

Amperes size_bias_for_average_lux(const geom::Room& room,
                                  const std::vector<geom::Pose>& luminaires,
                                  const optics::LambertianEmitter& emitter,
                                  const optics::LedElectrical& elec,
                                  Meters plane_height, Meters aoi_side,
                                  Lux target, LumensPerWatt efficacy,
                                  Amperes i_max) {
  DVLC_EXPECT(i_max.value() > 0.0, "bias search needs a positive i_max");
  DVLC_EXPECT(target.value() >= 0.0, "target illuminance must be >= 0");
  auto average_at = [&](double bias) {
    optics::LedModel led{elec, {bias, 2.0 * bias}};
    const IlluminanceMap map{room,         luminaires, emitter, led,
                             plane_height, 31,         efficacy};
    return map.area_of_interest_stats(aoi_side).average_lux;
  };
  double lo = 1e-4;
  double hi = i_max.value();
  if (average_at(hi) < target.value()) return Amperes{hi};
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (average_at(mid) < target.value()) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return Amperes{hi};
}

}  // namespace densevlc::illum
