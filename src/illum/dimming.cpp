#include "illum/dimming.hpp"

#include <algorithm>

#include "illum/illuminance_map.hpp"

namespace densevlc::illum {

LuminairePlan plan_luminaires(const geom::Room& room,
                              const std::vector<geom::Pose>& luminaires,
                              const optics::LambertianEmitter& emitter,
                              const optics::LedElectrical& elec,
                              const LuminaireDesign& design) {
  LuminairePlan plan;
  if (design.leds_per_tx == 0) return plan;

  // Each of the M LEDs carries 1/M of the luminous load.
  const Lux per_led_target{design.target_lux /
                           static_cast<double>(design.leds_per_tx)};
  const Amperes i_max{1.5};  // beyond the CREE XT-E absolute maximum
  plan.bias_a =
      size_bias_for_average_lux(room, luminaires, emitter, elec,
                                Meters{design.plane_height_m},
                                Meters{design.aoi_side_m}, per_led_target,
                                LumensPerWatt{design.efficacy_lm_per_w}, i_max)
          .value();
  plan.max_swing_a = std::min(design.hw_max_swing_a, 2.0 * plan.bias_a);

  const optics::LedModel led{elec,
                             {plan.bias_a, design.hw_max_swing_a}};
  plan.illumination_power_w =
      led.illumination_power().value() *
      static_cast<double>(design.leds_per_tx);

  // Verify on a fresh map (one LED's field scaled by M via the target
  // split: total lux = M * per-LED lux).
  const IlluminanceMap map{room,
                           luminaires,
                           emitter,
                           led,
                           Meters{design.plane_height_m},
                           31,
                           LumensPerWatt{design.efficacy_lm_per_w}};
  plan.achieved_lux =
      map.area_of_interest_stats(Meters{design.aoi_side_m}).average_lux *
      static_cast<double>(design.leds_per_tx);
  plan.target_met = plan.achieved_lux >= design.target_lux * 0.98;
  return plan;
}

}  // namespace densevlc::illum
