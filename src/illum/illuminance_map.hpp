// Spatial illuminance analysis (paper Fig. 5 and the ISO 8995-1 checks).
//
// The primary function of the LED grid is lighting: ISO 8995-1 requires
// indoor office premises to reach an average of >= 500 lux with an
// illuminance uniformity (min / average) of >= 70%. DenseVLC verifies both
// over a centered 2.2 m x 2.2 m area of interest. Because Manchester
// coding keeps the mean LED current at the bias Ib in both operating
// modes, the illuminance map is independent of the communication state —
// a property the tests assert explicitly.
#pragma once

#include <cstddef>
#include <vector>

#include "common/quantity.hpp"
#include "geom/grid.hpp"
#include "geom/vec3.hpp"
#include "optics/lambertian.hpp"
#include "optics/led_model.hpp"

namespace densevlc::illum {

/// Illumination requirements of ISO 8995-1 for office premises.
struct IsoRequirement {
  double min_average_lux = 500.0;
  double min_uniformity = 0.70;  ///< min illuminance / average illuminance
};

/// A rasterized illuminance field over a horizontal work plane.
class IlluminanceMap {
 public:
  /// Computes the map produced by `luminaires` (all driven at the bias of
  /// `led`, i.e. optical power = led.optical_power_illumination()), sampled
  /// on a `samples_per_axis`^2 raster covering the room's floor rectangle
  /// at height `plane_height_m`, with `efficacy_lm_per_w` converting
  /// optical watts to lumens.
  IlluminanceMap(const geom::Room& room,
                 const std::vector<geom::Pose>& luminaires,
                 const optics::LambertianEmitter& emitter,
                 const optics::LedModel& led, Meters plane_height,
                 std::size_t samples_per_axis, LumensPerWatt efficacy);

  /// Illuminance at raster point (ix, iy).
  Lux at(std::size_t ix, std::size_t iy) const;

  /// Raster resolution per axis.
  std::size_t samples_per_axis() const { return per_axis_; }

  /// Work-plane height the map was computed at.
  Meters plane_height() const { return Meters{plane_height_m_}; }

  /// Point-wise illuminance at an arbitrary (x, y) on the plane (direct
  /// evaluation, not interpolation).
  Lux evaluate(Meters x, Meters y) const;

  /// Statistics over a centered square area of interest of the given side
  /// length (the paper uses 2.2 m to exclude the boundary).
  struct AreaStats {
    double average_lux = 0.0;
    double min_lux = 0.0;
    double max_lux = 0.0;
    double uniformity = 0.0;  ///< min / average
    std::size_t samples = 0;
  };
  AreaStats area_of_interest_stats(Meters side) const;

  /// True if the area-of-interest statistics satisfy `req`.
  bool satisfies(const IsoRequirement& req, Meters side) const;

 private:
  geom::Room room_;
  std::vector<geom::Pose> luminaires_;
  optics::LambertianEmitter emitter_;
  double optical_power_w_ = 0.0;
  double efficacy_ = 0.0;
  double plane_height_m_ = 0.0;
  std::size_t per_axis_ = 0;
  std::vector<double> lux_;  // row-major [iy * per_axis + ix]
};

/// Finds the bias current that makes the map's area-of-interest average
/// reach `target`, by bisection on Ib in (0, i_max]. Returns the bias
/// (clamped to i_max when even the maximum falls short).
Amperes size_bias_for_average_lux(const geom::Room& room,
                                  const std::vector<geom::Pose>& luminaires,
                                  const optics::LambertianEmitter& emitter,
                                  const optics::LedElectrical& elec,
                                  Meters plane_height, Meters aoi_side,
                                  Lux target, LumensPerWatt efficacy,
                                  Amperes i_max = Amperes{1.5});

}  // namespace densevlc::illum
