// Luminaire planning: dimming and multi-LED transmitters.
//
// Paper Sec. 3.3/3.4: the bias current Ib is dictated by the desired
// illumination level, and the usable modulation range follows from it —
// the low rail Ib - Isw/2 must stay in the conducting region, so
// Isw,max <= 2 Ib (with the hardware cap on top). Footnote 1 adds that a
// TX may carry M LEDs to reach the illumination target, with power
// scaling linearly in M. This module solves the resulting design
// problem: given a target illuminance and LED count per luminaire, find
// the per-LED bias, the implied swing ceiling, and the electrical cost.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/grid.hpp"
#include "optics/lambertian.hpp"
#include "optics/led_model.hpp"

namespace densevlc::illum {

/// Design inputs.
struct LuminaireDesign {
  double target_lux = 500.0;       ///< area-of-interest average
  std::size_t leds_per_tx = 1;     ///< M of paper footnote 1
  double hw_max_swing_a = 0.9;     ///< driver limit per LED
  double plane_height_m = 0.8;
  double aoi_side_m = 2.2;
  double efficacy_lm_per_w = 300.0;
};

/// Design outputs.
struct LuminairePlan {
  double bias_a = 0.0;             ///< per-LED Ib meeting the target
  double max_swing_a = 0.0;        ///< min(hw cap, 2 * Ib)
  double achieved_lux = 0.0;       ///< at the planned bias
  double illumination_power_w = 0.0;  ///< per TX (all M LEDs)
  bool target_met = false;         ///< false if even max drive falls short
};

/// Solves the bias for the target illuminance (splitting the luminous
/// load across the M LEDs of each luminaire) and derives the modulation
/// ceiling the communication layer must respect.
LuminairePlan plan_luminaires(const geom::Room& room,
                              const std::vector<geom::Pose>& luminaires,
                              const optics::LambertianEmitter& emitter,
                              const optics::LedElectrical& elec,
                              const LuminaireDesign& design);

}  // namespace densevlc::illum
