#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace densevlc::sim {

std::vector<geom::Pose> Testbed::tx_poses() const {
  return geom::make_ceiling_grid(room, grid);
}

std::vector<geom::Pose> Testbed::rx_poses(
    const std::vector<geom::Vec3>& xy) const {
  std::vector<geom::Pose> poses;
  poses.reserve(xy.size());
  for (const auto& p : xy) {
    poses.push_back(geom::floor_pose(p.x, p.y, rx_height_m));
  }
  return poses;
}

channel::ChannelMatrix Testbed::channel_for(
    const std::vector<geom::Vec3>& rx_xy) const {
  return channel::ChannelMatrix::from_geometry(tx_poses(), rx_poses(rx_xy),
                                               emitter, pd);
}

channel::ChannelMatrix Testbed::channel_for_poses(
    const std::vector<geom::Pose>& rx) const {
  return channel::ChannelMatrix::from_geometry(tx_poses(), rx, emitter, pd);
}

void Testbed::update_channel_for(channel::ChannelMatrix& h,
                                 const std::vector<geom::Vec3>& rx_xy,
                                 std::span<const std::size_t> dirty_rx) const {
  h.update_columns_from_geometry(tx_poses(), rx_poses(rx_xy), emitter, pd,
                                 dirty_rx);
}

namespace {

Testbed make_testbed(double mount_height, double rx_height) {
  Testbed tb;
  tb.room = geom::Room{3.0, 3.0, std::max(mount_height, 2.8)};
  tb.grid = geom::GridSpec{6, 6, 0.5, mount_height};
  tb.rx_height_m = rx_height;
  tb.emitter.half_power_semi_angle_rad = units::deg_to_rad(15.0);
  tb.pd = optics::Photodiode{};  // Table 1 defaults
  tb.led = optics::LedModel{optics::LedElectrical{},
                            optics::LedOperatingPoint{0.45, 0.9}};
  tb.budget = channel::LinkBudget::from_led(tb.led, AmperesPerWatt{0.4},
                                            AmpsSquaredPerHertz{7.02e-23},
                                            Hertz{units::MHz(1.0)});
  return tb;
}

}  // namespace

Testbed make_simulation_testbed() { return make_testbed(2.8, 0.8); }

Testbed make_experimental_testbed() { return make_testbed(2.0, 0.0); }

std::vector<geom::Vec3> fig7_rx_positions() {
  return {{0.92, 0.92, 0.0},
          {1.65, 0.65, 0.0},
          {0.72, 1.93, 0.0},
          {1.99, 1.69, 0.0}};
}

std::vector<geom::Vec3> scenario1_rx_positions() {
  return {{0.50, 0.50, 0.0},
          {2.50, 0.50, 0.0},
          {0.50, 2.50, 0.0},
          {2.50, 2.50, 0.0}};
}

std::vector<geom::Vec3> scenario3_rx_positions() {
  return {{0.75, 0.75, 0.0},
          {1.75, 0.75, 0.0},
          {0.75, 1.75, 0.0},
          {1.75, 1.75, 0.0}};
}

std::vector<std::vector<geom::Vec3>> random_instances(std::size_t count,
                                                      double radius_m,
                                                      const geom::Room& room,
                                                      std::uint64_t seed) {
  const auto anchors = fig7_rx_positions();
  Rng rng{seed};
  std::vector<std::vector<geom::Vec3>> instances;
  instances.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<geom::Vec3> rxs;
    rxs.reserve(anchors.size());
    for (const auto& anchor : anchors) {
      // Uniform in a disc: r = R sqrt(u).
      const double r = radius_m * std::sqrt(rng.uniform());
      const double theta = rng.uniform(0.0, 2.0 * kPi);
      geom::Vec3 p{anchor.x + r * std::cos(theta),
                   anchor.y + r * std::sin(theta), 0.0};
      p.x = std::clamp(p.x, 0.0, room.width);
      p.y = std::clamp(p.y, 0.0, room.depth);
      rxs.push_back(p);
    }
    instances.push_back(std::move(rxs));
  }
  return instances;
}

fault::FaultSchedule chaos_schedule(std::size_t num_tx,
                                    double led_fail_fraction,
                                    double t_fail_s, double epoch_period_s,
                                    std::uint64_t seed) {
  const auto failures = static_cast<std::size_t>(std::llround(
      led_fail_fraction * static_cast<double>(num_tx)));
  auto schedule = fault::FaultSchedule::random_led_burnouts(
      num_tx, failures, t_fail_s, seed);

  fault::FaultEvent burst;
  burst.kind = fault::FaultKind::kReportLossBurst;
  burst.t_start_s = t_fail_s + 2.0 * epoch_period_s;
  burst.t_end_s = burst.t_start_s + epoch_period_s;
  schedule.add(burst);

  fault::FaultEvent pilot;
  pilot.kind = fault::FaultKind::kSyncPilotLoss;
  pilot.t_start_s = burst.t_start_s;
  pilot.t_end_s = burst.t_end_s;
  schedule.add(pilot);
  return schedule;
}

}  // namespace densevlc::sim
