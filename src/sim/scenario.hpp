// Evaluation scenarios of the paper, ready to instantiate.
//
// Two testbed geometries appear in the paper:
//   - the simulation setup of Sec. 4 / Table 1: 36 TXs on a 2.8 m ceiling
//     over a 3 m x 3 m room, 4 RXs face-up on a 0.8 m table;
//   - the experimental setup of Sec. 8: same grid mounted at 2 m, RXs on
//     the floor, moved by ACRO positioners.
// Receiver placements: the fixed instance of Fig. 7 (identical to
// Table 6 Scenario 2), the random instances of Fig. 6 (100 draws around
// the Fig. 7 anchors), and Table 6's Scenarios 1 and 3.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "channel/model.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "geom/grid.hpp"
#include "geom/vec3.hpp"
#include "optics/lambertian.hpp"
#include "optics/led_model.hpp"

namespace densevlc::sim {

/// Table 1 system parameters plus geometry, bundled.
struct Testbed {
  geom::Room room{3.0, 3.0, 2.8};
  geom::GridSpec grid{6, 6, 0.5, 2.8};
  double rx_height_m = 0.8;
  optics::LambertianEmitter emitter{};   // 15 deg half-angle
  optics::Photodiode pd{};               // Table 1 receiver
  optics::LedModel led{};                // CREE XT-E at Ib = 450 mA
  channel::LinkBudget budget{};          // Table 1 scalars

  /// Ceiling poses of the TX grid (paper TX numbering: index 0 == TX1 at
  /// minimum x/y, advancing along x first).
  std::vector<geom::Pose> tx_poses() const;

  /// Face-up RX poses at rx_height_m for the given floor positions
  /// (z components of the inputs are ignored).
  std::vector<geom::Pose> rx_poses(const std::vector<geom::Vec3>& xy) const;

  /// LOS channel matrix for RXs at the given positions.
  channel::ChannelMatrix channel_for(
      const std::vector<geom::Vec3>& rx_xy) const;

  /// Recomputes only the listed RX columns of a cached channel matrix
  /// for RXs at `rx_xy`; other columns keep their values. Bit-identical
  /// to channel_for when the untouched columns were computed from the
  /// same geometry (incremental re-probing, ROADMAP "mobility epochs").
  void update_channel_for(channel::ChannelMatrix& h,
                          const std::vector<geom::Vec3>& rx_xy,
                          std::span<const std::size_t> dirty_rx) const;

  /// LOS channel matrix for arbitrarily oriented RX poses (tilted
  /// receivers, Sec. 9's orientation discussion).
  channel::ChannelMatrix channel_for_poses(
      const std::vector<geom::Pose>& rx) const;
};

/// The simulation testbed of Sec. 4 (2.8 m ceiling, RXs at 0.8 m).
Testbed make_simulation_testbed();

/// The experimental testbed of Sec. 8 (2 m mounting, RXs on the floor).
Testbed make_experimental_testbed();

/// Fig. 7 / Table 6 Scenario 2 receiver positions.
std::vector<geom::Vec3> fig7_rx_positions();

/// Table 6 Scenario 1 positions (interference-free, 2 m spacing).
std::vector<geom::Vec3> scenario1_rx_positions();

/// Table 6 Scenario 3 positions (1 m spacing, each RX under a TX).
std::vector<geom::Vec3> scenario3_rx_positions();

/// Fig. 6: `count` random instances; each instance places every RX
/// uniformly in a disc of `radius_m` around its Fig. 7 anchor, clamped to
/// the room. Deterministic given the seed.
std::vector<std::vector<geom::Vec3>> random_instances(
    std::size_t count, double radius_m, const geom::Room& room,
    std::uint64_t seed);

/// Chaos-soak fault schedule for an `num_tx`-LED grid: `led_fail_fraction`
/// of the LEDs (rounded to the nearest count, seed-chosen) burn out
/// permanently at `t_fail_s`; a report-loss burst and a sync-pilot-loss
/// window each cover one epoch starting two epochs later, so the soak
/// exercises the watchdog and the degraded sync path too. Deterministic
/// given the seed.
fault::FaultSchedule chaos_schedule(std::size_t num_tx,
                                    double led_fail_fraction,
                                    double t_fail_s, double epoch_period_s,
                                    std::uint64_t seed);

}  // namespace densevlc::sim
