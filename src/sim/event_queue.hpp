// Compatibility shim: the discrete-event engine is generic simulation
// infrastructure and lives in common/event_queue.hpp (the `sim` module
// sits above `core` in the layering DAG, but the engine is needed by
// `net` and `core` below it). Include the real header in new code.
#pragma once

#include "common/event_queue.hpp"

namespace densevlc::sim {

using densevlc::Simulator;

}  // namespace densevlc::sim
