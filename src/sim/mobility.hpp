// Compatibility shim: the receiver mobility models are pure geometry
// (positions as functions of time) and live in geom/mobility.hpp, below
// `core` in the layering DAG — DenseVlcSystem owns the models while the
// `sim` module sits above it. Include the real header in new code.
#pragma once

#include "geom/mobility.hpp"

namespace densevlc::sim {

using geom::MobilityModel;
using geom::RandomWalkMobility;
using geom::StaticMobility;
using geom::WaypointMobility;

}  // namespace densevlc::sim
