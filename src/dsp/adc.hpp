// Analog-to-digital converter model (paper: ADS7883, 1 Msps, SPI to PRU).
//
// The ADC samples the filtered front-end voltage at a fixed rate and
// quantizes into an unsigned code of `bits` resolution across
// [min_volts, max_volts]. Out-of-range inputs clip, as the real part does.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/waveform.hpp"

namespace densevlc::dsp {

/// Converter configuration.
struct AdcConfig {
  double sample_rate_hz = 1e6;  ///< 1 Msps per the paper
  unsigned bits = 12;           ///< ADS7883 is a 12-bit converter
  double min_volts = 0.0;       ///< bottom of input range
  double max_volts = 3.3;       ///< top of input range
};

/// Samples and quantizes analog waveforms.
class Adc {
 public:
  Adc() = default;
  explicit Adc(const AdcConfig& cfg) : cfg_{cfg} {}

  const AdcConfig& config() const { return cfg_; }

  /// Quantizes one instantaneous voltage to its output code.
  std::uint32_t quantize(double volts) const;

  /// Converts a code back to the center voltage of its quantization bin.
  double code_to_volts(std::uint32_t code) const;

  /// Resamples `analog` (at its own rate) to the ADC rate by zero-order
  /// hold (sample-and-hold behaviour) and quantizes each sample.
  std::vector<std::uint32_t> digitize(const Waveform& analog) const;

  /// Like digitize() but returns the reconstructed voltages — convenient
  /// for downstream floating-point DSP while still modeling quantization.
  Waveform digitize_to_voltage(const Waveform& analog) const;

  /// Quantization step size [V].
  double lsb() const;

 private:
  AdcConfig cfg_{};
};

}  // namespace densevlc::dsp
