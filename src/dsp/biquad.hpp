// Direct-form-II-transposed biquad sections and cascades.
//
// All IIR filtering in the receiver front-end model (AC coupling,
// anti-aliasing Butterworth) runs through these sections. DF2T is the
// numerically preferred direct form for double-precision audio-rate work.
#pragma once

#include <span>
#include <vector>

#include "dsp/waveform.hpp"

namespace densevlc::dsp {

/// Normalized biquad coefficients (a0 == 1 implied):
///   y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]
struct BiquadCoeffs {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;
};

/// One stateful biquad section.
class Biquad {
 public:
  Biquad() = default;
  explicit Biquad(const BiquadCoeffs& c) : c_{c} {}

  /// Processes one sample.
  double step(double x) {
    const double y = c_.b0 * x + s1_;
    s1_ = c_.b1 * x - c_.a1 * y + s2_;
    s2_ = c_.b2 * x - c_.a2 * y;
    return y;
  }

  /// Filters a block in place — same arithmetic as step() per sample.
  void process_block(std::span<double> x) {
    for (double& v : x) v = step(v);
  }

  /// Clears the delay line.
  void reset() { s1_ = s2_ = 0.0; }

  const BiquadCoeffs& coeffs() const { return c_; }

  /// DF2T delay-line state, exposed so the x4 batch kernel can stage
  /// lanes into struct-of-arrays form and write the state back.
  double state_s1() const { return s1_; }
  double state_s2() const { return s2_; }
  void set_state(double s1, double s2) {
    s1_ = s1;
    s2_ = s2;
  }

 private:
  BiquadCoeffs c_{};
  double s1_ = 0.0, s2_ = 0.0;
};

/// A cascade of biquad sections applied in series.
class BiquadCascade {
 public:
  BiquadCascade() = default;
  explicit BiquadCascade(const std::vector<BiquadCoeffs>& sections);

  /// Processes one sample through every section.
  double step(double x);

  /// Filters a whole waveform (stateful: continues from previous state).
  Waveform process(const Waveform& in);

  /// Filters a block in place: one full-block pass per section, so each
  /// section's coefficients stay in registers for the whole block.
  /// Bit-identical to chaining step() sample by sample (each section's
  /// output depends only on its own state and input stream).
  void process_block(std::span<double> x);

  /// process() into a reused waveform (see common/arena.hpp): zero heap
  /// allocations once `out` has warmed up.
  void process_into(const Waveform& in, Waveform& out);

  /// Clears all delay lines.
  void reset();

  /// Magnitude response |H(e^{j 2 pi f / fs})| of the cascade.
  double magnitude_at(double freq_hz, double sample_rate_hz) const;

  std::size_t section_count() const { return sections_.size(); }

  /// Section access for the x4 batch kernel's state staging.
  Biquad& section(std::size_t i) { return sections_[i]; }
  const Biquad& section(std::size_t i) const { return sections_[i]; }

 private:
  std::vector<Biquad> sections_;
};

/// Filters four equally-shaped cascades in lockstep over a 4-lane
/// interleaved block (`interleaved[t*4 + lane]`, length a multiple of 4).
/// Stateful like process_block: each cascade's delay lines continue from
/// and are written back to the cascade objects, so callers may finish a
/// ragged tail per lane with process_block afterwards. Bit-identical per
/// lane to calling cascades[lane]->process_block on that lane's samples.
/// Dispatches to the SIMD backend unless DVLC_FORCE_SCALAR is set.
void process_cascades_x4(BiquadCascade* const cascades[4],
                         std::span<double> interleaved);

}  // namespace densevlc::dsp
