// Butterworth low-pass design and first-order AC-coupling high-pass.
//
// The paper's RX front-end (Sec. 7.1, Fig. 16) uses a 7th-order passive
// Butterworth low-pass as anti-aliasing filter before the 1 Msps ADC, and
// an AC-coupled amplifier stage that removes low-frequency ambient light.
// We synthesize digital equivalents via the bilinear transform with
// frequency prewarping.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/biquad.hpp"

namespace densevlc::dsp {

/// Designs an order-`order` Butterworth low-pass with -3 dB corner at
/// `cutoff_hz` for signals sampled at `sample_rate_hz`.
///
/// The design places the analog prototype poles on the unit circle, pairs
/// conjugates into second-order sections (odd orders get one first-order
/// section expressed as a degenerate biquad), denormalizes to the
/// prewarped corner and maps through the bilinear transform.
///
/// Preconditions: order >= 1 and 0 < cutoff_hz < sample_rate_hz / 2.
std::vector<BiquadCoeffs> design_butterworth_lowpass(std::size_t order,
                                                     double cutoff_hz,
                                                     double sample_rate_hz);

/// Designs the first-order high-pass that models an AC-coupling capacitor
/// with corner `cutoff_hz` (removes DC ambient light and the illumination
/// bias from the photodiode signal).
///
/// Preconditions: 0 < cutoff_hz < sample_rate_hz / 2.
BiquadCoeffs design_ac_coupling_highpass(double cutoff_hz,
                                         double sample_rate_hz);

}  // namespace densevlc::dsp
