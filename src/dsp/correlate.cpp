// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
#include "dsp/correlate.hpp"

#include <cmath>
#include <utility>

#include "common/arena.hpp"
#include "dsp/dsp_kernels.hpp"

namespace densevlc::dsp {

std::vector<double> correlate(std::span<const double> signal,
                              std::span<const double> pattern) {
  std::vector<double> out;
  if (pattern.empty() || signal.size() < pattern.size()) return out;
  const std::size_t n = signal.size() - pattern.size() + 1;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < pattern.size(); ++j) {
      acc += signal[i + j] * pattern[j];
    }
    // DVLC_LINT_WAIVE(hot-loop-alloc): reserved above, ablation-only path
    out.push_back(acc);
  }
  return out;
}

void normalized_correlate_into(std::span<const double> signal,
                               std::span<const double> pattern,
                               CorrelateScratch& scratch) {
  arena_clear(scratch.scores);
  if (pattern.empty() || signal.size() < pattern.size()) return;
  const std::size_t m = pattern.size();

  // Mean-removed pattern and its energy, computed once.
  double pat_mean = 0.0;
  for (double p : pattern) pat_mean += p;
  pat_mean /= static_cast<double>(m);
  arena_resize(scratch.pattern, m);
  std::vector<double>& pat = scratch.pattern;
  double pat_energy = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    pat[j] = pattern[j] - pat_mean;
    pat_energy += pat[j] * pat[j];
  }
  const std::size_t n = signal.size() - m + 1;
  if (pat_energy <= 0.0) {
    arena_resize(scratch.scores, n);
    for (double& s : scratch.scores) s = 0.0;
    return;
  }

  // Rolling window sums let each position cost O(m) for the dot product
  // but O(1) for mean/energy bookkeeping. The statistics recurrence stays
  // scalar (each step depends on the previous), so the per-position mean
  // and variance are the reference values regardless of backend; only
  // the independent per-position dot products are vectorized.
  arena_resize(scratch.scores, n);
  arena_resize(scratch.means, n);
  arena_resize(scratch.vars, n);
  double win_sum = 0.0;
  double win_sq = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    win_sum += signal[j];
    win_sq += signal[j] * signal[j];
  }
  for (std::size_t i = 0; i < n; ++i) {
    scratch.means[i] = win_sum / static_cast<double>(m);
    // sum of squared deviations
    scratch.vars[i] = win_sq - win_sum * scratch.means[i];
    if (i + m < signal.size()) {
      win_sum += signal[i + m] - signal[i];
      win_sq += signal[i + m] * signal[i + m] - signal[i] * signal[i];
    }
  }
  if (simd::use_vector_kernels()) {
    detail::correlate_scores_vec(signal.data(), pat.data(), m,
                                 scratch.means.data(), scratch.vars.data(),
                                 pat_energy, scratch.scores.data(), n);
  } else {
    detail::correlate_scores_kernel<simd::ScalarBackend>(
        signal.data(), pat.data(), m, scratch.means.data(),
        scratch.vars.data(), pat_energy, scratch.scores.data(), n);
  }
}

std::vector<double> normalized_correlate(std::span<const double> signal,
                                         std::span<const double> pattern) {
  CorrelateScratch scratch;
  normalized_correlate_into(signal, pattern, scratch);
  return std::move(scratch.scores);
}

std::optional<PeakDetection> detect_pattern_into(
    std::span<const double> signal, std::span<const double> pattern,
    double threshold, CorrelateScratch& scratch) {
  normalized_correlate_into(signal, pattern, scratch);
  std::optional<PeakDetection> best;
  for (std::size_t i = 0; i < scratch.scores.size(); ++i) {
    if (scratch.scores[i] >= threshold &&
        (!best || scratch.scores[i] > best->score)) {
      best = PeakDetection{i, scratch.scores[i]};
    }
  }
  return best;
}

std::optional<PeakDetection> detect_pattern(std::span<const double> signal,
                                            std::span<const double> pattern,
                                            double threshold) {
  CorrelateScratch scratch;
  return detect_pattern_into(signal, pattern, threshold, scratch);
}

}  // namespace densevlc::dsp
