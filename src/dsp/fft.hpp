// Radix-2 FFT, the substrate for the DCO-OFDM extension PHY.
//
// Iterative in-place Cooley-Tukey with bit-reversal permutation. Sizes
// must be powers of two. The inverse transform applies 1/N scaling so
// ifft(fft(x)) == x.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace densevlc::dsp {

using Complex = std::complex<double>;

/// True if n is a nonzero power of two.
constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place forward FFT. Throws std::invalid_argument unless the size is
/// a power of two.
void fft(std::vector<Complex>& data);

/// In-place inverse FFT with 1/N normalization.
void ifft(std::vector<Complex>& data);

/// Forward FFT of a real signal (convenience: widens to complex).
std::vector<Complex> fft_real(const std::vector<double>& data);

}  // namespace densevlc::dsp
