#include "dsp/adc.hpp"

#include <algorithm>
#include <cmath>

namespace densevlc::dsp {

double Adc::lsb() const {
  const double levels =
      static_cast<double>((std::uint64_t{1} << cfg_.bits) - 1);
  return (cfg_.max_volts - cfg_.min_volts) / levels;
}

std::uint32_t Adc::quantize(double volts) const {
  const double clipped =
      std::clamp(volts, cfg_.min_volts, cfg_.max_volts);
  const double normalized =
      (clipped - cfg_.min_volts) / (cfg_.max_volts - cfg_.min_volts);
  const auto max_code =
      static_cast<std::uint32_t>((std::uint64_t{1} << cfg_.bits) - 1);
  return static_cast<std::uint32_t>(
      std::lround(normalized * static_cast<double>(max_code)));
}

double Adc::code_to_volts(std::uint32_t code) const {
  const auto max_code =
      static_cast<std::uint32_t>((std::uint64_t{1} << cfg_.bits) - 1);
  const double normalized =
      static_cast<double>(std::min(code, max_code)) /
      static_cast<double>(max_code);
  return cfg_.min_volts + normalized * (cfg_.max_volts - cfg_.min_volts);
}

std::vector<std::uint32_t> Adc::digitize(const Waveform& analog) const {
  std::vector<std::uint32_t> codes;
  if (analog.samples.empty() || analog.sample_rate_hz <= 0.0) return codes;
  const double duration = analog.duration();
  const auto n_out = static_cast<std::size_t>(duration * cfg_.sample_rate_hz);
  codes.reserve(n_out);
  for (std::size_t i = 0; i < n_out; ++i) {
    const double t = static_cast<double>(i) / cfg_.sample_rate_hz;
    // Zero-order hold: take the most recent analog sample.
    auto idx = static_cast<std::size_t>(t * analog.sample_rate_hz);
    idx = std::min(idx, analog.samples.size() - 1);
    codes.push_back(quantize(analog.samples[idx]));
  }
  return codes;
}

Waveform Adc::digitize_to_voltage(const Waveform& analog) const {
  Waveform out;
  out.sample_rate_hz = cfg_.sample_rate_hz;
  const auto codes = digitize(analog);
  out.samples.reserve(codes.size());
  for (auto c : codes) out.samples.push_back(code_to_volts(c));
  return out;
}

}  // namespace densevlc::dsp
