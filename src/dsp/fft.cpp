#include "dsp/fft.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace densevlc::dsp {
namespace {

void transform(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument{"fft: size must be a power of two"};
  }

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (Complex& c : data) c *= scale;
  }
}

}  // namespace

void fft(std::vector<Complex>& data) { transform(data, false); }

void ifft(std::vector<Complex>& data) { transform(data, true); }

std::vector<Complex> fft_real(const std::vector<double>& data) {
  std::vector<Complex> c(data.begin(), data.end());
  fft(c);
  return c;
}

}  // namespace densevlc::dsp
