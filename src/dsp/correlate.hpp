// Cross-correlation utilities for preamble and pilot detection.
//
// Both the data receiver (frame preamble search) and the synchronization
// listener (NLOS pilot search at frx oversampling) locate a known pattern
// inside a noisy sample stream via normalized cross-correlation.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/arena.hpp"

namespace densevlc::dsp {

/// Raw sliding-dot-product correlation of `pattern` against `signal`.
/// Output length is signal.size() - pattern.size() + 1; empty if the
/// pattern is longer than the signal.
std::vector<double> correlate(std::span<const double> signal,
                              std::span<const double> pattern);

/// Normalized cross-correlation in [-1, 1]: each window of the signal is
/// mean-removed and scaled by its energy, as is the pattern. Windows with
/// no variance correlate as 0.
std::vector<double> normalized_correlate(std::span<const double> signal,
                                         std::span<const double> pattern);

/// Result of a pattern search.
struct PeakDetection {
  std::size_t index = 0;   ///< sample offset of the best alignment
  double score = 0.0;      ///< normalized correlation at the peak
};

/// Finds the best normalized-correlation alignment of `pattern` within
/// `signal`, requiring the peak to reach `threshold`. Returns nullopt when
/// nothing crosses the threshold (e.g. pilot absent / blocked).
std::optional<PeakDetection> detect_pattern(std::span<const double> signal,
                                            std::span<const double> pattern,
                                            double threshold);

// --- Zero-allocation overloads (see common/arena.hpp) -------------------

/// Reusable workspace for repeated pattern searches: mean-removed pattern
/// staging, the score vector, and the per-position rolling window
/// statistics the SIMD score kernel consumes (aligned for vector loads).
struct CorrelateScratch {
  std::vector<double> pattern;
  std::vector<double> scores;
  AlignedVector<double> means;
  AlignedVector<double> vars;
};

/// normalized_correlate into `scratch.scores`. Bit-identical to the
/// value-returning function, which now wraps this.
void normalized_correlate_into(std::span<const double> signal,
                               std::span<const double> pattern,
                               CorrelateScratch& scratch);

/// detect_pattern running off a reused workspace.
std::optional<PeakDetection> detect_pattern_into(
    std::span<const double> signal, std::span<const double> pattern,
    double threshold, CorrelateScratch& scratch);

}  // namespace densevlc::dsp
