#include "dsp/butterworth.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace densevlc::dsp {

std::vector<BiquadCoeffs> design_butterworth_lowpass(std::size_t order,
                                                     double cutoff_hz,
                                                     double sample_rate_hz) {
  if (order == 0) throw std::invalid_argument{"butterworth: order must be >= 1"};
  if (!(cutoff_hz > 0.0) || !(cutoff_hz < sample_rate_hz / 2.0)) {
    throw std::invalid_argument{
        "butterworth: cutoff must lie in (0, fs/2)"};
  }
  // Prewarped analog corner (bilinear transform with T = 2 absorbed).
  const double warped = std::tan(kPi * cutoff_hz / sample_rate_hz);

  std::vector<BiquadCoeffs> sections;
  sections.reserve((order + 1) / 2);

  // Conjugate pole pairs: analog prototype poles at angle
  // phi_k = (2k - 1) * pi / (2 * order) from the negative real axis give
  // normalized sections s^2 + 2 sin(phi_k) s + 1.
  const std::size_t pairs = order / 2;
  for (std::size_t k = 1; k <= pairs; ++k) {
    const double phi =
        (2.0 * static_cast<double>(k) - 1.0) * kPi /
        (2.0 * static_cast<double>(order));
    const double q = 2.0 * std::sin(phi);  // section damping coefficient
    const double w = warped;
    const double a0 = 1.0 + q * w + w * w;
    BiquadCoeffs c;
    c.b0 = w * w / a0;
    c.b1 = 2.0 * w * w / a0;
    c.b2 = w * w / a0;
    c.a1 = (2.0 * w * w - 2.0) / a0;
    c.a2 = (1.0 - q * w + w * w) / a0;
    sections.push_back(c);
  }

  // Odd order: one real pole at s = -warped, as a degenerate biquad.
  if (order % 2 == 1) {
    const double w = warped;
    const double a0 = 1.0 + w;
    BiquadCoeffs c;
    c.b0 = w / a0;
    c.b1 = w / a0;
    c.b2 = 0.0;
    c.a1 = (w - 1.0) / a0;
    c.a2 = 0.0;
    sections.push_back(c);
  }
  return sections;
}

BiquadCoeffs design_ac_coupling_highpass(double cutoff_hz,
                                         double sample_rate_hz) {
  if (!(cutoff_hz > 0.0) || !(cutoff_hz < sample_rate_hz / 2.0)) {
    throw std::invalid_argument{
        "ac coupling: cutoff must lie in (0, fs/2)"};
  }
  const double w = std::tan(kPi * cutoff_hz / sample_rate_hz);
  const double a0 = 1.0 + w;
  BiquadCoeffs c;
  c.b0 = 1.0 / a0;
  c.b1 = -1.0 / a0;
  c.b2 = 0.0;
  c.a1 = (w - 1.0) / a0;
  c.a2 = 0.0;
  return c;
}

}  // namespace densevlc::dsp
