// Sampled-signal container used across the PHY and front-end models.
#pragma once

#include <cstddef>
#include <vector>

namespace densevlc::dsp {

/// A uniformly sampled real-valued signal.
///
/// Plain data: samples plus the rate they were taken at. All front-end
/// stages consume and produce Waveforms at explicit rates, which keeps
/// resampling sites visible in the code.
struct Waveform {
  std::vector<double> samples;
  double sample_rate_hz = 0.0;

  /// Duration covered by the samples [s].
  double duration() const {
    return sample_rate_hz > 0.0
               ? static_cast<double>(samples.size()) / sample_rate_hz
               : 0.0;
  }

  /// Number of samples.
  std::size_t size() const { return samples.size(); }
};

}  // namespace densevlc::dsp
