#include "dsp/snr_estimator.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace densevlc::dsp {

std::optional<SnrEstimate> m2m4_snr(std::span<const double> samples) {
  if (samples.size() < 4) return std::nullopt;
  double m2 = 0.0;
  double m4 = 0.0;
  for (double x : samples) {
    const double x2 = x * x;
    m2 += x2;
    m4 += x2 * x2;
  }
  const auto n = static_cast<double>(samples.size());
  m2 /= n;
  m4 /= n;

  const double disc = 3.0 * m2 * m2 - m4;
  if (disc <= 0.0) return std::nullopt;
  const double s = std::sqrt(disc / 2.0);
  const double noise = m2 - s;
  if (noise <= 0.0 || s <= 0.0) return std::nullopt;

  SnrEstimate est;
  est.signal_power = s;
  est.noise_power = noise;
  est.snr_linear = s / noise;
  est.snr_db = 10.0 * std::log10(est.snr_linear);
  DVLC_ASSERT(est.signal_power > 0.0 && est.noise_power > 0.0,
              "M2M4 estimate must yield positive signal and noise powers");
  return est;
}

double snr_db_from_powers(double signal_power, double noise_power) {
  if (signal_power <= 0.0 || noise_power <= 0.0) return -300.0;
  return 10.0 * std::log10(signal_power / noise_power);
}

}  // namespace densevlc::dsp
