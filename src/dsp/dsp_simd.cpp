// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
//
// Vector-backend instantiations of the DSP kernels. This is the only DSP
// TU compiled with the vector ISA flags (-mavx2 on x86; see
// src/dsp/CMakeLists.txt), so `simd::VectorBackend` resolves to the wide
// backend here and to the scalar one everywhere else. Callers must gate
// on `simd::use_vector_kernels()` before entering these.
#include "dsp/dsp_kernels.hpp"

namespace densevlc::dsp::detail {

void biquad_x4_vec(const double* coeffs, double* states,
                   std::size_t sections, double* x, std::size_t samples) {
  biquad_x4_kernel<simd::VectorBackend>(coeffs, states, sections, x,
                                        samples);
}

void correlate_scores_vec(const double* signal, const double* pat,
                          std::size_t m, const double* means,
                          const double* vars, double pat_energy,
                          double* scores, std::size_t n) {
  correlate_scores_kernel<simd::VectorBackend>(signal, pat, m, means, vars,
                                               pat_energy, scores, n);
}

const char* dsp_vector_backend_name() {
  return simd::VectorBackend::kName;
}

}  // namespace densevlc::dsp::detail
