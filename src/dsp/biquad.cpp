// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
#include "dsp/biquad.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/arena.hpp"
#include "common/contracts.hpp"
#include "common/units.hpp"
#include "dsp/dsp_kernels.hpp"

namespace densevlc::dsp {

BiquadCascade::BiquadCascade(const std::vector<BiquadCoeffs>& sections) {
  sections_.reserve(sections.size());
  // DVLC_LINT_WAIVE(hot-loop-alloc): one-time construction, reserved above
  for (const auto& c : sections) sections_.emplace_back(c);
}

double BiquadCascade::step(double x) {
  for (auto& s : sections_) x = s.step(x);
  return x;
}

void BiquadCascade::process_block(std::span<double> x) {
  for (auto& s : sections_) s.process_block(x);
}

void BiquadCascade::process_into(const Waveform& in, Waveform& out) {
  out.sample_rate_hz = in.sample_rate_hz;
  arena_resize(out.samples, in.samples.size());
  std::copy(in.samples.begin(), in.samples.end(), out.samples.begin());
  process_block(out.samples);
}

Waveform BiquadCascade::process(const Waveform& in) {
  Waveform out;
  process_into(in, out);
  return out;
}

void BiquadCascade::reset() {
  for (auto& s : sections_) s.reset();
}

void process_cascades_x4(BiquadCascade* const cascades[4],
                         std::span<double> interleaved) {
  DVLC_EXPECT(interleaved.size() % 4 == 0,
              "x4 block must be 4-lane interleaved");
  const std::size_t sections = cascades[0]->section_count();
  DVLC_EXPECT(sections <= detail::kMaxBiquadSections,
              "cascade too deep for the x4 kernel");
  for (std::size_t l = 1; l < 4; ++l) {
    DVLC_EXPECT(cascades[l]->section_count() == sections,
                "x4 lanes must share the cascade shape");
  }
  // Stage coefficients and delay-line state into lane-major groups of 4.
  double coeffs[detail::kMaxBiquadSections * 20];
  double states[detail::kMaxBiquadSections * 8];
  for (std::size_t s = 0; s < sections; ++s) {
    for (std::size_t l = 0; l < 4; ++l) {
      const Biquad& sec = cascades[l]->section(s);
      const BiquadCoeffs& c = sec.coeffs();
      coeffs[s * 20 + 0 + l] = c.b0;
      coeffs[s * 20 + 4 + l] = c.b1;
      coeffs[s * 20 + 8 + l] = c.b2;
      coeffs[s * 20 + 12 + l] = c.a1;
      coeffs[s * 20 + 16 + l] = c.a2;
      states[s * 8 + 0 + l] = sec.state_s1();
      states[s * 8 + 4 + l] = sec.state_s2();
    }
  }
  const std::size_t samples = interleaved.size() / 4;
  if (simd::use_vector_kernels()) {
    detail::biquad_x4_vec(coeffs, states, sections, interleaved.data(),
                          samples);
  } else {
    detail::biquad_x4_kernel<simd::ScalarBackend>(
        coeffs, states, sections, interleaved.data(), samples);
  }
  for (std::size_t s = 0; s < sections; ++s) {
    for (std::size_t l = 0; l < 4; ++l) {
      cascades[l]->section(s).set_state(states[s * 8 + 0 + l],
                                        states[s * 8 + 4 + l]);
    }
  }
}

double BiquadCascade::magnitude_at(double freq_hz,
                                   double sample_rate_hz) const {
  const double omega = 2.0 * kPi * freq_hz / sample_rate_hz;
  const std::complex<double> z_inv = std::polar(1.0, -omega);
  std::complex<double> h{1.0, 0.0};
  for (const auto& s : sections_) {
    const auto& c = s.coeffs();
    const std::complex<double> num =
        c.b0 + c.b1 * z_inv + c.b2 * z_inv * z_inv;
    const std::complex<double> den =
        1.0 + c.a1 * z_inv + c.a2 * z_inv * z_inv;
    h *= num / den;
  }
  return std::abs(h);
}

}  // namespace densevlc::dsp
