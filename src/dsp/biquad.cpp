// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
#include "dsp/biquad.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/arena.hpp"
#include "common/units.hpp"

namespace densevlc::dsp {

BiquadCascade::BiquadCascade(const std::vector<BiquadCoeffs>& sections) {
  sections_.reserve(sections.size());
  // DVLC_LINT_WAIVE(hot-loop-alloc): one-time construction, reserved above
  for (const auto& c : sections) sections_.emplace_back(c);
}

double BiquadCascade::step(double x) {
  for (auto& s : sections_) x = s.step(x);
  return x;
}

void BiquadCascade::process_block(std::span<double> x) {
  for (auto& s : sections_) s.process_block(x);
}

void BiquadCascade::process_into(const Waveform& in, Waveform& out) {
  out.sample_rate_hz = in.sample_rate_hz;
  arena_resize(out.samples, in.samples.size());
  std::copy(in.samples.begin(), in.samples.end(), out.samples.begin());
  process_block(out.samples);
}

Waveform BiquadCascade::process(const Waveform& in) {
  Waveform out;
  process_into(in, out);
  return out;
}

void BiquadCascade::reset() {
  for (auto& s : sections_) s.reset();
}

double BiquadCascade::magnitude_at(double freq_hz,
                                   double sample_rate_hz) const {
  const double omega = 2.0 * kPi * freq_hz / sample_rate_hz;
  const std::complex<double> z_inv = std::polar(1.0, -omega);
  std::complex<double> h{1.0, 0.0};
  for (const auto& s : sections_) {
    const auto& c = s.coeffs();
    const std::complex<double> num =
        c.b0 + c.b1 * z_inv + c.b2 * z_inv * z_inv;
    const std::complex<double> den =
        1.0 + c.a1 * z_inv + c.a2 * z_inv * z_inv;
    h *= num / den;
  }
  return std::abs(h);
}

}  // namespace densevlc::dsp
