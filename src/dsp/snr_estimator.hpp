// M2M4 moments-based SNR estimation (paper Sec. 7.2, after Pauluzzi &
// Beaulieu 2000).
//
// DenseVLC estimates link SNR from received data symbols without a
// training sequence: the second and fourth moments of the (AC-coupled,
// therefore zero-mean antipodal) symbol stream determine signal and noise
// powers in closed form. For a real antipodal constellation (kurtosis
// ka = 1) in real AWGN (kw = 3):
//
//   M2 = S + N,  M4 = S^2 + 6 S N + 3 N^2
//   =>  S = sqrt((3 M2^2 - M4) / 2),  N = M2 - S.
#pragma once

#include <optional>
#include <span>

namespace densevlc::dsp {

/// SNR estimate decomposed into powers. The powers are in the squared
/// unit of whatever samples were fed in (A^2 for photocurrent, V^2 for
/// post-TIA voltage), so they carry no fixed unit suffix.
struct SnrEstimate {
  double signal_power = 0.0;  // DVLC_LINT_WAIVE(units): accumulator over arbitrary signal scale
  double noise_power = 0.0;   // DVLC_LINT_WAIVE(units): accumulator over arbitrary signal scale
  double snr_linear = 0.0;
  double snr_db = 0.0;
};

/// Runs the M2M4 estimator over zero-mean antipodal samples.
///
/// Returns nullopt when the moment equations have no real solution (can
/// happen at very low sample counts or if the input is not antipodal) or
/// fewer than 4 samples are supplied.
std::optional<SnrEstimate> m2m4_snr(std::span<const double> samples);

/// True SNR helper for tests/benches: signal power over noise power in dB.
double snr_db_from_powers(double signal_power, double noise_power);

}  // namespace densevlc::dsp
