// Backend-generic vector kernels for the DSP hot loops.
//
// Each kernel is a template over a simd backend (common/simd.hpp) and is
// instantiated twice: for `simd::ScalarBackend` inside the regular TUs
// (biquad.cpp, correlate.cpp) and for `simd::VectorBackend` inside
// dsp_simd.cpp, which is the only DSP TU compiled with the vector ISA
// flags. Call sites pick between the two at runtime via
// `simd::use_vector_kernels()`.
//
// Bit-exactness: both float kernels vectorize ACROSS independent streams
// (4 cascade lanes, 4 correlation window positions), never within one
// accumulation chain, and the backends use separate mul/add (no FMA), so
// every per-lane operation sequence matches the scalar reference
// rounding-for-rounding. See docs/architecture.md "Performance".
#pragma once

#include <cmath>
#include <cstddef>

#include "common/simd.hpp"

namespace densevlc::dsp::detail {

/// Upper bound on cascade depth supported by the x4 biquad kernel (the
/// deepest cascade in the system is the order-7 Butterworth's 4 sections).
inline constexpr std::size_t kMaxBiquadSections = 8;

/// Four equally-shaped DF2T cascades advanced in lockstep.
///
/// Layouts (lane-major groups of 4):
///   coeffs[s*20 + {b0,b1,b2,a1,a2}*4 + lane]
///   states[s*8 + {s1,s2}*4 + lane]
///   x[t*4 + lane]  (interleaved samples, filtered in place)
///
/// Per lane this performs exactly Biquad::step's operation sequence for
/// each sample through each section — a pure dataflow reordering of the
/// per-section block passes, hence bit-identical.
template <class B>
void biquad_x4_kernel(const double* coeffs, double* states,
                      std::size_t sections, double* x,
                      std::size_t samples) {
  using V = typename B::f64x4;
  V b0[kMaxBiquadSections], b1[kMaxBiquadSections], b2[kMaxBiquadSections];
  V a1[kMaxBiquadSections], a2[kMaxBiquadSections];
  V s1[kMaxBiquadSections], s2[kMaxBiquadSections];
  for (std::size_t s = 0; s < sections; ++s) {
    b0[s] = B::load4(coeffs + s * 20 + 0);
    b1[s] = B::load4(coeffs + s * 20 + 4);
    b2[s] = B::load4(coeffs + s * 20 + 8);
    a1[s] = B::load4(coeffs + s * 20 + 12);
    a2[s] = B::load4(coeffs + s * 20 + 16);
    s1[s] = B::load4(states + s * 8 + 0);
    s2[s] = B::load4(states + s * 8 + 4);
  }
  for (std::size_t t = 0; t < samples; ++t) {
    V v = B::load4(x + t * 4);
    for (std::size_t s = 0; s < sections; ++s) {
      const V y = B::add4(B::mul4(b0[s], v), s1[s]);
      s1[s] = B::add4(B::sub4(B::mul4(b1[s], v), B::mul4(a1[s], y)), s2[s]);
      s2[s] = B::sub4(B::mul4(b2[s], v), B::mul4(a2[s], y));
      v = y;
    }
    B::store4(x + t * 4, v);
  }
  for (std::size_t s = 0; s < sections; ++s) {
    B::store4(states + s * 8 + 0, s1[s]);
    B::store4(states + s * 8 + 4, s2[s]);
  }
}

/// Normalized-correlation scores for `n` window positions, 4 at a time.
/// `means[i]`/`vars[i]` are the rolling window statistics precomputed by
/// the caller with the reference recurrence; per position the dot product
/// accumulates over j in the same order as the scalar reference.
template <class B>
void correlate_scores_kernel(const double* signal, const double* pat,
                             std::size_t m, const double* means,
                             const double* vars, double pat_energy,
                             double* scores, std::size_t n) {
  using V = typename B::f64x4;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    V acc = B::broadcast4(0.0);
    const V mean = B::load4(means + i);
    for (std::size_t j = 0; j < m; ++j) {
      acc = B::add4(acc, B::mul4(B::sub4(B::load4(signal + i + j), mean),
                                 B::broadcast4(pat[j])));
    }
    double dots[4];
    B::store4(dots, acc);
    for (std::size_t l = 0; l < 4; ++l) {
      const double var = vars[i + l];
      scores[i + l] =
          var > 1e-30 ? dots[l] / std::sqrt(var * pat_energy) : 0.0;
    }
  }
  for (; i < n; ++i) {
    const double var = vars[i];
    double score = 0.0;
    if (var > 1e-30) {
      const double mean = means[i];
      double dot = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        dot += (signal[i + j] - mean) * pat[j];
      }
      score = dot / std::sqrt(var * pat_energy);
    }
    scores[i] = score;
  }
}

// --- Vector-backend entry points (defined in dsp_simd.cpp) ---------------

void biquad_x4_vec(const double* coeffs, double* states,
                   std::size_t sections, double* x, std::size_t samples);
void correlate_scores_vec(const double* signal, const double* pat,
                          std::size_t m, const double* means,
                          const double* vars, double pat_energy,
                          double* scores, std::size_t n);

/// Name of the vector backend dsp_simd.cpp was compiled against
/// ("avx2", "neon", or "scalar" when no vector ISA is available).
const char* dsp_vector_backend_name();

}  // namespace densevlc::dsp::detail
