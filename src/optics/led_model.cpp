#include "optics/led_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace densevlc::optics {

Watts LedModel::power_at_current(Amperes current) const {
  const double current_a = current.value();
  DVLC_ASSERT(std::isfinite(current_a), "LED drive current must be finite");
  if (current_a <= 0.0) return Watts{0.0};
  const double junction = elec_.ideality_factor * elec_.thermal_voltage_v *
                          std::log(current_a / elec_.saturation_current_a +
                                   1.0) *
                          current_a;
  const double resistive =
      elec_.series_resistance_ohm * current_a * current_a;
  return Watts{junction + resistive};
}

Volts LedModel::forward_voltage(Amperes current) const {
  const double current_a = current.value();
  DVLC_ASSERT(std::isfinite(current_a), "LED drive current must be finite");
  if (current_a <= 0.0) return Volts{0.0};
  return Volts{elec_.ideality_factor * elec_.thermal_voltage_v *
                   std::log(current_a / elec_.saturation_current_a + 1.0) +
               elec_.series_resistance_ohm * current_a};
}

Ohms LedModel::dynamic_resistance() const {
  // V / A = ohm and the junction slope k*Vt/(2*Ib) is exactly that shape.
  const Volts junction_scale{elec_.ideality_factor * elec_.thermal_voltage_v};
  const Amperes twice_bias{2.0 * op_.bias_current_a};
  return junction_scale / twice_bias + Ohms{elec_.series_resistance_ohm};
}

Watts LedModel::comm_power_approx(Amperes swing) const {
  DVLC_ASSERT(std::isfinite(swing.value()) && swing.value() >= 0.0,
              "swing current must be finite and non-negative");
  // Eq. 10: P_C = r * (Isw/2)^2 — A^2 * ohm = W, checked at compile time.
  const Amperes half = swing / 2.0;
  return half * half * dynamic_resistance();
}

Watts LedModel::comm_power_exact(Amperes swing) const {
  DVLC_ASSERT(std::isfinite(swing.value()) && swing.value() >= 0.0,
              "swing current must be finite and non-negative");
  const Amperes high = bias_current() + swing / 2.0;
  const Amperes low = bias_current() - swing / 2.0;
  return (power_at_current(high) + power_at_current(low)) / 2.0 -
         power_at_current(bias_current());
}

double LedModel::comm_power_relative_error(Amperes swing) const {
  DVLC_ASSERT(std::isfinite(swing.value()) && swing.value() >= 0.0,
              "swing current must be finite and non-negative");
  const Watts base = power_at_current(bias_current());
  const Watts exact = base + comm_power_exact(swing);
  if (exact <= Watts{0.0}) return 0.0;
  const Watts approx = base + comm_power_approx(swing);
  return abs(approx - exact) / exact;
}

Watts LedModel::illumination_power() const {
  return power_at_current(bias_current());
}

Watts LedModel::optical_power_illumination() const {
  return elec_.wall_plug_efficiency * illumination_power();
}

Watts LedModel::optical_signal_power(Amperes swing) const {
  return elec_.wall_plug_efficiency * comm_power_approx(swing);
}

Amperes LedModel::max_feasible_swing() const {
  return Amperes{std::min(op_.max_swing_current_a, 2.0 * op_.bias_current_a)};
}

}  // namespace densevlc::optics
