#include "optics/led_model.hpp"

#include <algorithm>
#include <cmath>

namespace densevlc::optics {

double LedModel::power_at_current(double current_a) const {
  if (current_a <= 0.0) return 0.0;
  const double junction = elec_.ideality_factor * elec_.thermal_voltage_v *
                          std::log(current_a / elec_.saturation_current_a +
                                   1.0) *
                          current_a;
  const double resistive =
      elec_.series_resistance_ohm * current_a * current_a;
  return junction + resistive;
}

double LedModel::forward_voltage(double current_a) const {
  if (current_a <= 0.0) return 0.0;
  return elec_.ideality_factor * elec_.thermal_voltage_v *
             std::log(current_a / elec_.saturation_current_a + 1.0) +
         elec_.series_resistance_ohm * current_a;
}

double LedModel::dynamic_resistance() const {
  return elec_.ideality_factor * elec_.thermal_voltage_v /
             (2.0 * op_.bias_current_a) +
         elec_.series_resistance_ohm;
}

double LedModel::comm_power_approx(double swing_a) const {
  const double half = swing_a / 2.0;
  return dynamic_resistance() * half * half;
}

double LedModel::comm_power_exact(double swing_a) const {
  const double high = op_.bias_current_a + swing_a / 2.0;
  const double low = op_.bias_current_a - swing_a / 2.0;
  return (power_at_current(high) + power_at_current(low)) / 2.0 -
         power_at_current(op_.bias_current_a);
}

double LedModel::comm_power_relative_error(double swing_a) const {
  const double base = power_at_current(op_.bias_current_a);
  const double exact = base + comm_power_exact(swing_a);
  if (exact <= 0.0) return 0.0;
  const double approx = base + comm_power_approx(swing_a);
  return std::fabs(approx - exact) / exact;
}

double LedModel::illumination_power() const {
  return power_at_current(op_.bias_current_a);
}

double LedModel::optical_power_illumination() const {
  return elec_.wall_plug_efficiency * illumination_power();
}

double LedModel::optical_signal_power(double swing_a) const {
  return elec_.wall_plug_efficiency * comm_power_approx(swing_a);
}

double LedModel::max_feasible_swing() const {
  return std::min(op_.max_swing_current_a, 2.0 * op_.bias_current_a);
}

}  // namespace densevlc::optics
