#include "optics/nlos.hpp"

#include <cmath>

#include "common/units.hpp"

namespace densevlc::optics {

double nlos_floor_gain(const LambertianEmitter& emitter, const Photodiode& pd,
                       const geom::Pose& tx_pose, const geom::Pose& rx_pose,
                       const FloorSurface& floor,
                       std::span<const FloorOccluder> occluders) {
  if (floor.patches_per_axis == 0) return 0.0;
  const double m = emitter.order();
  const double dx = floor.width / static_cast<double>(floor.patches_per_axis);
  const double dy = floor.depth / static_cast<double>(floor.patches_per_axis);
  const double patch_area = dx * dy;
  const geom::Vec3 up{0.0, 0.0, 1.0};

  double total = 0.0;
  for (std::size_t iy = 0; iy < floor.patches_per_axis; ++iy) {
    for (std::size_t ix = 0; ix < floor.patches_per_axis; ++ix) {
      const geom::Vec3 patch{(static_cast<double>(ix) + 0.5) * dx,
                             (static_cast<double>(iy) + 0.5) * dy, 0.0};

      // Occluded patches (a person standing there) absorb the light.
      bool occluded = false;
      for (const auto& occ : occluders) {
        const double ox = patch.x - occ.x;
        const double oy = patch.y - occ.y;
        if (ox * ox + oy * oy <= occ.radius * occ.radius) {
          occluded = true;
          break;
        }
      }
      if (occluded) continue;

      // Leg 1: TX -> patch. The patch collects like a bare Lambertian
      // receiver of area dA facing up.
      const geom::Vec3 d1v = patch - tx_pose.position;
      const double d1 = d1v.norm();
      if (d1 <= 0.0) continue;
      const geom::Vec3 dir1 = d1v / d1;
      const double cos_phi1 = tx_pose.normal.dot(dir1);
      const double cos_psi1 = up.dot(geom::Vec3{} - dir1);
      if (cos_phi1 <= 0.0 || cos_psi1 <= 0.0) continue;

      const double incident = (m + 1.0) / (2.0 * kPi * d1 * d1) *
                              std::pow(cos_phi1, m) * cos_psi1 * patch_area;

      // Leg 2: patch -> RX photodiode. The patch re-emits diffusely
      // (first-order Lambertian, 1/pi steradian-normalized).
      const geom::Vec3 d2v = rx_pose.position - patch;
      const double d2 = d2v.norm();
      if (d2 <= 0.0) continue;
      const geom::Vec3 dir2 = d2v / d2;
      const double cos_phi2 = up.dot(dir2);
      const double cos_psi2 = rx_pose.normal.dot(geom::Vec3{} - dir2);
      if (cos_phi2 <= 0.0 || cos_psi2 <= 0.0) continue;
      const double psi2 = std::acos(std::min(1.0, cos_psi2));
      const double gain = pd.concentrator_gain(psi2);
      if (gain <= 0.0) continue;

      const double bounce = floor.reflectance / kPi * cos_phi2 *
                            pd.collection_area_m2 / (d2 * d2) * gain *
                            cos_psi2;

      total += incident * bounce;
    }
  }
  return total;
}

}  // namespace densevlc::optics
