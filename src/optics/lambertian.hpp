// Lambertian line-of-sight channel model (paper Eq. 2).
//
// The optical DC gain between a generalized-Lambertian emitter and a
// photodiode is
//
//   H = (m+1) * Apd / (2*pi*d^2) * cos^m(phi) * g(psi) * cos(psi)
//
// for incidence angles psi within the receiver field of view, else 0.
// m is the Lambertian order derived from the LED half-power semi-angle,
// g(psi) the optical concentrator gain.
#pragma once

#include "common/quantity.hpp"
#include "geom/vec3.hpp"

namespace densevlc::optics {

/// Emission pattern of a generalized-Lambertian LED (plus lens).
struct LambertianEmitter {
  double half_power_semi_angle_rad = 0.2617993877991494;  ///< 15 deg default

  /// Lambertian order m = -ln 2 / ln(cos(phi_1/2)).
  double order() const;
};

/// Photodiode aperture parameters (paper Table 1: S5971 with Apd = 1.1 mm^2,
/// field of view 90 deg, responsivity 0.4 A/W).
struct Photodiode {
  double collection_area_m2 = 1.1e-6;       ///< Apd [m^2]
  double field_of_view_rad = 1.5707963267948966;  ///< Psi_c (half-angle) [rad]
  double responsivity_a_per_w = 0.4;        ///< R [A/W]
  double concentrator_index = 1.0;          ///< n of optical concentrator;
                                            ///< 1.0 = bare diode (g = 1)

  /// Concentrator/filter gain g(psi): n^2 / sin^2(Psi_c) inside the FoV,
  /// 0 outside. With n = 1 and Psi_c = 90 deg this is exactly 1.
  double concentrator_gain(double psi_rad) const;
};

/// Geometry of one TX->RX link resolved into the model's angles.
struct LinkGeometry {
  double distance_m = 0.0;         ///< d
  double irradiation_angle_rad = 0.0;  ///< phi, from emitter normal
  double incidence_angle_rad = 0.0;    ///< psi, from receiver normal
  bool in_field_of_view = false;       ///< psi <= Psi_c and facing
};

/// Resolves emitter/receiver poses into link geometry. Links where either
/// side faces away (cos <= 0) are flagged out of view.
LinkGeometry resolve_geometry(const geom::Pose& emitter,
                              const geom::Pose& receiver,
                              double field_of_view_rad);

/// LOS channel DC gain H (dimensionless optical power ratio, Eq. 2).
/// Returns 0 when the receiver is outside the field of view or either
/// element faces away from the other.
double los_gain(const LambertianEmitter& emitter, const Photodiode& pd,
                const geom::Pose& tx_pose, const geom::Pose& rx_pose);

/// Radiant intensity pattern value (m+1)/(2*pi) * cos^m(phi) [1/sr].
/// Multiplying by emitted optical power gives W/sr toward angle phi.
double radiant_intensity_factor(const LambertianEmitter& emitter,
                                double phi_rad);

/// Illuminance produced at a surface point by an emitter radiating
/// `optical_power` of white light with luminous efficacy `efficacy`.
/// The surface normal is the receiver pose normal. W * (lm/W) / m^2 = lx
/// is derived by the quantity algebra.
Lux illuminance_lux(const LambertianEmitter& emitter,
                    const geom::Pose& tx_pose, const geom::Pose& surface,
                    Watts optical_power, LumensPerWatt efficacy);

}  // namespace densevlc::optics
