// Electrical and optical model of the LED transmitter (paper Sec. 3.4.1).
//
// Power draw of the diode at forward current I (Eq. 8):
//
//   P_led(I) = k * Vt * ln(I/Is + 1) * I + Rs * I^2
//
// with ideality factor k, thermal voltage Vt, reverse saturation current
// Is, and series resistance Rs. Modulating a swing Isw around the bias Ib
// with Manchester-coded OOK costs, on Taylor expansion to second order
// (Eqs. 9-10), an average extra power
//
//   P_C = r * (Isw/2)^2,   r = k*Vt/(2*Ib) + Rs
//
// the LED's dynamic resistance at the bias point. These formulas drive the
// entire power-budget optimization; Fig. 4 quantifies the Taylor error.
#pragma once

#include "common/quantity.hpp"

namespace densevlc::optics {

/// Datasheet-level electrical parameters of one LED (defaults: CREE XT-E
/// fit from paper Table 1).
struct LedElectrical {
  double ideality_factor = 2.68;         ///< k
  double thermal_voltage_v = 0.025852;   ///< Vt [V] at ~300 K
  double saturation_current_a = 1.44e-18;///< Is [A]
  double series_resistance_ohm = 0.19;   ///< Rs [ohm]
  double wall_plug_efficiency = 0.4;     ///< eta: optical W out / electrical W in
};

/// Operating point / modulation parameters of one LED transmitter.
struct LedOperatingPoint {
  double bias_current_a = 0.45;       ///< Ib: sets the illumination level
  double max_swing_current_a = 0.9;   ///< Isw,max: full-swing bound
};

/// The LED transmitter model used by optimization, illumination sizing and
/// PHY waveform generation.
class LedModel {
 public:
  LedModel() = default;
  LedModel(const LedElectrical& elec, const LedOperatingPoint& op)
      : elec_{elec}, op_{op} {}

  const LedElectrical& electrical() const { return elec_; }
  const LedOperatingPoint& operating_point() const { return op_; }

  /// Exact electrical power draw at forward current I (Eq. 8).
  /// Currents <= 0 draw nothing (the diode blocks).
  Watts power_at_current(Amperes current) const;

  /// Forward voltage at current I: V = k*Vt*ln(I/Is + 1) + Rs*I.
  Volts forward_voltage(Amperes current) const;

  /// Dynamic resistance r = k*Vt/(2*Ib) + Rs at the configured bias.
  Ohms dynamic_resistance() const;

  /// Taylor-approximated average extra power for communication at swing
  /// Isw (Eq. 10): P_C = r * (Isw/2)^2 — the A^2 * ohm = W identity the
  /// type system now checks at compile time.
  Watts comm_power_approx(Amperes swing) const;

  /// Exact average extra power for communication at swing Isw:
  /// the Manchester-coded waveform spends half the time at Ib + Isw/2 and
  /// half at Ib - Isw/2, so
  ///   P_C = (P_led(Ih) + P_led(Il)) / 2 - P_led(Ib).
  Watts comm_power_exact(Amperes swing) const;

  /// Relative Taylor-approximation error on the LED's average power
  /// consumption while communicating (the quantity Fig. 4 plots, as a
  /// fraction not percent):
  ///   |(P_I + P_C,approx) - (P_I + P_C,exact)| / (P_I + P_C,exact).
  /// The paper reports 0.45% at Isw = 900 mA. Returns 0 at zero swing.
  double comm_power_relative_error(Amperes swing) const;

  /// Power draw in pure illumination mode: P_led(Ib).
  Watts illumination_power() const;

  /// Emitted optical power in illumination mode:
  /// eta * P_led(Ib). The average optical power is the same in
  /// illumination+communication mode (Manchester symmetry), which is what
  /// keeps brightness constant across mode switches.
  Watts optical_power_illumination() const;

  /// Optical *signal* power corresponding to electrical communication
  /// power at swing Isw: eta * r * (Isw/2)^2. This is the quantity whose
  /// product with the channel gain H enters the SINR numerator (Eq. 12).
  Watts optical_signal_power(Amperes swing) const;

  /// Largest swing that keeps both rails in the diode's conducting,
  /// quasi-linear region: min(Isw,max, 2*Ib) — the low rail Ib - Isw/2
  /// must stay >= 0.
  Amperes max_feasible_swing() const;

  /// Typed view of the configured bias current Ib.
  Amperes bias_current() const { return Amperes{op_.bias_current_a}; }

 private:
  LedElectrical elec_{};
  LedOperatingPoint op_{};
};

}  // namespace densevlc::optics
