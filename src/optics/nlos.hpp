// Non-line-of-sight (one-bounce) optical path via a diffuse floor.
//
// DenseVLC's synchronization (paper Sec. 6.2, Fig. 14) rides on light from
// a leading TX reflecting off the floor and reaching the photodiodes of
// neighbouring ceiling TXs. The standard first-order VLC reflection model
// discretizes the reflecting surface into small patches; each patch
// receives light like a Lambertian receiver and re-emits it as an ideal
// diffuse (order-1 Lambertian) secondary source scaled by the surface
// reflectance rho:
//
//   H_nlos = sum over patches p of
//     [(m+1)/(2 pi d1^2) cos^m(phi1) cos(psi1) * dA]      (TX -> patch)
//     * rho
//     * [Apd/(pi d2^2) cos(phi2) g(psi2) cos(psi2)]       (patch -> PD)
//
// with the receiver FoV applied on psi2. The result is a (tiny) optical DC
// gain, typically 3-4 orders of magnitude below LOS gains — which is why
// the RX front-end needs its dedicated AC amplification stage.
#pragma once

#include <cstddef>
#include <span>

#include "geom/vec3.hpp"
#include "optics/lambertian.hpp"

namespace densevlc::optics {

/// Reflecting floor description.
struct FloorSurface {
  double width = 3.0;         ///< x extent [m]
  double depth = 3.0;         ///< y extent [m]
  double reflectance = 0.5;   ///< rho: 0.1 dark carpet .. 0.8 glossy white
  std::size_t patches_per_axis = 40;  ///< discretization resolution
};

/// A circular absorbing region on the floor — the shadow of a person or
/// an object standing on the reflection path (paper Sec. 9, "NLOS
/// synchronization ... even when a person is walking by").
struct FloorOccluder {
  double x = 0.0;
  double y = 0.0;
  double radius = 0.25;
};

/// One-bounce NLOS channel gain from `tx_pose` to `rx_pose` via the floor
/// at z = 0. Both poses may face any direction; typically both face down
/// (ceiling TX LED and ceiling peer photodiode). Floor patches covered by
/// any occluder contribute nothing.
double nlos_floor_gain(const LambertianEmitter& emitter, const Photodiode& pd,
                       const geom::Pose& tx_pose, const geom::Pose& rx_pose,
                       const FloorSurface& floor,
                       std::span<const FloorOccluder> occluders = {});

}  // namespace densevlc::optics
