#include "optics/lambertian.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace densevlc::optics {

double LambertianEmitter::order() const {
  DVLC_EXPECT(half_power_semi_angle_rad > 0.0 &&
                  half_power_semi_angle_rad < kPi / 2.0,
              "half-power semi-angle must lie in (0, pi/2)");
  return -std::log(2.0) / std::log(std::cos(half_power_semi_angle_rad));
}

double Photodiode::concentrator_gain(double psi_rad) const {
  if (psi_rad > field_of_view_rad) return 0.0;
  const double s = std::sin(field_of_view_rad);
  if (s <= 0.0) return 0.0;
  return concentrator_index * concentrator_index / (s * s);
}

LinkGeometry resolve_geometry(const geom::Pose& emitter,
                              const geom::Pose& receiver,
                              double field_of_view_rad) {
  LinkGeometry g;
  const geom::Vec3 delta = receiver.position - emitter.position;
  g.distance_m = delta.norm();
  if (g.distance_m <= 0.0) return g;
  const geom::Vec3 dir = delta / g.distance_m;

  const double cos_phi = emitter.normal.dot(dir);
  const double cos_psi = receiver.normal.dot(geom::Vec3{} - dir);
  if (cos_phi <= 0.0 || cos_psi <= 0.0) return g;  // facing away

  g.irradiation_angle_rad = std::acos(std::min(1.0, cos_phi));
  g.incidence_angle_rad = std::acos(std::min(1.0, cos_psi));
  g.in_field_of_view = g.incidence_angle_rad <= field_of_view_rad;
  return g;
}

double los_gain(const LambertianEmitter& emitter, const Photodiode& pd,
                const geom::Pose& tx_pose, const geom::Pose& rx_pose) {
  DVLC_EXPECT(pd.collection_area_m2 >= 0.0,
              "photodiode area must be non-negative");
  const LinkGeometry g =
      resolve_geometry(tx_pose, rx_pose, pd.field_of_view_rad);
  if (!g.in_field_of_view || g.distance_m <= 0.0) return 0.0;
  const double m = emitter.order();
  const double cos_phi = std::cos(g.irradiation_angle_rad);
  const double cos_psi = std::cos(g.incidence_angle_rad);
  const double gain = (m + 1.0) * pd.collection_area_m2 /
                      (2.0 * kPi * g.distance_m * g.distance_m) *
                      std::pow(cos_phi, m) *
                      pd.concentrator_gain(g.incidence_angle_rad) * cos_psi;
  DVLC_ASSERT(gain >= 0.0, "LOS gain must be non-negative");
  return gain;
}

double radiant_intensity_factor(const LambertianEmitter& emitter,
                                double phi_rad) {
  const double cos_phi = std::cos(phi_rad);
  if (cos_phi <= 0.0) return 0.0;
  const double m = emitter.order();
  return (m + 1.0) / (2.0 * kPi) * std::pow(cos_phi, m);
}

Lux illuminance_lux(const LambertianEmitter& emitter,
                    const geom::Pose& tx_pose, const geom::Pose& surface,
                    Watts optical_power, LumensPerWatt efficacy) {
  DVLC_EXPECT(optical_power >= Watts{0.0},
              "optical power must be non-negative");
  DVLC_EXPECT(efficacy >= LumensPerWatt{0.0},
              "luminous efficacy must be non-negative");
  // Illuminance = luminous intensity toward the point, projected on the
  // surface and spread over d^2:
  //   E = efficacy * P_opt * (m+1)/(2 pi) cos^m(phi) * cos(psi) / d^2.
  const LinkGeometry g = resolve_geometry(tx_pose, surface, kPi / 2.0);
  if (g.distance_m <= 0.0 || !g.in_field_of_view) return Lux{0.0};
  const Lumens intensity =
      radiant_intensity_factor(emitter, g.irradiation_angle_rad) *
      optical_power * efficacy;
  const SquareMeters spread{g.distance_m * g.distance_m};
  return intensity * std::cos(g.incidence_angle_rad) / spread;
}

}  // namespace densevlc::optics
