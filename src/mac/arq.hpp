// Stop-and-wait ARQ over the VLC downlink / WiFi-ACK uplink.
//
// The paper's MAC acknowledges decoded frames over WiFi (Sec. 7.2) but
// leaves recovery unspecified; any deployment needs one, so this module
// supplies the natural design: per-receiver stop-and-wait with sequence
// numbers (1 byte prefixed to every data payload), bounded
// retransmissions, and duplicate suppression at the receiver. One
// outstanding frame per RX matches the slotted downlink, where each
// beamspot sends exactly one frame per slot anyway.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

namespace densevlc::mac {

/// A data segment as carried inside a MAC frame payload: one sequence
/// byte followed by user bytes.
struct Segment {
  std::uint8_t seq = 0;
  std::vector<std::uint8_t> data;

  bool operator==(const Segment&) const = default;
};

/// Prefixes the sequence number.
std::vector<std::uint8_t> encode_segment(const Segment& segment);

/// Splits a received payload. Returns nullopt on an empty payload.
std::optional<Segment> decode_segment(
    std::span<const std::uint8_t> payload);

/// Typed notification that a segment exhausted its retry budget. The
/// dropped payload rides along so the caller can log or re-route it.
struct ArqGiveUp {
  std::uint8_t seq = 0;
  std::size_t attempts = 0;
  std::vector<std::uint8_t> data;
};

/// Controller-side ARQ state for one receiver.
class ArqTransmitter {
 public:
  /// `max_attempts` bounds transmissions per segment (1 = no retry).
  explicit ArqTransmitter(std::size_t max_attempts = 4)
      : max_attempts_{max_attempts} {}

  /// Queues user data for delivery.
  void enqueue(std::vector<std::uint8_t> data);

  /// The segment to transmit in the next slot, or nullopt when idle.
  /// Repeated calls without ack()/expire in between return the same
  /// segment (it is still outstanding).
  std::optional<Segment> next_segment();

  /// Call when the slot's transmission completed without an ACK arriving
  /// in time. After max_attempts the segment is dropped (counted) and
  /// the give-up is returned so the controller can account the delivery
  /// failure; nullopt while retries remain.
  std::optional<ArqGiveUp> on_timeout();

  /// Call when an ACK for sequence `seq` arrives. Out-of-date ACKs are
  /// ignored. Returns true if it acknowledged the outstanding segment.
  bool on_ack(std::uint8_t seq);

  /// Counters.
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t transmissions() const { return transmissions_; }
  std::size_t backlog() const {
    return queue_.size() + (outstanding_ ? 1 : 0);
  }

 private:
  std::size_t max_attempts_;
  std::deque<std::vector<std::uint8_t>> queue_;
  std::optional<Segment> outstanding_;
  std::size_t attempts_ = 0;
  std::uint8_t next_seq_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t transmissions_ = 0;
};

/// Receiver-side ARQ state: deduplicates by sequence number and tells
/// the caller which ACK to send.
class ArqReceiver {
 public:
  /// Result of processing one decoded downlink segment.
  struct RxOutcome {
    bool deliver_to_app = false;  ///< first time this segment was seen
    std::uint8_t ack_seq = 0;     ///< always ACK what was received
  };

  RxOutcome on_segment(const Segment& segment);

  std::uint64_t duplicates() const { return duplicates_; }
  std::uint64_t accepted() const { return accepted_; }

 private:
  std::optional<std::uint8_t> last_seq_;
  std::uint64_t duplicates_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace densevlc::mac
