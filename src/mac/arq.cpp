#include "mac/arq.hpp"

#include <span>

namespace densevlc::mac {

std::vector<std::uint8_t> encode_segment(const Segment& segment) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + segment.data.size());
  out.push_back(segment.seq);
  out.insert(out.end(), segment.data.begin(), segment.data.end());
  return out;
}

std::optional<Segment> decode_segment(
    std::span<const std::uint8_t> payload) {
  if (payload.empty()) return std::nullopt;
  Segment segment;
  segment.seq = payload[0];
  segment.data.assign(payload.begin() + 1, payload.end());
  return segment;
}

void ArqTransmitter::enqueue(std::vector<std::uint8_t> data) {
  queue_.push_back(std::move(data));
}

std::optional<Segment> ArqTransmitter::next_segment() {
  if (!outstanding_) {
    if (queue_.empty()) return std::nullopt;
    outstanding_ = Segment{next_seq_, std::move(queue_.front())};
    queue_.pop_front();
    next_seq_ = static_cast<std::uint8_t>(next_seq_ + 1);
    attempts_ = 0;
  }
  ++attempts_;
  ++transmissions_;
  return outstanding_;
}

std::optional<ArqGiveUp> ArqTransmitter::on_timeout() {
  if (!outstanding_) return std::nullopt;
  if (attempts_ >= max_attempts_) {
    ArqGiveUp give_up{outstanding_->seq, attempts_,
                      std::move(outstanding_->data)};
    outstanding_.reset();
    ++dropped_;
    return give_up;
  }
  // Otherwise keep the segment outstanding; next_segment() resends it.
  return std::nullopt;
}

bool ArqTransmitter::on_ack(std::uint8_t seq) {
  if (!outstanding_ || outstanding_->seq != seq) return false;
  outstanding_.reset();
  ++delivered_;
  return true;
}

ArqReceiver::RxOutcome ArqReceiver::on_segment(const Segment& segment) {
  RxOutcome out;
  out.ack_seq = segment.seq;
  if (last_seq_ && *last_seq_ == segment.seq) {
    ++duplicates_;
    out.deliver_to_app = false;
  } else {
    last_seq_ = segment.seq;
    ++accepted_;
    out.deliver_to_app = true;
  }
  return out;
}

}  // namespace densevlc::mac
