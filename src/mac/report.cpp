#include "mac/report.hpp"

#include <algorithm>
#include <cmath>

namespace densevlc::mac {

std::uint16_t quantize_gain(double gain) {
  if (gain <= 0.0) return 0;
  const double code = std::round(gain / kGainLsb);
  return static_cast<std::uint16_t>(std::min(code, 65535.0));
}

double dequantize_gain(std::uint16_t code) {
  return static_cast<double>(code) * kGainLsb;
}

std::vector<std::uint8_t> encode_report(const ChannelReport& report) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + report.gains.size() * 2);
  out.push_back(static_cast<std::uint8_t>(report.rx_id >> 8));
  out.push_back(static_cast<std::uint8_t>(report.rx_id & 0xFF));
  out.push_back(report.epoch);
  out.push_back(static_cast<std::uint8_t>(report.gains.size()));
  for (double g : report.gains) {
    const std::uint16_t code = quantize_gain(g);
    out.push_back(static_cast<std::uint8_t>(code >> 8));
    out.push_back(static_cast<std::uint8_t>(code & 0xFF));
  }
  return out;
}

std::optional<ChannelReport> decode_report(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 4) return std::nullopt;
  ChannelReport report;
  report.rx_id = static_cast<std::uint16_t>((payload[0] << 8) | payload[1]);
  report.epoch = payload[2];
  const std::size_t count = payload[3];
  if (payload.size() < 4 + count * 2) return std::nullopt;
  report.gains.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto code = static_cast<std::uint16_t>(
        (payload[4 + 2 * i] << 8) | payload[5 + 2 * i]);
    report.gains.push_back(dequantize_gain(code));
  }
  return report;
}

phy::MacFrame report_frame(const ChannelReport& report,
                           std::uint16_t controller_addr) {
  phy::MacFrame frame;
  frame.dst = controller_addr;
  frame.src = report.rx_id;
  frame.protocol = static_cast<std::uint16_t>(phy::Protocol::kChannelReport);
  frame.payload = encode_report(report);
  return frame;
}

channel::ChannelMatrix matrix_from_reports(
    std::span<const ChannelReport> reports, std::size_t num_tx,
    std::size_t num_rx) {
  channel::ChannelMatrix out{num_tx, num_rx,
                             std::vector<double>(num_tx * num_rx, 0.0)};
  // Later reports of the same RX overwrite earlier ones (span order is
  // arrival order).
  for (const auto& report : reports) {
    if (report.rx_id >= num_rx) continue;
    if (report.gains.size() != num_tx) continue;
    for (std::size_t j = 0; j < num_tx; ++j) {
      out.set_gain(j, report.rx_id, report.gains[j]);
    }
  }
  return out;
}

}  // namespace densevlc::mac
