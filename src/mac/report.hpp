// Channel-report codec (paper Sec. 7.2, "Channel measurements").
//
// After the probe phase each RX reports its measured downlink gains to
// the controller over the WiFi uplink. The report is "fit in a frame
// with minimal length": gains are quantized to 16-bit fixed point with a
// 1e-10 LSB (resolution ~0.01% of a typical 1e-6 LOS gain, range up to
// 6.5e-6), so a 36-TX report costs 76 bytes of payload.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "channel/model.hpp"
#include "phy/frame.hpp"

namespace densevlc::mac {

/// Fixed-point LSB of a quantized channel gain.
inline constexpr double kGainLsb = 1e-10;

/// Largest representable gain (clips above).
inline constexpr double kGainMax = kGainLsb * 65535.0;

/// One receiver's measured downlink gains.
struct ChannelReport {
  std::uint16_t rx_id = 0;
  std::uint8_t epoch = 0;       ///< wraps; lets the controller drop stale
  std::vector<double> gains;    ///< one per TX, linear optical gain

  bool operator==(const ChannelReport&) const = default;
};

/// Quantizes a gain to the wire code (clipping into range).
std::uint16_t quantize_gain(double gain);

/// Expands a wire code back to a gain.
double dequantize_gain(std::uint16_t code);

/// Serializes into a MAC-frame payload: rx_id (2B), epoch (1B),
/// tx_count (1B), then tx_count 16-bit codes.
std::vector<std::uint8_t> encode_report(const ChannelReport& report);

/// Parses a payload produced by encode_report. Returns nullopt on short
/// or inconsistent buffers. Gains round-trip to within kGainLsb / 2.
std::optional<ChannelReport> decode_report(
    std::span<const std::uint8_t> payload);

/// Convenience: wraps a report into a kChannelReport MAC frame addressed
/// to the controller.
phy::MacFrame report_frame(const ChannelReport& report,
                           std::uint16_t controller_addr);

/// Assembles a channel matrix from the most recent report per RX
/// (missing RXs contribute zero columns). `num_tx` fixes the row count;
/// reports with other TX counts are ignored.
channel::ChannelMatrix matrix_from_reports(
    std::span<const ChannelReport> reports, std::size_t num_tx,
    std::size_t num_rx);

}  // namespace densevlc::mac
