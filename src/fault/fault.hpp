// Deterministic fault injection for chaos experiments.
//
// The paper's controller assumes every LED, RX report, and WiFi ACK path
// keeps working (Sec. 3.2, 7.2), yet its own blockage and mobility
// experiments (Sec. 8) show links vanishing mid-epoch. A FaultSchedule
// is a declarative list of timed component failures that the system
// consults while it runs: LED burnout and flicker, driver saturation,
// RX dropout, WiFi report-loss bursts, sync-pilot loss, and controller
// epoch overruns. Every query is a pure function of (event set, time),
// and the seeded generators derive their choices through the same
// SplitMix64 stream splitting as the rest of the simulator — identical
// seeds and schedules reproduce a chaos run bit for bit at any thread
// count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

namespace densevlc::fault {

/// The component failure modes the system knows how to survive.
enum class FaultKind : std::uint8_t {
  kLedBurnout,       ///< TX emits no light (permanent unless windowed)
  kLedFlicker,       ///< TX optical output jitters multiplicatively
  kDriverSaturation, ///< TX driver caps output at a fraction of commanded
  kRxDropout,        ///< RX neither decodes nor reports
  kReportLossBurst,  ///< WiFi uplink loses every channel report
  kSyncPilotLoss,    ///< NLOS sync pilots go undetected
  kEpochOverrun,     ///< controller misses its decision deadline
  kWorkerCrash,      ///< campaign worker process dies (SIGKILL) mid-run
};

/// Human-readable fault name (for traces and bench tables).
const char* to_string(FaultKind kind);

/// One timed fault. `target` is the TX id for LED/driver faults and the
/// RX id for dropouts; global kinds ignore it. `magnitude` is the
/// flicker depth in [0, 1] (0 = no effect) or the saturation ceiling in
/// (0, 1] (1 = no effect); other kinds ignore it.
struct FaultEvent {
  FaultKind kind = FaultKind::kLedBurnout;
  double t_start_s = 0.0;
  double t_end_s = std::numeric_limits<double>::infinity();
  std::size_t target = 0;
  double magnitude = 1.0;

  bool active_at(double t_s) const {
    return t_s >= t_start_s && t_s < t_end_s;
  }
};

/// An ordered set of fault events plus the pure queries the control and
/// data planes evaluate against simulated time.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Appends one event (t_end_s must not precede t_start_s).
  void add(const FaultEvent& event);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// True when a burnout has TX `tx` dark at `t_s`.
  bool tx_dead(std::size_t tx, double t_s) const;

  /// Multiplicative optical output factor of TX `tx` at `t_s`: 1 when
  /// healthy, 0 when burnt out, in between under saturation or flicker.
  /// The flicker draw hashes (tx, bit pattern of t_s), so equal queries
  /// return equal jitter on every thread and every run.
  double tx_output_scale(std::size_t tx, double t_s) const;

  /// True when RX `rx` is dropped out at `t_s`.
  bool rx_down(std::size_t rx, double t_s) const;

  /// True while a report-loss burst swallows the whole WiFi uplink.
  bool reports_blocked(double t_s) const;

  /// True while NLOS sync pilots go undetected.
  bool sync_pilot_lost(double t_s) const;

  /// True when the controller overruns the epoch starting at `t_s`.
  bool epoch_overrun(double t_s) const;

  /// Number of TXs dead at `t_s` (distinct burnout targets).
  std::size_t dead_tx_count(double t_s) const;

  /// Crash-injection query for the durable campaign runner: the first
  /// kWorkerCrash event's `target` is the number of instances the worker
  /// journals before it SIGKILLs itself (scenario/campaign.hpp's
  /// CampaignJournal::set_crash_after). Unlike the timed queries above
  /// this one is count-based — a crash point must be deterministic
  /// across thread counts, and wall time is not. Nullopt when no worker
  /// crash is scheduled.
  std::optional<std::size_t> worker_crash_after() const;

  /// Seeded generator: burns out `count` distinct LEDs of a `num_tx`
  /// grid at `t_start_s`, permanently. Which LEDs die depends only on
  /// the seed.
  static FaultSchedule random_led_burnouts(std::size_t num_tx,
                                           std::size_t count,
                                           double t_start_s,
                                           std::uint64_t seed);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace densevlc::fault
