#include "fault/fault.hpp"

#include <algorithm>
#include <bit>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace densevlc::fault {
namespace {

/// Domain tag keeping flicker draws independent of every other stream.
constexpr std::uint64_t kFlickerDomain = 0xF11C'4E5u;

/// Uniform [0, 1) from the top 53 bits of a SplitMix64-mixed key.
double unit_hash(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t mixed =
      Rng::derive_stream_seed(Rng::derive_stream_seed(kFlickerDomain, a), b);
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLedBurnout: return "led_burnout";
    case FaultKind::kLedFlicker: return "led_flicker";
    case FaultKind::kDriverSaturation: return "driver_saturation";
    case FaultKind::kRxDropout: return "rx_dropout";
    case FaultKind::kReportLossBurst: return "report_loss_burst";
    case FaultKind::kSyncPilotLoss: return "sync_pilot_loss";
    case FaultKind::kEpochOverrun: return "epoch_overrun";
    case FaultKind::kWorkerCrash: return "worker_crash";
  }
  return "unknown";
}

void FaultSchedule::add(const FaultEvent& event) {
  DVLC_EXPECT(event.t_end_s >= event.t_start_s,
              "fault window must not end before it starts");
  DVLC_EXPECT(event.magnitude >= 0.0 && event.magnitude <= 1.0,
              "fault magnitude must lie in [0, 1]");
  events_.push_back(event);
}

bool FaultSchedule::tx_dead(std::size_t tx, double t_s) const {
  for (const auto& e : events_) {
    if (e.kind == FaultKind::kLedBurnout && e.target == tx &&
        e.active_at(t_s)) {
      return true;
    }
  }
  return false;
}

double FaultSchedule::tx_output_scale(std::size_t tx, double t_s) const {
  double scale = 1.0;
  for (const auto& e : events_) {
    if (e.target != tx || !e.active_at(t_s)) continue;
    switch (e.kind) {
      case FaultKind::kLedBurnout:
        return 0.0;
      case FaultKind::kDriverSaturation:
        scale = std::min(scale, e.magnitude);
        break;
      case FaultKind::kLedFlicker:
        scale *= 1.0 - e.magnitude *
                           unit_hash(tx, std::bit_cast<std::uint64_t>(t_s));
        break;
      default:
        break;
    }
  }
  return scale;
}

bool FaultSchedule::rx_down(std::size_t rx, double t_s) const {
  for (const auto& e : events_) {
    if (e.kind == FaultKind::kRxDropout && e.target == rx &&
        e.active_at(t_s)) {
      return true;
    }
  }
  return false;
}

bool FaultSchedule::reports_blocked(double t_s) const {
  for (const auto& e : events_) {
    if (e.kind == FaultKind::kReportLossBurst && e.active_at(t_s)) {
      return true;
    }
  }
  return false;
}

bool FaultSchedule::sync_pilot_lost(double t_s) const {
  for (const auto& e : events_) {
    if (e.kind == FaultKind::kSyncPilotLoss && e.active_at(t_s)) return true;
  }
  return false;
}

bool FaultSchedule::epoch_overrun(double t_s) const {
  for (const auto& e : events_) {
    if (e.kind == FaultKind::kEpochOverrun && e.active_at(t_s)) return true;
  }
  return false;
}

std::optional<std::size_t> FaultSchedule::worker_crash_after() const {
  for (const auto& e : events_) {
    if (e.kind == FaultKind::kWorkerCrash) return e.target;
  }
  return std::nullopt;
}

std::size_t FaultSchedule::dead_tx_count(double t_s) const {
  std::vector<std::size_t> dead;
  for (const auto& e : events_) {
    if (e.kind == FaultKind::kLedBurnout && e.active_at(t_s)) {
      dead.push_back(e.target);
    }
  }
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
  return dead.size();
}

FaultSchedule FaultSchedule::random_led_burnouts(std::size_t num_tx,
                                                 std::size_t count,
                                                 double t_start_s,
                                                 std::uint64_t seed) {
  DVLC_EXPECT(count <= num_tx, "cannot burn out more LEDs than exist");
  // Partial Fisher-Yates over the TX ids: the first `count` entries are a
  // uniform sample without replacement.
  std::vector<std::size_t> ids(num_tx);
  for (std::size_t i = 0; i < num_tx; ++i) ids[i] = i;
  Rng rng{seed};
  FaultSchedule schedule;
  for (std::size_t i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(num_tx) - 1));
    std::swap(ids[i], ids[j]);
    FaultEvent e;
    e.kind = FaultKind::kLedBurnout;
    e.t_start_s = t_start_s;
    e.target = ids[i];
    schedule.add(e);
  }
  return schedule;
}

}  // namespace densevlc::fault
