// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
#include "phy/ook.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/arena.hpp"
#include "common/contracts.hpp"
#include "dsp/correlate.hpp"

namespace densevlc::phy {
namespace {

// Chip assembly + rendering shared by the scalar and batch modulator
// paths: wire bytes in, guard/pilot/preamble/data current waveform out.
void render_wire_into(const OokModulator& mod,
                      std::span<const std::uint8_t> wire, bool include_pilot,
                      std::uint8_t tx_id, std::size_t guard_chips,
                      dsp::Waveform& wf, std::vector<Chip>& chip_scratch) {
  const auto pilot = pilot_pattern();
  const auto pre = preamble_pattern();
  const std::size_t pilot_chips =
      include_pilot ? pilot.size() + 16 : 0;  // 16 chips: Manchester id byte
  const std::size_t total_chips =
      pilot_chips + pre.size() + wire.size() * 16;
  arena_resize(chip_scratch, total_chips);
  std::span<Chip> at{chip_scratch};
  if (include_pilot) {
    std::copy(pilot.begin(), pilot.end(), at.begin());
    const std::array<std::uint8_t, 1> id_byte{tx_id};
    manchester_encode_bytes(id_byte, at.subspan(pilot.size(), 16));
    at = at.subspan(pilot_chips);
  }
  std::copy(pre.begin(), pre.end(), at.begin());
  manchester_encode_bytes(wire, at.subspan(pre.size()));

  // Render guard + data + guard in one buffer.
  wf.sample_rate_hz = mod.params().sample_rate_hz();
  const std::size_t spc = mod.params().samples_per_chip;
  const std::size_t guard_samples = guard_chips * spc;
  arena_resize(wf.samples, guard_samples * 2 + total_chips * spc);
  std::size_t w = 0;
  for (std::size_t s = 0; s < guard_samples; ++s)
    wf.samples[w++] = mod.params().bias_current_a;
  for (Chip c : chip_scratch) {
    const double level = mod.chip_current(c);
    for (std::size_t s = 0; s < spc; ++s) wf.samples[w++] = level;
  }
  for (std::size_t s = 0; s < guard_samples; ++s)
    wf.samples[w++] = mod.params().bias_current_a;
}

}  // namespace

double OokModulator::chip_current(Chip chip) const {
  const double half = params_.swing_current_a / 2.0;
  return chip == Chip::kHigh ? params_.bias_current_a + half
                             : params_.bias_current_a - half;
}

void OokModulator::modulate_into(std::span<const Chip> chips,
                                 dsp::Waveform& wf) const {
  wf.sample_rate_hz = params_.sample_rate_hz();
  const std::size_t spc = params_.samples_per_chip;
  arena_resize(wf.samples, chips.size() * spc);
  std::size_t w = 0;
  for (Chip c : chips) {
    const double level = chip_current(c);
    for (std::size_t s = 0; s < spc; ++s) wf.samples[w++] = level;
  }
}

dsp::Waveform OokModulator::modulate(std::span<const Chip> chips) const {
  dsp::Waveform wf;
  modulate_into(chips, wf);
  return wf;
}

void OokModulator::idle_into(std::size_t idle_chips, dsp::Waveform& wf) const {
  wf.sample_rate_hz = params_.sample_rate_hz();
  arena_resize(wf.samples, idle_chips * params_.samples_per_chip);
  for (double& v : wf.samples) v = params_.bias_current_a;
}

dsp::Waveform OokModulator::idle(std::size_t idle_chips) const {
  dsp::Waveform wf;
  idle_into(idle_chips, wf);
  return wf;
}

void OokModulator::modulate_frame_into(const MacFrame& frame,
                                       bool include_pilot, std::uint8_t tx_id,
                                       std::size_t guard_chips,
                                       dsp::Waveform& wf,
                                       TxScratch& scratch) const {
  // Assemble the on-air chip sequence: [pilot + id] preamble + data.
  serialize_frame_into(frame, scratch.wire);
  render_wire_into(*this, scratch.wire, include_pilot, tx_id, guard_chips, wf,
                   scratch.chips);
}

void OokModulator::modulate_batch_into(std::span<const TxJob> jobs,
                                       std::span<dsp::Waveform* const> out,
                                       TxBatchScratch& scratch) const {
  const std::size_t n = jobs.size();
  DVLC_EXPECT(out.size() == n,
              "modulate_batch_into: one output waveform per job");
  arena_resize(scratch.frames, n);
  for (std::size_t i = 0; i < n; ++i) scratch.frames[i] = jobs[i].frame;
  serialize_frames_batch(scratch.frames, scratch.batch);
  for (std::size_t i = 0; i < n; ++i) {
    render_wire_into(*this, scratch.batch.lane_wire(i), jobs[i].include_pilot,
                     jobs[i].tx_id, jobs[i].guard_chips, *out[i],
                     scratch.chips);
  }
}

dsp::Waveform OokModulator::modulate_frame(const MacFrame& frame,
                                           bool include_pilot,
                                           std::uint8_t tx_id,
                                           std::size_t guard_chips) const {
  dsp::Waveform wf;
  TxScratch scratch;
  modulate_frame_into(frame, include_pilot, tx_id, guard_chips, wf, scratch);
  return wf;
}

void OokDemodulator::slice_chips_into(std::span<const double> signal,
                                      double offset_samples, std::size_t count,
                                      std::vector<Chip>& out) const {
  arena_resize(out, count);
  const double spc = samples_per_chip();
  for (std::size_t i = 0; i < count; ++i) {
    const double start = offset_samples + static_cast<double>(i) * spc;
    // Integrate the central half of the chip to dodge edge transients.
    const auto lo = static_cast<std::size_t>(
        std::max(0.0, start + 0.25 * spc));
    const auto hi = static_cast<std::size_t>(
        std::max(0.0, start + 0.75 * spc));
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t s = lo; s <= hi && s < signal.size(); ++s) {
      acc += signal[s];
      ++n;
    }
    const double mean = n > 0 ? acc / static_cast<double>(n) : 0.0;
    out[i] = mean > 0.0 ? Chip::kHigh : Chip::kLow;
  }
}

std::vector<Chip> OokDemodulator::slice_chips(std::span<const double> signal,
                                              double offset_samples,
                                              std::size_t count) const {
  std::vector<Chip> chips;
  slice_chips_into(signal, offset_samples, count, chips);
  return chips;
}

void OokDemodulator::preamble_template_into(std::vector<double>& tpl) const {
  const auto pre = preamble_pattern();
  const double spc = samples_per_chip();
  const auto total = static_cast<std::size_t>(
      std::ceil(static_cast<double>(pre.size()) * spc));
  arena_resize(tpl, total);
  for (std::size_t s = 0; s < total; ++s) {
    const auto chip_idx = std::min<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(s) / spc),
        pre.size() - 1);
    tpl[s] = pre[chip_idx] == Chip::kHigh ? 1.0 : -1.0;
  }
}

std::vector<double> OokDemodulator::preamble_template() const {
  std::vector<double> tpl;
  preamble_template_into(tpl);
  return tpl;
}

bool OokDemodulator::receive_frame_into(std::span<const double> signal,
                                        RxResult& out, RxScratch& scratch,
                                        double min_correlation) const {
  preamble_template_into(scratch.preamble_tpl);
  const auto peak = dsp::detect_pattern_into(signal, scratch.preamble_tpl,
                                             min_correlation,
                                             scratch.correlate);
  if (!peak) return false;

  const double spc = samples_per_chip();
  const double data_start =
      static_cast<double>(peak->index) +
      static_cast<double>(kPreambleChips) * spc;

  // First decode the 9 header bytes (9 * 8 bits * 2 chips).
  constexpr std::size_t kHeaderBytes = 9;
  slice_chips_into(signal, data_start, kHeaderBytes * 16, scratch.chips);
  std::array<std::uint8_t, kHeaderBytes> head_bytes{};
  manchester_decode_bytes_lenient(scratch.chips, head_bytes);
  if (head_bytes[0] != kSfd) return false;
  const std::uint16_t length = static_cast<std::uint16_t>(
      (head_bytes[1] << 8) | head_bytes[2]);
  if (length > kMaxPayload) return false;

  const std::size_t total_bytes = serialized_frame_bytes(length);
  slice_chips_into(signal, data_start, total_bytes * 16, scratch.chips);
  arena_resize(scratch.bytes, total_bytes);
  const std::size_t violations =
      manchester_decode_bytes_lenient(scratch.chips, scratch.bytes);
  if (!parse_frame_into(scratch.bytes, out.parsed, scratch.frame))
    return false;

  out.preamble_at = peak->index;
  out.correlation = peak->score;
  out.manchester_violations = violations;
  return true;
}

std::size_t OokDemodulator::receive_batch_into(
    std::span<const std::span<const double>> signals, std::span<RxResult> out,
    std::span<std::uint8_t> ok, BatchRxScratch& scratch,
    double min_correlation) const {
  const std::size_t n = signals.size();
  DVLC_EXPECT(out.size() == n && ok.size() == n,
              "receive_batch_into: span sizes must match");
  preamble_template_into(scratch.preamble_tpl);
  arena_resize(scratch.lane_bytes, n);
  arena_resize(scratch.wire_views, n);
  arena_resize(scratch.parse_out, n);
  arena_resize(scratch.parse_ok, n);
  arena_resize(scratch.lane_of, n);

  // Front half per lane — sync search, header peek, chip slicing, lenient
  // Manchester decode — exactly as receive_frame_into up to the parse.
  // Lanes that survive collect their wire bytes (kept per lane so spans
  // stay stable) for one combined parse_frames_batch call.
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ok[i] = 0;
    const std::span<const double> signal = signals[i];
    const auto peak = dsp::detect_pattern_into(signal, scratch.preamble_tpl,
                                               min_correlation,
                                               scratch.correlate);
    if (!peak) continue;
    const double spc = samples_per_chip();
    const double data_start =
        static_cast<double>(peak->index) +
        static_cast<double>(kPreambleChips) * spc;

    constexpr std::size_t kHeaderBytes = 9;
    slice_chips_into(signal, data_start, kHeaderBytes * 16, scratch.chips);
    std::array<std::uint8_t, kHeaderBytes> head_bytes{};
    manchester_decode_bytes_lenient(scratch.chips, head_bytes);
    if (head_bytes[0] != kSfd) continue;
    const std::uint16_t length = static_cast<std::uint16_t>(
        (head_bytes[1] << 8) | head_bytes[2]);
    if (length > kMaxPayload) continue;

    const std::size_t total_bytes = serialized_frame_bytes(length);
    slice_chips_into(signal, data_start, total_bytes * 16, scratch.chips);
    std::vector<std::uint8_t>& bytes = scratch.lane_bytes[k];
    arena_resize(bytes, total_bytes);
    out[i].manchester_violations =
        manchester_decode_bytes_lenient(scratch.chips, bytes);
    out[i].preamble_at = peak->index;
    out[i].correlation = peak->score;
    scratch.wire_views[k] = {bytes.data(), bytes.size()};
    scratch.parse_out[k] = &out[i].parsed;
    scratch.lane_of[k] = static_cast<std::uint32_t>(i);
    ++k;
  }

  parse_frames_batch(
      std::span<const std::span<const std::uint8_t>>{scratch.wire_views.data(),
                                                     k},
      std::span<ParsedFrame* const>{scratch.parse_out.data(), k},
      std::span<std::uint8_t>{scratch.parse_ok.data(), k}, scratch.batch);
  std::size_t decoded = 0;
  for (std::size_t j = 0; j < k; ++j) {
    ok[scratch.lane_of[j]] = scratch.parse_ok[j];
    decoded += scratch.parse_ok[j];
  }
  return decoded;
}

std::optional<OokDemodulator::RxResult> OokDemodulator::receive_frame(
    std::span<const double> signal, double min_correlation) const {
  RxScratch scratch;
  RxResult out;
  if (!receive_frame_into(signal, out, scratch, min_correlation))
    return std::nullopt;
  return out;
}

}  // namespace densevlc::phy
