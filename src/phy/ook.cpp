#include "phy/ook.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/correlate.hpp"

namespace densevlc::phy {

double OokModulator::chip_current(Chip chip) const {
  const double half = params_.swing_current_a / 2.0;
  return chip == Chip::kHigh ? params_.bias_current_a + half
                             : params_.bias_current_a - half;
}

dsp::Waveform OokModulator::modulate(std::span<const Chip> chips) const {
  dsp::Waveform wf;
  wf.sample_rate_hz = params_.sample_rate_hz();
  wf.samples.reserve(chips.size() * params_.samples_per_chip);
  for (Chip c : chips) {
    const double level = chip_current(c);
    wf.samples.insert(wf.samples.end(), params_.samples_per_chip, level);
  }
  return wf;
}

dsp::Waveform OokModulator::idle(std::size_t idle_chips) const {
  dsp::Waveform wf;
  wf.sample_rate_hz = params_.sample_rate_hz();
  wf.samples.assign(idle_chips * params_.samples_per_chip,
                    params_.bias_current_a);
  return wf;
}

dsp::Waveform OokModulator::modulate_frame(const MacFrame& frame,
                                           bool include_pilot,
                                           std::uint8_t tx_id,
                                           std::size_t guard_chips) const {
  std::vector<Chip> chips;
  if (include_pilot) {
    const auto pilot = pilot_pattern();
    chips.insert(chips.end(), pilot.begin(), pilot.end());
    // TX id byte, Manchester-coded, so listeners can verify the leader.
    const std::uint8_t id_byte[1] = {tx_id};
    const auto id_bits = bytes_to_bits(id_byte);
    const auto id_chips = manchester_encode(id_bits);
    chips.insert(chips.end(), id_chips.begin(), id_chips.end());
  }
  const auto body = frame_to_chips(frame);
  chips.insert(chips.end(), body.begin(), body.end());

  dsp::Waveform wf = idle(guard_chips);
  const dsp::Waveform data = modulate(chips);
  wf.samples.insert(wf.samples.end(), data.samples.begin(),
                    data.samples.end());
  const dsp::Waveform tail = idle(guard_chips);
  wf.samples.insert(wf.samples.end(), tail.samples.begin(),
                    tail.samples.end());
  return wf;
}

std::vector<Chip> OokDemodulator::slice_chips(std::span<const double> signal,
                                              double offset_samples,
                                              std::size_t count) const {
  std::vector<Chip> chips;
  chips.reserve(count);
  const double spc = samples_per_chip();
  for (std::size_t i = 0; i < count; ++i) {
    const double start = offset_samples + static_cast<double>(i) * spc;
    // Integrate the central half of the chip to dodge edge transients.
    const auto lo = static_cast<std::size_t>(
        std::max(0.0, start + 0.25 * spc));
    const auto hi = static_cast<std::size_t>(
        std::max(0.0, start + 0.75 * spc));
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t s = lo; s <= hi && s < signal.size(); ++s) {
      acc += signal[s];
      ++n;
    }
    const double mean = n > 0 ? acc / static_cast<double>(n) : 0.0;
    chips.push_back(mean > 0.0 ? Chip::kHigh : Chip::kLow);
  }
  return chips;
}

std::vector<double> OokDemodulator::preamble_template() const {
  const auto pre = preamble_pattern();
  const double spc = samples_per_chip();
  const auto total = static_cast<std::size_t>(
      std::ceil(static_cast<double>(pre.size()) * spc));
  std::vector<double> tpl(total);
  for (std::size_t s = 0; s < total; ++s) {
    const auto chip_idx = std::min<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(s) / spc),
        pre.size() - 1);
    tpl[s] = pre[chip_idx] == Chip::kHigh ? 1.0 : -1.0;
  }
  return tpl;
}

std::optional<OokDemodulator::RxResult> OokDemodulator::receive_frame(
    std::span<const double> signal, double min_correlation) const {
  const auto tpl = preamble_template();
  const auto peak = dsp::detect_pattern(signal, tpl, min_correlation);
  if (!peak) return std::nullopt;

  const double spc = samples_per_chip();
  const double data_start =
      static_cast<double>(peak->index) +
      static_cast<double>(kPreambleChips) * spc;

  // First decode the 9 header bytes (9 * 8 bits * 2 chips).
  const std::size_t header_chips = 9 * 8 * 2;
  const auto head = slice_chips(signal, data_start, header_chips);
  auto head_decoded = manchester_decode_lenient(head);
  const auto head_bytes = bits_to_bytes(head_decoded.bits);
  if (!head_bytes || head_bytes->size() != 9) return std::nullopt;
  if ((*head_bytes)[0] != kSfd) return std::nullopt;
  const std::uint16_t length = static_cast<std::uint16_t>(
      ((*head_bytes)[1] << 8) | (*head_bytes)[2]);
  if (length > kMaxPayload) return std::nullopt;

  const std::size_t total_bytes = serialized_frame_bytes(length);
  const std::size_t total_chips = total_bytes * 8 * 2;
  const auto all = slice_chips(signal, data_start, total_chips);
  auto decoded = manchester_decode_lenient(all);
  const auto bytes = bits_to_bytes(decoded.bits);
  if (!bytes) return std::nullopt;
  const auto parsed = parse_frame(*bytes);
  if (!parsed) return std::nullopt;

  RxResult out;
  out.parsed = *parsed;
  out.preamble_at = peak->index;
  out.correlation = peak->score;
  out.manchester_violations = decoded.violations;
  return out;
}

}  // namespace densevlc::phy
