#include "phy/reed_solomon.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"
#include "phy/gf256.hpp"

namespace densevlc::phy {

namespace gf = gf256;

ReedSolomon::ReedSolomon(std::size_t parity_symbols)
    : n_parity_{parity_symbols} {
  if (parity_symbols < 2 || parity_symbols > 254 || parity_symbols % 2 != 0) {
    throw std::invalid_argument{
        "ReedSolomon: parity_symbols must be even and in [2, 254]"};
  }
  // Generator polynomial g(x) = prod_{i=0}^{2t-1} (x - alpha^i),
  // descending-degree coefficients.
  generator_ = {1};
  for (std::size_t i = 0; i < n_parity_; ++i) {
    const std::uint8_t root = gf::pow_alpha(static_cast<int>(i));
    const std::uint8_t factor[2] = {1, root};  // (x + alpha^i); char 2: -=+
    generator_ = gf::poly_mul(generator_, factor);
  }
  DVLC_ASSERT(generator_.size() == n_parity_ + 1 && generator_.front() == 1,
              "RS generator polynomial must be monic of degree 2t");
}

std::vector<std::uint8_t> ReedSolomon::encode(
    std::span<const std::uint8_t> message) const {
  if (message.size() + n_parity_ > 255) {
    throw std::invalid_argument{"ReedSolomon: message too long for GF(256)"};
  }
  // Systematic encoding: remainder of message * x^{2t} divided by g(x).
  std::vector<std::uint8_t> remainder(n_parity_, 0);
  for (std::uint8_t byte : message) {
    const std::uint8_t feedback = gf::add(byte, remainder.front());
    // Shift left by one, feeding in zero.
    std::rotate(remainder.begin(), remainder.begin() + 1, remainder.end());
    remainder.back() = 0;
    if (feedback != 0) {
      for (std::size_t i = 0; i < n_parity_; ++i) {
        // generator_[0] == 1; parity taps are generator_[1..2t].
        remainder[i] = gf::add(remainder[i],
                               gf::mul(feedback, generator_[i + 1]));
      }
    }
  }
  std::vector<std::uint8_t> codeword(message.begin(), message.end());
  codeword.insert(codeword.end(), remainder.begin(), remainder.end());
  DVLC_ASSERT(codeword.size() == message.size() + n_parity_,
              "systematic codeword must be message + parity");
  return codeword;
}

std::optional<RsDecodeResult> ReedSolomon::decode(
    std::span<const std::uint8_t> codeword) const {
  if (codeword.size() <= n_parity_ || codeword.size() > 255)
    return std::nullopt;
  const std::size_t n = codeword.size();
  const std::size_t k = n - n_parity_;

  // Syndromes S_i = c(alpha^i), i = 0 .. 2t-1.
  std::vector<std::uint8_t> syndromes(n_parity_);
  bool all_zero = true;
  for (std::size_t i = 0; i < n_parity_; ++i) {
    syndromes[i] = gf::poly_eval(codeword, gf::pow_alpha(static_cast<int>(i)));
    all_zero = all_zero && syndromes[i] == 0;
  }
  if (all_zero) {
    return RsDecodeResult{{codeword.begin(), codeword.begin() +
                                                 static_cast<std::ptrdiff_t>(k)},
                          0};
  }

  // Berlekamp-Massey: find the error locator polynomial sigma
  // (ascending-degree coefficients here; sigma[0] == 1).
  std::vector<std::uint8_t> sigma{1};
  std::vector<std::uint8_t> prev_sigma{1};
  std::size_t errors = 0;  // current LFSR length L
  std::size_t m = 1;       // steps since last update
  std::uint8_t prev_discrepancy = 1;
  for (std::size_t step = 0; step < n_parity_; ++step) {
    // Discrepancy: d = S_step + sum_{i=1}^{L} sigma_i * S_{step-i}.
    std::uint8_t d = syndromes[step];
    for (std::size_t i = 1; i < sigma.size() && i <= step; ++i) {
      d = gf::add(d, gf::mul(sigma[i], syndromes[step - i]));
    }
    if (d == 0) {
      ++m;
      continue;
    }
    if (2 * errors <= step) {
      // Length change: sigma' = sigma - (d/b) x^m prev_sigma, L' = step+1-L.
      const std::vector<std::uint8_t> old_sigma = sigma;
      const std::uint8_t coeff = gf::div(d, prev_discrepancy);
      std::vector<std::uint8_t> adjust(prev_sigma.size() + m, 0);
      for (std::size_t i = 0; i < prev_sigma.size(); ++i) {
        adjust[i + m] = gf::mul(prev_sigma[i], coeff);
      }
      if (adjust.size() > sigma.size()) sigma.resize(adjust.size(), 0);
      for (std::size_t i = 0; i < adjust.size(); ++i) {
        sigma[i] = gf::add(sigma[i], adjust[i]);
      }
      errors = step + 1 - errors;
      prev_sigma = old_sigma;
      prev_discrepancy = d;
      m = 1;
    } else {
      const std::uint8_t coeff = gf::div(d, prev_discrepancy);
      std::vector<std::uint8_t> adjust(prev_sigma.size() + m, 0);
      for (std::size_t i = 0; i < prev_sigma.size(); ++i) {
        adjust[i + m] = gf::mul(prev_sigma[i], coeff);
      }
      if (adjust.size() > sigma.size()) sigma.resize(adjust.size(), 0);
      for (std::size_t i = 0; i < adjust.size(); ++i) {
        sigma[i] = gf::add(sigma[i], adjust[i]);
      }
      ++m;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const std::size_t num_errors = sigma.size() - 1;
  if (num_errors == 0 || num_errors > correction_capacity())
    return std::nullopt;

  // Chien search: roots of sigma are alpha^{-position} for codeword
  // positions counted from the highest-degree end (position 0 is the
  // first byte, exponent n-1 in the codeword polynomial).
  std::vector<std::size_t> error_positions;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const int exponent = static_cast<int>(n - 1 - pos);
    const std::uint8_t x_inv = gf::pow_alpha(-exponent);
    // Evaluate sigma (ascending order) at x_inv.
    std::uint8_t acc = 0;
    for (std::size_t i = sigma.size(); i-- > 0;) {
      acc = gf::add(gf::mul(acc, x_inv), sigma[i]);
    }
    if (acc == 0) error_positions.push_back(pos);
  }
  if (error_positions.size() != num_errors) return std::nullopt;

  // Forney: error magnitudes from the error evaluator polynomial
  // omega(x) = [S(x) * sigma(x)] mod x^{2t}  (ascending order).
  std::vector<std::uint8_t> omega(n_parity_, 0);
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    for (std::size_t j = 0; j + i < n_parity_ && j < syndromes.size(); ++j) {
      omega[i + j] = gf::add(omega[i + j], gf::mul(sigma[i], syndromes[j]));
    }
  }
  // Formal derivative of sigma: keep odd-degree terms shifted down.
  std::vector<std::uint8_t> sigma_deriv;
  for (std::size_t i = 1; i < sigma.size(); i += 2) {
    sigma_deriv.push_back(sigma[i]);
  }

  std::vector<std::uint8_t> corrected(codeword.begin(), codeword.end());
  for (std::size_t pos : error_positions) {
    const int exponent = static_cast<int>(n - 1 - pos);
    const std::uint8_t x_inv = gf::pow_alpha(-exponent);
    // omega(x_inv), ascending evaluation.
    std::uint8_t num = 0;
    for (std::size_t i = omega.size(); i-- > 0;) {
      num = gf::add(gf::mul(num, x_inv), omega[i]);
    }
    // sigma'(x_inv): derivative has only even powers of x_inv left after
    // the shift; evaluate at x_inv^2.
    const std::uint8_t x_inv2 = gf::mul(x_inv, x_inv);
    std::uint8_t den = 0;
    for (std::size_t i = sigma_deriv.size(); i-- > 0;) {
      den = gf::add(gf::mul(den, x_inv2), sigma_deriv[i]);
    }
    if (den == 0) return std::nullopt;
    // With syndromes anchored at alpha^0 (b = 0), Forney's formula carries
    // an extra factor X_j^{1-b} = X_j = alpha^{exponent}.
    const std::uint8_t magnitude =
        gf::mul(gf::div(num, den), gf::pow_alpha(exponent));
    corrected[pos] = gf::add(corrected[pos], magnitude);
  }

  // Verify: all syndromes of the corrected word must vanish.
  for (std::size_t i = 0; i < n_parity_; ++i) {
    if (gf::poly_eval(corrected, gf::pow_alpha(static_cast<int>(i))) != 0) {
      return std::nullopt;
    }
  }

  return RsDecodeResult{
      {corrected.begin(), corrected.begin() + static_cast<std::ptrdiff_t>(k)},
      error_positions.size()};
}

}  // namespace densevlc::phy
