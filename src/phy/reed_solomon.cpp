// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
#include "phy/reed_solomon.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/arena.hpp"
#include "common/contracts.hpp"
#include "phy/gf256.hpp"
#include "phy/phy_kernels.hpp"

namespace densevlc::phy {

namespace gf = gf256;

namespace {

// Column staging width granularity: a multiple of every backend's byte
// lane count (scalar/NEON 16, AVX2 32), so one padded width fits all.
constexpr std::size_t kBatchWidthAlign = 32;
// Below this many equal-length lanes the transpose overhead outweighs the
// column kernel; fall back to the scalar per-codeword paths.
constexpr std::size_t kMinBatchWidth = 4;

constexpr std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

// Length-grouped stable order of `n` items via counting sort over the
// 0..255 byte-length domain. `starts[len]` is the first slot of length
// `len`'s group in `order`; items where `include` is false are skipped
// (their count is zero). No allocations beyond the arena order buffer.
template <class LenFn, class IncludeFn>
void group_by_length(std::size_t n, LenFn len, IncludeFn include,
                     std::vector<std::uint32_t>& order,
                     std::array<std::uint32_t, 257>& starts) {
  std::array<std::uint32_t, 256> count{};
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!include(i)) continue;
    ++count[len(i)];
    ++kept;
  }
  starts[0] = 0;
  for (std::size_t l = 0; l < 256; ++l) {
    starts[l + 1] = starts[l] + count[l];
  }
  densevlc::arena_resize(order, kept);
  std::array<std::uint32_t, 256> cursor{};
  for (std::size_t l = 0; l < 256; ++l) cursor[l] = starts[l];
  for (std::size_t i = 0; i < n; ++i) {
    if (!include(i)) continue;
    order[cursor[len(i)]++] = static_cast<std::uint32_t>(i);
  }
}

}  // namespace

ReedSolomon::ReedSolomon(std::size_t parity_symbols)
    : n_parity_{parity_symbols} {
  if (parity_symbols < 2 || parity_symbols > 254 || parity_symbols % 2 != 0) {
    throw std::invalid_argument{
        "ReedSolomon: parity_symbols must be even and in [2, 254]"};
  }
  // Generator polynomial g(x) = prod_{i=0}^{2t-1} (x - alpha^i),
  // descending-degree coefficients.
  generator_ = {1};
  for (std::size_t i = 0; i < n_parity_; ++i) {
    const std::uint8_t root = gf::pow_alpha(static_cast<int>(i));
    const std::uint8_t factor[2] = {1, root};  // (x + alpha^i); char 2: -=+
    generator_ = gf::poly_mul(generator_, factor);
  }
  DVLC_ASSERT(generator_.size() == n_parity_ + 1 && generator_.front() == 1,
              "RS generator polynomial must be monic of degree 2t");
  encode_rows_.reserve(n_parity_);
  syndrome_rows_.reserve(n_parity_);
  encode_ntabs_.reserve(n_parity_);
  syndrome_ntabs_.reserve(n_parity_);
  for (std::size_t i = 0; i < n_parity_; ++i) {
    // DVLC_LINT_WAIVE(hot-loop-alloc): one-time construction, reserved above
    encode_rows_.push_back(gf::mul_row(generator_[i + 1]));
    // DVLC_LINT_WAIVE(hot-loop-alloc): one-time construction, reserved above
    syndrome_rows_.push_back(gf::mul_row(gf::pow_alpha(static_cast<int>(i))));
    // DVLC_LINT_WAIVE(hot-loop-alloc): one-time construction, reserved above
    encode_ntabs_.push_back(gf::nibble_tables(generator_[i + 1]));
    // DVLC_LINT_WAIVE(hot-loop-alloc): one-time construction, reserved above
    syndrome_ntabs_.push_back(
        gf::nibble_tables(gf::pow_alpha(static_cast<int>(i))));
  }
}

void ReedSolomon::encode_parity_into(std::span<const std::uint8_t> message,
                                     std::span<std::uint8_t> parity) const {
  DVLC_EXPECT(parity.size() == n_parity_,
              "encode_parity_into: parity span size mismatch");
  DVLC_EXPECT(message.size() + n_parity_ <= 255,
              "encode_parity_into: message too long for GF(256)");
  // Systematic encoding: remainder of message * x^{2t} divided by g(x).
  // Fused shift + tap update: rem[i] = rem_old[i+1] ^ fb * g[i+1], with
  // the multiply served by the per-tap row table (row[0] == 0 covers the
  // fb == 0 case the scalar loop branched on).
  std::fill(parity.begin(), parity.end(), 0);
  for (std::uint8_t byte : message) {
    const std::uint8_t feedback = gf::add(byte, parity[0]);
    for (std::size_t i = 0; i + 1 < n_parity_; ++i) {
      parity[i] = gf::add(parity[i + 1], encode_rows_[i][feedback]);
    }
    parity[n_parity_ - 1] = encode_rows_[n_parity_ - 1][feedback];
  }
}

std::vector<std::uint8_t> ReedSolomon::encode_parity(
    std::span<const std::uint8_t> message) const {
  std::vector<std::uint8_t> parity(n_parity_, 0);
  encode_parity_into(message, parity);
  return parity;
}

void ReedSolomon::encode_into(std::span<const std::uint8_t> message,
                              std::vector<std::uint8_t>& out) const {
  if (message.size() + n_parity_ > 255) {
    throw std::invalid_argument{"ReedSolomon: message too long for GF(256)"};
  }
  arena_resize(out, message.size() + n_parity_);
  std::copy(message.begin(), message.end(), out.begin());
  encode_parity_into(
      message, std::span<std::uint8_t>{out}.subspan(message.size()));
}

std::vector<std::uint8_t> ReedSolomon::encode(
    std::span<const std::uint8_t> message) const {
  std::vector<std::uint8_t> codeword;
  encode_into(message, codeword);
  return codeword;
}

bool ReedSolomon::decode_into(std::span<const std::uint8_t> codeword,
                              RsDecodeResult& out, RsScratch& scr) const {
  arena_clear(out.data);
  out.corrected_errors = 0;
  if (codeword.size() <= n_parity_ || codeword.size() > 255) return false;
  const std::size_t n = codeword.size();
  const std::size_t k = n - n_parity_;

  // Syndromes S_i = c(alpha^i), i = 0 .. 2t-1. Horner with the per-point
  // row table: acc = alpha^i * acc + byte is one load and one XOR.
  bool all_zero = true;
  for (std::size_t i = 0; i < n_parity_; ++i) {
    const gf::MulRow& row = syndrome_rows_[i];
    std::uint8_t acc = 0;
    for (std::uint8_t c : codeword) acc = gf::add(row[acc], c);
    scr.syndromes[i] = acc;
    all_zero = all_zero && acc == 0;
  }
  if (all_zero) {
    arena_resize(out.data, k);
    std::copy_n(codeword.begin(), k, out.data.begin());
    return true;
  }

  // Berlekamp-Massey on the fixed workspace; lengths tracked explicitly.
  // Same update order as the allocating version, so the trimmed sigma is
  // byte-identical.
  scr.sigma[0] = 1;
  std::size_t sigma_len = 1;
  scr.prev_sigma[0] = 1;
  std::size_t prev_len = 1;
  std::size_t errors = 0;  // current LFSR length L
  std::size_t m = 1;       // steps since last update
  std::uint8_t prev_discrepancy = 1;
  for (std::size_t step = 0; step < n_parity_; ++step) {
    // Discrepancy: d = S_step + sum_{i=1}^{L} sigma_i * S_{step-i}.
    std::uint8_t d = scr.syndromes[step];
    for (std::size_t i = 1; i < sigma_len && i <= step; ++i) {
      d = gf::add(d, gf::mul(scr.sigma[i], scr.syndromes[step - i]));
    }
    if (d == 0) {
      ++m;
      continue;
    }
    const std::uint8_t coeff = gf::div(d, prev_discrepancy);
    const std::size_t adjust_len = prev_len + m;
    DVLC_ASSERT(adjust_len <= scr.adjust.size(),
                "RS scratch adjust buffer overflow");
    std::fill_n(scr.adjust.begin(), m, 0);
    for (std::size_t i = 0; i < prev_len; ++i) {
      scr.adjust[i + m] = gf::mul(scr.prev_sigma[i], coeff);
    }
    const bool length_change = 2 * errors <= step;
    std::size_t old_len = 0;
    if (length_change) {
      // sigma' = sigma - (d/b) x^m prev_sigma, L' = step+1-L.
      std::copy_n(scr.sigma.begin(), sigma_len, scr.old_sigma.begin());
      old_len = sigma_len;
    }
    if (adjust_len > sigma_len) {
      std::fill(scr.sigma.begin() + static_cast<std::ptrdiff_t>(sigma_len),
                scr.sigma.begin() + static_cast<std::ptrdiff_t>(adjust_len),
                0);
      sigma_len = adjust_len;
    }
    for (std::size_t i = 0; i < adjust_len; ++i) {
      scr.sigma[i] = gf::add(scr.sigma[i], scr.adjust[i]);
    }
    if (length_change) {
      errors = step + 1 - errors;
      std::copy_n(scr.old_sigma.begin(), old_len, scr.prev_sigma.begin());
      prev_len = old_len;
      prev_discrepancy = d;
      m = 1;
    } else {
      ++m;
    }
  }
  while (sigma_len > 0 && scr.sigma[sigma_len - 1] == 0) --sigma_len;
  DVLC_ASSERT(sigma_len > 0, "BM sigma lost its constant term");
  const std::size_t num_errors = sigma_len - 1;
  if (num_errors == 0 || num_errors > correction_capacity()) return false;

  // Chien search: roots of sigma are alpha^{-position} for codeword
  // positions counted from the highest-degree end (position 0 is the
  // first byte, exponent n-1 in the codeword polynomial).
  std::size_t n_found = 0;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const int exponent = static_cast<int>(n - 1 - pos);
    const std::uint8_t x_inv = gf::pow_alpha(-exponent);
    // Evaluate sigma (ascending order) at x_inv.
    std::uint8_t acc = 0;
    for (std::size_t i = sigma_len; i-- > 0;) {
      acc = gf::add(gf::mul(acc, x_inv), scr.sigma[i]);
    }
    if (acc == 0) {
      DVLC_ASSERT(n_found < scr.error_positions.size(),
                  "more sigma roots than its degree allows");
      scr.error_positions[n_found++] = pos;
    }
  }
  if (n_found != num_errors) return false;

  // Forney: error magnitudes from the error evaluator polynomial
  // omega(x) = [S(x) * sigma(x)] mod x^{2t}  (ascending order).
  std::fill_n(scr.omega.begin(), n_parity_, 0);
  for (std::size_t i = 0; i < sigma_len; ++i) {
    for (std::size_t j = 0; j + i < n_parity_ && j < n_parity_; ++j) {
      scr.omega[i + j] =
          gf::add(scr.omega[i + j], gf::mul(scr.sigma[i], scr.syndromes[j]));
    }
  }
  // Formal derivative of sigma: keep odd-degree terms shifted down.
  std::size_t deriv_len = 0;
  for (std::size_t i = 1; i < sigma_len; i += 2) {
    scr.sigma_deriv[deriv_len++] = scr.sigma[i];
  }

  std::copy(codeword.begin(), codeword.end(), scr.corrected.begin());
  for (std::size_t e = 0; e < n_found; ++e) {
    const std::size_t pos = scr.error_positions[e];
    const int exponent = static_cast<int>(n - 1 - pos);
    const std::uint8_t x_inv = gf::pow_alpha(-exponent);
    // omega(x_inv), ascending evaluation.
    std::uint8_t num = 0;
    for (std::size_t i = n_parity_; i-- > 0;) {
      num = gf::add(gf::mul(num, x_inv), scr.omega[i]);
    }
    // sigma'(x_inv): derivative has only even powers of x_inv left after
    // the shift; evaluate at x_inv^2.
    const std::uint8_t x_inv2 = gf::mul(x_inv, x_inv);
    std::uint8_t den = 0;
    for (std::size_t i = deriv_len; i-- > 0;) {
      den = gf::add(gf::mul(den, x_inv2), scr.sigma_deriv[i]);
    }
    if (den == 0) return false;
    // With syndromes anchored at alpha^0 (b = 0), Forney's formula carries
    // an extra factor X_j^{1-b} = X_j = alpha^{exponent}.
    const std::uint8_t magnitude =
        gf::mul(gf::div(num, den), gf::pow_alpha(exponent));
    scr.corrected[pos] = gf::add(scr.corrected[pos], magnitude);
  }

  // Verify: all syndromes of the corrected word must vanish.
  for (std::size_t i = 0; i < n_parity_; ++i) {
    const gf::MulRow& row = syndrome_rows_[i];
    std::uint8_t acc = 0;
    for (std::size_t p = 0; p < n; ++p) acc = gf::add(row[acc], scr.corrected[p]);
    if (acc != 0) return false;
  }

  arena_resize(out.data, k);
  std::copy_n(scr.corrected.begin(), k, out.data.begin());
  out.corrected_errors = n_found;
  return true;
}

std::optional<RsDecodeResult> ReedSolomon::decode(
    std::span<const std::uint8_t> codeword) const {
  RsScratch scratch;
  RsDecodeResult out;
  if (!decode_into(codeword, out, scratch)) return std::nullopt;
  return out;
}

void ReedSolomon::encode_parity_batch(std::span<const RsParityJob> jobs,
                                      RsBatchScratch& scr) const {
  const bool kernel_ok = n_parity_ <= detail::kMaxRsParity;
  std::array<std::uint32_t, 257> starts{};
  group_by_length(
      jobs.size(), [&](std::size_t i) { return jobs[i].message.size(); },
      [&](std::size_t i) {
        DVLC_EXPECT(jobs[i].message.size() + n_parity_ <= 255,
                    "encode_parity_batch: message too long for GF(256)");
        DVLC_EXPECT(jobs[i].parity.size() == n_parity_,
                    "encode_parity_batch: parity span size mismatch");
        return true;
      },
      scr.order, starts);
  for (std::size_t len = 0; len < 256; ++len) {
    const std::size_t g0 = starts[len];
    const std::size_t g1 = starts[len + 1];
    const std::size_t lanes = g1 - g0;
    if (lanes == 0) continue;
    if (!kernel_ok || lanes < kMinBatchWidth) {
      for (std::size_t s = g0; s < g1; ++s) {
        const RsParityJob& job = jobs[scr.order[s]];
        encode_parity_into(job.message, job.parity);
      }
      continue;
    }
    const std::size_t width = round_up(lanes, kBatchWidthAlign);
    arena_resize(scr.cols, len * width);
    arena_resize(scr.out_cols, n_parity_ * width);
    std::fill(scr.cols.begin(), scr.cols.end(), 0);
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::span<const std::uint8_t> msg = jobs[scr.order[g0 + l]].message;
      for (std::size_t r = 0; r < len; ++r) {
        scr.cols[r * width + l] = msg[r];
      }
    }
    if (simd::use_vector_kernels()) {
      detail::rs_parity_cols_vec(scr.cols.data(), len, encode_ntabs_.data(),
                                 n_parity_, scr.out_cols.data(), width);
    } else {
      detail::rs_parity_cols_kernel<simd::ScalarBackend>(
          scr.cols.data(), len, encode_ntabs_.data(), n_parity_,
          scr.out_cols.data(), width);
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::span<std::uint8_t> parity = jobs[scr.order[g0 + l]].parity;
      for (std::size_t i = 0; i < n_parity_; ++i) {
        parity[i] = scr.out_cols[i * width + l];
      }
    }
  }
}

void ReedSolomon::syndrome_screen_batch(
    std::span<const std::span<const std::uint8_t>> codewords,
    std::span<std::uint8_t> clean, RsBatchScratch& scr) const {
  DVLC_EXPECT(clean.size() == codewords.size(),
              "syndrome_screen_batch: clean span size mismatch");
  const bool kernel_ok = n_parity_ <= detail::kMaxRsParity;
  // Structurally invalid sizes can never be clean (decode_into rejects
  // them up front); exclude them from the kernel groups.
  const auto valid = [&](std::size_t i) {
    return codewords[i].size() > n_parity_ && codewords[i].size() <= 255;
  };
  for (std::size_t i = 0; i < codewords.size(); ++i) {
    clean[i] = 0;
  }
  std::array<std::uint32_t, 257> starts{};
  group_by_length(
      codewords.size(), [&](std::size_t i) { return codewords[i].size(); },
      valid, scr.order, starts);
  for (std::size_t len = 0; len < 256; ++len) {
    const std::size_t g0 = starts[len];
    const std::size_t g1 = starts[len + 1];
    const std::size_t lanes = g1 - g0;
    if (lanes == 0) continue;
    if (!kernel_ok || lanes < kMinBatchWidth) {
      for (std::size_t s = g0; s < g1; ++s) {
        const std::span<const std::uint8_t> cw = codewords[scr.order[s]];
        bool all_zero = true;
        for (std::size_t i = 0; all_zero && i < n_parity_; ++i) {
          const gf::MulRow& row = syndrome_rows_[i];
          std::uint8_t acc = 0;
          for (std::uint8_t c : cw) acc = gf::add(row[acc], c);
          all_zero = acc == 0;
        }
        clean[scr.order[s]] = all_zero ? 1 : 0;
      }
      continue;
    }
    const std::size_t width = round_up(lanes, kBatchWidthAlign);
    arena_resize(scr.cols, len * width);
    arena_resize(scr.out_cols, n_parity_ * width);
    std::fill(scr.cols.begin(), scr.cols.end(), 0);
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::span<const std::uint8_t> cw = codewords[scr.order[g0 + l]];
      for (std::size_t r = 0; r < len; ++r) {
        scr.cols[r * width + l] = cw[r];
      }
    }
    if (simd::use_vector_kernels()) {
      detail::rs_syndrome_cols_vec(scr.cols.data(), len,
                                   syndrome_ntabs_.data(), n_parity_,
                                   scr.out_cols.data(), width);
    } else {
      detail::rs_syndrome_cols_kernel<simd::ScalarBackend>(
          scr.cols.data(), len, syndrome_ntabs_.data(), n_parity_,
          scr.out_cols.data(), width);
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      bool all_zero = true;
      for (std::size_t i = 0; all_zero && i < n_parity_; ++i) {
        all_zero = scr.out_cols[i * width + l] == 0;
      }
      clean[scr.order[g0 + l]] = all_zero ? 1 : 0;
    }
  }
}

}  // namespace densevlc::phy
