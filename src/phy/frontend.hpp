// Receiver analog front-end model (paper Sec. 7.1, Fig. 16).
//
// Three stages, mirroring the hardware: (1) an S5971 photodiode feeding a
// low-noise transimpedance amplifier, (2) an AC-coupled gain stage that
// strips ambient light and the illumination bias, enabling detection of
// very weak signals such as floor-reflected pilots, (3) a 7th-order
// Butterworth anti-aliasing low-pass in front of a 1 Msps ADC.
//
// Noise enters as additive white Gaussian photocurrent with single-sided
// spectral density N0 (Table 1: 7.02e-23 A^2/Hz), which over the sampled
// bandwidth fs/2 gives a per-sample current variance of N0 * fs / 2.
#pragma once

#include <span>

#include "common/arena.hpp"
#include "common/quantity.hpp"
#include "common/rng.hpp"
#include "dsp/adc.hpp"
#include "dsp/biquad.hpp"
#include "dsp/waveform.hpp"

namespace densevlc::phy {

/// Front-end configuration. Defaults model the paper's BBB-cape RX.
struct FrontEndConfig {
  double responsivity_a_per_w = 0.4;     ///< photodiode R [A/W]
  double tia_gain_ohm = 50e3;            ///< transimpedance stage [V/A]
  double ac_gain = 20.0;                 ///< AC-coupled amplifier gain
  double ac_corner_hz = 1e3;             ///< AC-coupling high-pass corner
  double noise_psd_a2_per_hz = 7.02e-23; ///< N0, single-sided [A^2/Hz]
  std::size_t butterworth_order = 7;     ///< anti-aliasing filter order
  double butterworth_corner_hz = 400e3;  ///< LP corner before 1 Msps ADC
  dsp::AdcConfig adc{};                  ///< converter parameters
};

/// Stateful receive chain: optical power waveform in, digitized (and
/// re-centered to zero-mean) voltage waveform out.
class ReceiverFrontEnd {
 public:
  /// `rng` seeds the noise process; each front-end owns its substream.
  ReceiverFrontEnd(const FrontEndConfig& cfg, Rng rng);

  const FrontEndConfig& config() const { return cfg_; }

  /// Processes a waveform of instantaneous received optical power [W]
  /// sampled at `optical.sample_rate_hz`. Returns the ADC output voltage
  /// referenced to mid-rail (i.e. zero-mean for a DC-free signal), at the
  /// ADC sample rate. Stateful across calls — filters keep their delay
  /// lines so back-to-back calls model a continuous stream.
  dsp::Waveform process(const dsp::Waveform& optical);

  /// process() into a reused waveform (see common/arena.hpp): zero heap
  /// allocations once `out` has warmed up. Noise samples are drawn in the
  /// same per-sample order as process(), so the output is bit-identical.
  void process_into(const dsp::Waveform& optical, dsp::Waveform& out);

  /// Resets all filter state (fresh reception).
  void reset();

  /// Batch workspace for process_batch_into: 4-lane interleaved staging
  /// for the vector biquad kernel (see common/arena.hpp).
  struct BatchScratch {
    AlignedVector<double> lanes;
  };

  /// Processes many independent front-ends in one call. Bit-identical per
  /// lane to fes[i]->process_into(*optical[i], *out[i]) called in order
  /// (each front-end draws its own noise stream first, in lane order),
  /// but the filter stages run four lanes at a time through the vector
  /// biquad kernel. Lanes are grouped in encounter order; groups with
  /// mismatched filter shapes and ragged tails fall back to the scalar
  /// cascades, whose state continues seamlessly.
  // DVLC_LINT_WAIVE(api-into-wrapper): batch outputs are caller-owned spans
  static void process_batch_into(std::span<ReceiverFrontEnd* const> fes,
                                 std::span<const dsp::Waveform* const> optical,
                                 std::span<dsp::Waveform* const> out,
                                 BatchScratch& scratch);

  /// Per-sample standard deviation of the photocurrent noise at the given
  /// processing rate: sqrt(N0 * fs / 2), where sqrt(A^2/Hz * Hz) = A is
  /// derived by the quantity algebra.
  Amperes noise_current_sigma(Hertz sample_rate) const;

 private:
  // The three stages of process_into, split so the batch path can run
  // them per lane / per quad: ZOH resample + noise + TIA, the AC-coupled
  // gain and anti-aliasing filters, and the ADC round trip.
  // DVLC_LINT_WAIVE(api-into-wrapper): private pipeline stage, not an API
  void front_half_into(const dsp::Waveform& optical, dsp::Waveform& out);
  // DVLC_LINT_WAIVE(api-into-wrapper): private pipeline stage, not an API
  void filters_into(dsp::Waveform& out);
  // DVLC_LINT_WAIVE(api-into-wrapper): private pipeline stage, not an API
  void adc_into(dsp::Waveform& out);

  FrontEndConfig cfg_;
  Rng rng_;
  dsp::Adc adc_;
  dsp::BiquadCascade ac_stage_;
  dsp::BiquadCascade lowpass_;
  double mid_rail_ = 0.0;
};

}  // namespace densevlc::phy
