// Block interleaving for burst-error resilience.
//
// The Reed-Solomon code corrects up to 8 byte errors per 200-byte block —
// ample against AWGN, but a single interference burst (a passing shadow,
// a colliding frame edge) concentrates errors in consecutive bytes and
// can sink one block while its neighbours are clean. A depth-D block
// interleaver writes bytes row-wise into a D-row matrix and transmits
// column-wise, spreading any burst of length L over ceil(L/D) errors per
// RS block. This is the standard remedy and a natural extension to the
// paper's PHY (which specifies RS but no interleaving).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace densevlc::phy {

/// Interleaves `data` with the given depth (row count). Depth 0 or 1, or
/// data shorter than two rows, returns the input unchanged. The
/// transform pads internally but the output always has the input's size
/// (pad positions are skipped during read-out), so it is exactly
/// invertible by deinterleave() with the same depth.
std::vector<std::uint8_t> interleave(std::span<const std::uint8_t> data,
                                     std::size_t depth);

/// Inverse of interleave() for the same depth.
std::vector<std::uint8_t> deinterleave(std::span<const std::uint8_t> data,
                                       std::size_t depth);

// --- Zero-allocation overloads (see common/arena.hpp) -------------------
//
// The permutation is generated on the fly instead of materialized, so
// these never allocate. `out` must have the size of `data` and must not
// alias it. Bit-identical to the value-returning functions, which wrap
// them.

void interleave_into(std::span<const std::uint8_t> data, std::size_t depth,
                     std::span<std::uint8_t> out);

void deinterleave_into(std::span<const std::uint8_t> data, std::size_t depth,
                       std::span<std::uint8_t> out);

/// Longest wire burst a depth-D interleaver converts into at most
/// `rs_capacity` errors per RS block, assuming the canonical pairing of
/// one matrix row per RS codeword (depth == number of codewords, so a
/// burst of L wire bytes puts at most ceil(L / D) errors in each).
/// Exposed for the ablation bench's analytical cross-check.
std::size_t burst_tolerance(std::size_t depth, std::size_t rs_capacity);

}  // namespace densevlc::phy
