// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
#include "phy/interleaver.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace densevlc::phy {

void interleave_into(std::span<const std::uint8_t> data, std::size_t depth,
                     std::span<std::uint8_t> out) {
  DVLC_EXPECT(out.size() == data.size(),
              "interleave_into: output size mismatch");
  if (depth <= 1 || data.size() <= depth) {
    std::copy(data.begin(), data.end(), out.begin());
    return;
  }
  // Row-wise write, column-wise read over a depth x cols matrix, skipping
  // pad cells of the final partial row; the walk below enumerates the
  // permutation without materializing it.
  const std::size_t cols = (data.size() + depth - 1) / depth;
  std::size_t w = 0;
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < depth; ++r) {
      const std::size_t idx = r * cols + c;
      if (idx < data.size()) out[w++] = data[idx];
    }
  }
}

void deinterleave_into(std::span<const std::uint8_t> data, std::size_t depth,
                       std::span<std::uint8_t> out) {
  DVLC_EXPECT(out.size() == data.size(),
              "deinterleave_into: output size mismatch");
  if (depth <= 1 || data.size() <= depth) {
    std::copy(data.begin(), data.end(), out.begin());
    return;
  }
  const std::size_t cols = (data.size() + depth - 1) / depth;
  std::size_t w = 0;
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < depth; ++r) {
      const std::size_t idx = r * cols + c;
      if (idx < data.size()) out[idx] = data[w++];
    }
  }
}

std::vector<std::uint8_t> interleave(std::span<const std::uint8_t> data,
                                     std::size_t depth) {
  std::vector<std::uint8_t> out(data.size());
  interleave_into(data, depth, out);
  return out;
}

std::vector<std::uint8_t> deinterleave(std::span<const std::uint8_t> data,
                                       std::size_t depth) {
  std::vector<std::uint8_t> out(data.size());
  deinterleave_into(data, depth, out);
  return out;
}

std::size_t burst_tolerance(std::size_t depth, std::size_t rs_capacity) {
  if (depth <= 1) return rs_capacity;
  // A burst of length L covers at most ceil(L / depth) consecutive
  // positions of any one row; rows map into RS blocks contiguously, so
  // tolerance = depth * capacity.
  return depth * rs_capacity;
}

}  // namespace densevlc::phy
