#include "phy/interleaver.hpp"

namespace densevlc::phy {
namespace {

/// Computes the permutation: out[i] = data[perm[i]]. Row-wise write,
/// column-wise read over a depth x cols matrix, skipping pad cells of
/// the final partial row.
std::vector<std::size_t> permutation(std::size_t size, std::size_t depth) {
  const std::size_t cols = (size + depth - 1) / depth;
  std::vector<std::size_t> perm;
  perm.reserve(size);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < depth; ++r) {
      const std::size_t idx = r * cols + c;
      if (idx < size) perm.push_back(idx);
    }
  }
  return perm;
}

}  // namespace

std::vector<std::uint8_t> interleave(std::span<const std::uint8_t> data,
                                     std::size_t depth) {
  if (depth <= 1 || data.size() <= depth) {
    return {data.begin(), data.end()};
  }
  const auto perm = permutation(data.size(), depth);
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i] = data[perm[i]];
  }
  return out;
}

std::vector<std::uint8_t> deinterleave(std::span<const std::uint8_t> data,
                                       std::size_t depth) {
  if (depth <= 1 || data.size() <= depth) {
    return {data.begin(), data.end()};
  }
  const auto perm = permutation(data.size(), depth);
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[perm[i]] = data[i];
  }
  return out;
}

std::size_t burst_tolerance(std::size_t depth, std::size_t rs_capacity) {
  if (depth <= 1) return rs_capacity;
  // A burst of length L covers at most ceil(L / depth) consecutive
  // positions of any one row; rows map into RS blocks contiguously, so
  // tolerance = depth * capacity.
  return depth * rs_capacity;
}

}  // namespace densevlc::phy
