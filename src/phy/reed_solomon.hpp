// Systematic Reed-Solomon codec over GF(2^8).
//
// DenseVLC's frame format (paper Table 3) appends 16 parity bytes per
// ceil(x/200) block of payload, i.e. a shortened RS(216, 200) code per
// block that corrects up to 8 byte errors. This codec implements the
// general RS(n, k) machinery — encoder via LFSR division by the generator
// polynomial, decoder via syndromes, Berlekamp-Massey, Chien search and
// Forney's algorithm — and the frame layer instantiates it with 16 parity
// symbols.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace densevlc::phy {

/// Outcome of a successful decode.
struct RsDecodeResult {
  std::vector<std::uint8_t> data;   ///< corrected message (k' bytes)
  std::size_t corrected_errors = 0; ///< number of byte positions fixed
};

/// A Reed-Solomon code with a fixed number of parity symbols.
///
/// Message length is flexible per call (shortened code): any k with
/// k + parity <= 255 is accepted.
class ReedSolomon {
 public:
  /// Creates a codec adding `parity_symbols` bytes (must be even and in
  /// [2, 254]; throws std::invalid_argument otherwise). Correction
  /// capacity is parity_symbols / 2 byte errors.
  explicit ReedSolomon(std::size_t parity_symbols);

  /// Number of parity bytes appended per codeword.
  std::size_t parity_symbols() const { return n_parity_; }

  /// Maximum number of correctable byte errors per codeword.
  std::size_t correction_capacity() const { return n_parity_ / 2; }

  /// Encodes a message of up to 255 - parity_symbols() bytes. Returns
  /// message followed by parity (systematic). Throws std::invalid_argument
  /// on over-long messages.
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> message) const;

  /// Decodes a codeword (message + parity). Returns the corrected message
  /// or nullopt when more than correction_capacity() errors corrupted the
  /// word (decode failure).
  std::optional<RsDecodeResult> decode(
      std::span<const std::uint8_t> codeword) const;

 private:
  std::size_t n_parity_;
  std::vector<std::uint8_t> generator_;  // descending-degree coefficients
};

}  // namespace densevlc::phy
