// Systematic Reed-Solomon codec over GF(2^8).
//
// DenseVLC's frame format (paper Table 3) appends 16 parity bytes per
// ceil(x/200) block of payload, i.e. a shortened RS(216, 200) code per
// block that corrects up to 8 byte errors. This codec implements the
// general RS(n, k) machinery — encoder via LFSR division by the generator
// polynomial, decoder via syndromes, Berlekamp-Massey, Chien search and
// Forney's algorithm — and the frame layer instantiates it with 16 parity
// symbols.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/arena.hpp"
#include "phy/gf256.hpp"

namespace densevlc::phy {

/// Outcome of a successful decode.
struct RsDecodeResult {
  std::vector<std::uint8_t> data;   ///< corrected message (k' bytes)
  std::size_t corrected_errors = 0; ///< number of byte positions fixed
};

/// Fixed-capacity decoder workspace: every buffer the decoder needs, so
/// decode_into never touches the heap. A few KB — keep one per receive
/// chain and reuse it across frames (see common/arena.hpp).
struct RsScratch {
  std::array<std::uint8_t, 254> syndromes{};
  // Berlekamp-Massey polynomials. sigma can transiently grow to
  // prev_sigma.size() + m before trailing zeros are trimmed, so the
  // buffers are sized for the worst-case sum, not just degree 254.
  std::array<std::uint8_t, 512> sigma{};
  std::array<std::uint8_t, 512> prev_sigma{};
  std::array<std::uint8_t, 512> old_sigma{};
  std::array<std::uint8_t, 512> adjust{};
  std::array<std::uint8_t, 254> omega{};
  std::array<std::uint8_t, 256> sigma_deriv{};
  std::array<std::size_t, 128> error_positions{};
  std::array<std::uint8_t, 255> corrected{};
};

/// One batch-encode work item: read `message`, write parity_symbols()
/// bytes to `parity`. The spans must not alias each other.
struct RsParityJob {
  std::span<const std::uint8_t> message;
  std::span<std::uint8_t> parity;
};

/// Reusable workspace for the batch column kernels (see common/arena.hpp):
/// column-major codeword staging plus the length-grouped job order. The
/// staging buffers are 32-byte aligned for the SIMD loads.
struct RsBatchScratch {
  AlignedVector<std::uint8_t> cols;      ///< input bytes, column-major
  AlignedVector<std::uint8_t> out_cols;  ///< parity/syndromes, column-major
  std::vector<std::uint32_t> order;      ///< job indices grouped by length
};

/// A Reed-Solomon code with a fixed number of parity symbols.
///
/// Message length is flexible per call (shortened code): any k with
/// k + parity <= 255 is accepted.
class ReedSolomon {
 public:
  /// Creates a codec adding `parity_symbols` bytes (must be even and in
  /// [2, 254]; throws std::invalid_argument otherwise). Correction
  /// capacity is parity_symbols / 2 byte errors.
  explicit ReedSolomon(std::size_t parity_symbols);

  /// Number of parity bytes appended per codeword.
  std::size_t parity_symbols() const { return n_parity_; }

  /// Maximum number of correctable byte errors per codeword.
  std::size_t correction_capacity() const { return n_parity_ / 2; }

  /// Encodes a message of up to 255 - parity_symbols() bytes. Returns
  /// message followed by parity (systematic). Throws std::invalid_argument
  /// on over-long messages.
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> message) const;

  /// Decodes a codeword (message + parity). Returns the corrected message
  /// or nullopt when more than correction_capacity() errors corrupted the
  /// word (decode failure).
  std::optional<RsDecodeResult> decode(
      std::span<const std::uint8_t> codeword) const;

  // --- Zero-allocation overloads (see common/arena.hpp) -----------------

  /// Writes just the parity bytes of `message` into `parity`, whose size
  /// must equal parity_symbols(). The LFSR division runs off per-tap
  /// GF(256) row tables; no allocation, no throw (contract-checks the
  /// sizes instead). `parity` must not alias `message`.
  void encode_parity_into(std::span<const std::uint8_t> message,
                          std::span<std::uint8_t> parity) const;

  /// Value-returning wrapper: the parity bytes of `message` as a fresh
  /// vector of parity_symbols() bytes.
  std::vector<std::uint8_t> encode_parity(
      std::span<const std::uint8_t> message) const;

  /// encode() into a reused buffer (message followed by parity). Throws
  /// like encode() on over-long messages. `out` must not alias `message`.
  void encode_into(std::span<const std::uint8_t> message,
                   std::vector<std::uint8_t>& out) const;

  /// decode() into a reused result + fixed workspace; false replaces
  /// nullopt. Bit-identical outcomes to decode(), which now wraps this.
  [[nodiscard]] bool decode_into(std::span<const std::uint8_t> codeword,
                                 RsDecodeResult& out,
                                 RsScratch& scratch) const;

  // --- Batch column APIs (SIMD across codewords; see phy_kernels.hpp) ---

  /// Computes parity for many messages in one call by staging
  /// equal-length groups column-major and running the encoder LFSR over
  /// all lanes at once. Bit-identical per job to encode_parity_into
  /// (which small groups fall back to). Zero allocations once `scratch`
  /// has warmed up.
  void encode_parity_batch(std::span<const RsParityJob> jobs,
                           RsBatchScratch& scratch) const;

  /// Batch syndrome screen: clean[i] = 1 iff codewords[i] is a valid
  /// codeword with every syndrome zero (the error-free fast path of
  /// decode_into), else 0 — including structurally invalid sizes, which
  /// a subsequent decode_into rejects the same way. Never a false
  /// positive or negative: the syndrome bytes match the scalar Horner
  /// exactly. Zero allocations once `scratch` has warmed up.
  void syndrome_screen_batch(
      std::span<const std::span<const std::uint8_t>> codewords,
      std::span<std::uint8_t> clean, RsBatchScratch& scratch) const;

 private:
  std::size_t n_parity_;
  std::vector<std::uint8_t> generator_;  // descending-degree coefficients
  // Row tables for the two hot inner loops: encode_rows_[i] multiplies by
  // generator_[i + 1] (LFSR tap i), syndrome_rows_[i] multiplies by
  // alpha^i (Horner step of syndrome i).
  std::vector<gf256::MulRow> encode_rows_;
  std::vector<gf256::MulRow> syndrome_rows_;
  // Split-nibble variants of the same constants for the SIMD column
  // kernels (see gf256::NibbleTables).
  std::vector<gf256::NibbleTables> encode_ntabs_;
  std::vector<gf256::NibbleTables> syndrome_ntabs_;
};

}  // namespace densevlc::phy
