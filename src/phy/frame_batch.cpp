// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
#include "phy/frame_batch.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.hpp"
#include "phy/interleaver.hpp"

namespace densevlc::phy {
namespace {

constexpr std::size_t kHeaderBytes = 9;

void store_u16(std::uint8_t* at, std::uint16_t v) {
  at[0] = static_cast<std::uint8_t>(v >> 8);
  at[1] = static_cast<std::uint8_t>(v & 0xFF);
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

std::size_t blocks_for(std::size_t payload_bytes) {
  return (payload_bytes + kRsBlockData - 1) / kRsBlockData;
}

}  // namespace

void serialize_frames_batch(std::span<const MacFrame* const> frames,
                            FrameBatch& batch) {
  const std::size_t n = frames.size();
  arena_resize(batch.lanes, n);
  std::size_t total = 0;
  std::size_t total_blocks = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t payload = frames[i]->payload.size();
    if (payload > kMaxPayload) {
      throw std::invalid_argument{
          "encode_frames_batch: payload exceeds kMaxPayload"};
    }
    batch.lanes[i] = {total, serialized_frame_bytes(payload)};
    total += batch.lanes[i].len;
    total_blocks += blocks_for(payload);
  }
  arena_resize(batch.wire, total);
  arena_resize(batch.parity_jobs, total_blocks);

  // Header + payload per lane, with one RS parity job per block writing
  // straight into the wire tail (same layout as serialize_frame_into).
  std::size_t job = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const MacFrame& frame = *frames[i];
    const std::size_t payload = frame.payload.size();
    std::uint8_t* out = batch.wire.data() + batch.lanes[i].off;
    out[0] = kSfd;
    store_u16(out + 1, static_cast<std::uint16_t>(payload));
    store_u16(out + 3, frame.dst);
    store_u16(out + 5, frame.src);
    store_u16(out + 7, frame.protocol);
    std::copy(frame.payload.begin(), frame.payload.end(),
              out + kHeaderBytes);
    std::size_t parity_at = kHeaderBytes + payload;
    for (std::size_t off = 0; off < payload; off += kRsBlockData) {
      const std::size_t len = std::min(kRsBlockData, payload - off);
      batch.parity_jobs[job++] = RsParityJob{
          std::span<const std::uint8_t>{out + kHeaderBytes + off, len},
          std::span<std::uint8_t>{out + parity_at, kRsBlockParity}};
      parity_at += kRsBlockParity;
    }
  }
  DVLC_ASSERT(job == total_blocks, "encode batch block accounting drifted");
  frame_rs_codec().encode_parity_batch(batch.parity_jobs, batch.rs);
}

void encode_frames_batch(const FrameCodec& codec,
                         std::span<const MacFrame* const> frames,
                         FrameBatch& batch) {
  serialize_frames_batch(frames, batch);
  const std::size_t n = frames.size();
  const std::size_t depth = codec.interleave_depth();
  if (depth <= 1) return;
  for (std::size_t i = 0; i < n; ++i) {
    if (batch.lanes[i].len <= kHeaderBytes) continue;
    std::uint8_t* out = batch.wire.data() + batch.lanes[i].off;
    const std::size_t body_len = batch.lanes[i].len - kHeaderBytes;
    arena_resize(batch.body, body_len);
    std::copy_n(out + kHeaderBytes, body_len, batch.body.begin());
    interleave_into(std::span<const std::uint8_t>{batch.body.data(), body_len},
                    depth,
                    std::span<std::uint8_t>{out + kHeaderBytes, body_len});
  }
}

std::size_t parse_frames_batch(
    std::span<const std::span<const std::uint8_t>> wires,
    std::span<ParsedFrame* const> out, std::span<std::uint8_t> ok,
    FrameBatch& batch) {
  const std::size_t n = wires.size();
  DVLC_EXPECT(out.size() == n && ok.size() == n,
              "parse_frames_batch: span sizes must match");

  // Pass 1 — header validation and block accounting. ok[i] tentatively
  // records "header valid"; lanes failing here mirror parse_frame_into's
  // early returns (result cleared, false).
  arena_resize(batch.lane_first_block, n + 1);
  std::size_t total_blocks = 0;
  std::size_t total_cw_bytes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    batch.lane_first_block[i] = total_blocks;
    ParsedFrame& pf = *out[i];
    pf.corrected_bytes = 0;
    arena_clear(pf.frame.payload);
    ok[i] = 0;
    const std::span<const std::uint8_t> bytes = wires[i];
    if (bytes.size() < kHeaderBytes) continue;
    if (bytes[0] != kSfd) continue;
    const std::uint16_t length = get_u16(bytes, 1);
    if (length > kMaxPayload) continue;
    const std::size_t blocks = blocks_for(length);
    const std::size_t expected =
        kHeaderBytes + length + blocks * kRsBlockParity;
    if (bytes.size() < expected) continue;
    ok[i] = 1;
    pf.frame.dst = get_u16(bytes, 3);
    pf.frame.src = get_u16(bytes, 5);
    pf.frame.protocol = get_u16(bytes, 7);
    total_blocks += blocks;
    total_cw_bytes += length + blocks * kRsBlockParity;
  }
  batch.lane_first_block[n] = total_blocks;

  // Pass 2 — stage every RS block codeword (data ++ parity) contiguously
  // so the syndrome screen sees one flat span per block.
  arena_resize(batch.codewords, total_cw_bytes);
  arena_resize(batch.block_views, total_blocks);
  arena_resize(batch.block_clean, total_blocks);
  std::size_t cw_at = 0;
  std::size_t block = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (ok[i] == 0) continue;
    const std::span<const std::uint8_t> bytes = wires[i];
    const std::size_t length = get_u16(bytes, 1);
    const std::size_t blocks = blocks_for(length);
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t off = b * kRsBlockData;
      const std::size_t len = std::min(kRsBlockData, length - off);
      std::uint8_t* cw = batch.codewords.data() + cw_at;
      std::copy_n(bytes.data() + kHeaderBytes + off, len, cw);
      std::copy_n(bytes.data() + kHeaderBytes + length + b * kRsBlockParity,
                  kRsBlockParity, cw + len);
      batch.block_views[block++] =
          std::span<const std::uint8_t>{cw, len + kRsBlockParity};
      cw_at += len + kRsBlockParity;
    }
  }
  DVLC_ASSERT(block == total_blocks && cw_at == total_cw_bytes,
              "parse batch block accounting drifted");
  const ReedSolomon& rs = frame_rs_codec();
  rs.syndrome_screen_batch(batch.block_views, batch.block_clean, batch.rs);

  // Pass 3 — assemble lanes in order. Clean blocks copy their data bytes
  // directly (what decode_into's all-zero-syndromes fast path does);
  // dirty blocks run the full scalar decoder.
  std::size_t decoded = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (ok[i] == 0) continue;
    ParsedFrame& pf = *out[i];
    bool good = true;
    for (std::size_t b = batch.lane_first_block[i];
         good && b < batch.lane_first_block[i + 1]; ++b) {
      const std::span<const std::uint8_t> cw = batch.block_views[b];
      const std::size_t len = cw.size() - kRsBlockParity;
      if (batch.block_clean[b] != 0) {
        pf.frame.payload.insert(pf.frame.payload.end(), cw.begin(),
                                cw.begin() + static_cast<std::ptrdiff_t>(len));
      } else if (rs.decode_into(cw, batch.frame.block, batch.frame.rs)) {
        pf.corrected_bytes += batch.frame.block.corrected_errors;
        pf.frame.payload.insert(pf.frame.payload.end(),
                                batch.frame.block.data.begin(),
                                batch.frame.block.data.end());
      } else {
        good = false;
      }
    }
    ok[i] = good ? 1 : 0;
    decoded += good ? 1 : 0;
  }
  return decoded;
}

std::size_t decode_frames_batch(
    const FrameCodec& codec,
    std::span<const std::span<const std::uint8_t>> wires,
    std::span<ParsedFrame> out, std::span<std::uint8_t> ok,
    FrameBatch& batch) {
  const std::size_t n = wires.size();
  DVLC_EXPECT(out.size() == n && ok.size() == n,
              "decode_frames_batch: span sizes must match");
  // Stage each lane's bytes (deinterleaved when the codec is configured
  // so), then hand contiguous views to the shared parse path.
  const std::size_t depth = codec.interleave_depth();
  arena_resize(batch.lanes, n);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    batch.lanes[i] = {total, wires[i].size()};
    total += wires[i].size();
  }
  arena_resize(batch.wire, total);
  arena_resize(batch.wire_views, n);
  arena_resize(batch.out_ptrs, n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t* lane = batch.wire.data() + batch.lanes[i].off;
    std::copy(wires[i].begin(), wires[i].end(), lane);
    if (depth > 1 && wires[i].size() > kHeaderBytes) {
      const std::size_t body_len = wires[i].size() - kHeaderBytes;
      arena_resize(batch.body, body_len);
      std::copy_n(lane + kHeaderBytes, body_len, batch.body.begin());
      deinterleave_into(
          std::span<const std::uint8_t>{batch.body.data(), body_len}, depth,
          std::span<std::uint8_t>{lane + kHeaderBytes, body_len});
    }
    batch.wire_views[i] =
        std::span<const std::uint8_t>{lane, batch.lanes[i].len};
    batch.out_ptrs[i] = &out[i];
  }
  return parse_frames_batch(batch.wire_views, batch.out_ptrs, ok, batch);
}

}  // namespace densevlc::phy
