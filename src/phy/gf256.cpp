#include "phy/gf256.hpp"

#include <array>

#include "common/contracts.hpp"

namespace densevlc::phy::gf256 {
namespace {

constexpr unsigned kPrimitivePoly = 0x11D;

struct Tables {
  std::array<std::uint8_t, 512> exp{};  // doubled to skip a mod in mul
  std::array<std::uint8_t, 256> log{};

  Tables() {
    unsigned x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kPrimitivePoly;
    }
    for (int i = 255; i < 512; ++i) {
      exp[static_cast<std::size_t>(i)] =
          exp[static_cast<std::size_t>(i - 255)];
    }
    log[0] = 0;  // unused sentinel
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  DVLC_EXPECT(b != 0, "GF(256) division by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + 255 - t.log[b]];
}

std::uint8_t inverse(std::uint8_t a) {
  DVLC_EXPECT(a != 0, "GF(256) inverse of zero");
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

std::uint8_t pow_alpha(int power) {
  int p = power % 255;
  if (p < 0) p += 255;
  return tables().exp[static_cast<std::size_t>(p)];
}

std::uint8_t poly_eval(std::span<const std::uint8_t> poly, std::uint8_t x) {
  std::uint8_t acc = 0;
  for (std::uint8_t c : poly) acc = add(mul(acc, x), c);
  return acc;
}

MulRow mul_row(std::uint8_t c) {
  MulRow row{};
  for (unsigned x = 0; x < 256; ++x) {
    row[x] = mul(c, static_cast<std::uint8_t>(x));
  }
  return row;
}

NibbleTables nibble_tables(std::uint8_t c) {
  NibbleTables t;
  for (unsigned n = 0; n < 16; ++n) {
    t.lo[n] = mul(c, static_cast<std::uint8_t>(n));
    t.hi[n] = mul(c, static_cast<std::uint8_t>(n << 4));
  }
  return t;
}

std::vector<std::uint8_t> poly_mul(std::span<const std::uint8_t> a,
                                   std::span<const std::uint8_t> b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint8_t> out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = add(out[i + j], mul(a[i], b[j]));
    }
  }
  return out;
}

}  // namespace densevlc::phy::gf256
