// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
#include "phy/frontend.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/arena.hpp"
#include "common/contracts.hpp"
#include "dsp/butterworth.hpp"

namespace densevlc::phy {

ReceiverFrontEnd::ReceiverFrontEnd(const FrontEndConfig& cfg, Rng rng)
    : cfg_{cfg}, rng_{rng}, adc_{cfg.adc} {
  // Snap the mid-rail reference to the ADC grid so a zero input maps to a
  // representable code and back to exactly zero (no systematic offset).
  const double nominal_mid = (cfg.adc.min_volts + cfg.adc.max_volts) / 2.0;
  mid_rail_ = adc_.code_to_volts(adc_.quantize(nominal_mid));
  // Filters are designed at the ADC rate; process() runs the whole chain
  // at that rate (the optical input is zero-order-hold resampled first).
  const double fs = cfg_.adc.sample_rate_hz;
  ac_stage_ = dsp::BiquadCascade{
      {dsp::design_ac_coupling_highpass(cfg_.ac_corner_hz, fs)}};
  lowpass_ = dsp::BiquadCascade{dsp::design_butterworth_lowpass(
      cfg_.butterworth_order, cfg_.butterworth_corner_hz, fs)};
}

Amperes ReceiverFrontEnd::noise_current_sigma(Hertz sample_rate) const {
  DVLC_ASSERT(sample_rate.value() > 0.0, "sample rate must be positive");
  const AmpsSquaredPerHertz n0{cfg_.noise_psd_a2_per_hz};
  return densevlc::sqrt(n0 * sample_rate / 2.0);
}

dsp::Waveform ReceiverFrontEnd::process(const dsp::Waveform& optical) {
  dsp::Waveform out;
  process_into(optical, out);
  return out;
}

void ReceiverFrontEnd::front_half_into(const dsp::Waveform& optical,
                                       dsp::Waveform& out) {
  const double fs = cfg_.adc.sample_rate_hz;
  out.sample_rate_hz = fs;
  arena_clear(out.samples);
  if (optical.samples.empty() || optical.sample_rate_hz <= 0.0) return;
  const auto n_out =
      static_cast<std::size_t>(optical.duration() * fs);
  arena_resize(out.samples, n_out);

  // Pass 1: zero-order-hold resample, photodiode responsivity, additive
  // photocurrent noise, TIA. Noise is drawn per sample in stream order so
  // the Rng sequence matches the historical sample-by-sample loop.
  const double noise_sigma = noise_current_sigma(Hertz{fs}).value();
  for (std::size_t i = 0; i < n_out; ++i) {
    const double t = static_cast<double>(i) / fs;
    auto idx = static_cast<std::size_t>(t * optical.sample_rate_hz);
    idx = std::min(idx, optical.samples.size() - 1);
    const double current = cfg_.responsivity_a_per_w * optical.samples[idx] +
                           rng_.gaussian(0.0, noise_sigma);
    out.samples[i] = cfg_.tia_gain_ohm * current;
  }
}

void ReceiverFrontEnd::filters_into(dsp::Waveform& out) {
  // Pass 2: AC-coupled gain stage. Scaling the filter output afterwards
  // commutes bitwise with scaling inside the per-sample loop.
  ac_stage_.process_block(out.samples);
  for (double& v : out.samples) v = cfg_.ac_gain * v;

  // Pass 3: anti-aliasing low-pass.
  lowpass_.process_block(out.samples);
}

void ReceiverFrontEnd::adc_into(dsp::Waveform& out) {
  // Model the ADC around mid-rail, then remove the offset again so
  // downstream DSP sees a zero-referenced signal with quantization applied.
  for (double& v : out.samples) {
    const std::uint32_t code = adc_.quantize(v + mid_rail_);
    v = adc_.code_to_volts(code) - mid_rail_;
  }
}

void ReceiverFrontEnd::process_into(const dsp::Waveform& optical,
                                    dsp::Waveform& out) {
  front_half_into(optical, out);
  if (out.samples.empty()) return;
  filters_into(out);
  adc_into(out);
}

void ReceiverFrontEnd::process_batch_into(
    std::span<ReceiverFrontEnd* const> fes,
    std::span<const dsp::Waveform* const> optical,
    std::span<dsp::Waveform* const> out, BatchScratch& scratch) {
  const std::size_t n = fes.size();
  DVLC_EXPECT(optical.size() == n && out.size() == n,
              "process_batch_into: span sizes must match");
  // Noise first, per lane in order: each front-end owns its Rng, so the
  // draw sequence per lane is exactly the scalar one.
  for (std::size_t i = 0; i < n; ++i) {
    fes[i]->front_half_into(*optical[i], *out[i]);
  }

  const auto run_quad = [&](const std::size_t lane[4]) {
    ReceiverFrontEnd* fe[4];
    std::size_t min_len = SIZE_MAX;
    bool same_shape = true;
    for (std::size_t l = 0; l < 4; ++l) {
      fe[l] = fes[lane[l]];
      min_len = std::min(min_len, out[lane[l]]->samples.size());
      same_shape = same_shape &&
                   fe[l]->ac_stage_.section_count() ==
                       fe[0]->ac_stage_.section_count() &&
                   fe[l]->lowpass_.section_count() ==
                       fe[0]->lowpass_.section_count();
    }
    if (!same_shape) {
      for (std::size_t l = 0; l < 4; ++l) fe[l]->filters_into(*out[lane[l]]);
      return;
    }
    // Shared prefix through the 4-lane kernel; ragged tails finish on the
    // scalar cascades, whose delay lines continue from the written-back
    // kernel state.
    arena_resize(scratch.lanes, min_len * 4);
    for (std::size_t l = 0; l < 4; ++l) {
      const std::vector<double>& src = out[lane[l]]->samples;
      for (std::size_t t = 0; t < min_len; ++t) {
        scratch.lanes[t * 4 + l] = src[t];
      }
    }
    const std::span<double> block{scratch.lanes.data(), min_len * 4};
    dsp::BiquadCascade* ac[4] = {&fe[0]->ac_stage_, &fe[1]->ac_stage_,
                                 &fe[2]->ac_stage_, &fe[3]->ac_stage_};
    dsp::process_cascades_x4(ac, block);
    for (std::size_t l = 0; l < 4; ++l) {
      const double gain = fe[l]->cfg_.ac_gain;
      for (std::size_t t = 0; t < min_len; ++t) {
        scratch.lanes[t * 4 + l] = gain * scratch.lanes[t * 4 + l];
      }
    }
    dsp::BiquadCascade* lp[4] = {&fe[0]->lowpass_, &fe[1]->lowpass_,
                                 &fe[2]->lowpass_, &fe[3]->lowpass_};
    dsp::process_cascades_x4(lp, block);
    for (std::size_t l = 0; l < 4; ++l) {
      std::vector<double>& dst = out[lane[l]]->samples;
      for (std::size_t t = 0; t < min_len; ++t) {
        dst[t] = scratch.lanes[t * 4 + l];
      }
      const std::span<double> tail =
          std::span<double>{dst}.subspan(min_len);
      fe[l]->ac_stage_.process_block(tail);
      for (double& v : tail) v = fe[l]->cfg_.ac_gain * v;
      fe[l]->lowpass_.process_block(tail);
    }
  };

  std::size_t group[4];
  std::size_t filled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (out[i]->samples.empty()) continue;
    group[filled++] = i;
    if (filled == 4) {
      run_quad(group);
      filled = 0;
    }
  }
  for (std::size_t j = 0; j < filled; ++j) {
    fes[group[j]]->filters_into(*out[group[j]]);
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (!out[i]->samples.empty()) fes[i]->adc_into(*out[i]);
  }
}

void ReceiverFrontEnd::reset() {
  ac_stage_.reset();
  lowpass_.reset();
}

}  // namespace densevlc::phy
