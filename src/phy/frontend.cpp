// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
#include "phy/frontend.hpp"

#include <cmath>

#include "common/arena.hpp"
#include "common/contracts.hpp"
#include "dsp/butterworth.hpp"

namespace densevlc::phy {

ReceiverFrontEnd::ReceiverFrontEnd(const FrontEndConfig& cfg, Rng rng)
    : cfg_{cfg}, rng_{rng}, adc_{cfg.adc} {
  // Snap the mid-rail reference to the ADC grid so a zero input maps to a
  // representable code and back to exactly zero (no systematic offset).
  const double nominal_mid = (cfg.adc.min_volts + cfg.adc.max_volts) / 2.0;
  mid_rail_ = adc_.code_to_volts(adc_.quantize(nominal_mid));
  // Filters are designed at the ADC rate; process() runs the whole chain
  // at that rate (the optical input is zero-order-hold resampled first).
  const double fs = cfg_.adc.sample_rate_hz;
  ac_stage_ = dsp::BiquadCascade{
      {dsp::design_ac_coupling_highpass(cfg_.ac_corner_hz, fs)}};
  lowpass_ = dsp::BiquadCascade{dsp::design_butterworth_lowpass(
      cfg_.butterworth_order, cfg_.butterworth_corner_hz, fs)};
}

Amperes ReceiverFrontEnd::noise_current_sigma(Hertz sample_rate) const {
  DVLC_ASSERT(sample_rate.value() > 0.0, "sample rate must be positive");
  const AmpsSquaredPerHertz n0{cfg_.noise_psd_a2_per_hz};
  return densevlc::sqrt(n0 * sample_rate / 2.0);
}

dsp::Waveform ReceiverFrontEnd::process(const dsp::Waveform& optical) {
  dsp::Waveform out;
  process_into(optical, out);
  return out;
}

void ReceiverFrontEnd::process_into(const dsp::Waveform& optical,
                                    dsp::Waveform& out) {
  const double fs = cfg_.adc.sample_rate_hz;
  out.sample_rate_hz = fs;
  arena_clear(out.samples);
  if (optical.samples.empty() || optical.sample_rate_hz <= 0.0) return;
  const auto n_out =
      static_cast<std::size_t>(optical.duration() * fs);
  arena_resize(out.samples, n_out);

  // Pass 1: zero-order-hold resample, photodiode responsivity, additive
  // photocurrent noise, TIA. Noise is drawn per sample in stream order so
  // the Rng sequence matches the historical sample-by-sample loop.
  const double noise_sigma = noise_current_sigma(Hertz{fs}).value();
  for (std::size_t i = 0; i < n_out; ++i) {
    const double t = static_cast<double>(i) / fs;
    auto idx = static_cast<std::size_t>(t * optical.sample_rate_hz);
    idx = std::min(idx, optical.samples.size() - 1);
    const double current = cfg_.responsivity_a_per_w * optical.samples[idx] +
                           rng_.gaussian(0.0, noise_sigma);
    out.samples[i] = cfg_.tia_gain_ohm * current;
  }

  // Pass 2: AC-coupled gain stage. Scaling the filter output afterwards
  // commutes bitwise with scaling inside the per-sample loop.
  ac_stage_.process_block(out.samples);
  for (double& v : out.samples) v = cfg_.ac_gain * v;

  // Pass 3: anti-aliasing low-pass.
  lowpass_.process_block(out.samples);

  // Model the ADC around mid-rail, then remove the offset again so
  // downstream DSP sees a zero-referenced signal with quantization applied.
  for (double& v : out.samples) {
    const std::uint32_t code = adc_.quantize(v + mid_rail_);
    v = adc_.code_to_volts(code) - mid_rail_;
  }
}

void ReceiverFrontEnd::reset() {
  ac_stage_.reset();
  lowpass_.reset();
}

}  // namespace densevlc::phy
