// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
//
// Vector-backend instantiations of the PHY kernels. This is the only PHY
// TU compiled with the vector ISA flags (-mavx2 on x86; see
// src/phy/CMakeLists.txt), so `simd::VectorBackend` resolves to the wide
// backend here and to the scalar one everywhere else. Callers must gate
// on `simd::use_vector_kernels()` before entering these.
#include "phy/phy_kernels.hpp"

namespace densevlc::phy::detail {

void manchester_encode_bytes_vec(const std::uint8_t* bytes,
                                 std::size_t n_bytes,
                                 std::uint8_t* out_chips) {
  manchester_encode_bytes_kernel<simd::VectorBackend>(bytes, n_bytes,
                                                      out_chips);
}

std::size_t manchester_decode_bytes_vec(const std::uint8_t* chips,
                                        std::size_t n_bytes,
                                        std::uint8_t* out_bytes) {
  return manchester_decode_bytes_kernel<simd::VectorBackend>(chips, n_bytes,
                                                             out_bytes);
}

void rs_parity_cols_vec(const std::uint8_t* msg_cols, std::size_t msg_len,
                        const gf256::NibbleTables* taps, std::size_t np,
                        std::uint8_t* parity_cols, std::size_t width) {
  rs_parity_cols_kernel<simd::VectorBackend>(msg_cols, msg_len, taps, np,
                                             parity_cols, width);
}

void rs_syndrome_cols_vec(const std::uint8_t* cw_cols, std::size_t cw_len,
                          const gf256::NibbleTables* roots, std::size_t np,
                          std::uint8_t* synd_cols, std::size_t width) {
  rs_syndrome_cols_kernel<simd::VectorBackend>(cw_cols, cw_len, roots, np,
                                               synd_cols, width);
}

const char* phy_vector_backend_name() {
  return simd::VectorBackend::kName;
}

}  // namespace densevlc::phy::detail
