// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
#include "phy/manchester.hpp"

#include <algorithm>

#include "common/arena.hpp"
#include "common/contracts.hpp"

namespace densevlc::phy {
namespace {

// 256-entry chip-pattern table: row b holds the 16 chips of byte b,
// MSB-first, bit 1 = (HIGH, LOW), bit 0 = (LOW, HIGH).
constexpr std::array<std::array<Chip, 16>, 256> build_encode_lut() {
  std::array<std::array<Chip, 16>, 256> lut{};
  for (unsigned b = 0; b < 256; ++b) {
    for (unsigned i = 0; i < 8; ++i) {
      const bool bit = ((b >> (7 - i)) & 1u) != 0;
      lut[b][2 * i] = bit ? Chip::kHigh : Chip::kLow;
      lut[b][2 * i + 1] = bit ? Chip::kLow : Chip::kHigh;
    }
  }
  return lut;
}
constexpr auto kEncodeLut = build_encode_lut();

// Lenient decode of 8 chips (4 Manchester pairs) at once: the index is
// the chips packed MSB-first, the entry is the decoded nibble plus the
// number of coding violations (violating pairs resolve to bit 0, the
// same best guess manchester_decode_lenient makes).
struct HalfDecode {
  std::uint8_t nibble = 0;
  std::uint8_t violations = 0;
};
constexpr std::array<HalfDecode, 256> build_decode_lut() {
  std::array<HalfDecode, 256> lut{};
  for (unsigned idx = 0; idx < 256; ++idx) {
    std::uint8_t nibble = 0;
    std::uint8_t violations = 0;
    for (unsigned p = 0; p < 4; ++p) {
      const unsigned c0 = (idx >> (7 - 2 * p)) & 1u;
      const unsigned c1 = (idx >> (6 - 2 * p)) & 1u;
      unsigned bit = 0;
      if (c0 == 0 && c1 == 1) {
        bit = 0;
      } else if (c0 == 1 && c1 == 0) {
        bit = 1;
      } else {
        bit = 0;
        ++violations;
      }
      nibble = static_cast<std::uint8_t>((nibble << 1) | bit);
    }
    lut[idx] = HalfDecode{nibble, violations};
  }
  return lut;
}
constexpr auto kDecodeLut = build_decode_lut();

// Row b holds the 8 MSB-first bit values of byte b (bytes_to_bits).
constexpr std::array<std::array<std::uint8_t, 8>, 256> build_unpack_lut() {
  std::array<std::array<std::uint8_t, 8>, 256> lut{};
  for (unsigned b = 0; b < 256; ++b) {
    for (unsigned i = 0; i < 8; ++i) {
      lut[b][i] = static_cast<std::uint8_t>((b >> (7 - i)) & 1u);
    }
  }
  return lut;
}
constexpr auto kUnpackLut = build_unpack_lut();

/// Packs 8 chips into a kDecodeLut index, MSB-first.
inline unsigned pack8(const Chip* chips) {
  unsigned idx = 0;
  for (unsigned i = 0; i < 8; ++i) {
    idx = (idx << 1) | static_cast<unsigned>(chips[i]);
  }
  return idx;
}

}  // namespace

void manchester_encode_into(std::span<const std::uint8_t> bits,
                            std::vector<Chip>& out) {
  arena_resize(out, bits.size() * 2);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool one = bits[i] != 0;
    out[2 * i] = one ? Chip::kHigh : Chip::kLow;      // 1: Ih -> Il
    out[2 * i + 1] = one ? Chip::kLow : Chip::kHigh;  // 0: Il -> Ih
  }
}

std::vector<Chip> manchester_encode(std::span<const std::uint8_t> bits) {
  std::vector<Chip> chips;
  manchester_encode_into(bits, chips);
  return chips;
}

bool manchester_decode_into(std::span<const Chip> chips,
                            std::vector<std::uint8_t>& out) {
  arena_clear(out);
  if (chips.size() % 2 != 0) return false;
  arena_resize(out, chips.size() / 2);
  for (std::size_t i = 0; i < chips.size(); i += 2) {
    if (chips[i] == Chip::kLow && chips[i + 1] == Chip::kHigh) {
      out[i / 2] = 0;
    } else if (chips[i] == Chip::kHigh && chips[i + 1] == Chip::kLow) {
      out[i / 2] = 1;
    } else {
      arena_clear(out);
      return false;
    }
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> manchester_decode(
    std::span<const Chip> chips) {
  std::vector<std::uint8_t> bits;
  if (!manchester_decode_into(chips, bits)) return std::nullopt;
  return bits;
}

void manchester_decode_lenient_into(std::span<const Chip> chips,
                                    LenientDecode& out) {
  out.violations = 0;
  arena_resize(out.bits, chips.size() / 2);
  std::size_t n = 0;
  for (std::size_t i = 0; i + 1 < chips.size(); i += 2) {
    if (chips[i] == Chip::kLow && chips[i + 1] == Chip::kHigh) {
      out.bits[n++] = 0;
    } else if (chips[i] == Chip::kHigh && chips[i + 1] == Chip::kLow) {
      out.bits[n++] = 1;
    } else {
      out.bits[n++] = 0;
      ++out.violations;
    }
  }
  if (chips.size() % 2 != 0) ++out.violations;
}

LenientDecode manchester_decode_lenient(std::span<const Chip> chips) {
  LenientDecode out;
  manchester_decode_lenient_into(chips, out);
  return out;
}

void bytes_to_bits_into(std::span<const std::uint8_t> bytes,
                        std::vector<std::uint8_t>& out) {
  arena_resize(out, bytes.size() * 8);
  std::uint8_t* dst = out.data();
  for (std::uint8_t b : bytes) {
    const auto& row = kUnpackLut[b];
    std::copy_n(row.begin(), 8, dst);
    dst += 8;
  }
}

std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> bits;
  bytes_to_bits_into(bytes, bits);
  return bits;
}

bool bits_to_bytes_into(std::span<const std::uint8_t> bits,
                        std::vector<std::uint8_t>& out) {
  arena_clear(out);
  if (bits.size() % 8 != 0) return false;
  arena_resize(out, bits.size() / 8);
  for (std::size_t i = 0; i < bits.size(); i += 8) {
    std::uint8_t b = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      b = static_cast<std::uint8_t>((b << 1) | (bits[i + j] & 1));
    }
    out[i / 8] = b;
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> bits_to_bytes(
    std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> bytes;
  if (!bits_to_bytes_into(bits, bytes)) return std::nullopt;
  return bytes;
}

void manchester_encode_bytes(std::span<const std::uint8_t> bytes,
                             std::span<Chip> out_chips) {
  DVLC_EXPECT(out_chips.size() == bytes.size() * 16,
              "manchester_encode_bytes: output must hold 16 chips per byte");
  Chip* dst = out_chips.data();
  for (std::uint8_t b : bytes) {
    const auto& row = kEncodeLut[b];
    std::copy_n(row.begin(), 16, dst);
    dst += 16;
  }
}

std::size_t manchester_decode_bytes_lenient(std::span<const Chip> chips,
                                            std::span<std::uint8_t> out_bytes) {
  DVLC_EXPECT(chips.size() == out_bytes.size() * 16,
              "manchester_decode_bytes_lenient: need 16 chips per byte");
  std::size_t violations = 0;
  const Chip* src = chips.data();
  for (std::uint8_t& b : out_bytes) {
    const HalfDecode hi = kDecodeLut[pack8(src)];
    const HalfDecode lo = kDecodeLut[pack8(src + 8)];
    b = static_cast<std::uint8_t>((hi.nibble << 4) | lo.nibble);
    violations += hi.violations + lo.violations;
    src += 16;
  }
  return violations;
}

}  // namespace densevlc::phy
