#include "phy/manchester.hpp"

namespace densevlc::phy {

std::vector<Chip> manchester_encode(std::span<const std::uint8_t> bits) {
  std::vector<Chip> chips;
  chips.reserve(bits.size() * 2);
  for (std::uint8_t bit : bits) {
    if (bit) {
      chips.push_back(Chip::kHigh);  // 1: Ih -> Il
      chips.push_back(Chip::kLow);
    } else {
      chips.push_back(Chip::kLow);   // 0: Il -> Ih
      chips.push_back(Chip::kHigh);
    }
  }
  return chips;
}

std::optional<std::vector<std::uint8_t>> manchester_decode(
    std::span<const Chip> chips) {
  if (chips.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> bits;
  bits.reserve(chips.size() / 2);
  for (std::size_t i = 0; i < chips.size(); i += 2) {
    if (chips[i] == Chip::kLow && chips[i + 1] == Chip::kHigh) {
      bits.push_back(0);
    } else if (chips[i] == Chip::kHigh && chips[i + 1] == Chip::kLow) {
      bits.push_back(1);
    } else {
      return std::nullopt;
    }
  }
  return bits;
}

LenientDecode manchester_decode_lenient(std::span<const Chip> chips) {
  LenientDecode out;
  out.bits.reserve(chips.size() / 2);
  for (std::size_t i = 0; i + 1 < chips.size(); i += 2) {
    if (chips[i] == Chip::kLow && chips[i + 1] == Chip::kHigh) {
      out.bits.push_back(0);
    } else if (chips[i] == Chip::kHigh && chips[i + 1] == Chip::kLow) {
      out.bits.push_back(1);
    } else {
      out.bits.push_back(0);
      ++out.violations;
    }
  }
  if (chips.size() % 2 != 0) ++out.violations;
  return out;
}

std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> bits;
  bits.reserve(bytes.size() * 8);
  for (std::uint8_t b : bytes) {
    for (int i = 7; i >= 0; --i) {
      bits.push_back(static_cast<std::uint8_t>((b >> i) & 1));
    }
  }
  return bits;
}

std::optional<std::vector<std::uint8_t>> bits_to_bytes(
    std::span<const std::uint8_t> bits) {
  if (bits.size() % 8 != 0) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  bytes.reserve(bits.size() / 8);
  for (std::size_t i = 0; i < bits.size(); i += 8) {
    std::uint8_t b = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      b = static_cast<std::uint8_t>((b << 1) | (bits[i + j] & 1));
    }
    bytes.push_back(b);
  }
  return bytes;
}

}  // namespace densevlc::phy
