// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
#include "phy/manchester.hpp"

#include <algorithm>

#include "common/arena.hpp"
#include "common/contracts.hpp"
#include "phy/phy_kernels.hpp"

namespace densevlc::phy {
namespace {

// Row b holds the 8 MSB-first bit values of byte b (bytes_to_bits). The
// chip-level encode/decode LUTs moved to phy/phy_kernels.hpp so the SIMD
// kernels and this TU share one table.
constexpr std::array<std::array<std::uint8_t, 8>, 256> build_unpack_lut() {
  std::array<std::array<std::uint8_t, 8>, 256> lut{};
  for (unsigned b = 0; b < 256; ++b) {
    for (unsigned i = 0; i < 8; ++i) {
      lut[b][i] = static_cast<std::uint8_t>((b >> (7 - i)) & 1u);
    }
  }
  return lut;
}
constexpr auto kUnpackLut = build_unpack_lut();

}  // namespace

void manchester_encode_into(std::span<const std::uint8_t> bits,
                            std::vector<Chip>& out) {
  arena_resize(out, bits.size() * 2);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool one = bits[i] != 0;
    out[2 * i] = one ? Chip::kHigh : Chip::kLow;      // 1: Ih -> Il
    out[2 * i + 1] = one ? Chip::kLow : Chip::kHigh;  // 0: Il -> Ih
  }
}

std::vector<Chip> manchester_encode(std::span<const std::uint8_t> bits) {
  std::vector<Chip> chips;
  manchester_encode_into(bits, chips);
  return chips;
}

bool manchester_decode_into(std::span<const Chip> chips,
                            std::vector<std::uint8_t>& out) {
  arena_clear(out);
  if (chips.size() % 2 != 0) return false;
  arena_resize(out, chips.size() / 2);
  for (std::size_t i = 0; i < chips.size(); i += 2) {
    if (chips[i] == Chip::kLow && chips[i + 1] == Chip::kHigh) {
      out[i / 2] = 0;
    } else if (chips[i] == Chip::kHigh && chips[i + 1] == Chip::kLow) {
      out[i / 2] = 1;
    } else {
      arena_clear(out);
      return false;
    }
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> manchester_decode(
    std::span<const Chip> chips) {
  std::vector<std::uint8_t> bits;
  if (!manchester_decode_into(chips, bits)) return std::nullopt;
  return bits;
}

void manchester_decode_lenient_into(std::span<const Chip> chips,
                                    LenientDecode& out) {
  out.violations = 0;
  arena_resize(out.bits, chips.size() / 2);
  std::size_t n = 0;
  for (std::size_t i = 0; i + 1 < chips.size(); i += 2) {
    if (chips[i] == Chip::kLow && chips[i + 1] == Chip::kHigh) {
      out.bits[n++] = 0;
    } else if (chips[i] == Chip::kHigh && chips[i + 1] == Chip::kLow) {
      out.bits[n++] = 1;
    } else {
      out.bits[n++] = 0;
      ++out.violations;
    }
  }
  if (chips.size() % 2 != 0) ++out.violations;
}

LenientDecode manchester_decode_lenient(std::span<const Chip> chips) {
  LenientDecode out;
  manchester_decode_lenient_into(chips, out);
  return out;
}

void bytes_to_bits_into(std::span<const std::uint8_t> bytes,
                        std::vector<std::uint8_t>& out) {
  arena_resize(out, bytes.size() * 8);
  std::uint8_t* dst = out.data();
  for (std::uint8_t b : bytes) {
    const auto& row = kUnpackLut[b];
    std::copy_n(row.begin(), 8, dst);
    dst += 8;
  }
}

std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> bits;
  bytes_to_bits_into(bytes, bits);
  return bits;
}

bool bits_to_bytes_into(std::span<const std::uint8_t> bits,
                        std::vector<std::uint8_t>& out) {
  arena_clear(out);
  if (bits.size() % 8 != 0) return false;
  arena_resize(out, bits.size() / 8);
  for (std::size_t i = 0; i < bits.size(); i += 8) {
    std::uint8_t b = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      b = static_cast<std::uint8_t>((b << 1) | (bits[i + j] & 1));
    }
    out[i / 8] = b;
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> bits_to_bytes(
    std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> bytes;
  if (!bits_to_bytes_into(bits, bytes)) return std::nullopt;
  return bytes;
}

void manchester_encode_bytes(std::span<const std::uint8_t> bytes,
                             std::span<Chip> out_chips) {
  DVLC_EXPECT(out_chips.size() == bytes.size() * 16,
              "manchester_encode_bytes: output must hold 16 chips per byte");
  // Chip is a uint8-backed enum with values {0, 1}; the kernels work on
  // the raw byte stream.
  auto* dst = reinterpret_cast<std::uint8_t*>(out_chips.data());
  if (simd::use_vector_kernels()) {
    detail::manchester_encode_bytes_vec(bytes.data(), bytes.size(), dst);
  } else {
    detail::manchester_encode_bytes_kernel<simd::ScalarBackend>(
        bytes.data(), bytes.size(), dst);
  }
}

std::size_t manchester_decode_bytes_lenient(std::span<const Chip> chips,
                                            std::span<std::uint8_t> out_bytes) {
  DVLC_EXPECT(chips.size() == out_bytes.size() * 16,
              "manchester_decode_bytes_lenient: need 16 chips per byte");
  const auto* src = reinterpret_cast<const std::uint8_t*>(chips.data());
  if (simd::use_vector_kernels()) {
    return detail::manchester_decode_bytes_vec(src, out_bytes.size(),
                                               out_bytes.data());
  }
  return detail::manchester_decode_bytes_kernel<simd::ScalarBackend>(
      src, out_bytes.size(), out_bytes.data());
}

}  // namespace densevlc::phy
