// OOK modulation with variable swing around the illumination bias
// (paper Secs. 3.3 and 7.1).
//
// The TX front-end drives the LED at three levels: Il = Ib - Isw/2 for a
// LOW chip, Ib when idling in illumination mode, Ih = Ib + Isw/2 for a
// HIGH chip. The modulator renders chip sequences into LED current
// waveforms; the demodulator recovers chips from the AC-coupled receiver
// voltage by mid-chip integration and sign slicing, then rebuilds frames.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dsp/correlate.hpp"
#include "dsp/waveform.hpp"
#include "phy/frame.hpp"
#include "phy/frame_batch.hpp"
#include "phy/manchester.hpp"

namespace densevlc::phy {

/// Modulation parameters shared by TX and RX.
struct OokParams {
  double chip_rate_hz = 100e3;    ///< on-air chips per second
  std::size_t samples_per_chip = 10;  ///< waveform oversampling at the TX
  double bias_current_a = 0.45;   ///< Ib
  double swing_current_a = 0.9;   ///< Isw assigned by the controller

  /// TX waveform sample rate implied by the parameters.
  double sample_rate_hz() const {
    return chip_rate_hz * static_cast<double>(samples_per_chip);
  }
};

/// Renders chip sequences into LED current waveforms.
class OokModulator {
 public:
  explicit OokModulator(const OokParams& params) : params_{params} {}

  const OokParams& params() const { return params_; }

  /// Current level of a chip [A].
  double chip_current(Chip chip) const;

  /// Renders chips into a current waveform (no idle padding).
  dsp::Waveform modulate(std::span<const Chip> chips) const;

  /// Renders `idle_chips` of illumination-level bias current.
  dsp::Waveform idle(std::size_t idle_chips) const;

  /// Full frame waveform: optional pilot + TX id byte (leading TX only),
  /// preamble, Manchester data; padded with `guard_chips` of bias before
  /// and after.
  dsp::Waveform modulate_frame(const MacFrame& frame, bool include_pilot,
                               std::uint8_t tx_id,
                               std::size_t guard_chips) const;

  // --- Zero-allocation overloads (see common/arena.hpp) -----------------

  /// Reusable TX workspace: on-air chip staging plus serialized bytes.
  struct TxScratch {
    std::vector<Chip> chips;
    std::vector<std::uint8_t> wire;
  };

  /// modulate into a reused waveform.
  void modulate_into(std::span<const Chip> chips, dsp::Waveform& wf) const;

  /// idle into a reused waveform.
  void idle_into(std::size_t idle_chips, dsp::Waveform& wf) const;

  /// modulate_frame into a reused waveform; bit-identical samples.
  void modulate_frame_into(const MacFrame& frame, bool include_pilot,
                           std::uint8_t tx_id, std::size_t guard_chips,
                           dsp::Waveform& wf, TxScratch& scratch) const;

  // --- Batch-of-frames path (see phy/frame_batch.hpp) -------------------

  /// One lane of modulate_batch_into: the arguments of a
  /// modulate_frame_into call.
  struct TxJob {
    const MacFrame* frame = nullptr;
    bool include_pilot = false;
    std::uint8_t tx_id = 0;
    std::size_t guard_chips = 0;
  };

  /// Batch TX workspace: frame pointer staging, chip staging, and the
  /// batch codec scratch all RS parity work is routed through.
  struct TxBatchScratch {
    std::vector<const MacFrame*> frames;
    std::vector<Chip> chips;
    FrameBatch batch;
  };

  /// Renders every job's frame into *out[i]. Per lane bit-identical to
  /// modulate_frame_into; serialization of all lanes runs through the
  /// batch Reed-Solomon column kernels. Throws std::invalid_argument on
  /// over-long payloads like the scalar path.
  // DVLC_LINT_WAIVE(api-into-wrapper): batch outputs are caller-owned spans
  void modulate_batch_into(std::span<const TxJob> jobs,
                           std::span<dsp::Waveform* const> out,
                           TxBatchScratch& scratch) const;

 private:
  OokParams params_;
};

/// Chip-level and frame-level demodulation of AC-coupled RX voltages.
class OokDemodulator {
 public:
  /// `sample_rate_hz` is the rate of waveforms handed to the demodulator
  /// (the ADC rate), independent of the TX oversampling.
  OokDemodulator(double chip_rate_hz, double sample_rate_hz)
      : chip_rate_hz_{chip_rate_hz}, sample_rate_hz_{sample_rate_hz} {}

  /// Slices `count` chips from `signal` starting at sample `offset`.
  /// Decision: mean of the central half of each chip period, sign-sliced
  /// around zero (valid after AC coupling).
  std::vector<Chip> slice_chips(std::span<const double> signal,
                                double offset_samples,
                                std::size_t count) const;

  /// Builds the reference preamble waveform (+1/-1 chips) at the
  /// demodulator sample rate, for correlation search.
  std::vector<double> preamble_template() const;

  /// Result of a frame reception attempt.
  struct RxResult {
    ParsedFrame parsed;                ///< decoded frame
    std::size_t preamble_at = 0;       ///< sample index of preamble start
    double correlation = 0.0;          ///< preamble correlation score
    std::size_t manchester_violations = 0;
  };

  /// Searches for a preamble and decodes one frame from the signal.
  /// `min_correlation` rejects noise-triggered syncs. Returns nullopt when
  /// no preamble is found or the frame fails to decode (counts as a frame
  /// error at the MAC).
  std::optional<RxResult> receive_frame(std::span<const double> signal,
                                        double min_correlation = 0.6) const;

  // --- Zero-allocation overloads (see common/arena.hpp) -----------------

  /// Reusable RX workspace spanning the whole receive chain: preamble
  /// template, correlation search, chip slicing, decoded bytes, and the
  /// frame parser's Reed-Solomon buffers.
  struct RxScratch {
    std::vector<double> preamble_tpl;
    dsp::CorrelateScratch correlate;
    std::vector<Chip> chips;
    std::vector<std::uint8_t> bytes;
    FrameScratch frame;
  };

  /// slice_chips into a reused chip buffer.
  void slice_chips_into(std::span<const double> signal, double offset_samples,
                        std::size_t count, std::vector<Chip>& out) const;

  /// preamble_template into a reused buffer. Rebuilt from the pattern each
  /// call (cheap), so the scratch can never go stale across demodulators.
  void preamble_template_into(std::vector<double>& tpl) const;

  /// receive_frame into a reused result; false replaces nullopt. The fused
  /// byte-at-a-time Manchester decode replaces the bit-level pipeline and
  /// is bit-identical to it (differential suite in tests/phy).
  [[nodiscard]] bool receive_frame_into(std::span<const double> signal,
                                        RxResult& out, RxScratch& scratch,
                                        double min_correlation = 0.6) const;

  // --- Batch-of-frames path (see phy/frame_batch.hpp) -------------------

  /// Batch RX workspace: the per-lane front half (template, correlation,
  /// chip slicing) shares one set of buffers; decoded wire bytes are kept
  /// per lane so every surviving lane's parse runs through the batch
  /// Reed-Solomon path at once.
  struct BatchRxScratch {
    std::vector<double> preamble_tpl;
    dsp::CorrelateScratch correlate;
    std::vector<Chip> chips;
    std::vector<std::vector<std::uint8_t>> lane_bytes;
    std::vector<std::span<const std::uint8_t>> wire_views;
    std::vector<ParsedFrame*> parse_out;
    std::vector<std::uint8_t> parse_ok;
    std::vector<std::uint32_t> lane_of;  ///< parse slot -> lane index
    FrameBatch batch;
  };

  /// Receives one frame per signal lane: out[i]/ok[i] mirror a
  /// receive_frame_into(signals[i], out[i], ...) call — bit-identical
  /// accept/reject decisions and results; failed lanes (ok[i] == 0) must
  /// not be read. Returns the number of decoded lanes.
  // DVLC_LINT_WAIVE(api-into-wrapper): batch outputs are caller-owned spans
  std::size_t receive_batch_into(
      std::span<const std::span<const double>> signals,
      std::span<RxResult> out, std::span<std::uint8_t> ok,
      BatchRxScratch& scratch, double min_correlation = 0.6) const;

  double samples_per_chip() const { return sample_rate_hz_ / chip_rate_hz_; }

 private:
  double chip_rate_hz_;
  double sample_rate_hz_;
};

}  // namespace densevlc::phy
