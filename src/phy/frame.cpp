// DVLC_HOT — zero-allocation sample path (see common/arena.hpp).
#include "phy/frame.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/arena.hpp"
#include "phy/reed_solomon.hpp"

namespace densevlc::phy {
namespace {

// 13-chip Barker code (+1 -> HIGH) repeated/padded to 32 chips, then the
// tail inverted so the pattern is not periodic — sharp autocorrelation.
constexpr std::array<std::uint8_t, 32> kPilotBits = {
    1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1,   // Barker-13
    0, 0, 0, 0, 0, 1, 1, 0, 0, 1, 0, 1, 0,   // inverted Barker-13
    1, 1, 0, 0, 1, 0};
// A different fixed word for the data preamble so pilot detectors do not
// fire on data frames and vice versa.
constexpr std::array<std::uint8_t, 32> kPreambleBits = {
    1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0,
    1, 1, 0, 0, 1, 1, 0, 0, 1, 0, 0, 1, 0, 1, 1, 0};

std::array<Chip, 32> to_chips(const std::array<std::uint8_t, 32>& bits) {
  std::array<Chip, 32> chips{};
  for (std::size_t i = 0; i < bits.size(); ++i) {
    chips[i] = bits[i] ? Chip::kHigh : Chip::kLow;
  }
  return chips;
}

const std::array<Chip, 32>& pilot_chips() {
  static const std::array<Chip, 32> chips = to_chips(kPilotBits);
  return chips;
}

const std::array<Chip, 32>& preamble_chips() {
  static const std::array<Chip, 32> chips = to_chips(kPreambleBits);
  return chips;
}

const ReedSolomon& rs_codec() {
  static const ReedSolomon rs{kRsBlockParity};
  return rs;
}

void store_u16(std::uint8_t* at, std::uint16_t v) {
  at[0] = static_cast<std::uint8_t>(v >> 8);
  at[1] = static_cast<std::uint8_t>(v & 0xFF);
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

}  // namespace

const ReedSolomon& frame_rs_codec() { return rs_codec(); }

std::span<const Chip> pilot_pattern() { return pilot_chips(); }

std::span<const Chip> preamble_pattern() { return preamble_chips(); }

std::size_t serialized_frame_bytes(std::size_t payload_bytes) {
  const std::size_t blocks =
      (payload_bytes + kRsBlockData - 1) / kRsBlockData;
  return 9 + payload_bytes + blocks * kRsBlockParity;
}

void serialize_frame_into(const MacFrame& frame,
                          std::vector<std::uint8_t>& out) {
  if (frame.payload.size() > kMaxPayload) {
    throw std::invalid_argument{"serialize_frame: payload exceeds kMaxPayload"};
  }
  arena_resize(out, serialized_frame_bytes(frame.payload.size()));
  out[0] = kSfd;
  store_u16(out.data() + 1, static_cast<std::uint16_t>(frame.payload.size()));
  store_u16(out.data() + 3, frame.dst);
  store_u16(out.data() + 5, frame.src);
  store_u16(out.data() + 7, frame.protocol);
  // Payload followed by per-block RS parity: block i covers payload bytes
  // [i*200, min((i+1)*200, x)). Parity for all blocks trails the payload,
  // matching Table 3's single trailing Reed-Solomon field. Parity is
  // encoded straight into the output tail, one block at a time.
  std::copy(frame.payload.begin(), frame.payload.end(), out.begin() + 9);
  const auto& rs = rs_codec();
  std::size_t parity_at = 9 + frame.payload.size();
  for (std::size_t off = 0; off < frame.payload.size(); off += kRsBlockData) {
    const std::size_t len =
        std::min(kRsBlockData, frame.payload.size() - off);
    rs.encode_parity_into(
        std::span<const std::uint8_t>{frame.payload}.subspan(off, len),
        std::span<std::uint8_t>{out}.subspan(parity_at, kRsBlockParity));
    parity_at += kRsBlockParity;
  }
}

std::vector<std::uint8_t> serialize_frame(const MacFrame& frame) {
  std::vector<std::uint8_t> out;
  serialize_frame_into(frame, out);
  return out;
}

bool parse_frame_into(std::span<const std::uint8_t> bytes, ParsedFrame& out,
                      FrameScratch& scratch) {
  out.corrected_bytes = 0;
  arena_clear(out.frame.payload);
  if (bytes.size() < 9) return false;
  if (bytes[0] != kSfd) return false;
  const std::uint16_t length = get_u16(bytes, 1);
  if (length > kMaxPayload) return false;
  const std::size_t blocks = (length + kRsBlockData - 1) / kRsBlockData;
  const std::size_t expected = 9 + length + blocks * kRsBlockParity;
  if (bytes.size() < expected) return false;

  out.frame.dst = get_u16(bytes, 3);
  out.frame.src = get_u16(bytes, 5);
  out.frame.protocol = get_u16(bytes, 7);

  const auto& rs = rs_codec();
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t off = b * kRsBlockData;
    const std::size_t len = std::min(kRsBlockData,
                                     static_cast<std::size_t>(length) - off);
    arena_resize(scratch.codeword, len + kRsBlockParity);
    std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(9 + off), len,
                scratch.codeword.begin());
    const std::size_t parity_at = 9 + length + b * kRsBlockParity;
    std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(parity_at),
                kRsBlockParity,
                scratch.codeword.begin() + static_cast<std::ptrdiff_t>(len));
    if (!rs.decode_into(scratch.codeword, scratch.block, scratch.rs)) {
      return false;
    }
    out.corrected_bytes += scratch.block.corrected_errors;
    out.frame.payload.insert(out.frame.payload.end(),
                             scratch.block.data.begin(),
                             scratch.block.data.end());
  }
  return true;
}

std::optional<ParsedFrame> parse_frame(std::span<const std::uint8_t> bytes) {
  FrameScratch scratch;
  ParsedFrame out;
  if (!parse_frame_into(bytes, out, scratch)) return std::nullopt;
  return out;
}

void frame_to_chips_into(const MacFrame& frame, std::vector<Chip>& out,
                         std::vector<std::uint8_t>& wire_scratch) {
  serialize_frame_into(frame, wire_scratch);
  arena_resize(out, kPreambleChips + wire_scratch.size() * 16);
  const auto pre = preamble_pattern();
  std::copy(pre.begin(), pre.end(), out.begin());
  manchester_encode_bytes(wire_scratch,
                          std::span<Chip>{out}.subspan(kPreambleChips));
}

std::vector<Chip> frame_to_chips(const MacFrame& frame) {
  std::vector<Chip> chips;
  std::vector<std::uint8_t> wire;
  frame_to_chips_into(frame, chips, wire);
  return chips;
}

std::vector<std::uint8_t> serialize_controller_frame(
    const ControllerFrame& cf) {
  std::vector<std::uint8_t> out;
  const auto body = serialize_frame(cf.frame);
  out.reserve(9 + body.size());
  for (int i = 7; i >= 0; --i) {
    // DVLC_LINT_WAIVE(hot-loop-alloc): control plane, reserved above
    out.push_back(static_cast<std::uint8_t>((cf.tx_mask >> (8 * i)) & 0xFF));
  }
  // DVLC_LINT_WAIVE(hot-loop-alloc): control plane, reserved above
  out.push_back(cf.leading_tx);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<ControllerFrame> parse_controller_frame(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 9 + 9) return std::nullopt;
  ControllerFrame cf;
  for (std::size_t i = 0; i < 8; ++i) {
    cf.tx_mask = (cf.tx_mask << 8) | bytes[i];
  }
  cf.leading_tx = bytes[8];
  const auto parsed = parse_frame(bytes.subspan(9));
  if (!parsed) return std::nullopt;
  cf.frame = parsed->frame;
  return cf;
}

}  // namespace densevlc::phy
