#include "phy/frame.hpp"

#include <stdexcept>

#include "phy/reed_solomon.hpp"

namespace densevlc::phy {
namespace {

// 13-chip Barker code (+1 -> HIGH) repeated/padded to 32 chips, then the
// tail inverted so the pattern is not periodic — sharp autocorrelation.
constexpr std::array<std::uint8_t, 32> kPilotBits = {
    1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1,   // Barker-13
    0, 0, 0, 0, 0, 1, 1, 0, 0, 1, 0, 1, 0,   // inverted Barker-13
    1, 1, 0, 0, 1, 0};
// A different fixed word for the data preamble so pilot detectors do not
// fire on data frames and vice versa.
constexpr std::array<std::uint8_t, 32> kPreambleBits = {
    1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0,
    1, 1, 0, 0, 1, 1, 0, 0, 1, 0, 0, 1, 0, 1, 1, 0};

std::array<Chip, 32> to_chips(const std::array<std::uint8_t, 32>& bits) {
  std::array<Chip, 32> chips{};
  for (std::size_t i = 0; i < bits.size(); ++i) {
    chips[i] = bits[i] ? Chip::kHigh : Chip::kLow;
  }
  return chips;
}

const std::array<Chip, 32>& pilot_chips() {
  static const std::array<Chip, 32> chips = to_chips(kPilotBits);
  return chips;
}

const std::array<Chip, 32>& preamble_chips() {
  static const std::array<Chip, 32> chips = to_chips(kPreambleBits);
  return chips;
}

const ReedSolomon& rs_codec() {
  static const ReedSolomon rs{kRsBlockParity};
  return rs;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

}  // namespace

std::span<const Chip> pilot_pattern() { return pilot_chips(); }

std::span<const Chip> preamble_pattern() { return preamble_chips(); }

std::size_t serialized_frame_bytes(std::size_t payload_bytes) {
  const std::size_t blocks =
      (payload_bytes + kRsBlockData - 1) / kRsBlockData;
  return 9 + payload_bytes + blocks * kRsBlockParity;
}

std::vector<std::uint8_t> serialize_frame(const MacFrame& frame) {
  if (frame.payload.size() > kMaxPayload) {
    throw std::invalid_argument{"serialize_frame: payload exceeds kMaxPayload"};
  }
  std::vector<std::uint8_t> out;
  out.reserve(serialized_frame_bytes(frame.payload.size()));
  out.push_back(kSfd);
  put_u16(out, static_cast<std::uint16_t>(frame.payload.size()));
  put_u16(out, frame.dst);
  put_u16(out, frame.src);
  put_u16(out, frame.protocol);
  // Payload followed by per-block RS parity: block i covers payload bytes
  // [i*200, min((i+1)*200, x)). Parity for all blocks trails the payload,
  // matching Table 3's single trailing Reed-Solomon field.
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  const auto& rs = rs_codec();
  for (std::size_t off = 0; off < frame.payload.size(); off += kRsBlockData) {
    const std::size_t len =
        std::min(kRsBlockData, frame.payload.size() - off);
    const auto cw = rs.encode(
        std::span<const std::uint8_t>{frame.payload}.subspan(off, len));
    out.insert(out.end(), cw.end() - static_cast<std::ptrdiff_t>(kRsBlockParity),
               cw.end());
  }
  return out;
}

std::optional<ParsedFrame> parse_frame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 9) return std::nullopt;
  if (bytes[0] != kSfd) return std::nullopt;
  const std::uint16_t length = get_u16(bytes, 1);
  if (length > kMaxPayload) return std::nullopt;
  const std::size_t blocks = (length + kRsBlockData - 1) / kRsBlockData;
  const std::size_t expected = 9 + length + blocks * kRsBlockParity;
  if (bytes.size() < expected) return std::nullopt;

  ParsedFrame out;
  out.frame.dst = get_u16(bytes, 3);
  out.frame.src = get_u16(bytes, 5);
  out.frame.protocol = get_u16(bytes, 7);

  const auto& rs = rs_codec();
  out.frame.payload.reserve(length);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t off = b * kRsBlockData;
    const std::size_t len = std::min(kRsBlockData,
                                     static_cast<std::size_t>(length) - off);
    std::vector<std::uint8_t> codeword;
    codeword.reserve(len + kRsBlockParity);
    const auto data_at = static_cast<std::ptrdiff_t>(9 + off);
    codeword.insert(codeword.end(), bytes.begin() + data_at,
                    bytes.begin() + data_at + static_cast<std::ptrdiff_t>(len));
    const std::size_t parity_at = 9 + length + b * kRsBlockParity;
    codeword.insert(codeword.end(), bytes.begin() + static_cast<std::ptrdiff_t>(parity_at),
                    bytes.begin() + static_cast<std::ptrdiff_t>(parity_at + kRsBlockParity));
    const auto decoded = rs.decode(codeword);
    if (!decoded) return std::nullopt;
    out.corrected_bytes += decoded->corrected_errors;
    out.frame.payload.insert(out.frame.payload.end(), decoded->data.begin(),
                             decoded->data.end());
  }
  return out;
}

std::vector<Chip> frame_to_chips(const MacFrame& frame) {
  const auto bytes = serialize_frame(frame);
  const auto bits = bytes_to_bits(bytes);
  const auto data_chips = manchester_encode(bits);
  std::vector<Chip> chips;
  chips.reserve(kPreambleChips + data_chips.size());
  const auto pre = preamble_pattern();
  chips.insert(chips.end(), pre.begin(), pre.end());
  chips.insert(chips.end(), data_chips.begin(), data_chips.end());
  return chips;
}

std::vector<std::uint8_t> serialize_controller_frame(
    const ControllerFrame& cf) {
  std::vector<std::uint8_t> out;
  const auto body = serialize_frame(cf.frame);
  out.reserve(9 + body.size());
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>((cf.tx_mask >> (8 * i)) & 0xFF));
  }
  out.push_back(cf.leading_tx);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<ControllerFrame> parse_controller_frame(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 9 + 9) return std::nullopt;
  ControllerFrame cf;
  for (std::size_t i = 0; i < 8; ++i) {
    cf.tx_mask = (cf.tx_mask << 8) | bytes[i];
  }
  cf.leading_tx = bytes[8];
  const auto parsed = parse_frame(bytes.subspan(9));
  if (!parsed) return std::nullopt;
  cf.frame = parsed->frame;
  return cf;
}

}  // namespace densevlc::phy
