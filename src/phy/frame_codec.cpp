#include "phy/frame_codec.hpp"

#include <algorithm>

#include "phy/interleaver.hpp"

namespace densevlc::phy {
namespace {

constexpr std::size_t kHeaderBytes = 9;

}  // namespace

std::vector<std::uint8_t> FrameCodec::encode(const MacFrame& frame) const {
  auto wire = serialize_frame(frame);
  if (depth_ <= 1 || wire.size() <= kHeaderBytes) return wire;
  const std::span<const std::uint8_t> body{wire.data() + kHeaderBytes,
                                           wire.size() - kHeaderBytes};
  const auto mixed = interleave(body, depth_);
  std::copy(mixed.begin(), mixed.end(), wire.begin() + kHeaderBytes);
  return wire;
}

std::optional<ParsedFrame> FrameCodec::decode(
    std::span<const std::uint8_t> bytes) const {
  if (depth_ <= 1 || bytes.size() <= kHeaderBytes) {
    return parse_frame(bytes);
  }
  std::vector<std::uint8_t> wire(bytes.begin(), bytes.end());
  const std::span<const std::uint8_t> body{wire.data() + kHeaderBytes,
                                           wire.size() - kHeaderBytes};
  const auto restored = deinterleave(body, depth_);
  std::copy(restored.begin(), restored.end(), wire.begin() + kHeaderBytes);
  return parse_frame(wire);
}

std::size_t FrameCodec::matched_depth(std::size_t payload_bytes) {
  const std::size_t blocks =
      (payload_bytes + kRsBlockData - 1) / kRsBlockData;
  return blocks <= 1 ? 1 : blocks;
}

}  // namespace densevlc::phy
